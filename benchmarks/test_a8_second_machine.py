"""A8 — Generalisation: a second, differently balanced machine.

The paper evaluates one cluster.  A model-based reproduction can ask
whether the conclusion is an artifact of that parameter point: this
experiment reruns the Figure-2 headline on ``skylake_ib`` (64 × 24,
EDR-like: 150 Mmsg/s, lower latency, cheaper injection) and on the
Broadwell/OPA model *at the same shape*, isolating the NIC parameters.

Measured finding (asserted): the speedup is nearly NIC-insensitive —
within ±30 % across the two machines — because it is carried by the
terms both machines share: copy counts, per-node wire serialisation,
and the radix-(P+1) schedule.  The paper's conclusion is not an
artifact of Omni-Path's parameter point.
"""

from __future__ import annotations

import pytest

from repro.bench import format_paper_table, run_sweep, summarize_speedups
from repro.machine import broadwell_opa, skylake_ib

from conftest import save_result

SIZES = [16, 64, 256]


def _run():
    second = run_sweep("allgather", SIZES, skylake_ib(), warmup=1, iters=1)
    # Broadwell at the *same shape*, isolating NIC parameters.
    anchor = run_sweep("allgather", [64], broadwell_opa(nodes=64, ppn=24),
                       warmup=1, iters=1)
    return second, anchor


@pytest.mark.benchmark(group="a8")
def test_a8_second_machine(benchmark):
    second, anchor = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_paper_table(second, exclude_factor=None)
    save_result("a8_second_machine", table + "\n\n" + summarize_speedups(second))

    for nbytes in SIZES:
        assert second.speedup("PiP-MColl", nbytes) > 1.0, f"lost at {nbytes} B"
    s2 = second.speedup("PiP-MColl", 64)
    s1 = anchor.speedup("PiP-MColl", 64)
    assert s2 >= 2.5, f"second-machine speedup collapsed: {s2:.2f}x"
    assert 0.7 <= s2 / s1 <= 1.3, (
        f"speedup should be NIC-insensitive at fixed shape: "
        f"{s2:.2f}x vs {s1:.2f}x"
    )
