"""A12 — Shard-scaling perf gate: Fig. 2 on the sharded engine.

The sharded engine partitions the calendar engine into per-node-group
shards that synchronize only at inter-shard message boundaries
(lookahead = NIC latency), optionally executed by forked workers.  It
is required to be *byte- and timestamp-identical* to calendar — the
differential suite enforces that per collective — and this experiment
enforces that it also *pays off* at paper scale:

* **sweep exactness + budget** — the full A10 Fig. 2 allgather sweep
  (16 B–512 B, all five libraries, 128 × 18 = 2304 ranks) runs on
  ``sharded:8`` with every latency equal to calendar's to the last
  bit, inside the wall budget;
* **shard scaling** — the 64 B headline point is timed on calendar and
  ``sharded:{2,4,8}`` (min of ``REPS`` runs; single-core boxes see
  near-parity — the sequential kernel costs within ~1.3× of calendar
  while doing strictly more bookkeeping);
* **parallel speedup gate** — on machines with ≥ ``GATE_CORES`` cores
  (the CI runners), forked workers must deliver ≥ ``MIN_SPEEDUP``×
  wall-clock over calendar at 128 × 18.  Below that core count the
  gate records itself as skipped in the artifact instead of asserting
  — a laptop can't parallelize what it can't schedule;
* **1024-node sweep** — a thousand-node allgather sweep completes on
  the sharded engine under the same budget, timestamp-exact.

Everything measured lands in ``benchmarks/results/
a12_shard_scaling.json`` — the shard-scaling artifact the CI perf
gate uploads next to A10's.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import bench_collective
from repro.bench.regression import PAPER_GRID
from repro.machine import broadwell_opa

from conftest import RESULTS_DIR, save_result

#: Fig. 2's x-axis (per-process bytes)
SIZES = [16, 32, 64, 128, 256, 512]

#: real seconds for each full-scale sweep (per engine)
WALL_BUDGET_S = 120.0

#: wall-clock ratio the forked-worker configuration must reach over
#: calendar at 128 x 18 (override with REPRO_A12_MIN_SPEEDUP)
MIN_SPEEDUP = float(os.environ.get("REPRO_A12_MIN_SPEEDUP", "2.0"))

#: the speedup gate only asserts when the machine can actually run
#: workers side by side
GATE_CORES = 4

#: headline-point timing runs per configuration (min is reported)
REPS = 2

#: warmup/iters for the headline-point shard-scaling column — more
#: iterations than the sweep so fork/teardown amortizes
GATE_ITERS = 3

LIBRARIES = [entry[4] for entry in PAPER_GRID]

#: libraries for the thousand-node leg (headline + the paper's system)
THOUSAND_LIBS = ["MPICH", "PiP-MColl"]


def _sweep(engine, params, libraries=LIBRARIES):
    """A10-shaped sweep: per-library wall seconds + latency per size."""
    report = {}
    for lib in libraries:
        t0 = time.perf_counter()
        points = {
            nbytes: bench_collective(lib, "allgather", nbytes, params,
                                     warmup=1, iters=1, engine=engine)
            for nbytes in SIZES
        }
        report[lib] = {
            "wall_s": time.perf_counter() - t0,
            "latency_us": {str(n): p.latency_us for n, p in points.items()},
        }
    return report


def _headline_wall(engine, params):
    """Min wall seconds over REPS runs of the 64 B headline bench."""
    walls = []
    for _ in range(REPS):
        t0 = time.perf_counter()
        bench_collective("MPICH", "allgather", 64, params,
                         warmup=1, iters=GATE_ITERS, engine=engine)
        walls.append(time.perf_counter() - t0)
    return min(walls)


def _assert_exact(reference, other, what):
    for lib, entry in other.items():
        for nbytes, lat in entry["latency_us"].items():
            want = reference[lib]["latency_us"][nbytes]
            assert lat == want, (
                f"{what}: {lib}/{nbytes}B = {lat!r}us, "
                f"calendar says {want!r}us — engines must be exact")


def _run():
    params = broadwell_opa()  # the paper's 128 x 18 = 2304 ranks
    cores = os.cpu_count() or 1

    calendar = _sweep("calendar", params)
    sharded = _sweep("sharded:8", params)

    scaling = {"calendar": _headline_wall("calendar", params)}
    for shards in (2, 4, 8):
        scaling[f"sharded:{shards}"] = _headline_wall(
            f"sharded:{shards}", params)

    gate = {"cores": cores, "min_speedup": MIN_SPEEDUP,
            "gate_cores": GATE_CORES}
    if cores >= GATE_CORES:
        workers = min(8, cores)
        config = f"sharded:8x{workers}"
        scaling[config] = _headline_wall(config, params)
        gate["config"] = config
        gate["speedup"] = scaling["calendar"] / scaling[config]
        gate["asserted"] = True
    else:
        gate["asserted"] = False
        gate["skipped"] = (
            f"speedup gate needs >= {GATE_CORES} cores, have {cores}")

    return {
        "geometry": "128x18",
        "calendar": calendar,
        "sharded:8": sharded,
        "headline_wall_s": scaling,
        "gate": gate,
    }


@pytest.mark.benchmark(group="a12")
def test_a12_shard_scaling(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    scaling = report["headline_wall_s"]
    gate = report["gate"]
    lines = [f"A12 shard scaling: allgather, 128x18 = 2304 ranks "
             f"(budget {WALL_BUDGET_S:.0f}s/engine sweep)"]
    for engine in sorted(scaling):
        ratio = scaling["calendar"] / scaling[engine]
        lines.append(f"  {engine:12s} 64B headline wall "
                     f"{scaling[engine]:6.2f}s  ({ratio:4.2f}x calendar)")
    if gate["asserted"]:
        lines.append(f"  speedup gate: {gate['speedup']:.2f}x on "
                     f"{gate['config']} (need >= {MIN_SPEEDUP}x)")
    else:
        lines.append(f"  speedup gate: {gate['skipped']}")
    save_result("a12_shard_scaling", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a12_shard_scaling.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    # Engine exactness: the sharded sweep reproduces calendar's
    # latencies bit for bit, every library, every size.
    _assert_exact(report["calendar"], report["sharded:8"], "sharded:8")

    # Wall budget: paper scale stays routine on the sharded engine too.
    for lib, entry in report["sharded:8"].items():
        assert entry["wall_s"] < WALL_BUDGET_S, \
            f"{lib}: {entry['wall_s']:.1f}s blows the {WALL_BUDGET_S}s budget"

    # The speedup gate (CI runners; recorded-but-skipped on small boxes).
    if gate["asserted"]:
        assert gate["speedup"] >= MIN_SPEEDUP, (
            f"{gate['config']} managed only {gate['speedup']:.2f}x over "
            f"calendar at 128x18 (need >= {MIN_SPEEDUP}x) — see "
            f"benchmarks/results/a12_shard_scaling.json")


@pytest.mark.benchmark(group="a12")
def test_a12_thousand_nodes(benchmark):
    params = broadwell_opa(nodes=1024, ppn=1)

    def _run_thousand():
        return {
            "geometry": "1024x1",
            "calendar": _sweep("calendar", params, THOUSAND_LIBS),
            "sharded:8": _sweep("sharded:8", params, THOUSAND_LIBS),
        }

    report = benchmark.pedantic(_run_thousand, rounds=1, iterations=1)

    lines = ["A12 thousand-node sweep: allgather, 1024x1"]
    for engine in ("calendar", "sharded:8"):
        for lib, entry in report[engine].items():
            lines.append(f"  {engine:10s} {lib:10s} wall "
                         f"{entry['wall_s']:6.2f}s  64B "
                         f"{entry['latency_us']['64']:8.2f}us")
    save_result("a12_thousand_nodes", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a12_thousand_nodes.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    _assert_exact(report["calendar"], report["sharded:8"],
                  "sharded:8 @1024x1")
    for lib, entry in report["sharded:8"].items():
        assert entry["wall_s"] < WALL_BUDGET_S, \
            f"{lib}@1024x1: {entry['wall_s']:.1f}s blows the budget"
