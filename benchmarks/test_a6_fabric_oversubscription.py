"""A6 — Extension ablation: behaviour under an oversubscribed fabric.

The paper's §1 notes that naive designs "fail to fully saturate the
network"; the flip side is what happens when the network itself is the
scarce resource.  A flat radix-2 Bruck makes every *rank* transmit the
full result (≈ N·P·C_b bytes each), while the multi-object design
makes every *node* transmit it once — ~P× fewer inter-node bytes.
Under a 4:1 oversubscribed fat-tree the uplinks punish the byte-hungry
design much harder.

Shape asserted (32 nodes × 8 ppn, pods of 8, 512 B):
* both libraries slow down when oversubscription rises 1:1 → 4:1;
* MPICH's absolute slowdown is ≥ 4× PiP-MColl's;
* the PiP-MColl speedup widens under oversubscription.
"""

from __future__ import annotations

import pytest

from repro.machine import FabricParams, broadwell_opa
from repro.mpilibs import make_library

from conftest import save_result

NODES, PPN, NBYTES = 32, 8, 512
POD = 8


def _time(lib_name: str, oversub: float) -> float:
    lib = make_library(lib_name)
    from repro.bench.harness import _buffers, _invoke
    from repro.runtime import World

    # make_world has no fabric knob (fabrics are an extension), so
    # build the world directly with the library's transport.
    world = World(broadwell_opa(nodes=NODES, ppn=PPN),
                  intra=lib.profile.intra, functional=False,
                  fabric=FabricParams(pod_size=POD, oversubscription=oversub))
    size = world.comm_world.size
    algo = lib.wrapped("allgather", NBYTES, size)

    def program(ctx):
        bufs = _buffers(ctx, "allgather", NBYTES, size, 0)
        lats = []
        for _ in range(2):
            yield from ctx.hard_sync()
            t0 = ctx.now
            yield from _invoke(algo, ctx, bufs, "allgather", 0)
            lats.append(ctx.now - t0)
        return lats[-1]

    return max(world.run(program)) * 1e6


def _run():
    grid = {}
    for lib in ("MPICH", "PiP-MColl"):
        for oversub in (1.0, 4.0):
            grid[(lib, oversub)] = _time(lib, oversub)
    return grid


@pytest.mark.benchmark(group="a6")
def test_a6_fabric_oversubscription(benchmark):
    grid = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"A6 fabric oversubscription: allgather {NBYTES} B, "
        f"{NODES}x{PPN}, pods of {POD} (us)"
    ]
    for lib in ("MPICH", "PiP-MColl"):
        t1, t4 = grid[(lib, 1.0)], grid[(lib, 4.0)]
        lines.append(
            f"  {lib:10s} 1:1 {t1:9.2f}  4:1 {t4:9.2f}  "
            f"(+{t4 - t1:8.2f} us, {t4 / t1:4.2f}x)"
        )
    s1 = grid[("MPICH", 1.0)] / grid[("PiP-MColl", 1.0)]
    s4 = grid[("MPICH", 4.0)] / grid[("PiP-MColl", 4.0)]
    lines.append(f"  PiP-MColl speedup: {s1:4.2f}x at 1:1 -> {s4:4.2f}x at 4:1")
    save_result("a6_fabric_oversubscription", "\n".join(lines))

    mpich_hit = grid[("MPICH", 4.0)] - grid[("MPICH", 1.0)]
    ours_hit = grid[("PiP-MColl", 4.0)] - grid[("PiP-MColl", 1.0)]
    assert mpich_hit > 0 and ours_hit > 0, "oversubscription must cost both"
    assert mpich_hit >= 4 * ours_hit, (
        f"flat design should bleed far more bytes: {mpich_hit:.1f} vs "
        f"{ours_hit:.1f} us"
    )
    assert s4 > s1, "the multi-object advantage should widen under congestion"
