"""E2 + E4 — Paper Figure 2: MPI_Allgather small-message latency.

Paper setup: 16 B–512 B per process on 128 nodes × 18 ppn.  Paper
headlines: PiP-MColl outperforms the other implementations *in all
cases*; at 64 B it is **over 4.6× as fast as the fastest** other
library (E4); the naive PiP-MPICH baseline sometimes places last
because of its per-message size synchronisation.

Shape asserted here:
* PiP-MColl fastest at every size;
* speedup vs the fastest other library at 64 B is ≥ 3.5× (DESIGN.md
  band for the paper's 4.6×);
* allgather's best speedup exceeds scatter's (cross-figure shape);
* PiP-MPICH is never faster than MPICH (same algorithms + sync tax).
"""

from __future__ import annotations

import pytest

from repro.bench import format_paper_table, run_sweep, summarize_speedups
from repro.machine import broadwell_opa

from conftest import bench_scale, save_result

SIZES = [16, 32, 64, 128, 256, 512]


def _run():
    if bench_scale() == "small":
        params = broadwell_opa(nodes=16, ppn=6)
    else:
        params = broadwell_opa()  # the paper's 128 × 18
    return run_sweep("allgather", SIZES, params, warmup=1, iters=1)


@pytest.mark.benchmark(group="fig2")
def test_fig2_allgather(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_paper_table(sweep, exclude_factor=4.0)
    save_result("fig2_allgather", table + "\n\n" + summarize_speedups(sweep))

    # "PiP-MColl outperforms other MPI implementations in all cases."
    for nbytes in SIZES:
        assert sweep.speedup("PiP-MColl", nbytes) > 1.0, f"lost at {nbytes} B"

    # E4: ≥ 3.5× vs the fastest other library at 64 B (paper: 4.6×) —
    # full scale only; the advantage shrinks with node count.
    if bench_scale() != "small":
        factor = sweep.speedup("PiP-MColl", 64)
        assert factor >= 3.5, f"64 B speedup {factor:.2f}x below band"

    # PiP-MPICH pays the size-sync tax over MPICH's identical schedule
    # where small messages dominate; at larger sizes the single-copy
    # transport wins the tax back (it is "sometimes the worst", not
    # always — exactly the paper's §3 wording).
    for nbytes in (16, 32, 64):
        assert sweep.latency("PiP-MPICH", nbytes) >= \
            sweep.latency("MPICH", nbytes) * 0.999, f"sync tax vanished at {nbytes} B"
