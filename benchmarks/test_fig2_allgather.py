"""E2 + E4 — Paper Figure 2: MPI_Allgather small-message latency.

Paper setup: 16 B–512 B per process on 128 nodes × 18 ppn.  Paper
headlines: PiP-MColl outperforms the other implementations *in all
cases*; at 64 B it is **over 4.6× as fast as the fastest** other
library (E4); the naive PiP-MPICH baseline sometimes places last
because of its per-message size synchronisation.

Shape asserted here:
* PiP-MColl fastest at every size;
* speedup vs the fastest other library at 64 B is ≥ 3.5× (DESIGN.md
  band for the paper's 4.6×);
* allgather's best speedup exceeds scatter's (cross-figure shape);
* PiP-MPICH is never faster than MPICH (same algorithms + sync tax).

This experiment also feeds the reporting pipeline: every grid point
runs with resource telemetry, a single-leader baseline arm rides
along, attribution decomposes the 64 B point per library, and the
whole grid lands in ``benchmarks/results/fig2_allgather.records.json``
for ``python -m repro report``.  The paper's §2–3 occupancy claim is
asserted directly: PiP-MColl engages ≥ ``ppn``× more NIC injection
engines than the single-leader schedule.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench import format_paper_table, run_sweep, summarize_speedups
from repro.bench.breakdown import measure_attribution
from repro.bench.harness import single_leader_allgather
from repro.machine import broadwell_opa
from repro.report import occupancy_ratios

from conftest import bench_scale, save_records, save_result

SIZES = [16, 32, 64, 128, 256, 512]
ATTRIBUTION_SIZE = 64  # the paper's headline point


def _params():
    if bench_scale() == "small":
        return broadwell_opa(nodes=16, ppn=6)
    return broadwell_opa()  # the paper's 128 × 18


def _run():
    params = _params()
    sweep = run_sweep("allgather", SIZES, params, warmup=1, iters=1,
                      resources=True)
    leaders = [single_leader_allgather(nbytes, params, warmup=1, iters=1,
                                       resources=True)
               for nbytes in SIZES]
    attributions = {
        lib: measure_attribution(lib, "allgather", ATTRIBUTION_SIZE, params)
        for lib in sweep.libraries
    }
    return sweep, leaders, attributions


@pytest.mark.benchmark(group="fig2")
def test_fig2_allgather(benchmark):
    sweep, leaders, attributions = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    table = format_paper_table(sweep, exclude_factor=4.0)
    save_result("fig2_allgather", table + "\n\n" + summarize_speedups(sweep))

    # Emit the grid (+ the single-leader arm) as BenchRecords.
    records = []
    for (lib, nbytes), point in sorted(sweep.points.items()):
        if nbytes == ATTRIBUTION_SIZE:
            point = dataclasses.replace(
                point, attribution=attributions[lib].as_dict())
        records.append(point.to_record(experiment="fig2"))
    records.extend(pt.to_record(experiment="fig2") for pt in leaders)
    save_records("fig2_allgather", records)

    # "PiP-MColl outperforms other MPI implementations in all cases."
    for nbytes in SIZES:
        assert sweep.speedup("PiP-MColl", nbytes) > 1.0, f"lost at {nbytes} B"

    # E4: ≥ 3.5× vs the fastest other library at 64 B (paper: 4.6×) —
    # full scale only; the advantage shrinks with node count.
    if bench_scale() != "small":
        factor = sweep.speedup("PiP-MColl", 64)
        assert factor >= 3.5, f"64 B speedup {factor:.2f}x below band"

    # PiP-MPICH pays the size-sync tax over MPICH's identical schedule
    # where small messages dominate; at larger sizes the single-copy
    # transport wins the tax back (it is "sometimes the worst", not
    # always — exactly the paper's §3 wording).
    for nbytes in (16, 32, 64):
        assert sweep.latency("PiP-MPICH", nbytes) >= \
            sweep.latency("MPICH", nbytes) * 0.999, f"sync tax vanished at {nbytes} B"

    # §2–3 occupancy claim: the multi-object schedule engages ≥ P× more
    # NIC injection engines than the single-leader schedule, at every
    # size of the grid (P = ppn; radix-(P+1) Bruck round 1 activates
    # every local digit whenever N ≥ P+1).
    ratios = occupancy_ratios({rec.key: rec.as_dict() for rec in records})
    assert len(ratios) == len(SIZES)
    ppn = _params().ppn
    for row in ratios:
        assert row["clears_bar"], (
            f"{row['nbytes']} B: engine ratio {row['engine_ratio']:.1f}x "
            f"below the ppn={ppn} bar"
        )

    # Attribution is exact by construction and names a dominant term.
    for lib, att in attributions.items():
        att.check(tolerance=1e-6)  # components sum to measured ±1 µs
        assert att.dominant in att.terms, lib
        assert att.dominant_resource, lib
