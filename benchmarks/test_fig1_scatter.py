"""E1 + E3 — Paper Figure 1: MPI_Scatter small-message latency.

Paper setup: 128 nodes × 18 ppn (2304 ranks), per-process message
sizes up to 1 KiB, all six libraries; entries slower than 4× PiP-MColl
were excluded from the paper's plot.  Paper headline (E3): PiP-MColl's
best scatter speedup over the fastest other library is ≈65 % (1.65×),
at 256 B.

Shape asserted here:
* PiP-MColl is the fastest library at every size (paper:
  "consistently outperforms");
* the speedup at 256 B exceeds the paper's 65 % and stays below 6×.
  Our reproduction *overshoots* the paper's scatter number: the
  two-page paper never describes its scatter algorithm, and the
  natural multi-object design (node-slab sends fanned across all 18
  root-node ranks, receivers distributing via direct PiP copies) is
  wire-bound-optimal, while the binomial baselines pay deep-tree
  rendezvous serialisation.  EXPERIMENTS.md discusses the divergence;
* scatter's *total* win is bounded by the root NIC wire (the same
  ~590 KB leaves the root node under every design), which is why its
  speedup band sits below allgather's at the common large-size end —
  the paper's "allgather benefits the most" observation.
"""

from __future__ import annotations

import pytest

from repro.bench import format_paper_table, run_sweep, summarize_speedups
from repro.machine import broadwell_opa

from conftest import bench_scale, save_result

SIZES = [16, 32, 64, 128, 256, 512, 1024]


def _run():
    if bench_scale() == "small":
        params = broadwell_opa(nodes=16, ppn=6)
    else:
        params = broadwell_opa()  # the paper's 128 × 18
    return run_sweep("scatter", SIZES, params, warmup=1, iters=1)


@pytest.mark.benchmark(group="fig1")
def test_fig1_scatter(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_paper_table(sweep, exclude_factor=4.0)
    save_result("fig1_scatter", table + "\n\n" + summarize_speedups(sweep))

    # PiP-MColl wins at every size (paper: "consistently outperforms").
    for nbytes in SIZES:
        assert sweep.speedup("PiP-MColl", nbytes) > 1.0, f"lost at {nbytes} B"

    # E3: PiP-MColl's 256 B advantage is at least the paper's 65 % and
    # bounded (the root NIC wire is common to every design).
    factor_256 = sweep.speedup("PiP-MColl", 256)
    assert 1.65 <= factor_256 <= 6.0, f"256 B speedup {factor_256:.2f}x out of band"
