"""A4 — Scaling: PiP-MColl's allgather advantage grows with node count.

The radix-(P+1) Bruck needs ``ceil(log_{P+1} N)`` rounds vs the
baseline's ``ceil(log2(N·P))``, and a node transmits ~``N·P·C_b``
bytes once instead of every *rank* transmitting that much — so the
*absolute* time saved grows with node count.  The speedup *ratio*
saturates (both designs share the Θ(N) result-distribution term), so
the honest scaling claim is: the gap widens monotonically and the
ratio stays large at every point, making the paper's 128-node
endpoint credible rather than cherry-picked.

Shape asserted at 64 B, N ∈ {8, 32, 128}, ppn 18: PiP-MColl wins
≥ 2.5× everywhere, and the absolute saving (µs) grows strictly.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_collective
from repro.machine import broadwell_opa

from conftest import save_result

NODE_COUNTS = [8, 32, 128]


def _run():
    speedups = {}
    for nodes in NODE_COUNTS:
        params = broadwell_opa(nodes=nodes, ppn=18)
        base = bench_collective("MPICH", "allgather", 64, params,
                                warmup=1, iters=1)
        ours = bench_collective("PiP-MColl", "allgather", 64, params,
                                warmup=1, iters=1)
        speedups[nodes] = (base.latency_us, ours.latency_us)
    return speedups


@pytest.mark.benchmark(group="a4")
def test_a4_node_scaling(benchmark):
    speedups = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["A4 node scaling: allgather 64 B, ppn=18 (us)"]
    ratios, gaps = [], []
    for nodes in NODE_COUNTS:
        base, ours = speedups[nodes]
        ratios.append(base / ours)
        gaps.append(base - ours)
        lines.append(
            f"  N={nodes:4d}: MPICH {base:9.2f}, PiP-MColl {ours:9.2f}"
            f"  ->  {base / ours:5.2f}x  (saves {base - ours:8.2f} us)"
        )
    save_result("a4_node_scaling", "\n".join(lines))

    assert all(r > 2.5 for r in ratios), f"ratio collapsed: {ratios}"
    for lo, hi in zip(gaps, gaps[1:]):
        assert hi > lo, f"absolute saving shrank with scale: {gaps}"
