"""A4 — Scaling: PiP-MColl's allgather advantage grows with node count.

The radix-(P+1) Bruck needs ``ceil(log_{P+1} N)`` rounds vs the
baseline's ``ceil(log2(N·P))``, and a node transmits ~``N·P·C_b``
bytes once instead of every *rank* transmitting that much — so the
*absolute* time saved grows with node count.  The speedup *ratio*
saturates (both designs share the Θ(N) result-distribution term), so
the honest scaling claim is: the gap widens monotonically and the
ratio stays large at every point, making the paper's 128-node
endpoint credible rather than cherry-picked.

Shape asserted at 64 B, N ∈ {8, 32, 128}, ppn 18: PiP-MColl wins
≥ 2.5× everywhere, and the absolute saving (µs) grows strictly.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.bench import bench_collective
from repro.machine import broadwell_opa

from conftest import RESULTS_DIR, save_records, save_result

NODE_COUNTS = [8, 32, 128]


def _run():
    points = {}
    for nodes in NODE_COUNTS:
        params = broadwell_opa(nodes=nodes, ppn=18)
        base = bench_collective("MPICH", "allgather", 64, params,
                                warmup=1, iters=1, resources=True)
        ours = bench_collective("PiP-MColl", "allgather", 64, params,
                                warmup=1, iters=1, resources=True)
        points[nodes] = (base, ours)
    return points


@pytest.mark.benchmark(group="a4")
def test_a4_node_scaling(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["A4 node scaling: allgather 64 B, ppn=18 (us)"]
    ratios, gaps = [], []
    for nodes in NODE_COUNTS:
        base, ours = (pt.latency_us for pt in points[nodes])
        ratios.append(base / ours)
        gaps.append(base - ours)
        lines.append(
            f"  N={nodes:4d}: MPICH {base:9.2f}, PiP-MColl {ours:9.2f}"
            f"  ->  {base / ours:5.2f}x  (saves {base - ours:8.2f} us)"
        )
    save_result("a4_node_scaling", "\n".join(lines))
    save_records("a4_node_scaling",
                 [pt.to_record(experiment="a4")
                  for pair in points.values() for pt in pair])

    assert all(r > 2.5 for r in ratios), f"ratio collapsed: {ratios}"
    for lo, hi in zip(gaps, gaps[1:]):
        assert hi > lo, f"absolute saving shrank with scale: {gaps}"


# ---------------------------------------------------------------------------
# A4b — engine fast path at scale.
# ---------------------------------------------------------------------------
def _measure_engine(nodes: int, fastpath: bool):
    """Wall-clock one MPICH 64 B allgather point at ``nodes`` × 18."""
    params = broadwell_opa(nodes=nodes, ppn=18)
    t0 = time.perf_counter()
    point = bench_collective("MPICH", "allgather", 64, params,
                             warmup=1, iters=2, fastpath=fastpath)
    return time.perf_counter() - t0, point


@pytest.mark.benchmark(group="a4")
def test_a4_engine_fast_path_speedup(benchmark):
    """The macro-event fast path must (a) reproduce the reference
    event path's simulated latencies *exactly*, and (b) beat it on
    wall-clock at 64+ nodes, where per-message bookkeeping dominates.

    The wall-clock floor is deliberately conservative (shared CI
    runners): locally the fused pt2pt path runs ~1.3–1.5× the
    reference path, and ~1.7× the pre-PR event loop end-to-end (the
    engine rewrite — calendar queue, tuple-dispatched wakes, slotted
    events, bucketed matching — also sped the reference path up).
    Both sides run in this process, so the ratio is noise-robust.
    """
    def run():
        out = {}
        for nodes in (64, 128):
            fast_wall, fast_pt = _measure_engine(nodes, fastpath=True)
            slow_wall, slow_pt = _measure_engine(nodes, fastpath=False)
            out[nodes] = (fast_wall, slow_wall, fast_pt, slow_pt)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["A4b engine fast path: MPICH allgather 64 B, ppn=18"]
    report = {}
    for nodes, (fast_wall, slow_wall, fast_pt, slow_pt) in results.items():
        lines.append(
            f"  N={nodes:4d}: fast {fast_wall:6.2f}s, reference "
            f"{slow_wall:6.2f}s  ->  {slow_wall / fast_wall:4.2f}x wall "
            f"(simulated {fast_pt.latency_us:.2f} us both paths)"
        )
        report[str(nodes)] = {
            "fast_wall_s": fast_wall, "reference_wall_s": slow_wall,
            "latency_us": fast_pt.latency_us,
        }
    save_result("a4_engine_fast_path", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a4_engine_fast_path.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    for nodes, (fast_wall, slow_wall, fast_pt, slow_pt) in results.items():
        # (a) exactness: the fast path is an engine optimisation, not
        # a model change — per-iteration simulated times are identical.
        assert fast_pt.iterations == slow_pt.iterations, \
            f"N={nodes}: fast path changed simulated time"
        # (b) speed: strictly faster, with headroom for runner noise.
        assert slow_wall / fast_wall >= 1.15, \
            f"N={nodes}: fast path only {slow_wall / fast_wall:.2f}x"
