"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_*.py`` regenerates one table/figure of the paper
(see DESIGN.md §4).  Conventions:

* the experiment body runs once inside ``benchmark.pedantic(…,
  rounds=1)`` so the files work both as ``pytest benchmarks/`` and as
  ``pytest benchmarks/ --benchmark-only``;
* every experiment prints its paper-style table and also writes it to
  ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote
  it;
* full-scale experiments use the paper's 128-node × 18-ppn machine;
  experiments whose baselines would need hours of simulated-message
  processing at that scale (large-message ring allgathers) state their
  reduced scale in the file docstring and in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


def save_records(name: str, records) -> None:
    """Persist BenchRecords under benchmarks/results/<name>.records.json.

    The schema-validated companion to :func:`save_result`: text tables
    are for EXPERIMENTS.md, records are for ``python -m repro report``.
    """
    from repro.bench.record import write_records

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.records.json"
    write_records(path, records)
    print(f"[saved {len(records)} records to "
          f"benchmarks/results/{name}.records.json]")


def bench_scale() -> str:
    """'full' (paper scale) unless REPRO_BENCH_SCALE=small is set."""
    return os.environ.get("REPRO_BENCH_SCALE", "full")
