"""A9 — Sensitivity to process skew (paper §1's synchronization worry).

The paper warns that a naive PiP port suffers from "the potential
negative impact of unnecessary process synchronization".  Synchronising
schedules amplify *skew*: if ranks enter a collective at staggered
times, every barrier/round waits for the last arrival.  This ablation
injects deterministic per-rank compute skew (uniform in [0, S]) before
each collective and measures the latency inflation per design.

Expected physics, asserted:

* with skew amplitude S, every design inflates by roughly S (the last
  arrival gates completion) — inflation/S in [0.6, 1.6];
* PiP-MColl *absorbs* skew no worse than the flat baseline despite its
  extra node barriers (the barriers sit on the same critical path the
  rounds already impose — multi-object sync is not "unnecessary");
* PiP-MColl stays fastest under skew.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import _buffers, _invoke
from repro.machine import broadwell_opa
from repro.mpilibs import make_library

from conftest import save_result

NODES, PPN, NBYTES = 32, 8, 64
SKEWS_US = (0.0, 5.0, 20.0)
SEED = 20230616


def _time(lib_name: str, skew_us: float) -> float:
    lib = make_library(lib_name)
    world = lib.make_world(broadwell_opa(nodes=NODES, ppn=PPN),
                           functional=False)
    size = world.comm_world.size
    algo = lib.wrapped("allgather", NBYTES, size)
    rng = random.Random(SEED)
    skews = [rng.uniform(0.0, skew_us) * 1e-6 for _ in range(size)]

    def program(ctx):
        bufs = _buffers(ctx, "allgather", NBYTES, size, 0)
        lats = []
        for _ in range(2):
            yield from ctx.hard_sync()
            start = ctx.now
            if skews[ctx.rank]:
                yield from ctx.compute(skews[ctx.rank])
            yield from _invoke(algo, ctx, bufs, "allgather", 0)
            lats.append(ctx.now - start)
        return lats[-1]

    return max(world.run(program)) * 1e6


def _run():
    return {
        (lib, skew): _time(lib, skew)
        for lib in ("MPICH", "PiP-MColl")
        for skew in SKEWS_US
    }


@pytest.mark.benchmark(group="a9")
def test_a9_skew_sensitivity(benchmark):
    grid = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"A9 skew sensitivity: allgather {NBYTES} B, {NODES}x{PPN} (us)"]
    inflation = {}
    for lib in ("MPICH", "PiP-MColl"):
        base = grid[(lib, 0.0)]
        row = [f"  {lib:10s} base {base:8.2f}"]
        for skew in SKEWS_US[1:]:
            extra = grid[(lib, skew)] - base
            inflation[(lib, skew)] = extra
            row.append(f"skew {skew:4.0f} us -> +{extra:7.2f}")
        lines.append("  ".join(row))
    save_result("a9_skew_sensitivity", "\n".join(lines))

    for lib in ("MPICH", "PiP-MColl"):
        for skew in SKEWS_US[1:]:
            ratio = inflation[(lib, skew)] / skew
            assert 0.6 <= ratio <= 1.6, (
                f"{lib} inflation {ratio:.2f}×skew out of the "
                "last-arrival-gates band"
            )
    # The multi-object design absorbs skew no worse than the baseline.
    for skew in SKEWS_US[1:]:
        assert inflation[("PiP-MColl", skew)] <= \
            1.25 * inflation[("MPICH", skew)]
    # And it stays fastest under the largest skew.
    assert grid[("PiP-MColl", 20.0)] < grid[("MPICH", 20.0)]
