"""A11 — Empirical autotuning closes the loop on Fig. 2.

The tuner subsystem (``repro.tuner``, docs/TUNING.md) searches the
per-collective configuration space — algorithm family, Bruck radix via
the sender count, pipeline segment — and compiles the winners into a
``TunedLibrary``.  This experiment runs that whole pipeline on the
Fig. 2 allgather sweep (16 B–512 B) and pins down three claims:

* **the search recovers the paper's design point** — at the full
  128 × 18 scale the winning allgather configuration at every size is
  ``mcoll_bruck`` with ``senders = ppn``, i.e. the radix-``(P + 1)``
  multi-object Bruck schedule of §2 (``B_k = P + 1``);
* **tuned never loses to stock** — per sweep cell, the compiled
  library's latency is ≤ PiP-MColl's (the base library rides along as
  a candidate, so regressions are impossible by construction) and
  beats MPICH outright;
* **golden agreement** — the tuned 64 B headline points match the
  keys committed in ``benchmarks/golden.json`` exactly (search →
  compile → run is deterministic end to end).

Small scale (``REPRO_BENCH_SCALE=small``) runs the 16 × 18 geometry
with an exhaustive search; full scale adds the paper's 128 × 18 with
successive halving.  The sweep grid lands in
``benchmarks/results/a11_tuned_vs_stock.records.json`` for
``python -m repro report``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import format_paper_table, run_sweep
from repro.machine import broadwell_opa
from repro.tuner import compile_db, make_cells, search

from conftest import bench_scale, save_records, save_result

#: Fig. 2's x-axis (per-process bytes)
SIZES = [16, 32, 64, 128, 256, 512]

STOCK = "PiP-MColl"
FLAT = "MPICH"

#: (nodes, ppn, strategy) — exhaustive is affordable at 288 ranks;
#: the 2304-rank geometry races rungs at 32/64 nodes first.
GEOMETRIES = [(16, 18, "exhaustive"), (128, 18, "halving")]

#: tuned headline keys pinned in benchmarks/golden.json
GOLDEN_TOLERANCE = 0.001


def _geometries():
    if bench_scale() == "small":
        return GEOMETRIES[:1]
    return GEOMETRIES


def _run():
    out = {}
    for nodes, ppn, strategy in _geometries():
        db = search(make_cells("allgather", SIZES, nodes, ppn),
                    base_library=STOCK, strategy=strategy,
                    seed=0, workers=4)
        tuned = compile_db(db)
        params = broadwell_opa(nodes=nodes, ppn=ppn)
        sweep = run_sweep("allgather", SIZES, params,
                          libraries=[tuned, STOCK, FLAT],
                          warmup=1, iters=1)
        out[(nodes, ppn)] = (db, tuned, sweep)
    return out


@pytest.mark.benchmark(group="a11")
def test_a11_tuned_vs_stock(benchmark):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    tables, records = [], []
    for (nodes, ppn), (db, tuned, sweep) in runs.items():
        tables.append(f"A11 tuned vs stock: allgather, {nodes}x{ppn}\n"
                      + format_paper_table(sweep))
        records.extend(
            point.to_record(experiment="a11")
            for (_lib, _nbytes), point in sorted(sweep.points.items()))
    save_result("a11_tuned_vs_stock", "\n\n".join(tables))
    save_records("a11_tuned_vs_stock", records)

    golden = json.loads(
        (Path(__file__).parent / "golden.json").read_text())

    for (nodes, ppn), (db, tuned, sweep) in runs.items():
        name = tuned.profile.name

        # Tuned never loses to stock, per cell, and beats flat MPICH.
        for nbytes in SIZES:
            t = sweep.latency(name, nbytes)
            s = sweep.latency(STOCK, nbytes)
            m = sweep.latency(FLAT, nbytes)
            assert t <= s * (1 + 1e-9), \
                f"{nodes}x{ppn} {nbytes}B: tuned {t:.3f}us > stock {s:.3f}us"
            assert t < m, \
                f"{nodes}x{ppn} {nbytes}B: tuned {t:.3f}us >= MPICH {m:.3f}us"

        # The search rediscovers the paper's multi-object design point:
        # radix B_k = P + 1 (senders = ppn) at every size of the sweep.
        for nbytes in SIZES:
            best = db.cells[f"allgather/{nbytes}B@{nodes}x{ppn}"].best
            assert best == {"algorithm": "mcoll_bruck", "senders": ppn}, \
                f"{nodes}x{ppn} {nbytes}B: winner {best}"

        # Golden agreement at the 64 B headline point.
        key = f"{name}/allgather/64B@{nodes}x{ppn}"
        fresh = sweep.latency(name, 64)
        want = golden[key]
        assert abs(fresh - want) <= GOLDEN_TOLERANCE * want, \
            f"{key}: {fresh:.3f}us drifted from golden {want:.3f}us"

        # The DB's recorded winner latency is exactly what the compiled
        # library reproduces (search -> compile -> run determinism).
        cell = db.cells[f"allgather/64B@{nodes}x{ppn}"]
        assert fresh == pytest.approx(cell.best_latency_us, rel=1e-12)
