"""A7 — Message-rate microbenchmark (the abstract's headline metric).

The paper claims PiP-MColl "maximizes intra- and inter-node message
rate".  The mechanism: one core can inject at most ``1/o`` messages
per second (o = per-message injection overhead); the NIC itself
sustains 97 M/s.  A single-leader design is core-bound; concurrent
senders scale the rate until the adapter gap ``g`` caps it.

Measured here: aggregate eager message rate from one node to another
vs the number of concurrently sending ranks.

Shape asserted:
* rate with 1 sender ≈ 1/(o + dispatch + copy) — core-bound;
* rate grows ≈ linearly to 8 senders (within 25 %);
* rate never exceeds the adapter's 97 Mmsg/s.
"""

from __future__ import annotations

import pytest

from repro.machine import broadwell_opa
from repro.runtime import World

from conftest import save_result

MSGS_PER_SENDER = 200
NBYTES = 8


def _rate(senders: int) -> float:
    params = broadwell_opa(nodes=2, ppn=18)
    world = World(params, intra="pip", functional=False)

    def program(ctx):
        buf = ctx.alloc(NBYTES)
        if ctx.node_id == 0 and ctx.local_rank < senders:
            yield from ctx.hard_sync()
            t0 = ctx.now
            reqs = []
            for i in range(MSGS_PER_SENDER):
                req = yield from ctx.isend(
                    buf.view(), dst=ctx.cluster.global_rank(1, ctx.local_rank),
                    tag=i)
                reqs.append(req)
            yield from ctx.waitall(reqs)
            return ctx.now - t0
        if ctx.node_id == 1 and ctx.local_rank < senders:
            yield from ctx.hard_sync()
            for i in range(MSGS_PER_SENDER):
                yield from ctx.recv(buf.view(),
                                    src=ctx.cluster.global_rank(0, ctx.local_rank),
                                    tag=i)
            return None
        yield from ctx.hard_sync()
        return None

    results = world.run(program)
    elapsed = max(t for t in results if t is not None)
    return senders * MSGS_PER_SENDER / elapsed


def _run():
    return {n: _rate(n) for n in (1, 2, 4, 8, 18)}


@pytest.mark.benchmark(group="a7")
def test_a7_message_rate(benchmark):
    rates = benchmark.pedantic(_run, rounds=1, iterations=1)
    params = broadwell_opa()
    lines = ["A7 injection message rate, node→node, 8 B eager (Mmsg/s)"]
    for n, rate in rates.items():
        lines.append(f"  {n:3d} senders: {rate / 1e6:7.2f} M/s")
    save_result("a7_message_rate", "\n".join(lines))

    # One sender is core-bound: ≈ 1/(dispatch + o + copy(8B)).
    per_msg = (params.cpu.dispatch_overhead + params.nic.inject_overhead
               + params.memory.copy_time(NBYTES))
    assert rates[1] == pytest.approx(1.0 / per_msg, rel=0.1)
    # Concurrency scales the rate near-linearly through 8 senders.
    assert rates[8] == pytest.approx(8 * rates[1], rel=0.25)
    assert rates[18] > rates[8]
    # The adapter is the ceiling.
    assert max(rates.values()) <= params.nic.message_rate * 1.01
