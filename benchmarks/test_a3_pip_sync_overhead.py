"""A3 — Ablation: the naive PiP-MPICH size-sync overhead (paper §3).

The paper explains PiP-MPICH's occasional last place: "synchronization
overhead inside PiP, which requires message size synchronization
before communications."  This experiment isolates that tax: identical
MPICH algorithms on identical machines, PiP transport with and without
the per-message size sync, plus stock MPICH for reference.

Shape asserted, for small-message gather/bcast/allgather on one node:
* the size-synced transport is strictly slower than raw PiP;
* the size-synced transport is slower than stock MPICH's POSIX path
  at 16 B (the "sometimes the worst" observation);
* raw PiP still beats MPICH (so the loss is the sync, not PiP).
"""

from __future__ import annotations

import pytest

from repro.bench import bench_collective
from repro.machine import broadwell_opa, single_node
from repro.mpilibs import make_library

from conftest import save_result


class _RawPipMpich(type(make_library("PiP-MPICH"))):
    """MPICH's table over PiP *without* the size sync (ablation arm)."""

    from repro.mpilibs.base import LibraryProfile as _LP

    profile = _LP(
        name="PiP-MPICH(nosync)",
        intra="pip",
        call_overhead=1.5e-7,
        description="ablation: naive PiP port minus the size handshake",
    )


def _run():
    params = single_node(ppn=18)
    rows = {}
    for coll in ("gather", "bcast", "allgather"):
        for lib in ("MPICH", "PiP-MPICH", _RawPipMpich()):
            point = bench_collective(lib, coll, 16, params, warmup=1, iters=1)
            rows[(coll, point.library)] = point.latency_us
    return rows


@pytest.mark.benchmark(group="a3")
def test_a3_pip_sync_overhead(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["A3 PiP-MPICH size-sync tax: 16 B collectives, 1 node x 18 ranks (us)"]
    for (coll, lib), lat in sorted(rows.items()):
        lines.append(f"  {coll:10s} {lib:18s} {lat:8.2f}")
    save_result("a3_pip_sync_overhead", "\n".join(lines))

    for coll in ("gather", "bcast", "allgather"):
        synced = rows[(coll, "PiP-MPICH")]
        raw = rows[(coll, "PiP-MPICH(nosync)")]
        stock = rows[(coll, "MPICH")]
        assert synced > raw, f"{coll}: sync tax vanished"
        assert synced > stock, f"{coll}: naive PiP should lose to MPICH at 16 B"
        assert raw < stock, f"{coll}: raw PiP should beat MPICH"
