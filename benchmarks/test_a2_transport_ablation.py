"""A2 — Ablation: intra-node transport cost structure (paper §1).

One node, 18 ranks, identical MPICH-style algorithms; only the
transport changes.  This is the paper's motivation table: POSIX-SHMEM's
double copy hurts as messages grow, CMA's syscall and XPMEM's
attach/lookup hurt when messages are small, PiP pays neither, and the
naive size-synced PiP (PiP-MPICH's transport) gives back the small-
message win.

Shape asserted:
* small (64 B) bcast: pip fastest; pip_sizesync slower than posix
  (the paper's "PiP-MPICH sometimes worst");
* large (256 KiB) bcast: posix loses to every single-copy transport;
* pip ≤ every other transport at both ends.
"""

from __future__ import annotations

import pytest

from repro.collectives import bcast_binomial
from repro.machine import single_node
from repro.runtime import World
from repro.transport import available_transports

from conftest import save_result


def _time_bcast(transport, nbytes):
    world = World(single_node(ppn=18), intra=transport, functional=False)

    def program(ctx):
        buf = ctx.alloc(nbytes)
        lats = []
        for _ in range(2):  # warmup + measure (amortise attach caches)
            yield from ctx.hard_sync()
            t0 = ctx.now
            yield from bcast_binomial(ctx, buf.view(), root=0)
            lats.append(ctx.now - t0)
        return lats[-1]

    return max(world.run(program)) * 1e6


def _run():
    sizes = (64, 262144)
    table = {
        (t, n): _time_bcast(t, n)
        for t in available_transports()
        for n in sizes
    }
    return sizes, table


@pytest.mark.benchmark(group="a2")
def test_a2_transport_ablation(benchmark):
    sizes, table = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["A2 transport ablation: binomial bcast, 1 node x 18 ranks (us)"]
    for transport in available_transports():
        cells = "  ".join(f"{table[(transport, n)]:10.2f}" for n in sizes)
        lines.append(f"  {transport:13s} {cells}   ({sizes[0]} B, {sizes[1] // 1024} KiB)")
    save_result("a2_transport_ablation", "\n".join(lines))

    small, large = sizes
    # PiP never loses, at either end of the size range.
    for other in ("posix_shmem", "cma", "xpmem", "pip_sizesync"):
        assert table[("pip", small)] <= table[(other, small)], other
        assert table[("pip", large)] <= table[(other, large)], other
    # Small: the naive size-synced PiP gives the win back entirely.
    assert table[("pip_sizesync", small)] > table[("posix_shmem", small)]
    # Large: double copy loses to every single-copy transport.
    for single_copy in ("cma", "xpmem", "pip"):
        assert table[("posix_shmem", large)] > table[(single_copy, large)]
