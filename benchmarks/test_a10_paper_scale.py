"""A10 — Paper-scale engine acceptance: Fig. 2 at full 2304 ranks.

The macro-event fast path (calendar-queue scheduler, zero-copy buffer
views, batched eager completion, hash-bucketed matching) exists so the
paper's full machine — 128 nodes × 18 ppn = 2304 simulated ranks — is
a routine test-suite citizen rather than an overnight job.  This
experiment pins that down three ways:

* **wall-clock budget** — every library model completes the Fig. 2
  allgather sweep (16 B–512 B) in under 120 s of real time;
* **golden agreement** — the 64 B headline point matches the
  paper-scale keys committed in ``benchmarks/golden.json`` (the
  simulator is deterministic; drift is a model change, intended or
  not — see docs/TESTING.md for re-blessing);
* **figure shape** — PiP-MColl stays fastest at every size, as in
  Fig. 2.

Timings (wall seconds, simulated µs, events/s per library) are saved
to ``benchmarks/results/a10_paper_scale.json`` — the CI perf gate
uploads this file as its artifact.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.bench import bench_collective
from repro.bench.regression import PAPER_GRID, _key
from repro.machine import broadwell_opa

from conftest import RESULTS_DIR, save_result

#: Fig. 2's x-axis (per-process bytes)
SIZES = [16, 32, 64, 128, 256, 512]

#: real seconds each library gets for its full-scale sweep
WALL_BUDGET_S = 120.0

#: paper-scale golden keys are exact (deterministic simulator); the
#: CI gate re-checks the same numbers at ±10 % for timing JSON drift
GOLDEN_TOLERANCE = 0.001

LIBRARIES = [entry[4] for entry in PAPER_GRID]


def _run():
    params = broadwell_opa()  # the paper's 128 × 18 = 2304 ranks
    report = {}
    for lib in LIBRARIES:
        t0 = time.perf_counter()
        points = {
            nbytes: bench_collective(lib, "allgather", nbytes, params,
                                     warmup=1, iters=1)
            for nbytes in SIZES
        }
        wall = time.perf_counter() - t0
        report[lib] = {
            "wall_s": wall,
            "latency_us": {str(n): p.latency_us for n, p in points.items()},
        }
    return report


@pytest.mark.benchmark(group="a10")
def test_a10_paper_scale(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [f"A10 paper scale: allgather sweep, 128x18 = 2304 ranks "
             f"(budget {WALL_BUDGET_S:.0f}s/library)"]
    for lib, entry in report.items():
        lat = ", ".join(f"{n}B {entry['latency_us'][str(n)]:8.2f}us"
                        for n in SIZES)
        lines.append(f"  {lib:10s} wall {entry['wall_s']:6.1f}s | {lat}")
    save_result("a10_paper_scale", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a10_paper_scale.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    # Wall-clock budget: paper scale is routine, per library.
    for lib, entry in report.items():
        assert entry["wall_s"] < WALL_BUDGET_S, \
            f"{lib}: {entry['wall_s']:.1f}s blows the {WALL_BUDGET_S}s budget"

    # Golden agreement at the 64 B headline point.
    golden = json.loads(
        (RESULTS_DIR.parent / "golden.json").read_text())
    for entry in PAPER_GRID:
        lib = entry[4]
        fresh = report[lib]["latency_us"]["64"]
        want = golden[_key(entry)]
        assert abs(fresh - want) <= GOLDEN_TOLERANCE * want, \
            f"{_key(entry)}: {fresh:.3f}us drifted from golden {want:.3f}us"

    # Fig. 2 shape: PiP-MColl fastest everywhere.
    for nbytes in SIZES:
        ours = report["PiP-MColl"]["latency_us"][str(nbytes)]
        for lib in LIBRARIES:
            if lib != "PiP-MColl":
                assert ours < report[lib]["latency_us"][str(nbytes)], \
                    f"PiP-MColl lost at {nbytes}B to {lib}"
