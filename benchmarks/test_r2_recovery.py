"""R2 — Crash recovery: time-to-detect / time-to-recover / slowdown.

Every cell crashes ranks mid-run under ``ft=True`` and reduces the
committed-recovery timelines to the paper-style triple (see
``repro.ft.bench``).  Two scales:

* **small** (``REPRO_BENCH_SCALE=small``, the CI ``ft`` job): a
  library × collective matrix at 4×4 plus a staggered double-crash
  cell — every cell must complete with no watchdog firing and no
  delivery error escaping;
* **full** (default): the paper's 128×18 machine, allreduce at 64 B,
  one crash absorbed by 2303 survivors (rank scope) and by 2286
  survivors after node-scope condemnation (PiP).  The headline
  detect/recover seconds are pinned in ``benchmarks/golden.json``
  (``ft/...`` keys) — the simulator is deterministic, so drift means
  the recovery protocol changed.

Recovery metrics are also written as JSON
(``benchmarks/results/r2_recovery.json``) for the CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.ft.bench import recovery_point, recovery_report
from repro.machine import broadwell_opa, small_test

from conftest import RESULTS_DIR, bench_scale, save_result

GOLDEN = Path(__file__).parent / "golden.json"

SMALL_LIBS = ("MPICH", "PiP-MColl")
SMALL_COLLECTIVES = ("allreduce", "allgather", "bcast", "alltoall")
SEED = 20230616

#: full-scale cells: (library, survivors after one crash of rank 7)
FULL_CELLS = (("MPICH", 2303), ("PiP-MColl", 2286))


def _dump_metrics(name: str, points) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps([p.as_dict() for p in points], indent=1)
                    + "\n")
    print(f"[saved recovery metrics to benchmarks/results/{name}.json]")


def _small_matrix():
    points = []
    for lib in SMALL_LIBS:
        for coll in SMALL_COLLECTIVES:
            points.append(recovery_point(
                lib, coll, 64, small_test(nodes=4, ppn=4),
                crash_ranks=[5], crash_at=2e-6, rounds=6, seed=SEED))
    # Staggered double crash: the second lands mid-recovery.
    points.append(recovery_point(
        "MPICH", "allreduce", 64, small_test(nodes=4, ppn=4),
        crash_ranks=[5, 9], crash_at=2e-6, rounds=6, seed=SEED))
    return points


@pytest.mark.benchmark(group="r2")
def test_r2_recovery_small_matrix(benchmark):
    points = benchmark.pedantic(_small_matrix, rounds=1, iterations=1)
    save_result("r2_recovery_small", recovery_report(points))
    _dump_metrics("r2_recovery_small", points)

    for p in points:
        cell = f"{p.library}/{p.collective}/x{len(p.crash_ranks)}"
        assert p.completed, f"{cell}: {p.error}"
        assert p.recoveries >= 1, f"{cell}: no recovery committed"
        assert p.detect_s is not None and p.detect_s > 0, cell
        assert p.recover_s is not None and p.recover_s >= p.detect_s, cell
        # Node scope (PiP) loses the whole node, rank scope one rank.
        expect_dead = (4 if p.library.startswith("PiP") else 1) \
            * len(p.crash_ranks)
        assert p.survivors == 16 - expect_dead, cell


@pytest.mark.skipif(bench_scale() == "small",
                    reason="paper-scale recovery: one functional "
                           "128x18 run per library (~10-15 min each; "
                           "supervised rounds pay a 2303-report "
                           "agreement gather)")
@pytest.mark.benchmark(group="r2")
@pytest.mark.parametrize("library,survivors", FULL_CELLS,
                         ids=[c[0] for c in FULL_CELLS])
def test_r2_recovery_paper_scale(benchmark, library, survivors):
    def _run():
        # crash_at=3e-3 lands mid-round-1: round 0 (ending ~2.49 ms,
        # agreement-dominated) is the clean "pre" sample, rounds 2-3
        # run shrunken and degraded.  4 rounds keep the ~2.5 min/round
        # wall cost of full-scale supervised rounds in check.
        return recovery_point(
            library, "allreduce", 64, broadwell_opa(nodes=128, ppn=18),
            crash_ranks=[7], crash_at=3e-3, rounds=4, seed=SEED)

    point = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result(f"r2_recovery_full_{library}", recovery_report([point]))
    _dump_metrics(f"r2_recovery_full_{library}", [point])

    assert point.completed, point.error
    assert point.survivors == survivors
    assert point.detect_s is not None and point.recover_s is not None
    assert point.slowdown is not None and point.slowdown > 1.0, \
        "post-shrink rounds must exist and run degraded (slower)"

    golden = json.loads(GOLDEN.read_text())
    for metric in ("detect_s", "recover_s"):
        key = f"ft/{library}/allreduce/64B@128x18/{metric}"
        assert key in golden, f"golden key {key} missing"
        fresh = getattr(point, metric)
        assert fresh == pytest.approx(golden[key], rel=1e-3), \
            f"{key}: golden {golden[key]} vs fresh {fresh}"
