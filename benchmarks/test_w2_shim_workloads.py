"""W2 — Trace-driven shim workloads pinned against golden keys.

Two routes to the same application patterns, both gated:

* **trace replay** — the EmbASI-style ``bcast_storm`` and the
  data-parallel ``training_step_mix`` cadence replayed call-by-call
  under each library at 8 × 4; and
* **shim execution** — the *same* bcast-storm written as a synchronous
  mpi4py program (the SNIPPETS.md idiom) run unmodified through
  ``repro.shim``, where every object broadcast costs a header + payload
  pair on the simulated wire.

The simulator is deterministic, so every headline number is pinned in
``benchmarks/golden.json`` under ``w2/...`` keys at rel=1e-3 — drift
means the collective models (or the shim's framing protocol) changed.
Re-bless after intended changes with::

    PYTHONPATH=src python - <<'EOF'
    from test_w2_shim_workloads import capture_golden
    capture_golden()
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import shim
from repro.bench.workloads import bcast_storm, replay_trace, training_step_mix
from repro.machine import broadwell_opa

from conftest import save_result

GOLDEN = Path(__file__).parent / "golden.json"

NODES, PPN = 8, 4
LIBRARIES = ("MPICH", "PiP-MPICH", "PiP-MColl")

TRACES = {
    "bcast_storm": bcast_storm(n_keys=16, nrows=64, ncols=64),
    "training_step_mix": training_step_mix(steps=4),
}

N_KEYS, NROWS, NCOLS = 8, 32, 32


def storm_program():
    """The EmbASI matrix-shipping storm as a plain mpi4py function:
    shape header, key table, one dense matrix bcast per key, one
    trailing integer — all through the shim's pickle/buffer protocols."""
    from repro.shim import MPI

    comm = MPI.COMM_WORLD
    rank = comm.Get_rank()

    shape = np.array([NROWS, NCOLS], dtype=np.int16)
    comm.Bcast([shape, MPI.INT16_T], root=0)

    keys = np.array([[i, i + 1] for i in range(N_KEYS)], dtype=np.int16)
    comm.Bcast([keys, MPI.INT16_T], root=0)

    store = {}
    buf = np.empty((NROWS, NCOLS), dtype=np.float64)
    for i in range(N_KEYS):
        if rank == 0:
            buf[:] = float(i)
        comm.Bcast([buf, MPI.DOUBLE], root=0)
        store[tuple(int(x) for x in keys[i])] = buf.copy()

    epoch = comm.bcast(42 if rank == 0 else None, root=0)
    assert epoch == 42
    return float(sum(m.sum() for m in store.values()))


def _replay_grid():
    params = broadwell_opa(nodes=NODES, ppn=PPN)
    return {
        trace_key: {lib: replay_trace(lib, trace, params)
                    for lib in LIBRARIES}
        for trace_key, trace in TRACES.items()
    }


def _shim_grid():
    elapsed_us = {}
    for lib in LIBRARIES:
        result = shim.run(storm_program, nodes=NODES, ppn=PPN,
                          library=lib, trace=False)
        expect = float(sum(float(i) * NROWS * NCOLS for i in range(N_KEYS)))
        assert result.values == [expect] * (NODES * PPN)
        elapsed_us[lib] = result.elapsed * 1e6
    return elapsed_us


def _fresh_keys():
    keys = {}
    for trace_key, row in _replay_grid().items():
        for lib, res in row.items():
            keys[f"w2/{lib}/{trace_key}@{NODES}x{PPN}"] = res.total_us
    for lib, us in _shim_grid().items():
        keys[f"w2/shim/bcast_storm@{NODES}x{PPN}/{lib}"] = us
    return keys


def capture_golden():
    """Re-bless the w2/ golden keys (preserving everything else)."""
    golden = json.loads(GOLDEN.read_text())
    golden = {k: v for k, v in golden.items() if not k.startswith("w2/")}
    golden.update(_fresh_keys())
    GOLDEN.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"captured {len(_fresh_keys())} w2/ keys")


@pytest.mark.benchmark(group="w2")
def test_w2_trace_replay_vs_golden(benchmark):
    grids = benchmark.pedantic(_replay_grid, rounds=1, iterations=1)
    golden = json.loads(GOLDEN.read_text())

    lines = [f"W2 trace-driven workloads, {NODES}x{PPN} (total comm time, us)"]
    for trace_key, row in grids.items():
        lines.append(f"  {TRACES[trace_key].name}:")
        for lib in LIBRARIES:
            lines.append(f"    {lib:10s} {row[lib].total_us:10.1f}")
        ours = row["PiP-MColl"].total_us
        best_other = min(r.total_us for lib, r in row.items()
                         if lib != "PiP-MColl")
        lines.append(f"    -> PiP-MColl speedup vs best other: "
                     f"{best_other / ours:5.2f}x")
        assert ours < best_other, trace_key
    save_result("w2_trace_replay", "\n".join(lines))

    for trace_key, row in grids.items():
        for lib, res in row.items():
            key = f"w2/{lib}/{trace_key}@{NODES}x{PPN}"
            assert key in golden, f"golden key {key} missing — capture it"
            assert res.total_us == pytest.approx(golden[key], rel=1e-3), \
                f"{key}: golden {golden[key]} vs fresh {res.total_us}"


@pytest.mark.benchmark(group="w2")
def test_w2_shim_storm_vs_golden(benchmark):
    elapsed_us = benchmark.pedantic(_shim_grid, rounds=1, iterations=1)
    golden = json.loads(GOLDEN.read_text())

    lines = [f"W2 shim-executed bcast storm (SNIPPETS idiom), "
             f"{NODES}x{PPN} (end-to-end, us)"]
    for lib in LIBRARIES:
        lines.append(f"  {lib:10s} {elapsed_us[lib]:10.1f}")
    lines.append(f"  -> PiP-MColl speedup vs MPICH: "
                 f"{elapsed_us['MPICH'] / elapsed_us['PiP-MColl']:5.2f}x")
    save_result("w2_shim_storm", "\n".join(lines))

    assert elapsed_us["PiP-MColl"] < min(
        us for lib, us in elapsed_us.items() if lib != "PiP-MColl")
    for lib, us in elapsed_us.items():
        key = f"w2/shim/bcast_storm@{NODES}x{PPN}/{lib}"
        assert key in golden, f"golden key {key} missing — capture it"
        assert us == pytest.approx(golden[key], rel=1e-3), \
            f"{key}: golden {golden[key]} vs fresh {us}"


def test_w2_shim_storm_deterministic():
    """Two identical shim runs produce bit-equal simulated time (the
    property that makes pinning shim numbers in golden.json sane)."""
    a = shim.run(storm_program, nodes=NODES, ppn=PPN, trace=False)
    b = shim.run(storm_program, nodes=NODES, ppn=PPN, trace=False)
    assert a.elapsed == b.elapsed
