"""A5 — Scaling: more ranks per node → higher radix → bigger win.

The multi-object radix is ``B_k = P + 1``: every extra local rank is
an extra concurrent NIC driver *and* a bigger Bruck base.  Sweeping
ppn at fixed node count shows the design's defining property: baselines
get *slower* with more ranks per node (more ranks in the flat
schedule), PiP-MColl gets *faster* or holds (fewer rounds, more
injectors).

Shape asserted at 32 nodes, 64 B allgather, ppn ∈ {2, 6, 18}:
* speedup grows monotonically with ppn;
* PiP-MColl's latency grows far more slowly than the baseline's as
  ppn rises (total data grows linearly with ppn for both, but the
  multi-object design adds injectors at the same rate).
"""

from __future__ import annotations

import pytest

from repro.bench import bench_collective
from repro.machine import broadwell_opa

from conftest import save_result

PPNS = [2, 6, 18]
NODES = 32


def _run():
    rows = {}
    for ppn in PPNS:
        params = broadwell_opa(nodes=NODES, ppn=ppn)
        base = bench_collective("MPICH", "allgather", 64, params,
                                warmup=1, iters=1)
        ours = bench_collective("PiP-MColl", "allgather", 64, params,
                                warmup=1, iters=1)
        rows[ppn] = (base.latency_us, ours.latency_us)
    return rows


@pytest.mark.benchmark(group="a5")
def test_a5_ppn_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"A5 ppn scaling: allgather 64 B, {NODES} nodes (us)"]
    ratios = []
    for ppn in PPNS:
        base, ours = rows[ppn]
        ratios.append(base / ours)
        lines.append(
            f"  ppn={ppn:3d} (radix {ppn + 1:3d}): MPICH {base:9.2f}, "
            f"PiP-MColl {ours:9.2f}  ->  {base / ours:5.2f}x"
        )
    save_result("a5_ppn_scaling", "\n".join(lines))

    for lo, hi in zip(ratios, ratios[1:]):
        assert hi > lo, f"speedup did not grow with ppn: {ratios}"
    base_growth = rows[PPNS[-1]][0] / rows[PPNS[0]][0]
    ours_growth = rows[PPNS[-1]][1] / rows[PPNS[0]][1]
    assert ours_growth < 0.6 * base_growth, (
        f"PiP-MColl latency grew almost as fast as the baseline's "
        f"({ours_growth:.2f}x vs {base_growth:.2f}x over ppn "
        f"{PPNS[0]}→{PPNS[-1]})"
    )
