"""A1 — Ablation: multi-object vs single-object, transport held fixed.

The paper's §2 argues the multi-object design beats single-object
techniques *independently of* the copy-cost story.  Both arms here run
over the identical PiP transport; only the schedule differs:

* single-object: leader-based hierarchical allgather (one rank per
  node on the NIC), and binomial scatter (one sender);
* multi-object: PiP-MColl's radix-(P+1) Bruck / node-slab scatter.

Shape asserted: multi-object wins allgather at 64 B by ≥2× at paper
scale (round count log_{P+1} vs log₂ plus P-way injection), and wins
scatter (bounded margin — the root NIC wire is common to both).
"""

from __future__ import annotations

import pytest

from repro.collectives import hier_allgather, scatter_binomial
from repro.core import mcoll_allgather, mcoll_scatter
from repro.machine import broadwell_opa
from repro.runtime import World

from conftest import bench_scale, save_result


def _time_allgather(algo, nbytes, params):
    world = World(params, intra="pip", functional=False)

    def program(ctx):
        send = ctx.alloc(nbytes)
        recv = ctx.alloc(nbytes * ctx.size)
        yield from ctx.hard_sync()
        t0 = ctx.now
        yield from algo(ctx, send.view(), recv.view())
        return ctx.now - t0

    return max(world.run(program)) * 1e6


def _time_scatter(algo, nbytes, params):
    world = World(params, intra="pip", functional=False)

    def program(ctx):
        send = ctx.alloc(nbytes * ctx.size) if ctx.rank == 0 else None
        recv = ctx.alloc(nbytes)
        yield from ctx.hard_sync()
        t0 = ctx.now
        yield from algo(ctx, send.view() if send else None, recv.view(), root=0)
        return ctx.now - t0

    return max(world.run(program)) * 1e6


def _run():
    if bench_scale() == "small":
        params = broadwell_opa(nodes=16, ppn=6)
    else:
        params = broadwell_opa()
    rows = {}
    for nbytes in (64, 1024):
        rows[("allgather", "single-object", nbytes)] = _time_allgather(
            hier_allgather, nbytes, params)
        rows[("allgather", "multi-object", nbytes)] = _time_allgather(
            mcoll_allgather, nbytes, params)
        rows[("scatter", "single-object", nbytes)] = _time_scatter(
            scatter_binomial, nbytes, params)
        rows[("scatter", "multi-object", nbytes)] = _time_scatter(
            mcoll_scatter, nbytes, params)
    return params, rows


@pytest.mark.benchmark(group="a1")
def test_a1_multiobject_ablation(benchmark):
    params, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"A1 multi-object ablation (PiP transport fixed), {params.name}"]
    ratios = {}
    for coll in ("allgather", "scatter"):
        for nbytes in (64, 1024):
            single = rows[(coll, "single-object", nbytes)]
            multi = rows[(coll, "multi-object", nbytes)]
            ratios[(coll, nbytes)] = single / multi
            lines.append(
                f"  {coll:9s} {nbytes:5d} B: single {single:9.2f} us, "
                f"multi {multi:9.2f} us  ->  {single / multi:5.2f}x"
            )
    save_result("a1_multiobject_ablation", "\n".join(lines))

    assert ratios[("allgather", 64)] >= (2.0 if bench_scale() != "small" else 1.3)
    assert ratios[("scatter", 64)] > 1.0
    assert all(r > 1.0 for r in ratios.values())
