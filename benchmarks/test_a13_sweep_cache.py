"""A13 — Sweep-service perf gate: warm cache ≥ 5× over cold, bit-exact.

The sweep service exists so the paper's figures stop costing a full
re-simulation every time someone regenerates them.  This experiment
pins the contract on the A10 grid (Fig. 2's allgather sweep over the
paper lineup):

* **cold fill** — the sweep runs once against an empty
  content-addressed cache, writing every cell;
* **warm replay ≥ 5×** — the same sweep re-runs against the filled
  cache; it must be all hits, byte-identical in every BenchRecord,
  and at least ``MIN_SPEEDUP``× faster in wall-clock (file reads vs
  simulations; at paper scale the real ratio is orders of magnitude);
* **corruption recovery** — a cache entry is truncated mid-file; the
  next sweep detects it (corrupt counter), recomputes exactly that
  cell, and comes back byte-identical again — damage degrades to
  recomputation, never to wrong data.

Scale: ``REPRO_BENCH_SCALE=small`` drops to 16 × 6 so the experiment
smoke-runs anywhere; CI's service job runs it at the paper's 128 × 18.
Everything measured lands in ``benchmarks/results/
a13_sweep_cache.json`` and the records in ``a13_sweep_cache.records.
json`` — the CI service job uploads both next to the cache directory
itself.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import run_sweep
from repro.machine import broadwell_opa
from repro.service import ResultCache

from conftest import RESULTS_DIR, bench_scale, save_result, save_records

#: Fig. 2's x-axis (per-process bytes)
SIZES = [16, 32, 64, 128, 256, 512]

#: wall-clock ratio the warm replay must beat (override with
#: REPRO_A13_MIN_SPEEDUP)
MIN_SPEEDUP = float(os.environ.get("REPRO_A13_MIN_SPEEDUP", "5.0"))

COLLECTIVE = "allgather"


def _params():
    if bench_scale() == "small":
        return broadwell_opa(nodes=16, ppn=6)
    return broadwell_opa()  # the paper's 128 x 18 = 2304 ranks


def _grid_records(sweep):
    return {f"{lib}/{n}": json.dumps(p.to_record().as_dict(),
                                     sort_keys=True)
            for (lib, n), p in sweep.points.items()}


@pytest.mark.benchmark(group="a13")
def test_a13_sweep_cache(benchmark, tmp_path_factory):
    params = _params()
    # CI points this at a workspace path so the filled cache directory
    # uploads as the job artifact; locally a temp dir is fine.
    cache_dir = (Path(os.environ["REPRO_A13_CACHE_DIR"])
                 if os.environ.get("REPRO_A13_CACHE_DIR")
                 else tmp_path_factory.mktemp("a13_cache"))
    cache = ResultCache(cache_dir)
    cache.clear()  # a re-run must start cold

    def _cold():
        t0 = time.perf_counter()
        sweep = run_sweep(COLLECTIVE, SIZES, params, cache=cache)
        return sweep, time.perf_counter() - t0

    sweep_cold, cold_s = benchmark.pedantic(_cold, rounds=1, iterations=1)
    cells = len(_grid_records(sweep_cold))
    assert cache.stats.writes == cells
    assert cache.stats.hits == 0

    # -- warm replay: all hits, bit-exact, >= MIN_SPEEDUP x ------------
    warm_cache = ResultCache(cache_dir)  # fresh instance, fresh stats
    t0 = time.perf_counter()
    sweep_warm = run_sweep(COLLECTIVE, SIZES, params, cache=warm_cache)
    warm_s = time.perf_counter() - t0
    assert warm_cache.stats.hits == cells
    assert warm_cache.stats.misses == 0
    assert _grid_records(sweep_warm) == _grid_records(sweep_cold)
    speedup = cold_s / warm_s
    assert speedup >= MIN_SPEEDUP, \
        f"warm replay only {speedup:.1f}x over cold (need {MIN_SPEEDUP}x)"

    # -- corruption recovery -------------------------------------------
    victim = next(iter(warm_cache.keys()))
    victim_path = warm_cache.path_for(victim)
    text = victim_path.read_text()
    victim_path.write_text(text[: len(text) // 2])  # torn mid-file
    heal_cache = ResultCache(cache_dir)
    sweep_heal = run_sweep(COLLECTIVE, SIZES, params, cache=heal_cache)
    assert heal_cache.stats.corrupt == 1
    assert heal_cache.stats.hits == cells - 1
    assert heal_cache.stats.writes == 1  # exactly the damaged cell
    assert _grid_records(sweep_heal) == _grid_records(sweep_cold)

    # -- artifacts ------------------------------------------------------
    report = {
        "scale": bench_scale(),
        "nodes": params.nodes,
        "ppn": params.ppn,
        "cells": cells,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "corruption_recovered": True,
        "cache_entries": len(ResultCache(cache_dir)),
    }
    lines = [f"A13 sweep cache: {COLLECTIVE} Fig.2 sweep, "
             f"{params.nodes}x{params.ppn}, {cells} cells",
             f"  cold fill   {cold_s:8.2f}s  ({cells} simulations)",
             f"  warm replay {warm_s:8.2f}s  ({cells} cache hits, "
             f"bit-exact)",
             f"  speedup     {speedup:8.1f}x  (gate: >= {MIN_SPEEDUP}x)",
             "  corruption  1 torn entry detected, recomputed, "
             "bit-exact again"]
    save_result("a13_sweep_cache", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a13_sweep_cache.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    save_records("a13_sweep_cache", [
        point.to_record(
            run="a13_sweep_cache", scale=bench_scale(), source="warm-cache")
        for point in sweep_warm.points.values()
    ])
