"""W1 — Application-level workload replay (deliverable: workload
generator + end-to-end comparison).

The paper argues collective performance matters because applications
sit on top.  This benchmark replays three synthetic application
communication traces (iterative PDE solver, data-parallel training
step, shuffle-heavy analytics) under every library model at 32 × 8
scale and reports the end-to-end communication time per trace.

Shape asserted: PiP-MColl has the lowest total on every trace, and
the application-level speedup is smaller than the best single-call
speedup (apps mix sizes and collectives, diluting the peak win) but
still ≥ 1.2× vs the best other library somewhere.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    analytics_shuffle,
    compare_on_trace,
    stencil_app,
    training_step_mix,
)
from repro.machine import broadwell_opa
from repro.mpilibs import PAPER_LINEUP

from conftest import save_result

TRACES = (
    stencil_app(steps=40, check_every=4),
    training_step_mix(steps=4),
    analytics_shuffle(rounds=3),
)


def _run():
    params = broadwell_opa(nodes=32, ppn=8)
    return {
        trace.name: compare_on_trace(trace, params, list(PAPER_LINEUP))
        for trace in TRACES
    }


@pytest.mark.benchmark(group="w1")
def test_w1_workload_replay(benchmark):
    grids = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["W1 application-trace replay, 32x8 (total comm time, us)"]
    speedups = []
    for trace_name, results in grids.items():
        lines.append(f"  {trace_name}:")
        ours = results["PiP-MColl"].total_us
        best_other = min(
            r.total_us for name, r in results.items() if name != "PiP-MColl"
        )
        for name in PAPER_LINEUP:
            lines.append(f"    {name:10s} {results[name].total_us:10.1f}")
        speedups.append(best_other / ours)
        lines.append(f"    -> PiP-MColl speedup vs best other: "
                     f"{best_other / ours:5.2f}x")
    save_result("w1_workload_replay", "\n".join(lines))

    assert all(s > 1.0 for s in speedups), speedups
    assert max(speedups) >= 1.2, speedups
