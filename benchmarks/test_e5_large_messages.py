"""E5 — In-text claim: "comprehensive improvement for various message
sizes" / "also boosts performance for larger messages".

Medium/large per-process allgather (4 KiB–64 KiB).  Here the win comes
from the transport (single copy, no syscalls) and the multi-object
striped ring, not from round counts.

Scale note: large-message baselines use ring allgathers (``P−1``
rounds × 2304 ranks ≈ 5M simulated messages per point at full scale),
so this experiment runs at 16 nodes × 6 ppn; the effect measured is
per-byte, not scale-bound.  EXPERIMENTS.md records this substitution.

Shape asserted: PiP-MColl ≥ every baseline at every size, with a
meaningful (≥15 %) margin somewhere — "improvement", not the 4.6×
small-message blowout.
"""

from __future__ import annotations

import pytest

from repro.bench import format_paper_table, run_sweep, summarize_speedups
from repro.machine import broadwell_opa

from conftest import save_result

SIZES = [4096, 16384, 65536]


def _run():
    return run_sweep("allgather", SIZES, broadwell_opa(nodes=16, ppn=6),
                     warmup=1, iters=1)


@pytest.mark.benchmark(group="e5")
def test_e5_large_messages(benchmark):
    sweep = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_paper_table(sweep, exclude_factor=None)
    save_result("e5_large_messages", table + "\n\n" + summarize_speedups(sweep))

    for nbytes in SIZES:
        assert sweep.speedup("PiP-MColl", nbytes) >= 1.0, f"lost at {nbytes} B"
    _size, best = sweep.best_speedup("PiP-MColl")
    assert best >= 1.15, f"large-message margin only {best:.2f}x"
