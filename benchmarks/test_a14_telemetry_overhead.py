"""A14 — Host-telemetry perf gate: ≤ 5% wall overhead, bit-exact, shard-aware.

Host telemetry (``repro.obs.host``) only earns its place if turning it
on is close to free and turning it off is invisible.  This experiment
pins both on the A10 grid (Fig. 2's allgather sweep over the paper
lineup) run on the sharded engine:

* **overhead gate** — the sweep runs with telemetry disabled and
  inside ``host.tracing()``, rounds interleaved off/on so machine
  drift lands on both sides equally; min-of-``ROUNDS`` enabled wall
  must stay within ``MAX_OVERHEAD`` of the disabled wall;
* **bit-exact** — both runs must produce byte-identical BenchRecord
  grids: tracing observes the simulator, it never perturbs it;
* **trace validity** — the captured host trace must pass
  ``validate_chrome_trace``, the same schema checker CI runs on
  sim-time Perfetto exports;
* **imbalance attribution** — a deliberately lopsided run (5 nodes on
  4 shards, so shard0 owns two nodes' worth of events) must name
  ``shard0`` as the slowest shard in the window-stall breakdown.

Scale: ``REPRO_BENCH_SCALE=small`` drops to 16 × 6 so the experiment
smoke-runs anywhere; CI's perf-gate job runs it at the paper's
128 × 18.  Results land in ``benchmarks/results/
a14_telemetry_overhead.json`` plus the records and the validated host
trace (``a14_host_trace.json``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import run_sweep
from repro.machine import broadwell_opa
from repro.obs import host
from repro.obs.host import HostReport
from repro.obs.perfetto import validate_chrome_trace

from conftest import RESULTS_DIR, bench_scale, save_result, save_records

#: Fig. 2's x-axis (per-process bytes)
SIZES = [16, 32, 64, 128, 256, 512]

#: fractional wall overhead the enabled run must stay within
#: (override with REPRO_A14_MAX_OVERHEAD)
MAX_OVERHEAD = float(os.environ.get("REPRO_A14_MAX_OVERHEAD", "0.05"))

#: walls are min-of-ROUNDS, rounds interleaved off/on, to shed
#: scheduler noise (the true per-event cost is microseconds)
ROUNDS = int(os.environ.get("REPRO_A14_ROUNDS", "3"))

COLLECTIVE = "allgather"
ENGINE = "sharded:4"


def _params():
    if bench_scale() == "small":
        return broadwell_opa(nodes=16, ppn=6)
    return broadwell_opa()  # the paper's 128 x 18 = 2304 ranks


def _grid_records(sweep):
    return {f"{lib}/{n}": json.dumps(p.to_record().as_dict(),
                                     sort_keys=True)
            for (lib, n), p in sweep.points.items()}


def _timed_sweep(params):
    t0 = time.perf_counter()
    sweep = run_sweep(COLLECTIVE, SIZES, params, engine=ENGINE)
    return sweep, time.perf_counter() - t0


@pytest.mark.benchmark(group="a14")
def test_a14_telemetry_overhead(benchmark):
    params = _params()

    def _measure():
        # Interleave off/on rounds: slow drift (thermal, co-tenants)
        # then biases both minima the same way instead of whichever
        # side happened to run second.
        off = (float("inf"), None)
        on = (float("inf"), None, None)
        for _ in range(ROUNDS):
            assert host.active() is None  # disabled is the default
            s, wall = _timed_sweep(params)
            if wall < off[0]:
                off = (wall, s)
            with host.tracing() as t:
                s, wall = _timed_sweep(params)
            if wall < on[0]:
                on = (wall, s, t)
        assert host.active() is None  # scope restored
        return off, on

    (off_s, sweep_off), (on_s, sweep_on, tracer) = \
        benchmark.pedantic(_measure, rounds=1, iterations=1)

    # -- bit-exact: tracing observes, never perturbs -------------------
    records = _grid_records(sweep_on)
    assert records == _grid_records(sweep_off)
    cells = len(records)

    # -- overhead gate -------------------------------------------------
    overhead = on_s / off_s - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"host telemetry costs {overhead:+.1%} wall "
        f"({on_s:.2f}s vs {off_s:.2f}s; gate: <= {MAX_OVERHEAD:.0%})")

    # -- the trace is real and valid -----------------------------------
    report = HostReport(tracer)
    trace = report.to_perfetto()
    n_events = validate_chrome_trace(trace)
    assert report.bench_summary()["cells"] == cells
    assert report.window_summary()["windows"] > 0
    shards = report.shard_breakdown()
    assert len(shards) == 4  # one stall row per engine shard

    # -- imbalance attribution: 5 nodes on 4 shards --------------------
    # shard_of_node = [0, 0, 1, 2, 3]: shard0 simulates two nodes'
    # worth of events, so the stall table must point at it.
    with host.tracing() as t_imb:
        run_sweep(COLLECTIVE, [256], broadwell_opa(nodes=5, ppn=4),
                  libraries=["PiP-MColl"], engine=ENGINE)
    imbalance = HostReport(t_imb)
    slowest = imbalance.slowest_shard()
    assert slowest == "shard0", \
        f"imbalanced run blamed {slowest}, expected shard0"

    # -- artifacts ------------------------------------------------------
    out = {
        "scale": bench_scale(),
        "nodes": params.nodes,
        "ppn": params.ppn,
        "engine": ENGINE,
        "cells": cells,
        "disabled_s": off_s,
        "enabled_s": on_s,
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "rounds": ROUNDS,
        "bit_exact": True,
        "trace_events": n_events,
        "slowest_shard": slowest,
        "shard_busy_s": {k: v["busy_s"] for k, v in
                         imbalance.shard_breakdown().items()},
        "host": report.as_dict(),
    }
    lines = [f"A14 telemetry overhead: {COLLECTIVE} Fig.2 sweep, "
             f"{params.nodes}x{params.ppn}, engine {ENGINE}, "
             f"{cells} cells",
             f"  disabled  {off_s:8.2f}s  (min of {ROUNDS})",
             f"  enabled   {on_s:8.2f}s  (min of {ROUNDS}, bit-exact)",
             f"  overhead  {overhead:+8.1%}  (gate: <= {MAX_OVERHEAD:.0%})",
             f"  trace     {n_events} events, schema-valid",
             f"  imbalance 5 nodes / 4 shards -> slowest = {slowest}"]
    save_result("a14_telemetry_overhead", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "a14_telemetry_overhead.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")
    (RESULTS_DIR / "a14_host_trace.json").write_text(
        json.dumps(trace, sort_keys=True) + "\n")
    save_records("a14_telemetry_overhead", [
        point.to_record(run="a14_telemetry_overhead", scale=bench_scale(),
                        source="telemetry-enabled")
        for point in sweep_on.points.values()
    ])
