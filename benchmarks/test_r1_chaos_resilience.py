"""R1 — Chaos resilience: latency vs drop rate under reliable delivery.

The paper's multi-object design pushes every rank onto the NIC, so it
rides many more concurrent eager flows than a single-leader schedule —
the question this sweep answers is whether that extra wire exposure
costs it its advantage on a lossy fabric.  Each point runs the
standard harness over the reliable (ack/timeout/retransmit) transport
with a seeded drop plan; lost transmissions cost retransmission
timeouts, all accrued in simulated time.

Scale note: chaos points run functional (every byte really moves), so
this sweep uses a 4x4 machine rather than the paper's 128x18.

Expected physics, asserted:

* at drop 0 the protocol is quiet (no retransmits) and PiP-MColl wins
  as in the clean benchmarks;
* latency is non-decreasing in drop rate for both libraries, and the
  20% point is strictly slower than clean;
* every point completes byte-exact (the harness validates buffers) —
  loss degrades latency, never correctness.
"""

from __future__ import annotations

import pytest

from repro.faults import chaos_sweep, resilience_report
from repro.machine import small_test

from conftest import save_result

NODES, PPN, NBYTES = 4, 4, 64
DROP_RATES = (0.0, 0.05, 0.1, 0.2)
LIBS = ("MPICH", "PiP-MColl")
SEED = 20230616


def _run():
    return chaos_sweep(
        "allgather", NBYTES, small_test(nodes=NODES, ppn=PPN),
        drop_rates=DROP_RATES, libraries=LIBS, seed=SEED,
    )


@pytest.mark.benchmark(group="r1")
def test_r1_chaos_resilience(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("r1_chaos_resilience", resilience_report(points))

    grid = {(p.library, p.drop_rate): p for p in points}
    for lib in LIBS:
        clean = grid[(lib, 0.0)]
        assert clean.completed and clean.retransmits == 0
        # Loss costs latency monotonically, never correctness.
        prev = clean.latency_us
        for rate in DROP_RATES[1:]:
            point = grid[(lib, rate)]
            assert point.completed, f"{lib} failed at {rate:.0%} drop"
            assert point.latency_us >= prev * 0.95  # near-monotone
            prev = max(prev, point.latency_us)
        worst = grid[(lib, DROP_RATES[-1])]
        assert worst.latency_us > clean.latency_us
        assert worst.retransmits >= 1
    # The multi-object design keeps its clean-wire win.
    assert grid[("PiP-MColl", 0.0)].latency_us < \
        grid[("MPICH", 0.0)].latency_us
