#!/usr/bin/env python
"""2-D Jacobi heat diffusion with halo exchange — a pt2pt application.

Decomposes a square grid over a 2-D process mesh, iterates a 5-point
Jacobi stencil, exchanging one-cell halos with the four neighbours
each step and checking global convergence with an allreduce every few
iterations.  The same application runs under MPICH and PiP-MColl
models; the residual history must be *identical* (the library changes
timing, never numerics), while time-to-solution differs.

This is the kind of iterative HPC workload the paper's introduction
motivates: small/medium messages, collectives on the critical path.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.api import Session
from repro.runtime.cart import CartTopology
from repro.runtime.ops import MAX

MESH = (4, 4)  # process mesh (must equal nodes × ppn of the machine)
LOCAL = 24  # local tile is LOCAL × LOCAL
STEPS = 30
CHECK_EVERY = 5


def jacobi(comm):
    """One rank of the Jacobi solver; returns (residuals, elapsed)."""
    cart = CartTopology.create(comm.ctx.comm_world, MESH)
    ry, rx = cart.coords(comm.rank)

    # Tile with a one-cell halo ring; hot left edge of the global grid.
    tile = np.zeros((LOCAL + 2, LOCAL + 2))
    if rx == 0:
        tile[:, 0] = 100.0

    halo_send = {d: np.zeros(LOCAL) for d in "NSEW"}
    halo_recv = {d: np.zeros(LOCAL) for d in "NSEW"}
    red_in = np.zeros(1)
    red_out = np.zeros(1)
    north, south = cart.shift(comm.rank, dim=0)
    west, east = cart.shift(comm.rank, dim=1)
    neighbours = {"N": north, "S": south, "W": west, "E": east}
    edge = {
        "N": lambda t: t[1, 1:-1], "S": lambda t: t[-2, 1:-1],
        "W": lambda t: t[1:-1, 1], "E": lambda t: t[1:-1, -2],
    }
    ghost = {
        "N": lambda t, v: t.__setitem__((0, slice(1, -1)), v),
        "S": lambda t, v: t.__setitem__((-1, slice(1, -1)), v),
        "W": lambda t, v: t.__setitem__((slice(1, -1), 0), v),
        "E": lambda t, v: t.__setitem__((slice(1, -1), -1), v),
    }
    opposite = {"N": "S", "S": "N", "E": "W", "W": "E"}

    residuals = []
    start = comm.now
    for step in range(STEPS):
        # Halo exchange with the four neighbours (tagged by direction).
        for i, d in enumerate("NSEW"):
            nb = neighbours[d]
            if nb is None:
                continue
            halo_send[d][:] = edge[d](tile)
            yield from comm.Sendrecv(
                halo_send[d], nb, 100 + i,
                halo_recv[d], nb, 100 + "NSEW".index(opposite[d]),
            )
            ghost[d](tile, halo_recv[d])
        # Model the stencil FLOPs (5 per cell at ~2 GFLOP/s effective).
        yield from comm.ctx.compute(5 * LOCAL * LOCAL / 2e9)
        new_inner = 0.25 * (tile[:-2, 1:-1] + tile[2:, 1:-1]
                            + tile[1:-1, :-2] + tile[1:-1, 2:])
        diff = np.abs(new_inner - tile[1:-1, 1:-1]).max()
        tile[1:-1, 1:-1] = new_inner
        if rx == 0:
            tile[1:-1, 0] = 100.0  # re-pin the boundary
        if (step + 1) % CHECK_EVERY == 0:
            red_in[0] = diff
            yield from comm.Allreduce(red_in, red_out, op=MAX)
            residuals.append(float(red_out[0]))
    return residuals, comm.now - start


def run(lib_name):
    session = Session(library=lib_name, nodes=4, ppn=4, trace=False)
    assert session.machine.world_size == MESH[0] * MESH[1]
    results = session.run(jacobi)
    residuals = results[0][0]
    elapsed = max(r[1] for r in results)
    return residuals, elapsed


def main():
    print(f"Jacobi {MESH[0]}x{MESH[1]} mesh, {LOCAL}x{LOCAL} tiles, "
          f"{STEPS} steps, convergence check every {CHECK_EVERY}\n")
    baseline = None
    for name in ("MPICH", "PiP-MPICH", "PiP-MColl"):
        residuals, elapsed = run(name)
        if baseline is None:
            baseline = residuals
        assert residuals == baseline, "numerics must not depend on the library"
        print(f"{name:10s}: {elapsed * 1e3:7.3f} ms simulated "
              f"(final residual {residuals[-1]:.4f})")
    print("\nresidual history identical across libraries — only time moved.")


if __name__ == "__main__":
    main()
