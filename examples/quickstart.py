#!/usr/bin/env python
"""Quickstart: run MPI_Allgather under every library model and compare.

Builds a 16-node × 6-ppn simulated cluster (a scaled-down version of
the paper's 128 × 18 testbed), runs a 64 B-per-rank allgather under
each MPI library model, verifies the bytes are correct, and prints the
paper-style latency table.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench import format_paper_table, run_sweep
from repro.machine import broadwell_opa
from repro.mpilibs import make_library
from repro.runtime import ArrayBuffer


def verify_allgather_bytes() -> None:
    """Byte-exact check of PiP-MColl's allgather on a tiny cluster."""
    lib = make_library("PiP-MColl")
    world = lib.make_world(broadwell_opa(nodes=3, ppn=2))
    algo = lib.wrapped("allgather", 8, world.comm_world.size)

    def program(ctx):
        send = ArrayBuffer.from_array(
            np.full(8, ctx.rank + 1, dtype=np.uint8))
        recv = ArrayBuffer.zeros(8 * ctx.size)
        yield from algo(ctx, send.view(), recv.view())
        blocks = recv.bytes_view.reshape(ctx.size, 8)
        return blocks[:, 0].tolist()

    results = world.run(program)
    expected = [r + 1 for r in range(world.comm_world.size)]
    assert all(r == expected for r in results), "allgather bytes are wrong!"
    print(f"correctness: every rank holds blocks {expected} — OK\n")


def main() -> None:
    verify_allgather_bytes()

    params = broadwell_opa(nodes=16, ppn=6)
    print(f"machine: {params.describe()}\n")
    sweep = run_sweep("allgather", [16, 64, 256], params, iters=2)
    print(format_paper_table(sweep, exclude_factor=None))
    size, factor = sweep.best_speedup("PiP-MColl")
    print(f"\nPiP-MColl best speedup: {factor:.2f}x at {size} B "
          f"(the paper reports up to 4.6x at full 128-node scale)")


if __name__ == "__main__":
    main()
