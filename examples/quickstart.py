#!/usr/bin/env python
"""Quickstart: run MPI_Allgather under every library model and compare.

Builds a 16-node × 6-ppn simulated cluster (a scaled-down version of
the paper's 128 × 18 testbed), runs a 64 B-per-rank allgather under
each MPI library model, verifies the bytes are correct, and prints the
paper-style latency table.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Session
from repro.bench import format_paper_table, run_sweep
from repro.machine import broadwell_opa


def verify_allgather_bytes() -> None:
    """Byte-exact check of PiP-MColl's allgather on a tiny cluster."""
    session = Session(library="PiP-MColl", nodes=3, ppn=2, trace=False)

    def app(comm):
        send = np.full(8, comm.rank + 1, dtype=np.uint8)
        recv = np.zeros(8 * comm.size, dtype=np.uint8)
        yield from comm.Allgather(send, recv)
        return recv.reshape(comm.size, 8)[:, 0].tolist()

    result = session.run(app)
    expected = [r + 1 for r in range(len(result))]
    assert all(r == expected for r in result), "allgather bytes are wrong!"
    print(f"correctness: every rank holds blocks {expected} — OK "
          f"(engine: {result.engine.describe()})\n")


def main() -> None:
    verify_allgather_bytes()

    params = broadwell_opa(nodes=16, ppn=6)
    print(f"machine: {params.describe()}\n")
    sweep = run_sweep("allgather", [16, 64, 256], params, iters=2)
    print(format_paper_table(sweep, exclude_factor=None))
    size, factor = sweep.best_speedup("PiP-MColl")
    print(f"\nPiP-MColl best speedup: {factor:.2f}x at {size} B "
          f"(the paper reports up to 4.6x at full 128-node scale)")


if __name__ == "__main__":
    main()
