#!/usr/bin/env python
"""OSU-microbenchmark-style suite on the simulated cluster.

Prints the three classics for a chosen library model:

* ``osu_latency``  — inter-node pt2pt ping-pong latency vs size,
* ``osu_bw``       — windowed streaming bandwidth vs size,
* ``osu_mbw_mr``   — aggregate message rate vs pairs of communicating
  ranks (the multi-object story in microbenchmark form),

plus the collective latency table for allgather.

Run:  python examples/osu_microbench.py [library]
"""

import sys

from repro.api import Session
from repro.bench import format_paper_table, run_sweep
from repro.machine import broadwell_opa
from repro.mpilibs import available_libraries

WINDOW = 32  # osu_bw window size


def osu_latency(lib_name, sizes):
    """Ping-pong halves of a round trip, like osu_latency."""
    session = Session(library=lib_name, nodes=2, ppn=1, trace=False,
                      functional=False)
    rows = []

    def app_for(nbytes):
        def app(comm):
            ctx = comm.ctx
            buf = ctx.alloc(nbytes)
            reps = 5
            yield from ctx.hard_sync()
            t0 = ctx.now
            for rep in range(reps):
                if ctx.rank == 0:
                    yield from ctx.send(buf.view(), dst=1, tag=rep)
                    yield from ctx.recv(buf.view(), src=1, tag=rep)
                else:
                    yield from ctx.recv(buf.view(), src=0, tag=rep)
                    yield from ctx.send(buf.view(), dst=0, tag=rep)
            return (ctx.now - t0) / (2 * reps)
        return app

    for nbytes in sizes:
        lat = session.run(app_for(nbytes))[0]
        rows.append((nbytes, lat * 1e6))
    return rows


def osu_bw(lib_name, sizes):
    """Windowed one-way bandwidth, like osu_bw."""
    session = Session(library=lib_name, nodes=2, ppn=1, trace=False,
                      functional=False)
    rows = []

    def app_for(nbytes):
        def app(comm):
            ctx = comm.ctx
            buf = ctx.alloc(nbytes)
            yield from ctx.hard_sync()
            t0 = ctx.now
            if ctx.rank == 0:
                reqs = []
                for i in range(WINDOW):
                    req = yield from ctx.isend(buf.view(), dst=1, tag=i)
                    reqs.append(req)
                yield from ctx.waitall(reqs)
                ack = ctx.alloc(0)
                yield from ctx.recv(ack.view(), src=1, tag=999)
                return ctx.now - t0
            for i in range(WINDOW):
                yield from ctx.recv(buf.view(), src=0, tag=i)
            ack = ctx.alloc(0)
            yield from ctx.send(ack.view(), dst=0, tag=999)
            return None
        return app

    for nbytes in sizes:
        elapsed = session.run(app_for(nbytes))[0]
        rows.append((nbytes, WINDOW * nbytes / elapsed / 1e9))
    return rows


def osu_mbw_mr(lib_name, pair_counts, nbytes=8, msgs=100):
    """Aggregate multi-pair message rate, like osu_mbw_mr."""
    rows = []
    for pairs in pair_counts:
        session = Session(library=lib_name, nodes=2, ppn=max(pairs, 1),
                          trace=False, functional=False)

        def app(comm, pairs=pairs):
            ctx = comm.ctx
            buf = ctx.alloc(nbytes)
            partner_node = 1 - ctx.node_id
            partner = ctx.cluster.global_rank(partner_node, ctx.local_rank)
            if ctx.local_rank >= pairs:
                return None
            yield from ctx.hard_sync()
            t0 = ctx.now
            if ctx.node_id == 0:
                reqs = []
                for i in range(msgs):
                    req = yield from ctx.isend(buf.view(), dst=partner, tag=i)
                    reqs.append(req)
                yield from ctx.waitall(reqs)
                return ctx.now - t0
            for i in range(msgs):
                yield from ctx.recv(buf.view(), src=partner, tag=i)
            return None

        times = [t for t in session.run(app) if t is not None]
        rate = pairs * msgs / max(times)
        rows.append((pairs, rate / 1e6))
    return rows


def main():
    lib_name = sys.argv[1] if len(sys.argv) > 1 else "PiP-MColl"
    if lib_name not in available_libraries():
        raise SystemExit(f"unknown library {lib_name!r}; "
                         f"choose from {available_libraries()}")
    sizes = [8, 64, 512, 4096, 65536]

    print(f"# OSU-style microbenchmarks — {lib_name} model\n")
    print("osu_latency (inter-node ping-pong)")
    print(f"{'size':>8} {'latency (us)':>14}")
    for nbytes, lat in osu_latency(lib_name, sizes):
        print(f"{nbytes:8d} {lat:14.2f}")

    print("\nosu_bw (window of 32)")
    print(f"{'size':>8} {'bandwidth (GB/s)':>18}")
    for nbytes, bw in osu_bw(lib_name, sizes):
        print(f"{nbytes:8d} {bw:18.2f}")

    print("\nosu_mbw_mr (8 B messages, node pair)")
    print(f"{'pairs':>8} {'rate (Mmsg/s)':>15}")
    for pairs, rate in osu_mbw_mr(lib_name, [1, 2, 4, 8, 18]):
        print(f"{pairs:8d} {rate:15.2f}")

    print("\nallgather latency across libraries (16 nodes x 6 ppn)")
    sweep = run_sweep("allgather", [64, 512], broadwell_opa(nodes=16, ppn=6),
                      iters=1)
    print(format_paper_table(sweep, exclude_factor=None))


if __name__ == "__main__":
    main()
