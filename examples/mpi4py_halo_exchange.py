#!/usr/bin/env python
"""2-D Jacobi heat diffusion, written as a *plain mpi4py program*.

The mpi4py port of ``examples/halo_exchange.py``: the same 4x4 process
mesh, tile sizes, halo Sendrecv pattern and MAX-allreduce convergence
checks, expressed as a synchronous mpi4py script.  The process mesh is
laid out row-major by hand (the divmod arithmetic below matches what
``repro.runtime.cart.CartTopology`` — and MPI_Cart_create without
reordering — computes), with ``MPI.PROC_NULL``-style edges handled by
skipping the exchange, as the native version does.

Runs unmodified under real mpi4py (``mpiexec -n 16 ...``) and under
the simulated runtime:

    python -m repro shim run --nranks 16 examples/mpi4py_halo_exchange.py

The residual history is byte-identical to the native-API version —
``tests/shim/test_examples.py`` asserts it.
"""

import numpy as np
from mpi4py import MPI

MESH = (4, 4)  # process mesh (must equal the world size)
LOCAL = 24  # local tile is LOCAL x LOCAL
STEPS = 30
CHECK_EVERY = 5


def mesh_neighbours(rank):
    """Row-major non-periodic N/S/W/E neighbours (MPI_Cart_shift with
    MPI_PROC_NULL at the edges)."""
    rows, cols = MESH
    ry, rx = divmod(rank, cols)
    return {
        "N": rank - cols if ry > 0 else MPI.PROC_NULL,
        "S": rank + cols if ry < rows - 1 else MPI.PROC_NULL,
        "W": rank - 1 if rx > 0 else MPI.PROC_NULL,
        "E": rank + 1 if rx < cols - 1 else MPI.PROC_NULL,
    }


def jacobi(comm=None):
    """One rank of the Jacobi solver; returns (residuals, elapsed)."""
    if comm is None:
        comm = MPI.COMM_WORLD
    rank = comm.Get_rank()
    if comm.Get_size() != MESH[0] * MESH[1]:
        raise SystemExit(f"needs exactly {MESH[0] * MESH[1]} ranks")
    ry, rx = divmod(rank, MESH[1])

    # Tile with a one-cell halo ring; hot left edge of the global grid.
    tile = np.zeros((LOCAL + 2, LOCAL + 2))
    if rx == 0:
        tile[:, 0] = 100.0

    halo_send = {d: np.zeros(LOCAL) for d in "NSEW"}
    halo_recv = {d: np.zeros(LOCAL) for d in "NSEW"}
    red_in = np.zeros(1)
    red_out = np.zeros(1)
    neighbours = mesh_neighbours(rank)
    edge = {
        "N": lambda t: t[1, 1:-1], "S": lambda t: t[-2, 1:-1],
        "W": lambda t: t[1:-1, 1], "E": lambda t: t[1:-1, -2],
    }
    ghost = {
        "N": lambda t, v: t.__setitem__((0, slice(1, -1)), v),
        "S": lambda t, v: t.__setitem__((-1, slice(1, -1)), v),
        "W": lambda t, v: t.__setitem__((slice(1, -1), 0), v),
        "E": lambda t, v: t.__setitem__((slice(1, -1), -1), v),
    }
    opposite = {"N": "S", "S": "N", "E": "W", "W": "E"}

    residuals = []
    start = MPI.Wtime()
    for step in range(STEPS):
        # Halo exchange with the four neighbours (tagged by direction).
        for i, d in enumerate("NSEW"):
            nb = neighbours[d]
            if nb == MPI.PROC_NULL:
                continue
            halo_send[d][:] = edge[d](tile)
            comm.Sendrecv(
                halo_send[d], nb, 100 + i,
                halo_recv[d], nb, 100 + "NSEW".index(opposite[d]),
            )
            ghost[d](tile, halo_recv[d])
        new_inner = 0.25 * (tile[:-2, 1:-1] + tile[2:, 1:-1]
                            + tile[1:-1, :-2] + tile[1:-1, 2:])
        diff = np.abs(new_inner - tile[1:-1, 1:-1]).max()
        tile[1:-1, 1:-1] = new_inner
        if rx == 0:
            tile[1:-1, 0] = 100.0  # re-pin the boundary
        if (step + 1) % CHECK_EVERY == 0:
            red_in[0] = diff
            comm.Allreduce(red_in, red_out, op=MPI.MAX)
            residuals.append(float(red_out[0]))
    return residuals, MPI.Wtime() - start


def main():
    comm = MPI.COMM_WORLD
    residuals, elapsed = jacobi(comm)
    slowest = comm.allreduce(elapsed, op=MPI.MAX)
    if comm.Get_rank() == 0:
        print(f"Jacobi {MESH[0]}x{MESH[1]} mesh, {LOCAL}x{LOCAL} tiles, "
              f"{STEPS} steps, convergence check every {CHECK_EVERY}")
        print(f"final residual {residuals[-1]:.4f}, "
              f"{slowest * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
