#!/usr/bin/env python
"""Distributed conjugate gradient on a 1-D Laplacian — collectives on
the critical path every iteration.

The matrix is the classic tridiagonal Poisson operator, row-block
distributed.  One CG iteration needs:

* two global dot products      → MPI_Allreduce (8 B payload!)
* one halo exchange            → pt2pt with ring neighbours
* vector updates               → local compute

At scale, the tiny allreduces dominate — the exact regime PiP-MColl's
small-message wins target.  The example runs the same solve under
three library models and reports identical convergence with different
simulated time-to-solution.

Run:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro.api import Session
from repro.runtime.cart import CartTopology

LOCAL_N = 8  # rows per rank
MAX_ITERS = 200
TOL = 1e-10


def cg_solver(comm):
    """One rank of CG on the global tridiagonal system Ax = b."""
    cart = CartTopology.create(comm.ctx.comm_world, (comm.size,),
                               periods=(False,))
    left, right = cart.shift(cart.comm.to_comm(comm.rank), 0)

    n = LOCAL_N
    # b = 1 everywhere; x0 = 0.
    b = np.ones(n)
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()

    halo = {"lo": np.zeros(1), "hi": np.zeros(1)}
    send = {"lo": np.zeros(1), "hi": np.zeros(1)}
    red_in = np.zeros(1)
    red_out = np.zeros(1)

    def global_dot(a, c):
        red_in[0] = float(a @ c)
        yield from comm.Allreduce(red_in, red_out)
        return float(red_out[0])

    def apply_A(v):
        """y = A v for the global tridiagonal [-1, 2, -1] operator."""
        lo = hi = 0.0
        # Exchange edge entries with ring neighbours.
        if left is not None:
            send["lo"][0] = v[0]
            yield from comm.Sendrecv(send["lo"], left, 10,
                                     halo["lo"], left, 11)
            lo = float(halo["lo"][0])
        if right is not None:
            send["hi"][0] = v[-1]
            yield from comm.Sendrecv(send["hi"], right, 11,
                                     halo["hi"], right, 10)
            hi = float(halo["hi"][0])
        y = 2.0 * v
        y[1:] -= v[:-1]
        y[:-1] -= v[1:]
        y[0] -= lo
        y[-1] -= hi
        yield from comm.ctx.compute(5 * n / 2e9)  # the stencil FLOPs
        return y

    rs_old = yield from global_dot(r, r)
    residuals = [rs_old]
    start = comm.now
    for _ in range(MAX_ITERS):
        Ap = yield from apply_A(p)
        pAp = yield from global_dot(p, Ap)
        alpha = rs_old / pAp
        x += alpha * p
        r -= alpha * Ap
        rs_new = yield from global_dot(r, r)
        residuals.append(rs_new)
        if rs_new < TOL:
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return residuals, comm.now - start, x


def run(lib_name):
    session = Session(library=lib_name, nodes=8, ppn=4, trace=False)
    results = session.run(cg_solver)
    residuals = results[0][0]
    assert all(r[0] == residuals for r in results), "ranks diverged"
    elapsed = max(r[1] for r in results)
    return residuals, elapsed


def main():
    size = 8 * 4
    print(f"CG on a {size * LOCAL_N}-unknown 1-D Laplacian, "
          f"{size} ranks, two 8 B allreduces per iteration\n")
    reference = None
    for name in ("OpenMPI", "MPICH", "PiP-MColl"):
        residuals, elapsed = run(name)
        if reference is None:
            reference = residuals
        assert residuals == reference, "numerics must be library-independent"
        print(f"{name:10s}: {len(residuals) - 1:3d} iterations, "
              f"residual {residuals[0]:.1e} -> {residuals[-1]:.3e}, "
              f"{elapsed * 1e3:7.3f} ms simulated")
    print("\nsame convergence everywhere; the collectives set the pace.")


if __name__ == "__main__":
    main()
