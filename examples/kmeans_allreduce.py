#!/usr/bin/env python
"""Distributed k-means — an allreduce-dominated application.

Each rank owns a shard of points; every iteration computes local
cluster sums/counts, then allreduces the (k × d + k)-element statistics
vector so all ranks update identical centroids.  With many ranks and a
modest feature count this is a *small-message* allreduce on the
critical path — precisely the regime PiP-MColl targets.

The cluster assignment history is identical across library models (the
simulation moves real bytes); only simulated time differs.

Run:  python examples/kmeans_allreduce.py
"""

import numpy as np

from repro.api import Session

K = 4  # clusters
D = 8  # features
POINTS_PER_RANK = 64
ITERS = 12
SEED = 20230616


def make_shard(rank: int) -> np.ndarray:
    """Deterministic per-rank points around K well-separated centers."""
    rng = np.random.default_rng(SEED + rank)
    centers = np.arange(K)[:, None] * 10.0 + np.arange(D)[None, :]
    labels = rng.integers(0, K, size=POINTS_PER_RANK)
    return centers[labels] + rng.normal(scale=1.0, size=(POINTS_PER_RANK, D))


def kmeans(comm):
    points = make_shard(comm.rank)
    # Everyone must start from the same centroids: rank 0's choice.
    stats_in = np.zeros(K * D + K)
    stats_out = np.zeros(K * D + K)
    centroids = np.arange(K)[:, None] * 10.0 + np.zeros((K, D))

    centroid_history = []  # identical across ranks (post-allreduce)
    local_inertia = []
    start = comm.now
    for _ in range(ITERS):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        local_inertia.append(float(dists.min(axis=1).sum()))
        # Model the assignment FLOPs (~3·n·k·d at 2 GFLOP/s).
        yield from comm.ctx.compute(3 * POINTS_PER_RANK * K * D / 2e9)

        sums = stats_in[: K * D].reshape(K, D)
        counts = stats_in[K * D:]
        sums[:] = 0.0
        counts[:] = 0.0
        for k in range(K):
            mask = labels == k
            sums[k] = points[mask].sum(axis=0)
            counts[k] = mask.sum()

        yield from comm.Allreduce(stats_in, stats_out)

        gsums = stats_out[: K * D].reshape(K, D)
        gcounts = stats_out[K * D:]
        nonempty = gcounts > 0
        centroids[nonempty] = gsums[nonempty] / gcounts[nonempty, None]
        centroid_history.append(round(float(centroids.sum()), 9))
    return centroid_history, local_inertia, comm.now - start


def run(lib_name: str):
    session = Session(library=lib_name, nodes=8, ppn=4, trace=False)
    results = session.run(kmeans)
    history = results[0][0]
    # Centroids come out of the allreduce, so every rank must agree.
    assert all(r[0] == history for r in results), "ranks diverged!"
    total_inertia = [sum(r[1][i] for r in results) for i in range(ITERS)]
    return history, total_inertia, max(r[2] for r in results)


def main():
    print(f"k-means: k={K}, d={D}, {POINTS_PER_RANK} pts/rank, "
          f"{ITERS} iterations, 32 ranks, "
          f"allreduce payload {(K * D + K) * 8} B\n")
    reference = None
    for name in ("OpenMPI", "MPICH", "PiP-MPICH", "PiP-MColl"):
        history, inertia, elapsed = run(name)
        if reference is None:
            reference = history
        assert history == reference, "clustering must not depend on the library"
        print(f"{name:10s}: {elapsed * 1e3:7.3f} ms simulated "
              f"(global inertia {inertia[0]:9.1f} -> {inertia[-1]:9.1f})")
    print("\nidentical convergence across libraries; collective time differs.")


if __name__ == "__main__":
    main()
