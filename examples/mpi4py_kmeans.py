#!/usr/bin/env python
"""Distributed k-means, written as a *plain mpi4py program*.

This is the mpi4py port of ``examples/kmeans_allreduce.py``: the same
deterministic shards, the same (k x d + k)-element allreduce every
iteration, the same centroid updates — but expressed the way real MPI
applications are written: synchronous calls on ``MPI.COMM_WORLD``, no
generators, no simulator imports.  It runs unmodified under real
mpi4py (``mpiexec -n 32 python examples/mpi4py_kmeans.py``) *and*
under the simulated runtime:

    python -m repro shim run --nranks 32 examples/mpi4py_kmeans.py

The cluster assignment history is byte-identical to the native-API
version (the simulation moves real bytes through the same collectives)
— ``tests/shim/test_examples.py`` asserts exactly that.
"""

import numpy as np
from mpi4py import MPI

K = 4  # clusters
D = 8  # features
POINTS_PER_RANK = 64
ITERS = 12
SEED = 20230616


def make_shard(rank: int) -> np.ndarray:
    """Deterministic per-rank points around K well-separated centers."""
    rng = np.random.default_rng(SEED + rank)
    centers = np.arange(K)[:, None] * 10.0 + np.arange(D)[None, :]
    labels = rng.integers(0, K, size=POINTS_PER_RANK)
    return centers[labels] + rng.normal(scale=1.0, size=(POINTS_PER_RANK, D))


def kmeans(comm=None):
    """K-means on this rank's shard; returns (history, inertia, secs)."""
    if comm is None:
        comm = MPI.COMM_WORLD
    points = make_shard(comm.Get_rank())
    # Everyone must start from the same centroids: rank 0's choice.
    stats_in = np.zeros(K * D + K)
    stats_out = np.zeros(K * D + K)
    centroids = np.arange(K)[:, None] * 10.0 + np.zeros((K, D))

    centroid_history = []  # identical across ranks (post-allreduce)
    local_inertia = []
    start = MPI.Wtime()
    for _ in range(ITERS):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        local_inertia.append(float(dists.min(axis=1).sum()))

        sums = stats_in[: K * D].reshape(K, D)
        counts = stats_in[K * D:]
        sums[:] = 0.0
        counts[:] = 0.0
        for k in range(K):
            mask = labels == k
            sums[k] = points[mask].sum(axis=0)
            counts[k] = mask.sum()

        comm.Allreduce(stats_in, stats_out, op=MPI.SUM)

        gsums = stats_out[: K * D].reshape(K, D)
        gcounts = stats_out[K * D:]
        nonempty = gcounts > 0
        centroids[nonempty] = gsums[nonempty] / gcounts[nonempty, None]
        centroid_history.append(round(float(centroids.sum()), 9))
    return centroid_history, local_inertia, MPI.Wtime() - start


def main():
    comm = MPI.COMM_WORLD
    history, inertia, elapsed = kmeans(comm)
    total_inertia = comm.reduce(np.array(inertia), op=MPI.SUM, root=0)
    slowest = comm.allreduce(elapsed, op=MPI.MAX)
    if comm.Get_rank() == 0:
        print(f"k-means: k={K}, d={D}, {POINTS_PER_RANK} pts/rank, "
              f"{ITERS} iterations, {comm.Get_size()} ranks, "
              f"allreduce payload {(K * D + K) * 8} B")
        print(f"global inertia {total_inertia[0]:9.1f} -> "
              f"{total_inertia[-1]:9.1f}, centroid checksum "
              f"{history[-1]}, {slowest * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
