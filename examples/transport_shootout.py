#!/usr/bin/env python
"""Intra-node transport shootout — the paper's §1 in one table.

Measures one-way intra-node pt2pt latency between two ranks on the
same node for each transport (POSIX-SHMEM, CMA, XPMEM cold and warm,
naive PiP with size sync, PiP) across message sizes, then prints the
copy/syscall/fault cost structure next to the measurements.

Unlike the other examples this one stays on the low-level ``World``
entry point: it benchmarks transports *beneath* the library layer,
and :class:`~repro.api.Session` deliberately pins the intra-node
transport to the chosen library's.

Run:  python examples/transport_shootout.py
"""

from repro.machine import single_node
from repro.runtime import World
from repro.transport import available_transports, make_transport

SIZES = [16, 256, 4096, 65536, 1 << 20]
REPS = 3  # enough to show XPMEM's attach amortisation


def one_way_latency(transport_name: str, nbytes: int):
    """(cold, warm) one-way latency (µs) between two same-node ranks."""
    world = World(single_node(ppn=2), intra=transport_name, functional=False)

    def program(ctx):
        buf = ctx.alloc(nbytes)
        lats = []
        for rep in range(REPS):
            yield from ctx.hard_sync()
            t0 = ctx.now
            if ctx.rank == 0:
                yield from ctx.send(buf.view(), dst=1, tag=rep)
            else:
                yield from ctx.recv(buf.view(), src=0, tag=rep)
                lats.append((ctx.now - t0) * 1e6)
        return lats

    lats = world.run(program)[1]
    return lats[0], lats[-1]


def main():
    names = available_transports()
    print("one-way intra-node latency (us), cold / warm:\n")
    header = f"{'size':>8} | " + " | ".join(f"{n:^19}" for n in names)
    print(header)
    print("-" * len(header))
    for nbytes in SIZES:
        cells = []
        for name in names:
            cold, warm = one_way_latency(name, nbytes)
            cells.append(f"{cold:8.2f} /{warm:8.2f}")
        size = f"{nbytes // 1024} KiB" if nbytes >= 1024 else f"{nbytes} B"
        print(f"{size:>8} | " + " | ".join(cells))
    print("\ncost structure:")
    for name in names:
        print(f"  {name:12s} {make_transport(name).describe()}")


if __name__ == "__main__":
    main()
