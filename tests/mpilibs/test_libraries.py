"""Unit tests for the MPI library models."""

import pytest

from repro.collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    bcast_binomial,
    scatter_binomial,
)
from repro.core import mcoll_allgather, mcoll_allgather_large, mcoll_scatter
from repro.machine import small_test
from repro.mpilibs import (
    BASELINES,
    COLLECTIVES,
    PAPER_LINEUP,
    available_libraries,
    make_library,
)
from repro.validate.checker import check_allgather, check_allreduce, check_scatter


def test_registry_matches_paper_lineup():
    assert set(available_libraries()) == set(PAPER_LINEUP)
    assert "PiP-MColl" not in BASELINES
    assert len(PAPER_LINEUP) == 6
    with pytest.raises(KeyError):
        make_library("CrayMPI")


def test_profiles_are_distinct():
    profiles = [make_library(n).profile for n in PAPER_LINEUP]
    assert len({p.intra for p in profiles}) >= 4  # transports genuinely differ
    assert all(p.call_overhead > 0 for p in profiles)


def test_transport_assignments_match_design():
    assert make_library("MPICH").profile.intra == "posix_shmem"
    assert make_library("OpenMPI").profile.intra == "cma"
    assert make_library("MVAPICH2").profile.intra == "xpmem"
    assert make_library("IntelMPI").profile.intra == "posix_shmem"
    assert make_library("PiP-MPICH").profile.intra == "pip_sizesync"
    assert make_library("PiP-MColl").profile.intra == "pip"


def test_every_library_covers_every_collective():
    for name in PAPER_LINEUP:
        lib = make_library(name)
        for coll in COLLECTIVES:
            algo = lib.algorithm(coll, 64, 2304)
            assert callable(algo), (name, coll)


def test_unknown_collective_rejected():
    with pytest.raises(KeyError):
        make_library("MPICH").algorithm("alltoallw", 64, 16)


def test_mpich_selection_table():
    lib = make_library("MPICH")
    # 2304 ranks is not a power of two → Bruck for small allgather.
    assert lib.algorithm("allgather", 64, 2304) is allgather_bruck
    assert lib.algorithm("allgather", 64, 2048) is allgather_recursive_doubling
    assert lib.algorithm("allgather", 1 << 20, 2048) is allgather_ring
    assert lib.algorithm("scatter", 64, 2304) is scatter_binomial
    assert lib.algorithm("bcast", 64, 2304) is bcast_binomial


def test_pip_mcoll_selection_table():
    lib = make_library("PiP-MColl")
    assert lib.algorithm("allgather", 64, 2304) is mcoll_allgather
    assert lib.algorithm("allgather", 1 << 20, 2304) is mcoll_allgather_large
    assert lib.algorithm("scatter", 64, 2304) is mcoll_scatter


def test_pip_mpich_is_mpich_over_naive_pip():
    naive = make_library("PiP-MPICH")
    stock = make_library("MPICH")
    for coll in COLLECTIVES:
        assert naive.algorithm(coll, 64, 96).__name__ == \
            stock.algorithm(coll, 64, 96).__name__, coll
    assert naive.profile.intra == "pip_sizesync"


@pytest.mark.parametrize("name", PAPER_LINEUP)
def test_each_library_runs_allgather_correctly(name):
    """End-to-end: each library's selected allgather is byte-exact."""
    lib = make_library(name)
    world = lib.make_world(small_test(nodes=2, ppn=2))
    check_allgather(world, lib.wrapped("allgather", 32, 4), 32)


@pytest.mark.parametrize("name", PAPER_LINEUP)
def test_each_library_runs_scatter_correctly(name):
    lib = make_library(name)
    world = lib.make_world(small_test(nodes=2, ppn=2))
    check_scatter(world, lib.wrapped("scatter", 32, 4), 32)


@pytest.mark.parametrize("name", PAPER_LINEUP)
def test_each_library_runs_allreduce_correctly(name):
    lib = make_library(name)
    world = lib.make_world(small_test(nodes=2, ppn=2))
    check_allreduce(world, lib.wrapped("allreduce", 32, 4), 32)


def test_wrapped_charges_call_overhead():
    lib = make_library("OpenMPI")
    world = lib.make_world(small_test(nodes=1, ppn=2), functional=False)
    plain = lib.algorithm("barrier", 0, 2)
    wrapped = lib.wrapped("barrier", 0, 2)

    def program(ctx, algo):
        t0 = ctx.now
        yield from algo(ctx)
        return ctx.now - t0

    t_plain = world.run(program, args=(plain,))[0]
    t_wrapped = world.run(program, args=(wrapped,))[0]
    assert t_wrapped - t_plain == pytest.approx(lib.profile.call_overhead, rel=0.2)


@pytest.mark.parametrize("name", PAPER_LINEUP)
def test_each_library_runs_vector_collectives(name):
    """Every library provides gatherv/scatterv/allgatherv/alltoallv."""
    from repro.mpilibs import V_COLLECTIVES
    from repro.validate.checker import (
        check_allgatherv,
        check_alltoallv,
        check_gatherv,
        check_scatterv,
    )

    lib = make_library(name)
    size = 6
    counts = [(r * 5) % 9 + 1 for r in range(size)]
    world = lib.make_world(small_test(nodes=3, ppn=2))
    check_gatherv(world, lib.wrapped("gatherv", 64, size), counts)
    check_scatterv(world, lib.wrapped("scatterv", 64, size), counts)
    check_allgatherv(world, lib.wrapped("allgatherv", 64, size), counts)
    matrix = [[(i + j) % 4 + 1 for j in range(size)] for i in range(size)]
    check_alltoallv(world, lib.wrapped("alltoallv", 64, size), matrix)
    for coll in V_COLLECTIVES:
        assert callable(lib.algorithm(coll, 64, size))


def test_pip_mcoll_allgatherv_is_multiobject():
    lib = make_library("PiP-MColl")
    assert lib.algorithm("allgatherv", 64, 2304).__name__ == "mcoll_allgatherv"
    baseline = make_library("MPICH")
    assert baseline.algorithm("allgatherv", 64, 2304).__name__ == "allgatherv_ring"
