"""SWIM-style failure detector: pings, witnesses, probes.

The detector runs on the normal simulated transport — every ping costs
real simulated latency and every timeout is a real clock window — so
these tests drive it through full worlds, not mocks.
"""

import pytest

from repro.api import Session
from repro.faults import FaultPlan
from repro.ft import FtParams, pick_witnesses
from repro.ft import proto
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)


def _session(plan, **kwargs):
    return Session(library="MPICH", params=PARAMS, trace=False,
                   ft=True, faults=plan, reliable=True, **kwargs)


def _detector_app(body):
    """Rank 0 runs ``body(ctx, ft)``; peers idle so their responders
    can answer (the session's drain keeps them alive long enough)."""
    def app(comm):
        ctx = comm.ctx
        ft = ctx.world.ft
        ft._ensure_started()
        if comm.rank == 0:
            result = yield from body(ctx, ft)
            return result
        yield ctx.sim.timeout(5e-3)
        return None
    return app


def test_ping_alive_peer_acks():
    plan = FaultPlan(seed=1).crash(3, at_time=0.0)

    def body(ctx, ft):
        ok = yield from ft.detector.ping(ctx, 1)
        return ok

    result = _session(plan).run(_detector_app(body))
    assert result.values[0] is True


def test_ping_crashed_peer_times_out():
    plan = FaultPlan(seed=1).crash(3, at_time=0.0)

    def body(ctx, ft):
        t0 = ctx.now
        ok = yield from ft.detector.ping(ctx, 3)
        return ok, ctx.now - t0

    result = _session(plan).run(_detector_app(body))
    ok, elapsed = result.values[0]
    assert ok is False
    # The miss costs exactly the configured window (plus send time).
    assert elapsed >= FtParams().ping_timeout


def test_probe_confirms_crash_and_clears_alive():
    plan = FaultPlan(seed=1).crash(3, at_time=0.0)

    def body(ctx, ft):
        suspects = yield from ft.detector.probe(ctx, [1, 3], seq=0,
                                                attempt=0)
        return suspects

    result = _session(plan).run(_detector_app(body))
    assert result.values[0] == [3]


def test_indirect_probe_uses_witnesses():
    """Witness verdicts: True iff some witness reached the target —
    no witness can reach a corpse, any witness can reach the living."""
    plan = FaultPlan(seed=1).crash(2, at_time=0.0)

    def body(ctx, ft):
        dead = yield from ft.detector.indirect_probe(ctx, 2, seq=0,
                                                     attempt=0)
        alive = yield from ft.detector.indirect_probe(ctx, 1, seq=0,
                                                      attempt=0)
        return dead, alive

    result = _session(plan).run(_detector_app(body))
    assert result.values[0] == (False, True)


def test_pick_witnesses_deterministic_and_disjoint():
    members = list(range(8))
    w1 = pick_witnesses(members, prober=0, target=3, seq=5, attempt=1,
                        count=2)
    w2 = pick_witnesses(members, prober=0, target=3, seq=5, attempt=1,
                        count=2)
    assert w1 == w2
    assert 0 not in w1 and 3 not in w1
    assert len(w1) == 2 and len(set(w1)) == 2
    # Different (seq, attempt) reseeds the choice eventually.
    alts = {tuple(pick_witnesses(members, 0, 3, s, a, count=2))
            for s in range(4) for a in range(4)}
    assert len(alts) > 1


def test_ft_params_validate_rejects_nonsense():
    with pytest.raises(ValueError):
        FtParams(ping_timeout=0.0).validate()
    with pytest.raises(ValueError):
        FtParams(backoff=0.5).validate()
    with pytest.raises(ValueError):
        FtParams(max_attempts=0).validate()
    with pytest.raises(ValueError):
        FtParams(gather_slack=0.0).validate()
    FtParams().validate()  # defaults are sane


def test_timing_contract_is_ordered():
    """Each supervision layer must wait out the one beneath it."""
    p = FtParams()
    for attempt in range(p.max_attempts):
        assert p.gather_timeout(attempt) > p.attempt_deadline(attempt) \
            + p.probe_budget()
        assert p.decide_timeout(attempt) > p.gather_timeout(attempt)
    assert p.attempt_deadline(1) > p.attempt_deadline(0)


def test_epoch_comm_ids_never_collide_with_control_plane():
    ids = {proto.PING_COMM_ID, proto.CTRL_COMM_ID}
    for seq in range(4):
        for attempt in range(FtParams().max_attempts):
            cid = proto.epoch_comm_id(seq, attempt)
            assert cid not in ids
            ids.add(cid)
    with pytest.raises(ValueError):
        proto.epoch_comm_id(0, proto.EPOCH_STRIDE)
