"""`python -m repro ft` and the recovery_point/report helpers."""

import pytest

from repro.cli import main
from repro.ft.bench import RecoveryPoint, recovery_point, recovery_report
from repro.machine import small_test


class TestRecoveryPoint:
    def test_crash_point_records_triple(self):
        p = recovery_point("MPICH", "allreduce", 64,
                           small_test(nodes=2, ppn=2),
                           crash_ranks=[3], crash_at=5e-7, rounds=3, seed=1)
        assert p.completed and p.error is None
        assert p.recoveries >= 1
        assert p.detect_s is not None and p.detect_s > 0
        assert p.recover_s is not None and p.recover_s >= p.detect_s
        assert p.survivors == 3

    def test_node_scope_loses_the_node(self):
        p = recovery_point("PiP-MColl", "allreduce", 64,
                           small_test(nodes=2, ppn=2),
                           crash_ranks=[3], crash_at=5e-7, rounds=3, seed=1)
        assert p.completed
        assert p.survivors == 2  # rank 3's node-mate 2 is condemned too

    def test_unknown_collective_degrades_to_a_verdict(self):
        # The harness never raises out of a point: the app's ValueError
        # becomes a FAILED verdict, mirroring chaos_point.
        p = recovery_point("MPICH", "scan", 64, small_test(nodes=2, ppn=2),
                           crash_ranks=[1], crash_at=5e-7, rounds=1)
        assert not p.completed
        assert p.error == "ValueError"
        assert "FAILED (ValueError)" in recovery_report([p])

    def test_report_table_shape(self):
        p = recovery_point("MPICH", "bcast", 64, small_test(nodes=2, ppn=2),
                           crash_ranks=[3], crash_at=5e-7, rounds=3, seed=1)
        text = recovery_report([p])
        assert "fault-tolerant recovery" in text
        assert "MPICH" in text and "bcast" in text and "ok" in text

    def test_report_handles_failures_and_empty(self):
        bad = RecoveryPoint("X", "allreduce", 64, 2, 2, (1,), 1e-6,
                            completed=False, error="FtError")
        assert "FAILED (FtError)" in recovery_report([bad])
        assert recovery_report([]) == "no recovery points"


class TestCli:
    def test_ft_subcommand_prints_report(self, capsys):
        rc = main([
            "ft", "--collective", "allreduce", "--size", "64",
            "--nodes", "2", "--ppn", "2", "--crash-ranks", "3",
            "--crash-at", "5e-7", "--rounds", "3",
            "--libraries", "MPICH", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault-tolerant recovery" in out and "MPICH" in out

    def test_crash_rank_out_of_range_rejected(self, capsys):
        rc = main(["ft", "--nodes", "2", "--ppn", "2",
                   "--crash-ranks", "9"])
        assert rc == 2
        assert "crash rank" in capsys.readouterr().err

    def test_bad_crash_ranks_rejected(self):
        with pytest.raises(SystemExit):
            main(["ft", "--crash-ranks", "abc"])
