"""Crash-tolerant agreement and the ULFM-style comm operations.

``Agree`` is the AND of surviving flags, ``Shrink`` is one agreement
whose gather deadline doubles as failed-rank discovery, and ``Revoke``
pushes the next collective off the fast path.  Coordinator crashes are
survived by rotation.
"""

import numpy as np

from repro.api import Session
from repro.faults import FaultPlan
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)


def _session(plan, library="MPICH"):
    return Session(library=library, params=PARAMS, trace=False, ft=True,
                   faults=plan, reliable=True)


def test_agree_is_and_of_surviving_flags():
    plan = FaultPlan(seed=2).crash(3, at_time=0.0)

    def app(comm):
        flag = yield from comm.Agree(comm.rank != 1)  # rank 1 votes False
        return flag

    result = _session(plan).run(app)
    assert [result.values[r] for r in range(3)] == [False, False, False]
    assert result.values[3] is None  # crashed before voting


def test_agree_true_when_all_survivors_vote_true():
    plan = FaultPlan(seed=2).crash(2, at_time=0.0)

    def app(comm):
        flag = yield from comm.Agree(True)
        return flag

    result = _session(plan).run(app)
    assert [result.values[r] for r in (0, 1, 3)] == [True, True, True]


def test_shrink_returns_identical_survivor_list_everywhere():
    plan = FaultPlan(seed=2).crash(1, at_time=0.0)

    def app(comm):
        members = yield from comm.Shrink()
        return members

    result = _session(plan).run(app)
    for r in (0, 2, 3):
        assert result.values[r] == [0, 2, 3]
    assert result.values[1] is None


def test_shrink_survives_coordinator_crash():
    """Rank 0 coordinates round 0; its crash forces a decide timeout
    and re-election (rotation to the next member)."""
    plan = FaultPlan(seed=2).crash(0, at_time=0.0)

    def app(comm):
        members = yield from comm.Shrink()
        return members

    result = _session(plan).run(app)
    for r in (1, 2, 3):
        assert result.values[r] == [1, 2, 3]


def test_node_scope_shrink_condemns_node_mates():
    """Under a PiP library one crash takes the whole node's ranks."""
    plan = FaultPlan(seed=2).crash(3, at_time=0.0)

    def app(comm):
        # One collective routes the library through the FT runtime so
        # the crash scope is known, then shrink.
        send = np.ones(2, dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        members = yield from comm.Shrink()
        return members

    result = _session(plan, library="PiP-MColl").run(app)
    # ppn=2: rank 3's crash condemns its node-mate rank 2 as well.
    for r in (0, 1):
        assert result.values[r] == [0, 1]
    assert result.values[2] is None and result.values[3] is None


def test_revoke_forces_reissue_then_clears():
    plan = FaultPlan(seed=2).crash(3, at_time=1.0)  # never fires in-run

    def app(comm):
        if comm.rank == 1:
            yield from comm.Revoke()
        send = np.full(2, float(comm.rank + 1), dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return recv[0]

    result = _session(plan).run(app)
    assert all(v == 10.0 for v in result.values)
    ft = result.world.ft
    # The revoker skipped the fast path; the revocation then cleared.
    assert not any(ft.revoked)


def test_agree_then_collective_shares_sequence_space():
    plan = FaultPlan(seed=2).crash(2, at_time=0.0)

    def app(comm):
        flag = yield from comm.Agree(True)
        send = np.full(2, float(comm.rank + 1), dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return flag, recv[0]

    result = _session(plan).run(app)
    expected = float(1 + 2 + 4)  # survivors 0, 1, 3
    for r in (0, 1, 3):
        flag, value = result.values[r]
        assert flag is True and value == expected
