"""Self-healing collectives: detect → revoke → agree → shrink → re-issue.

Every test crashes ranks mid-run under ``ft=True`` and checks the
survivors' bytes against a numpy oracle over the *surviving*
membership.  Crashed (and, for PiP libraries, node-condemned) ranks
return ``None``; nothing hangs and no delivery error escapes.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.faults import FaultPlan
from repro.ft import FtError, FtRootLostError
from repro.machine import small_test

W = 4  # words per block

#: library → ranks dead after crashing rank 3 on a 2x2 machine
DEAD = {"MPICH": {3}, "PiP-MColl": {2, 3}}


def _session(library, plan, nodes=2, ppn=2):
    return Session(library=library, params=small_test(nodes=nodes, ppn=ppn),
                   trace=False, ft=True, faults=plan, reliable=True)


def test_single_crash_allreduce_vs_oracle():
    plan = FaultPlan(seed=3).crash(5, at_time=2e-6)
    session = _session("MPICH", plan, nodes=2, ppn=4)

    def app(comm):
        send = np.full(W, float(comm.rank + 1), dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return recv.copy()

    result = session.run(app)
    expected = sum(r + 1 for r in range(8) if r != 5)
    for r in range(8):
        if r == 5:
            assert result.values[r] is None
        else:
            assert np.all(result.values[r] == expected), f"rank {r}"
    assert result.world.ft.recoveries  # a committed recovery timeline


def test_node_scope_crash_condemns_whole_node():
    """One PiP rank-object crash kills the node; survivors heal on a
    non-power-of-two membership (exercises the fold phases)."""
    plan = FaultPlan(seed=3).crash(5, at_time=2e-6)
    session = _session("PiP-MColl", plan, nodes=4, ppn=4)

    def app(comm):
        send = np.full(W, float(comm.rank + 1), dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return recv.copy()

    result = session.run(app)
    dead = {4, 5, 6, 7}  # node 1 entirely
    expected = sum(r + 1 for r in range(16) if r not in dead)
    for r in range(16):
        if r in dead:
            assert result.values[r] is None
        else:
            assert np.all(result.values[r] == expected), f"rank {r}"
    rec = result.world.ft.recoveries[0]
    assert set(rec["suspects"]) == dead
    assert rec["members_after"] == [r for r in range(16) if r not in dead]


def test_double_crash_staggered_across_rounds():
    """A second crash lands while the first recovery is in flight."""
    plan = FaultPlan(seed=7).crash(3, at_time=2e-6).crash(6, at_time=5e-3)
    session = _session("MPICH", plan, nodes=2, ppn=4)

    def app(comm):
        out = []
        for rnd in range(3):
            send = np.full(W, float(comm.rank + rnd + 1), dtype=np.float64)
            recv = np.empty_like(send)
            yield from comm.Allreduce(send, recv)
            out.append(recv[0])
        return out

    result = session.run(app)
    survivors = [r for r in range(8) if r not in (3, 6)]
    for r in range(8):
        if r in (3, 6):
            assert result.values[r] is None
        else:
            expected = [float(sum(s + rnd + 1 for s in survivors))
                        for rnd in range(3)]
            assert result.values[r] == expected, f"rank {r}"


def test_root_loss_raises_not_hangs():
    plan = FaultPlan(seed=11).crash(0, at_time=2e-6)
    session = _session("OpenMPI", plan)

    def app(comm):
        buf = np.full(W, 42.0 if comm.rank == 0 else 0.0, dtype=np.float64)
        try:
            yield from comm.Bcast(buf, root=0)
            return "ok"
        except FtRootLostError as exc:
            assert "root" in str(exc) and "0" in str(exc)
            return "root-lost"

    result = session.run(app)
    assert result.values[0] is None
    assert all(v == "root-lost" for v in result.values[1:])


def test_rooted_collective_survives_non_root_crash():
    # 0.5 µs: inside the gather, before rank 2 forwards its subtree.
    plan = FaultPlan(seed=11).crash(2, at_time=5e-7)
    session = _session("MPICH", plan)

    def app(comm):
        send = np.full(W, float(comm.rank + 1), dtype=np.float64)
        recv = np.zeros(W * comm.size, dtype=np.float64) \
            if comm.rank == 0 else None
        yield from comm.Gather(send, recv, root=0)
        return recv.copy() if recv is not None else "sent"

    result = session.run(app)
    assert result.world.ft.recoveries  # the crash really interrupted it
    blocks = result.values[0].reshape(4, W)
    for s in (0, 1, 3):
        assert np.all(blocks[s] == s + 1)
    assert np.all(blocks[2] == 0.0)  # dead block left untouched


@pytest.mark.parametrize("library", ["MPICH", "PiP-MColl"])
def test_every_collective_completes_post_shrink(library):
    """After one crash is absorbed, all fifteen collectives run on the
    shrunken membership and stay byte-correct vs the survivor oracle.
    """
    dead = DEAD[library]
    surv = [r for r in range(4) if r not in dead]
    plan = FaultPlan(seed=5).crash(3, at_time=2e-6)
    session = _session(library, plan)

    def app(comm):
        me = comm.rank
        out = {}
        n = comm.size
        # -- barrier absorbs the crash ------------------------------------
        yield from comm.Barrier()
        # -- rooted -------------------------------------------------------
        buf = np.full(W, 42.0 if me == 0 else 0.0, dtype=np.float64)
        yield from comm.Bcast(buf, root=0)
        out["bcast"] = buf.copy()
        send = np.full(W, float(me + 1), dtype=np.float64)
        recv = np.zeros(W * n, dtype=np.float64) if me == 0 else None
        yield from comm.Gather(send, recv, root=0)
        out["gather"] = recv.copy() if me == 0 else None
        sendall = (np.arange(W * n, dtype=np.float64) if me == 0 else None)
        recv1 = np.zeros(W, dtype=np.float64)
        yield from comm.Scatter(sendall, recv1, root=0)
        out["scatter"] = recv1.copy()
        recvr = np.zeros(W, dtype=np.float64) if me == 0 else None
        yield from comm.Reduce(send, recvr, root=0)
        out["reduce"] = recvr.copy() if me == 0 else None
        # -- all-to-all family -------------------------------------------
        recvag = np.zeros(W * n, dtype=np.float64)
        yield from comm.Allgather(send, recvag)
        out["allgather"] = recvag.copy()
        recvar = np.empty_like(send)
        yield from comm.Allreduce(send, recvar)
        out["allreduce"] = recvar.copy()
        senda2a = np.array([(me + 1) * 100 + j for j in range(n)
                            for _ in range(W)], dtype=np.float64)
        recva2a = np.zeros(W * n, dtype=np.float64)
        yield from comm.Alltoall(senda2a, recva2a)
        out["alltoall"] = recva2a.copy()
        sendrs = np.array([(me + 1) * (j + 1) for j in range(n)
                           for _ in range(W)], dtype=np.float64)
        recvrs = np.zeros(W, dtype=np.float64)
        yield from comm.Reduce_scatter(sendrs, recvrs)
        out["reduce_scatter"] = recvrs.copy()
        # -- prefix reductions -------------------------------------------
        recvsc = np.zeros(W, dtype=np.float64)
        yield from comm.Scan(send, recvsc)
        out["scan"] = recvsc.copy()
        recvex = np.zeros(W, dtype=np.float64)
        yield from comm.Exscan(send, recvex)
        out["exscan"] = recvex.copy()
        # -- vector variants ---------------------------------------------
        counts = [c + 1 for c in range(n)]
        total = sum(counts)
        sendv = np.full(counts[me], float(me + 1), dtype=np.float64)
        recvv = np.zeros(total, dtype=np.float64)
        yield from comm.Allgatherv(sendv, recvv, counts)
        out["allgatherv"] = recvv.copy()
        recvgv = np.zeros(total, dtype=np.float64) if me == 0 else None
        yield from comm.Gatherv(sendv, recvgv, counts, root=0)
        out["gatherv"] = recvgv.copy() if me == 0 else None
        sendsv = (np.concatenate([np.full(c, float(i + 1))
                                  for i, c in enumerate(counts)])
                  if me == 0 else None)
        recvsv = np.zeros(counts[me], dtype=np.float64)
        yield from comm.Scatterv(sendsv, counts, recvsv, root=0)
        out["scatterv"] = recvsv.copy()
        sendav = np.array([(me + 1) * 10 + j for j in range(n)
                           for _ in range(2)], dtype=np.float64)
        recvav = np.zeros(2 * n, dtype=np.float64)
        yield from comm.Alltoallv(sendav, [2] * n, recvav, [2] * n)
        out["alltoallv"] = recvav.copy()
        return out

    result = session.run(app)
    for r in dead:
        assert result.values[r] is None
    ssum = sum(s + 1 for s in surv)
    counts = [1, 2, 3, 4]
    displs = [0, 1, 3, 6]
    for r in surv:
        got = result.values[r]
        assert np.all(got["bcast"] == 42.0)
        assert np.all(got["scatter"] == np.arange(r * W, (r + 1) * W))
        assert np.all(got["allreduce"] == ssum)
        a2a = got["alltoall"].reshape(4, W)
        rs = got["reduce_scatter"]
        assert np.all(rs == sum((s + 1) * (r + 1) for s in surv))
        scan = got["scan"]
        assert np.all(scan == sum(s + 1 for s in surv if s <= r))
        ex = got["exscan"]
        assert np.all(ex == sum(s + 1 for s in surv if s < r))
        ag = got["allgather"].reshape(4, W)
        av = got["alltoallv"].reshape(4, 2)
        agv = got["allgatherv"]
        sv = got["scatterv"]
        assert np.all(sv == r + 1)
        for s in range(4):
            if s in dead:
                assert np.all(ag[s] == 0.0)
                assert np.all(a2a[s] == 0.0)
                assert np.all(av[s] == 0.0)
                assert np.all(agv[displs[s]:displs[s] + counts[s]] == 0.0)
            else:
                assert np.all(ag[s] == s + 1)
                assert np.all(a2a[s] == (s + 1) * 100 + r)
                assert np.all(av[s] == (s + 1) * 10 + r)
                assert np.all(agv[displs[s]:displs[s] + counts[s]] == s + 1)
    root = result.values[0]
    g = root["gather"].reshape(4, W)
    red = root["reduce"]
    gv = root["gatherv"]
    assert np.all(red == ssum)
    for s in range(4):
        if s in dead:
            assert np.all(g[s] == 0.0)
            assert np.all(gv[displs[s]:displs[s] + counts[s]] == 0.0)
        else:
            assert np.all(g[s] == s + 1)
            assert np.all(gv[displs[s]:displs[s] + counts[s]] == s + 1)


@pytest.mark.parametrize("collective", ["allgather", "alltoall", "scan",
                                        "reduce_scatter"])
def test_mid_collective_crash_heals(collective):
    """The crash lands *inside* each collective, not between them."""
    plan = FaultPlan(seed=13).crash(3, at_time=5e-7)
    session = _session("MPICH", plan)
    surv = [0, 1, 2]

    def app(comm):
        me, n = comm.rank, comm.size
        if collective == "allgather":
            send = np.full(W, float(me + 1), dtype=np.float64)
            recv = np.zeros(W * n, dtype=np.float64)
            yield from comm.Allgather(send, recv)
        elif collective == "alltoall":
            send = np.full(W * n, float(me + 1), dtype=np.float64)
            recv = np.zeros(W * n, dtype=np.float64)
            yield from comm.Alltoall(send, recv)
        elif collective == "scan":
            send = np.full(W, float(me + 1), dtype=np.float64)
            recv = np.zeros(W, dtype=np.float64)
            yield from comm.Scan(send, recv)
        else:
            send = np.full(W * n, float(me + 1), dtype=np.float64)
            recv = np.zeros(W, dtype=np.float64)
            yield from comm.Reduce_scatter(send, recv)
        return recv.copy()

    result = session.run(app)
    assert result.values[3] is None
    for r in surv:
        got = result.values[r]
        if collective == "allgather":
            blocks = got.reshape(4, W)
            for s in surv:
                assert np.all(blocks[s] == s + 1)
            assert np.all(blocks[3] == 0.0)
        elif collective == "alltoall":
            blocks = got.reshape(4, W)
            for s in surv:
                assert np.all(blocks[s] == s + 1)
            assert np.all(blocks[3] == 0.0)
        elif collective == "scan":
            assert np.all(got == sum(s + 1 for s in surv if s <= r))
        else:
            assert np.all(got == sum(s + 1 for s in surv))


def test_recovery_timeline_is_recorded_and_ordered():
    plan = FaultPlan(seed=3).crash(2, at_time=5e-7)
    session = _session("MPICH", plan)

    def app(comm):
        send = np.full(W, 1.0, dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return recv[0]

    result = session.run(app)
    recs = result.world.ft.recoveries
    assert {r["rank"] for r in recs} == {0, 1, 3}
    for rec in recs:
        assert rec["collective"] == "allreduce"
        assert rec["attempts"] >= 2
        assert rec["suspects"] == [2]
        assert rec["members_after"] == [0, 1, 3]
        assert rec["t_decision"] <= rec["t_committed"]
        if rec["t_anomaly"] is not None:
            assert rec["t_anomaly"] <= rec["t_decision"]
        assert "delivery_error" in rec


def test_unrecoverable_world_raises_ft_error():
    """Crash everyone but one rank: agreement can still shrink to the
    singleton, so drive the survivor count to zero meaningfully by
    crashing the *caller's* peers and checking the singleton result,
    then assert exhaustion surfaces as FtError, not a hang, when every
    attempt keeps failing (payload partner permanently unreachable)."""
    plan = FaultPlan(seed=9)
    for r in range(1, 4):
        plan = plan.crash(r, at_time=5e-7)
    session = _session("MPICH", plan)

    def app(comm):
        send = np.full(W, float(comm.rank + 1), dtype=np.float64)
        recv = np.empty_like(send)
        yield from comm.Allreduce(send, recv)
        return recv[0]

    result = session.run(app)
    assert result.values[0] == 1.0  # singleton allreduce = own data
    assert result.values[1] is None


def test_ft_error_reexported_at_package_root():
    from repro.ft import errors

    assert issubclass(FtError, Exception)
    assert issubclass(FtRootLostError, errors.FtError)
