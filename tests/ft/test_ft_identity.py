"""The dormant FT runtime is free: ``ft=True`` with no fault plan must
be **byte- and timestamp-identical** to ``ft=False`` — on both engine
paths.  Arming only happens when a fault plan exists; without one, not
a single control message, timeout, or extra generator frame may leak
into the simulation.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)


def _app(comm):
    send = np.full(8, float(comm.rank + 1), dtype=np.float64)
    recv = np.empty_like(send)
    yield from comm.Allreduce(send, recv)
    gath = np.zeros(8 * comm.size, dtype=np.float64)
    yield from comm.Allgather(send, gath)
    yield from comm.Barrier()
    return comm.now, recv.copy(), gath.copy()


def _run(ft, fastpath):
    session = Session(library="PiP-MColl", params=PARAMS, trace=False,
                      ft=ft, fastpath=fastpath)
    result = session.run(_app)
    return result


@pytest.mark.parametrize("fastpath", [True, False])
def test_dormant_ft_is_timestamp_identical(fastpath):
    off = _run(False, fastpath)
    on = _run(True, fastpath)
    assert on.elapsed == off.elapsed
    for (t_on, r_on, g_on), (t_off, r_off, g_off) in zip(on.values,
                                                         off.values):
        assert t_on == t_off  # per-rank finish instants, exactly
        assert np.array_equal(r_on, r_off)
        assert np.array_equal(g_on, g_off)


def test_dormant_ft_identical_across_engine_paths():
    fast = _run(True, True)
    slow = _run(True, False)
    assert fast.elapsed == slow.elapsed
    for (t_f, r_f, g_f), (t_s, r_s, g_s) in zip(fast.values, slow.values):
        assert t_f == t_s
        assert np.array_equal(r_f, r_s)


def test_dormant_ft_spawns_nothing():
    result = _run(True, True)
    ft = result.world.ft
    assert ft is not None and not ft.armed
    assert not ft.recoveries and not ft.delivery_errors
    assert not ft._started  # no responders, no pings, no epochs
    assert not ft._epoch_comms


def test_armed_but_clean_run_commits_nothing():
    """With a plan whose crash never fires in-window, the FT machinery
    is live (responders, final drain) but records no recoveries and
    the results stay byte-identical to the unarmed run."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=1).crash(3, at_time=1e9)
    armed = Session(library="PiP-MColl", params=PARAMS, trace=False,
                    ft=True, faults=plan, reliable=True).run(_app)
    off = _run(False, True)
    assert not armed.world.ft.recoveries
    for (t_a, r_a, g_a), (t_o, r_o, g_o) in zip(armed.values, off.values):
        assert np.array_equal(r_a, r_o)
        assert np.array_equal(g_a, g_o)
