"""Tuning-database schema: round-trip, validation, merge, diff."""

import json

import pytest

from repro.machine import small_test
from repro.tuner import (
    CellResult,
    SCHEMA_VERSION,
    SchemaError,
    Trial,
    TuneDB,
    diff,
    format_db,
    format_diff,
    load_db,
    machine_hash,
    merge,
    validate_db,
)


def _cell(collective="allgather", nbytes=64, nodes=4, ppn=4,
          best=None, latency=2.0, baseline=2.5):
    best = best or {"algorithm": "mcoll_bruck", "senders": ppn}
    return CellResult(
        collective=collective, nbytes=nbytes, nodes=nodes, ppn=ppn,
        best=best, best_latency_us=latency,
        runner_up={"algorithm": "base"}, margin_us=baseline - latency,
        baseline_us=baseline,
        trials=[Trial(config=best, latency_us=latency),
                Trial(config={"algorithm": "base"}, latency_us=baseline)],
    )


def _db(cells=None, preset="small_test"):
    cells = cells if cells is not None else [_cell()]
    return TuneDB(
        base_library="PiP-MColl", preset=preset,
        provenance={"machine_hash": "abc", "git": "test", "seed": 0,
                    "strategy": "exhaustive"},
        cells={c.cell.key(): c for c in cells},
    )


def test_roundtrip_is_identity(tmp_path):
    db = _db()
    path = db.save(tmp_path / "x.tunedb.json")
    loaded = load_db(path)
    assert loaded.dumps() == db.dumps()
    assert loaded.cells["allgather/64B@4x4"].best_candidate.senders == 4


def test_dumps_is_byte_stable():
    assert _db().dumps() == _db().dumps()


def test_validate_rejects_missing_fields():
    obj = json.loads(_db().dumps())
    del obj["provenance"]
    with pytest.raises(SchemaError, match="provenance"):
        validate_db(obj)


def test_validate_rejects_wrong_schema_version():
    obj = json.loads(_db().dumps())
    obj["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaError, match="schema"):
        validate_db(obj)


def test_validate_rejects_mismatched_cell_key():
    obj = json.loads(_db().dumps())
    obj["cells"]["allgather/999B@4x4"] = obj["cells"].pop(
        "allgather/64B@4x4")
    with pytest.raises(SchemaError, match="does not match"):
        validate_db(obj)


def test_load_missing_file_is_schema_error(tmp_path):
    with pytest.raises(SchemaError, match="no tuning DB"):
        load_db(tmp_path / "absent.tunedb.json")


def test_load_non_json_is_schema_error(tmp_path):
    path = tmp_path / "bad.tunedb.json"
    path.write_text("not json {")
    with pytest.raises(SchemaError, match="not JSON"):
        load_db(path)


def test_merge_unions_and_keeps_faster_winner():
    a = _db([_cell(nbytes=64, latency=2.0),
             _cell(nbytes=256, latency=9.0)])
    b = _db([_cell(nbytes=256, latency=8.0,
                   best={"algorithm": "mcoll_ring"}),
             _cell(nbytes=1024, latency=30.0)])
    m = merge(a, b)
    assert set(m.cells) == {"allgather/64B@4x4", "allgather/256B@4x4",
                            "allgather/1024B@4x4"}
    # conflict at 256 B: b's 8.0 µs beats a's 9.0 µs
    assert m.cells["allgather/256B@4x4"].best == {"algorithm": "mcoll_ring"}
    assert "merged_from" in m.provenance


def test_merge_rejects_mixed_base_or_preset():
    a = _db()
    b = _db(preset="broadwell_opa")
    with pytest.raises(SchemaError, match="preset"):
        merge(a, b)
    c = _db()
    c.base_library = "MPICH"
    with pytest.raises(SchemaError, match="base"):
        merge(a, c)


def test_diff_reports_added_removed_changed():
    old = _db([_cell(nbytes=64, latency=2.0),
               _cell(nbytes=256, latency=9.0)])
    new = _db([_cell(nbytes=64, latency=1.5,
                     best={"algorithm": "mcoll_ring"}),
               _cell(nbytes=1024, latency=30.0)])
    entries = diff(old, new)
    kinds = {e.key: e.kind for e in entries}
    assert kinds == {"allgather/64B@4x4": "changed",
                     "allgather/256B@4x4": "removed",
                     "allgather/1024B@4x4": "added"}
    changed = next(e for e in entries if e.kind == "changed")
    assert changed.latency_delta_us == pytest.approx(-0.5)
    text = format_diff(entries)
    assert "+" in text and "-" in text and "→" in text
    assert format_diff([]) == "databases agree on every cell"


def test_format_db_lists_cells_and_provenance():
    text = format_db(_db())
    assert "base=PiP-MColl" in text
    assert "allgather/64B@4x4" in text
    assert "strategy=exhaustive" in text


def test_machine_hash_tracks_cost_params_not_geometry():
    a = small_test(nodes=4, ppn=4)
    b = small_test(nodes=8, ppn=2)
    assert machine_hash(a) == machine_hash(b)  # same cost model
    from dataclasses import replace

    c = a.scaled(nic=replace(a.nic, eager_limit=1))
    assert machine_hash(c) != machine_hash(a)
