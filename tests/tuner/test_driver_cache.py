"""Regression: search measurements route through the result cache.

The base library used to be re-measured from scratch by every search —
each run of ``search()`` simulated the same base cells again even
though nothing about them had changed.  With ``cache=`` the sweep
service's content-addressed store makes the base (and every candidate)
a *measure-once* cell: once per search via the in-run eval ledger, and
once *ever* per cache directory across searches, sweeps, and
processes.
"""

import json

import pytest

import repro.bench.harness as harness
import repro.tuner.driver as driver
from repro.service import ResultCache, cached_bench_collective
from repro.tuner import make_cells, search
from repro.tuner.space import BASE_FAMILY

CELLS_KW = dict(nodes=4, ppn=2, preset="small_test")


def _cells(sizes=(64,)):
    return make_cells("allgather", list(sizes), **CELLS_KW)


def _count_sims(monkeypatch):
    calls = []
    real = harness.bench_collective

    def spy(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(harness, "bench_collective", spy)
    return calls


def _count_base_evals(monkeypatch):
    """(cell key, nodes) of every *executed* base-candidate evaluation."""
    base_evals = []
    real = driver.evaluate_task

    def spy(task):
        if task["candidate"]["algorithm"] == BASE_FAMILY \
                and task["candidate"].get("eager_limit") is None:
            base_evals.append((json.dumps(task["cell"], sort_keys=True),
                               task["nodes"]))
        return real(task)

    monkeypatch.setattr(driver, "evaluate_task", spy)
    return base_evals


@pytest.mark.parametrize("strategy", ["exhaustive", "halving", "hill"])
def test_base_library_measured_once_per_cell_per_search(monkeypatch, strategy):
    base_evals = _count_base_evals(monkeypatch)
    search(_cells((16, 64)), strategy=strategy, seed=0)
    # one full-fidelity base evaluation per cell, never a re-measure
    assert len(base_evals) == len(set(base_evals)) == 2
    assert all(nodes == CELLS_KW["nodes"] for _, nodes in base_evals)


def test_second_search_with_same_cache_simulates_nothing(monkeypatch,
                                                         tmp_path):
    cache_dir = tmp_path / "cache"
    db1 = search(_cells(), strategy="exhaustive", cache=cache_dir)
    sims = _count_sims(monkeypatch)
    db2 = search(_cells(), strategy="exhaustive", cache=cache_dir)
    assert sims == []  # every candidate is a file read now
    assert db1.dumps() == db2.dumps()


def test_search_without_cache_still_simulates(monkeypatch, tmp_path):
    search(_cells(), strategy="exhaustive",
           cache=tmp_path / "cache")
    sims = _count_sims(monkeypatch)
    search(_cells(), strategy="exhaustive")  # no cache= → fresh sims
    assert len(sims) > 0


def test_plain_base_candidate_shares_entries_with_plain_benches(monkeypatch,
                                                                tmp_path):
    """The base candidate IS the base library: a prior plain benchmark
    of the base fills the very entry the search's base evaluation
    reads, so the search never simulates the base cell at all."""
    cache = ResultCache(tmp_path / "cache")
    (cell,) = _cells()
    from repro.tuner.evaluate import machine_for

    params = machine_for(cell.preset, cell.nodes, cell.ppn)
    # A plain (non-tuner) cached benchmark at the tuner's fidelity...
    cached_bench_collective(
        "PiP-MColl", cell.collective, cell.nbytes, params,
        cache=cache, warmup=1, iters=1)
    base_evals = _count_base_evals(monkeypatch)
    sims = _count_sims(monkeypatch)
    db = search([cell], base_library="PiP-MColl", strategy="exhaustive",
                cache=cache.root)
    # ...the base eval executed, but resolved as a cache hit: every
    # actual simulation the search ran was for an explicit candidate.
    assert len(base_evals) == 1
    assert len(sims) == len(db.cells[cell.key()].trials) - 1


def test_checkpoint_and_result_cache_compose(tmp_path):
    ckpt = tmp_path / "ckpt.json"
    cache_dir = tmp_path / "cache"
    db1 = search(_cells(), strategy="halving", checkpoint=ckpt,
                 cache=cache_dir)
    db2 = search(_cells(), strategy="halving", checkpoint=ckpt,
                 cache=cache_dir)
    assert db1.dumps() == db2.dumps()
    assert ckpt.exists()
