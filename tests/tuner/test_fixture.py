"""Pinned-fixture drift gate: the committed tunedb must stay live.

``fixtures/small_test_allgather.tunedb.json`` is a committed search
result.  This test holds three things still:

* the file parses under the *current* schema (``load_db`` validates);
* re-running the exact search it records reproduces it byte-for-byte,
  up to the git-describe provenance stamp (which moves every commit);
* it still compiles into a working ``TunedLibrary``.

If a schema or model change breaks this test intentionally,
regenerate the fixture with the command in its provenance::

    python -m repro tune search --collective allgather --sizes 16,64 \
        --nodes 2 --ppn 2 --preset small_test --seed 0 \
        --out tests/tuner/fixtures/small_test_allgather.tunedb.json
"""

import json
from pathlib import Path

from repro.machine import small_test
from repro.tuner import (
    SCHEMA_VERSION,
    compile_db,
    load_db,
    make_cells,
    search,
)

FIXTURE = Path(__file__).parent / "fixtures" / \
    "small_test_allgather.tunedb.json"


def _normalized(dumps: str) -> str:
    doc = json.loads(dumps)
    doc["provenance"]["git"] = "<normalized>"
    return json.dumps(doc, indent=2, sort_keys=True)


def test_fixture_parses_under_current_schema():
    db = load_db(FIXTURE)
    assert db.schema == SCHEMA_VERSION
    assert db.preset == "small_test"
    assert set(db.cells) == {"allgather/16B@2x2", "allgather/64B@2x2"}


def test_fixture_reproduces_byte_for_byte():
    pinned = load_db(FIXTURE)
    fresh = search(
        make_cells("allgather", [16, 64], 2, 2, preset="small_test"),
        strategy="exhaustive", seed=0)
    assert _normalized(fresh.dumps()) == _normalized(pinned.dumps())


def test_fixture_compiles_and_selects():
    lib = compile_db(load_db(FIXTURE))
    assert lib.profile.name == "Tuned[PiP-MColl]"
    # the committed search flipped the 64 B cell to the ring schedule
    assert lib.algorithm("allgather", 64, 4).__name__ == \
        "mcoll_allgather_large"
    world = lib.make_world(small_test(nodes=2, ppn=2))
    assert world.comm_world.size == 4
