"""The generalised W-sender multi-object Bruck allgather."""

import numpy as np
import pytest

from repro.bench.harness import bench_collective
from repro.machine import small_test
from repro.mpilibs import make_library
from repro.pip.errors import AddressSpaceViolation
from repro.tuner import Candidate, ConfigError
from repro.tuner.algorithms import build_algorithm, mcoll_allgather_senders
from repro.tuner.evaluate import CandidateLibrary

BASE = make_library("PiP-MColl")


def _run_allgather(lib, nodes, ppn, nbytes=8):
    params = small_test(nodes=nodes, ppn=ppn)
    world = lib.make_world(params, functional=True)
    size = world.comm_world.size
    algo = lib.wrapped("allgather", nbytes, size)

    def program(ctx):
        send = ctx.alloc(nbytes)
        send.view().write(np.full(nbytes, ctx.rank % 251, dtype=np.uint8))
        recv = ctx.alloc(nbytes * size)
        yield from algo(ctx, send.view(), recv.view())
        return bytes(recv.view().read())

    return world.run(program), size


@pytest.mark.parametrize("nodes,ppn", [(3, 5), (4, 4), (5, 3), (2, 6), (7, 2)])
def test_all_sender_counts_are_byte_correct(nodes, ppn):
    for w in range(1, ppn + 1):
        lib = CandidateLibrary(BASE, "allgather", mcoll_allgather_senders(w))
        out, size = _run_allgather(lib, nodes, ppn)
        expect = b"".join(bytes([r % 251]) * 8 for r in range(size))
        for rank in range(size):
            assert out[rank] == expect, f"w={w} rank={rank}"


def test_w_equals_ppn_is_time_identical_to_stock():
    # senders = ppn *is* the paper's B_k = P + 1 schedule — same
    # transfers, same rounds, same simulated time as mcoll_allgather.
    params = small_test(nodes=5, ppn=3)
    tuned = CandidateLibrary(BASE, "allgather", mcoll_allgather_senders(3))
    a = bench_collective(tuned, "allgather", 64, params, iters=1)
    b = bench_collective("PiP-MColl", "allgather", 64, params, iters=1)
    assert a.latency_us == b.latency_us


def test_fewer_senders_trade_rounds_for_concurrency():
    # w=1 is plain Bruck over the staging buffer: log2(N) rounds on a
    # single lane — strictly slower than the full multi-object
    # schedule at this geometry, which is why the knob is worth tuning.
    params = small_test(nodes=8, ppn=4)
    w1 = CandidateLibrary(BASE, "allgather", mcoll_allgather_senders(1))
    w4 = CandidateLibrary(BASE, "allgather", mcoll_allgather_senders(4))
    a = bench_collective(w1, "allgather", 64, params, iters=1)
    b = bench_collective(w4, "allgather", 64, params, iters=1)
    assert a.latency_us != b.latency_us


def test_senders_clamped_to_ppn_at_runtime():
    lib = CandidateLibrary(BASE, "allgather", mcoll_allgather_senders(64))
    out, size = _run_allgather(lib, 3, 2)
    expect = b"".join(bytes([r % 251]) * 8 for r in range(size))
    assert all(out[r] == expect for r in range(size))


def test_requires_peer_view_transport():
    mpich = make_library("MPICH")
    lib = CandidateLibrary(mpich, "allgather", mcoll_allgather_senders(2))
    with pytest.raises(AddressSpaceViolation):
        _run_allgather(lib, 2, 2)


def test_builder_rejects_nonsense():
    with pytest.raises(ConfigError):
        mcoll_allgather_senders(0)
    with pytest.raises(ConfigError):
        build_algorithm(Candidate("warp_drive"), "allgather")
    assert build_algorithm(Candidate("base"), "allgather") is None


def test_builder_names_are_stable():
    assert build_algorithm(
        Candidate("mcoll_bruck", senders=18), "allgather"
    ).__name__ == "mcoll_bruck_w18"
    assert build_algorithm(
        Candidate("ring_pipeline", segment=4096), "bcast"
    ).__name__ == "bcast_ring_pipeline_s4096"
    assert build_algorithm(
        Candidate("mcoll_auto"), "allreduce"
    ).__name__ == "mcoll_allreduce_auto"
