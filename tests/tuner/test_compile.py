"""Compiled TunedLibrary: bucketing, fallback, registry, comparisons."""

import pytest

from repro.api import Session
from repro.bench.harness import bench_collective, run_sweep
from repro.collectives.tuning import (
    compare_tables,
    cutoffs,
    format_compare_tables,
    selection_table,
)
from repro.machine import small_test
from repro.mpilibs import (
    PAPER_LINEUP,
    available_libraries,
    make_library,
    register_library,
    unregister_library,
)
from repro.tuner import (
    CellResult,
    SchemaError,
    Trial,
    TuneDB,
    TunedLibrary,
    compile_db,
    search,
    Cell,
    SearchSpace,
)


def _result(collective, nbytes, best, nodes=2, ppn=2, latency=1.0):
    return CellResult(
        collective=collective, nbytes=nbytes, nodes=nodes, ppn=ppn,
        best=best, best_latency_us=latency, runner_up=None, margin_us=None,
        baseline_us=latency + 0.5,
        trials=[Trial(config=best, latency_us=latency)],
    )


def _db(results, base="PiP-MColl"):
    return TuneDB(
        base_library=base, preset="small_test",
        provenance={"machine_hash": "x", "git": "test", "seed": 0,
                    "strategy": "exhaustive"},
        cells={r.cell.key(): r for r in results},
    )


@pytest.fixture
def handmade():
    return compile_db(_db([
        _result("allgather", 16, {"algorithm": "mcoll_bruck", "senders": 1}),
        _result("allgather", 4096, {"algorithm": "mcoll_ring"}),
        _result("bcast", 16, {"algorithm": "ring_pipeline", "segment": 2048}),
        _result("allreduce", 16, {"algorithm": "base"}),
    ]))


def test_profile_mirrors_base(handmade):
    assert handmade.profile.name == "Tuned[PiP-MColl]"
    assert handmade.profile.intra == "pip"
    assert handmade.profile.call_overhead == \
        make_library("PiP-MColl").profile.call_overhead


def test_interval_bucketing(handmade):
    # 16 B cell governs [16, 4096); the 4096 B cell governs upward.
    assert handmade.algorithm("allgather", 16, 4).__name__ == "mcoll_bruck_w1"
    assert handmade.algorithm("allgather", 4095, 4).__name__ == "mcoll_bruck_w1"
    assert handmade.algorithm("allgather", 4096, 4).__name__ == \
        "mcoll_allgather_large"
    assert handmade.algorithm("allgather", 1 << 20, 4).__name__ == \
        "mcoll_allgather_large"


def test_below_smallest_and_uncovered_fall_back_to_base(handmade):
    base = make_library("PiP-MColl")
    # below the smallest tuned size → base's own pick
    assert handmade.algorithm("allgather", 8, 4).__name__ == \
        base.algorithm("allgather", 8, 4).__name__
    # untuned collective → base
    assert handmade.algorithm("scatter", 64, 4).__name__ == \
        base.algorithm("scatter", 64, 4).__name__
    # untuned world size → base
    assert handmade.algorithm("allgather", 16, 64).__name__ == \
        base.algorithm("allgather", 16, 64).__name__
    # winning family "base" → explicit delegation
    assert handmade.algorithm("allreduce", 16, 4).__name__ == \
        base.algorithm("allreduce", 16, 4).__name__


def test_segment_knob_reaches_the_algorithm(handmade):
    assert handmade.algorithm("bcast", 16, 4).__name__ == \
        "bcast_ring_pipeline_s2048"


def test_ambiguous_world_size_rejected():
    db = _db([
        _result("allgather", 16, {"algorithm": "ring"}, nodes=2, ppn=2),
        _result("allgather", 16, {"algorithm": "bruck"}, nodes=4, ppn=1),
    ])
    with pytest.raises(SchemaError, match="ambiguous"):
        compile_db(db)


def test_uniform_eager_limit_applied_mixed_rejected():
    lib = compile_db(_db([
        _result("allgather", 16,
                {"algorithm": "ring", "eager_limit": 256}),
    ]))
    params = small_test(nodes=2, ppn=2)
    world = lib.make_world(params)
    assert world.params.nic.eager_limit == 256

    mixed = _db([
        _result("allgather", 16, {"algorithm": "ring", "eager_limit": 256}),
        _result("allgather", 64, {"algorithm": "ring", "eager_limit": 512}),
    ])
    with pytest.raises(SchemaError, match="eager_limit"):
        compile_db(mixed)


def test_tuned_spec_resolves_everywhere(tmp_path):
    db = search([Cell("allgather", 64, 2, 2, preset="small_test")],
                space=SearchSpace("allgather", families=("mcoll_bruck",)))
    path = db.save(tmp_path / "t.tunedb.json")
    spec = f"tuned:{path}"

    lib = make_library(spec)
    assert isinstance(lib, TunedLibrary)

    point = bench_collective(spec, "allgather", 64, small_test(nodes=2, ppn=2),
                             iters=1)
    assert point.library == "Tuned[PiP-MColl]"
    assert point.latency_us == pytest.approx(
        db.cells["allgather/64B@2x2"].best_latency_us)

    session = Session(library=spec, params=small_test(nodes=2, ppn=2))
    assert session.library == "Tuned[PiP-MColl]"

    sweep = run_sweep("allgather", [64], small_test(nodes=2, ppn=2),
                      libraries=[spec, "MPICH"], iters=1)
    assert "Tuned[PiP-MColl]" in sweep.libraries
    assert sweep.latency("Tuned[PiP-MColl]", 64) > 0


def test_register_and_unregister_instance(handmade):
    name = register_library(handmade)
    try:
        assert name == "Tuned[PiP-MColl]"
        assert make_library(name) is handmade
        assert name in available_libraries(include_registered=True)
        # the default listing (what lineup tests pin) is unchanged
        assert set(available_libraries()) == set(PAPER_LINEUP)
    finally:
        unregister_library(name)
    with pytest.raises(KeyError):
        make_library(name)


def test_register_rejects_builtin_shadow_and_non_library(handmade):
    with pytest.raises(KeyError, match="built-in"):
        register_library(handmade, name="MPICH")
    with pytest.raises(TypeError):
        register_library("PiP-MColl")


def test_miss_error_lists_known_names_and_spec_form(handmade):
    name = register_library(handmade, name="MyTuned")
    try:
        with pytest.raises(KeyError) as err:
            make_library("CrayMPI")
        msg = str(err.value)
        assert "MPICH" in msg and "MyTuned" in msg and "tuned:" in msg
    finally:
        unregister_library("MyTuned")


def test_make_library_accepts_instances(handmade):
    assert make_library(handmade) is handmade
    with pytest.raises(TypeError):
        make_library(42)


def test_selection_table_accepts_tuned_library(handmade):
    rows = selection_table(handmade, "allgather", 4)
    assert rows[0].algorithm == "mcoll_bruck_w1"  # 16 B
    cuts = cutoffs(handmade, "allgather", 4)
    assert ("mcoll_allgather_large" in {name for _, name in cuts})


def test_compare_tables_reports_flips_and_gains(handmade):
    flipped = compare_tables("PiP-MColl", handmade, 4)
    assert flipped, "handmade DB deliberately flips cells"
    ag16 = next(f for f in flipped
                if f.collective == "allgather" and f.nbytes == 16)
    assert ag16.stock_algorithm == "mcoll_allgather"
    assert ag16.tuned_algorithm == "mcoll_bruck_w1"
    # the DB carries baseline measurements → predicted gain is present
    assert ag16.predicted_gain_us == pytest.approx(-0.5)
    text = format_compare_tables(flipped)
    assert "mcoll_bruck_w1" in text and "µs" in text
    assert format_compare_tables([]).startswith("tuned tables agree")


def test_compiled_winner_latency_reproduces(tmp_path):
    # The latency the DB recorded for the winner is exactly what the
    # compiled library produces on the same machine (determinism of
    # the whole search → compile → run pipeline).
    cell = Cell("allgather", 64, 4, 4, preset="small_test")
    db = search([cell], space=SearchSpace(
        "allgather", families=("mcoll_bruck", "ring", "bruck")))
    lib = compile_db(db)
    point = bench_collective(lib, "allgather", 64,
                             small_test(nodes=4, ppn=4), iters=1)
    assert point.latency_us == pytest.approx(
        db.cells[cell.key()].best_latency_us, rel=1e-12)
