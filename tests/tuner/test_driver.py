"""Search driver: determinism, strategies, checkpointing, fan-out."""

import json

import pytest

from repro.tuner import Cell, ConfigError, SearchSpace, search
from repro.tuner.driver import _halving_rungs

#: small space so driver tests stay fast
SMALL = SearchSpace("allgather", families=("mcoll_bruck", "ring", "bruck"))


def _cells(sizes=(64,), nodes=2, ppn=2):
    return [Cell("allgather", n, nodes, ppn, preset="small_test")
            for n in sizes]


def test_same_seed_byte_identical_db():
    a = search(_cells((64, 256)), space=SMALL, seed=0)
    b = search(_cells((64, 256)), space=SMALL, seed=0)
    assert a.dumps() == b.dumps()


def test_winner_never_loses_to_base():
    db = search(_cells((64, 4096)), space=SMALL)
    for result in db.cells.values():
        assert result.baseline_us is not None
        assert result.best_latency_us <= result.baseline_us


def test_exhaustive_recovers_paper_radix():
    # At w=ppn the generalised schedule is the paper's B_k = P + 1 and
    # ties the base library exactly; the tie-break reports the
    # explicit discovery, not "base".
    db = search(_cells((64,), nodes=4, ppn=4), space=SMALL)
    best = db.cells["allgather/64B@4x4"].best
    assert best["algorithm"] == "mcoll_bruck"
    assert best["senders"] == 4


def test_trials_record_every_candidate_with_margin():
    db = search(_cells((64,)), space=SMALL)
    result = db.cells["allgather/64B@2x2"]
    configs = {json.dumps(t.config, sort_keys=True) for t in result.trials}
    assert len(configs) == len(result.trials)  # no duplicates
    assert result.runner_up is not None
    assert result.margin_us is not None and result.margin_us >= 0
    # trials are ranked: first trial is the winner
    assert result.trials[0].config == result.best


def test_halving_matches_exhaustive_winner_on_small_grid():
    cells = _cells((64,), nodes=8, ppn=2)
    ex = search(cells, space=SMALL, strategy="exhaustive")
    ha = search(cells, space=SMALL, strategy="halving")
    key = "allgather/64B@8x2"
    assert ha.cells[key].best == ex.cells[key].best
    assert ha.provenance["strategy"] == "halving"


def test_halving_rungs_ascend_to_full_fidelity():
    assert _halving_rungs(16) == [4, 8, 16]
    assert _halving_rungs(8) == [2, 4, 8]
    assert _halving_rungs(2) == [2]


def test_hill_deterministic_and_never_below_base():
    cells = _cells((64,), nodes=4, ppn=4)
    a = search(cells, space=SMALL, strategy="hill", seed=3)
    b = search(cells, space=SMALL, strategy="hill", seed=3)
    assert a.dumps() == b.dumps()
    result = a.cells["allgather/64B@4x4"]
    assert result.best_latency_us <= result.baseline_us


def test_checkpoint_resume_equivalence(tmp_path):
    cells = _cells((64, 256))
    plain = search(cells, space=SMALL)

    # First run writes the checkpoint...
    ckpt = tmp_path / "search.ckpt.json"
    first = search(cells, space=SMALL, checkpoint=ckpt)
    assert ckpt.exists()
    payload = json.loads(ckpt.read_text())
    assert payload["version"] == 1 and payload["evals"]

    # ...the resumed run replays it (drop one cell's evals to prove the
    # cache is actually consulted per cell) and lands on the same DB.
    payload["evals"].pop("allgather/256B@2x2")
    ckpt.write_text(json.dumps(payload))
    resumed = search(cells, space=SMALL, checkpoint=ckpt)
    assert resumed.dumps() == first.dumps() == plain.dumps()


def test_workers_do_not_change_the_db():
    cells = _cells((64,))
    serial = search(cells, space=SMALL, workers=1)
    parallel = search(cells, space=SMALL, workers=2)
    assert parallel.dumps() == serial.dumps()


def test_failing_candidates_are_data_not_crashes():
    # recursive_doubling enters the pool at 2x2 (pow2 world) but the
    # space may also include it where the runtime rejects it; simulate
    # by tuning a non-pow2 world with a space that only enumerates
    # valid candidates — invalid ones never reach evaluation.
    cells = _cells((64,), nodes=3, ppn=2)
    db = search(cells, space=SearchSpace(
        "allgather", families=("mcoll_bruck", "recursive_doubling")))
    result = db.cells["allgather/64B@3x2"]
    assert all(t.latency_us is not None for t in result.trials)
    assert not any(t.config.get("algorithm") == "recursive_doubling"
                   for t in result.trials)


def test_search_rejects_bad_inputs():
    with pytest.raises(ConfigError, match="strategy"):
        search(_cells((64,)), strategy="annealing")
    with pytest.raises(ConfigError, match="no cells"):
        search([])
    mixed = [Cell("allgather", 64, 2, 2, preset="small_test"),
             Cell("allgather", 64, 2, 2, preset="broadwell_opa")]
    with pytest.raises(ConfigError, match="preset"):
        search(mixed)


def test_timeout_is_recorded_not_raised():
    # An absurdly small budget forces the timeout path; the search
    # must still finish because the base candidate has no timeout racer
    # faster than... actually all candidates time out → ConfigError
    # naming the errors, which is the defined behaviour.
    cells = _cells((64,))
    try:
        db = search(cells, space=SMALL, timeout_s=1e-9)
    except ConfigError as exc:
        assert "timeout" in str(exc)
    else:  # a machine fast enough to finish in 1 ns doesn't exist,
        # but the contract either way is: no crash, winner measured
        for result in db.cells.values():
            assert result.best_latency_us is not None
