"""Search-space declaration: enumeration, constraints, neighbourhoods."""

import pytest

from repro.tuner import (
    BASE_FAMILY,
    Candidate,
    Cell,
    ConfigError,
    SearchSpace,
    default_senders,
    make_cells,
    validate_candidate,
)


def test_default_senders_ladder_ends_at_ppn():
    # Geometric rungs up to ppn/2, then the paper's all-lanes top rung.
    assert default_senders(18) == (1, 2, 4, 8, 18)
    assert default_senders(16) == (1, 2, 4, 8, 16)
    assert default_senders(4) == (1, 2, 4)
    assert default_senders(1) == (1,)


def test_cell_key_and_roundtrip():
    cell = Cell("allgather", 64, 16, 18)
    assert cell.key() == "allgather/64B@16x18"
    assert Cell.from_dict(cell.as_dict()) == cell
    assert cell.world_size == 288


def test_cell_rejects_bad_geometry():
    with pytest.raises(ConfigError):
        Cell("allgather", -1, 4, 4)
    with pytest.raises(ConfigError):
        Cell("allgather", 64, 0, 4)


def test_candidate_key_is_canonical_and_radix_derived():
    cand = Candidate("mcoll_bruck", senders=18)
    assert cand.key() == "algorithm=mcoll_bruck,senders=18"
    assert cand.radix == 19  # the paper's B_k = P + 1 at ppn=18
    assert Candidate.from_dict(cand.as_dict()) == cand


def test_candidate_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError):
        Candidate.from_dict({"algorithm": "ring", "radix": 5})
    with pytest.raises(ConfigError):
        Candidate.from_dict({"senders": 4})


@pytest.mark.parametrize("cand,ok", [
    (Candidate("mcoll_bruck", senders=4), True),
    (Candidate("mcoll_bruck", senders=5), False),   # senders > ppn
    (Candidate("mcoll_bruck", senders=0), False),
    (Candidate("mcoll_bruck"), False),              # knob required
    (Candidate("ring"), True),
    (Candidate("ring", senders=2), False),          # knob not taken
    (Candidate(BASE_FAMILY), True),
    (Candidate(BASE_FAMILY, senders=2), False),
    (Candidate("nonexistent"), False),
])
def test_validate_allgather_candidates(cand, ok):
    cell = Cell("allgather", 64, 4, 4)
    if ok:
        validate_candidate(cand, cell)
    else:
        with pytest.raises(ConfigError):
            validate_candidate(cand, cell)


def test_radix_bound_is_p_plus_one():
    # senders ≤ ppn ⇔ radix ≤ P + 1: the paper's constraint.
    cell = Cell("allgather", 64, 8, 6)
    validate_candidate(Candidate("mcoll_bruck", senders=6), cell)
    with pytest.raises(ConfigError, match="radix"):
        validate_candidate(Candidate("mcoll_bruck", senders=7), cell)


def test_pow2_families_need_pow2_world():
    ok = Cell("allgather", 64, 4, 4)       # 16 ranks
    bad = Cell("allgather", 64, 3, 5)      # 15 ranks
    validate_candidate(Candidate("recursive_doubling"), ok)
    with pytest.raises(ConfigError, match="power-of-two"):
        validate_candidate(Candidate("recursive_doubling"), bad)


def test_peer_view_families_need_pip_transport():
    cell = Cell("allgather", 64, 4, 4)
    with pytest.raises(ConfigError, match="peer-view"):
        validate_candidate(Candidate("mcoll_bruck", senders=4), cell,
                           peer_views=False)


def test_segment_knob_validation():
    cell = Cell("bcast", 1024, 4, 4)
    validate_candidate(Candidate("ring_pipeline", segment=8192), cell)
    with pytest.raises(ConfigError):
        validate_candidate(Candidate("ring_pipeline"), cell)
    with pytest.raises(ConfigError):
        validate_candidate(Candidate("ring_pipeline", segment=0), cell)
    with pytest.raises(ConfigError):
        validate_candidate(Candidate("binomial", segment=8192), cell)


def test_eager_limit_must_be_nonnegative():
    cell = Cell("allgather", 64, 4, 4)
    validate_candidate(Candidate("ring", eager_limit=0), cell)
    with pytest.raises(ConfigError):
        validate_candidate(Candidate("ring", eager_limit=-1), cell)


def test_enumeration_filters_invalid_and_sorts():
    cell = Cell("allgather", 64, 3, 5)  # 15 ranks: no pow2 families
    pool = SearchSpace.default("allgather").candidates(cell)
    keys = [c.key() for c in pool]
    assert keys == sorted(keys)
    assert not any("recursive_doubling" in k for k in keys)
    assert f"algorithm={BASE_FAMILY}" in keys
    # the coarse sender ladder survives (pow2 ≤ ppn/2, then ppn)
    senders = [c.senders for c in pool if c.algorithm == "mcoll_bruck"]
    assert senders == [1, 2, 5]


def test_enumeration_without_peer_views_drops_mcoll():
    cell = Cell("allgather", 64, 4, 4)
    pool = SearchSpace.default("allgather").candidates(cell,
                                                      peer_views=False)
    assert all(not c.algorithm.startswith("mcoll") for c in pool)
    assert pool  # flat families remain


def test_unknown_collective_has_no_space():
    with pytest.raises(ConfigError, match="tunable"):
        SearchSpace.default("allgatherv")


def test_neighbors_are_one_knob_steps_or_family_defaults():
    cell = Cell("allgather", 64, 4, 4)
    pool = SearchSpace.default("allgather").candidates(cell)
    space = SearchSpace.default("allgather")
    cand = next(c for c in pool
                if c.algorithm == "mcoll_bruck" and c.senders == 2)
    neigh = space.neighbors(cand, pool)
    assert cand not in neigh
    for n in neigh:
        if n.algorithm == cand.algorithm:
            assert n.senders != cand.senders  # the one changed knob
        else:
            # cross-family moves land on the family's default knobs
            assert n.eager_limit is None
    # the paper's w=ppn rung is reachable from w=2 in one move
    assert Candidate("mcoll_bruck", senders=4) in neigh


def test_make_cells_grid():
    cells = make_cells("allgather", [16, 64], 16, 18)
    assert [c.key() for c in cells] == [
        "allgather/16B@16x18", "allgather/64B@16x18",
    ]
