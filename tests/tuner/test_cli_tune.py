"""``python -m repro tune`` subcommands."""

import json

import pytest

from repro.cli import main
from repro.tuner import load_db


def _search(tmp_path, out="db.tunedb.json", extra=()):
    path = tmp_path / out
    rc = main([
        "tune", "search", "--collective", "allgather",
        "--sizes", "64", "--nodes", "2", "--ppn", "2",
        "--preset", "small_test", "--seed", "0",
        "--out", str(path), *extra,
    ])
    assert rc == 0
    return path


def test_search_writes_valid_db(tmp_path, capsys):
    path = _search(tmp_path)
    out = capsys.readouterr().out
    assert "winner" in out and str(path) in out
    db = load_db(path)
    assert db.preset == "small_test"
    assert "allgather/64B@2x2" in db.cells


def test_search_is_reproducible(tmp_path):
    a = _search(tmp_path, "a.tunedb.json").read_bytes()
    b = _search(tmp_path, "b.tunedb.json").read_bytes()
    assert a == b


def test_search_with_checkpoint_resumes(tmp_path):
    ckpt = tmp_path / "search.ckpt.json"
    first = _search(tmp_path, "a.tunedb.json",
                    extra=("--checkpoint", str(ckpt)))
    assert json.loads(ckpt.read_text())["evals"]
    second = _search(tmp_path, "b.tunedb.json",
                     extra=("--checkpoint", str(ckpt)))
    assert first.read_bytes() == second.read_bytes()


def test_show_and_diff(tmp_path, capsys):
    path = _search(tmp_path)
    assert main(["tune", "show", str(path)]) == 0
    assert "base=PiP-MColl" in capsys.readouterr().out

    assert main(["tune", "diff", str(path), str(path)]) == 0
    assert "agree" in capsys.readouterr().out
    assert main(["tune", "diff", str(path), str(path), "--strict"]) == 0


def test_merge(tmp_path, capsys):
    a = _search(tmp_path, "a.tunedb.json")
    out = tmp_path / "merged.tunedb.json"
    assert main(["tune", "merge", str(a), str(a), "--out", str(out)]) == 0
    assert "merged 2 databases" in capsys.readouterr().out
    assert load_db(out).cells


def test_compile_and_compare(tmp_path, capsys):
    path = _search(tmp_path)
    assert main(["tune", "compile", str(path), "--compare"]) == 0
    out = capsys.readouterr().out
    assert "Tuned[PiP-MColl]" in out
    assert "allgather/64B@2x2" in out
    assert "flipped cells" in out


def test_bench_accepts_tuned_spec(tmp_path, capsys):
    path = _search(tmp_path)
    rc = main(["bench", "--library", f"tuned:{path}",
               "--collective", "allgather", "--size", "64",
               "--preset", "small_test", "--nodes", "2", "--ppn", "2",
               "--iters", "1"])
    assert rc == 0
    assert "Tuned[PiP-MColl] allgather" in capsys.readouterr().out


def test_bench_still_rejects_unknown_library():
    with pytest.raises(SystemExit):
        main(["bench", "--library", "NotALib"])
