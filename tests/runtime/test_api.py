"""Tests for the mpi4py-style facade (repro.api)."""

import numpy as np
import pytest

from repro.api import VComm, run_app
from repro.machine import small_test
from repro.mpilibs import PAPER_LINEUP
from repro.runtime.ops import MAX


def test_send_recv_roundtrip():
    def app(comm):
        data = np.arange(10, dtype=np.float64)
        if comm.rank == 0:
            yield from comm.Send(data * 2, dest=1, tag=3)
            return None
        if comm.rank == 1:
            out = np.empty(10, dtype=np.float64)
            status = yield from comm.Recv(out, source=0, tag=3)
            return (status.source, out.tolist())
        return None

    results = run_app(app, nodes=1, ppn=2)
    assert results[1] == (0, (np.arange(10) * 2.0).tolist())


def test_sendrecv_ring():
    def app(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        mine = np.array([comm.rank], dtype=np.int64)
        got = np.empty(1, dtype=np.int64)
        yield from comm.Sendrecv(mine, right, 0, got, left, 0)
        return int(got[0])

    assert run_app(app, nodes=2, ppn=2) == [3, 0, 1, 2]


def test_bcast_in_place():
    def app(comm):
        data = (np.arange(6, dtype=np.int32) + 5 if comm.rank == 2
                else np.zeros(6, dtype=np.int32))
        yield from comm.Bcast(data, root=2)
        return data.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == list(range(5, 11)) for r in results)


def test_scatter_gather_roundtrip():
    def app(comm):
        send = (np.arange(comm.size * 3, dtype=np.float64)
                if comm.rank == 0 else None)
        block = np.empty(3, dtype=np.float64)
        yield from comm.Scatter(send, block, root=0)
        block += 100.0
        out = np.empty(comm.size * 3, dtype=np.float64) if comm.rank == 0 else None
        yield from comm.Gather(block, out, root=0)
        return out.tolist() if comm.rank == 0 else block.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert results[0] == (np.arange(12) + 100.0).tolist()
    assert results[1] == [103.0, 104.0, 105.0]


def test_allgather():
    def app(comm):
        mine = np.full(2, comm.rank, dtype=np.int64)
        out = np.empty(2 * comm.size, dtype=np.int64)
        yield from comm.Allgather(mine, out)
        return out.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0, 0, 1, 1, 2, 2, 3, 3] for r in results)


@pytest.mark.parametrize("library", PAPER_LINEUP)
def test_allreduce_same_answer_under_every_library(library):
    def app(comm):
        data = np.arange(4, dtype=np.float64) * (comm.rank + 1)
        total = np.empty_like(data)
        yield from comm.Allreduce(data, total)
        return total.tolist()

    results = run_app(app, library=library, nodes=2, ppn=2)
    want = (np.arange(4) * (1 + 2 + 3 + 4)).astype(float).tolist()
    assert all(r == want for r in results)


def test_allreduce_max_and_dtype_mismatch():
    def app(comm):
        data = np.array([comm.rank * 1.5], dtype=np.float64)
        out = np.empty(1, dtype=np.float64)
        yield from comm.Allreduce(data, out, op=MAX)
        return float(out[0])

    assert run_app(app, nodes=1, ppn=3) == [3.0, 3.0, 3.0]

    def bad(comm):
        yield from comm.Allreduce(np.zeros(2, np.float64), np.zeros(2, np.float32))

    with pytest.raises(ValueError, match="share a dtype"):
        run_app(bad, nodes=1, ppn=2)


def test_reduce_to_root():
    def app(comm):
        data = np.full(3, comm.rank + 1, dtype=np.int64)
        out = np.empty(3, dtype=np.int64) if comm.rank == 1 else None
        yield from comm.Reduce(data, out, root=1)
        return out.tolist() if comm.rank == 1 else None

    results = run_app(app, nodes=1, ppn=4)
    assert results[1] == [10, 10, 10]


def test_alltoall():
    def app(comm):
        send = np.array([comm.rank * 10 + j for j in range(comm.size)],
                        dtype=np.int64)
        recv = np.empty(comm.size, dtype=np.int64)
        yield from comm.Alltoall(send, recv)
        return recv.tolist()

    results = run_app(app, nodes=2, ppn=2)
    for i, row in enumerate(results):
        assert row == [j * 10 + i for j in range(4)]


def test_barrier_and_properties():
    def app(comm):
        assert comm.size == 4
        assert comm.ctx.rank == comm.rank
        yield from comm.Barrier()
        return (comm.rank, comm.node, comm.now > 0)

    results = run_app(app, nodes=2, ppn=2)
    assert [r[0] for r in results] == [0, 1, 2, 3]
    assert [r[1] for r in results] == [0, 0, 1, 1]
    assert all(r[2] for r in results)


def test_custom_params():
    from repro.machine import skylake_ib

    def app(comm):
        yield from comm.Barrier()
        return comm.size

    assert run_app(app, params=skylake_ib(nodes=2, ppn=3)) == [6] * 6


def test_allgatherv_facade():
    def app(comm):
        counts = [r + 1 for r in range(comm.size)]
        mine = np.full(counts[comm.rank], comm.rank, dtype=np.int64)
        out = np.empty(sum(counts), dtype=np.int64)
        yield from comm.Allgatherv(mine, out, counts)
        return out.tolist()

    results = run_app(app, nodes=2, ppn=2)
    want = [0, 1, 1, 2, 2, 2, 3, 3, 3, 3]
    assert all(r == want for r in results)


def test_gatherv_scatterv_facade_roundtrip():
    def app(comm):
        counts = [2 * (r + 1) for r in range(comm.size)]
        total = sum(counts)
        send = (np.arange(total, dtype=np.float64)
                if comm.rank == 0 else None)
        block = np.empty(counts[comm.rank], dtype=np.float64)
        yield from comm.Scatterv(send, counts if comm.rank == 0 else None,
                                 block, root=0)
        block *= -1.0
        out = np.empty(total, dtype=np.float64) if comm.rank == 0 else None
        yield from comm.Gatherv(block, out,
                                counts=counts if comm.rank == 0 else None,
                                root=0)
        return out.tolist() if comm.rank == 0 else block.tolist()

    results = run_app(app, nodes=1, ppn=3)
    total = sum(2 * (r + 1) for r in range(3))
    assert results[0] == (-np.arange(total, dtype=float)).tolist()


def test_istart_wait_overlap():
    def app(comm):
        mine = np.full(4, comm.rank, dtype=np.int64)
        out = np.empty(4 * comm.size, dtype=np.int64)
        req = comm.Istart(comm.Allgather(mine, out))
        yield from comm.ctx.compute(1e-6)
        yield from comm.Wait(req)
        return out[::4].tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0, 1, 2, 3] for r in results)
