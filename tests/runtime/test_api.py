"""Tests for the mpi4py-style facade (repro.api)."""

import numpy as np
import pytest

from repro.api import VComm, run_app
from repro.machine import small_test
from repro.mpilibs import PAPER_LINEUP
from repro.runtime.ops import MAX

# run_app is a deprecated alias (exercised on purpose throughout this
# module — it must keep behaving identically to Session); the dedicated
# test below asserts the warning itself.
pytestmark = pytest.mark.filterwarnings("ignore:run_app")


def test_send_recv_roundtrip():
    def app(comm):
        data = np.arange(10, dtype=np.float64)
        if comm.rank == 0:
            yield from comm.Send(data * 2, dest=1, tag=3)
            return None
        if comm.rank == 1:
            out = np.empty(10, dtype=np.float64)
            status = yield from comm.Recv(out, source=0, tag=3)
            return (status.source, out.tolist())
        return None

    results = run_app(app, nodes=1, ppn=2)
    assert results[1] == (0, (np.arange(10) * 2.0).tolist())


def test_sendrecv_ring():
    def app(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        mine = np.array([comm.rank], dtype=np.int64)
        got = np.empty(1, dtype=np.int64)
        yield from comm.Sendrecv(mine, right, 0, got, left, 0)
        return int(got[0])

    assert run_app(app, nodes=2, ppn=2) == [3, 0, 1, 2]


def test_bcast_in_place():
    def app(comm):
        data = (np.arange(6, dtype=np.int32) + 5 if comm.rank == 2
                else np.zeros(6, dtype=np.int32))
        yield from comm.Bcast(data, root=2)
        return data.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == list(range(5, 11)) for r in results)


def test_scatter_gather_roundtrip():
    def app(comm):
        send = (np.arange(comm.size * 3, dtype=np.float64)
                if comm.rank == 0 else None)
        block = np.empty(3, dtype=np.float64)
        yield from comm.Scatter(send, block, root=0)
        block += 100.0
        out = np.empty(comm.size * 3, dtype=np.float64) if comm.rank == 0 else None
        yield from comm.Gather(block, out, root=0)
        return out.tolist() if comm.rank == 0 else block.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert results[0] == (np.arange(12) + 100.0).tolist()
    assert results[1] == [103.0, 104.0, 105.0]


def test_allgather():
    def app(comm):
        mine = np.full(2, comm.rank, dtype=np.int64)
        out = np.empty(2 * comm.size, dtype=np.int64)
        yield from comm.Allgather(mine, out)
        return out.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0, 0, 1, 1, 2, 2, 3, 3] for r in results)


@pytest.mark.parametrize("library", PAPER_LINEUP)
def test_allreduce_same_answer_under_every_library(library):
    def app(comm):
        data = np.arange(4, dtype=np.float64) * (comm.rank + 1)
        total = np.empty_like(data)
        yield from comm.Allreduce(data, total)
        return total.tolist()

    results = run_app(app, library=library, nodes=2, ppn=2)
    want = (np.arange(4) * (1 + 2 + 3 + 4)).astype(float).tolist()
    assert all(r == want for r in results)


def test_allreduce_max_and_dtype_mismatch():
    def app(comm):
        data = np.array([comm.rank * 1.5], dtype=np.float64)
        out = np.empty(1, dtype=np.float64)
        yield from comm.Allreduce(data, out, op=MAX)
        return float(out[0])

    assert run_app(app, nodes=1, ppn=3) == [3.0, 3.0, 3.0]

    def bad(comm):
        yield from comm.Allreduce(np.zeros(2, np.float64), np.zeros(2, np.float32))

    with pytest.raises(ValueError, match="share a dtype"):
        run_app(bad, nodes=1, ppn=2)


def test_reduce_to_root():
    def app(comm):
        data = np.full(3, comm.rank + 1, dtype=np.int64)
        out = np.empty(3, dtype=np.int64) if comm.rank == 1 else None
        yield from comm.Reduce(data, out, root=1)
        return out.tolist() if comm.rank == 1 else None

    results = run_app(app, nodes=1, ppn=4)
    assert results[1] == [10, 10, 10]


def test_alltoall():
    def app(comm):
        send = np.array([comm.rank * 10 + j for j in range(comm.size)],
                        dtype=np.int64)
        recv = np.empty(comm.size, dtype=np.int64)
        yield from comm.Alltoall(send, recv)
        return recv.tolist()

    results = run_app(app, nodes=2, ppn=2)
    for i, row in enumerate(results):
        assert row == [j * 10 + i for j in range(4)]


def test_barrier_and_properties():
    def app(comm):
        assert comm.size == 4
        assert comm.ctx.rank == comm.rank
        yield from comm.Barrier()
        return (comm.rank, comm.node, comm.now > 0)

    results = run_app(app, nodes=2, ppn=2)
    assert [r[0] for r in results] == [0, 1, 2, 3]
    assert [r[1] for r in results] == [0, 0, 1, 1]
    assert all(r[2] for r in results)


def test_custom_params():
    from repro.machine import skylake_ib

    def app(comm):
        yield from comm.Barrier()
        return comm.size

    assert run_app(app, params=skylake_ib(nodes=2, ppn=3)) == [6] * 6


def test_allgatherv_facade():
    def app(comm):
        counts = [r + 1 for r in range(comm.size)]
        mine = np.full(counts[comm.rank], comm.rank, dtype=np.int64)
        out = np.empty(sum(counts), dtype=np.int64)
        yield from comm.Allgatherv(mine, out, counts)
        return out.tolist()

    results = run_app(app, nodes=2, ppn=2)
    want = [0, 1, 1, 2, 2, 2, 3, 3, 3, 3]
    assert all(r == want for r in results)


def test_gatherv_scatterv_facade_roundtrip():
    def app(comm):
        counts = [2 * (r + 1) for r in range(comm.size)]
        total = sum(counts)
        send = (np.arange(total, dtype=np.float64)
                if comm.rank == 0 else None)
        block = np.empty(counts[comm.rank], dtype=np.float64)
        yield from comm.Scatterv(send, counts if comm.rank == 0 else None,
                                 block, root=0)
        block *= -1.0
        out = np.empty(total, dtype=np.float64) if comm.rank == 0 else None
        yield from comm.Gatherv(block, out,
                                counts=counts if comm.rank == 0 else None,
                                root=0)
        return out.tolist() if comm.rank == 0 else block.tolist()

    results = run_app(app, nodes=1, ppn=3)
    total = sum(2 * (r + 1) for r in range(3))
    assert results[0] == (-np.arange(total, dtype=float)).tolist()


def test_iallgather_wait_overlap():
    def app(comm):
        mine = np.full(4, comm.rank, dtype=np.int64)
        out = np.empty(4 * comm.size, dtype=np.int64)
        req = comm.Iallgather(mine, out)
        yield from comm.ctx.compute(1e-6)
        yield from comm.Wait(req)
        return out[::4].tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0, 1, 2, 3] for r in results)


def test_istart_is_gone():
    # Removed in the entry-point migration: the generic
    # Istart(generator) form is replaced by the I-prefixed collectives.
    def app(comm):
        assert not hasattr(comm, "Istart")
        yield from comm.Barrier()

    run_app(app, nodes=1, ppn=2)


# -- Session / RunResult ---------------------------------------------------


def test_session_returns_run_result():
    from repro.api import RunResult, Session

    def app(comm):
        yield from comm.Barrier()
        return comm.rank * 10

    session = Session(library="PiP-MColl", nodes=2, ppn=2)
    result = session.run(app)
    assert isinstance(result, RunResult)
    assert result.values == [0, 10, 20, 30]
    # sequence protocol matches the old run_app list
    assert len(result) == 4 and result[2] == 20
    assert list(result) == result.values
    assert result.elapsed > 0
    assert result.library == "PiP-MColl"
    assert result.trace is not None and len(result.trace.spans) > 0
    assert result.metrics is not None
    assert result.stats["sim_events"] > 0


def test_session_is_reusable():
    from repro.api import Session

    def app(comm):
        yield from comm.Barrier()
        return comm.now

    session = Session(library="MPICH", nodes=1, ppn=2)
    a, b = session.run(app), session.run(app)
    assert a.values == b.values  # fresh world each run — deterministic
    assert a.world is not b.world


def test_session_untraced_has_no_artifacts():
    from repro.api import Session

    def app(comm):
        yield from comm.Barrier()
        return comm.rank

    result = Session(nodes=1, ppn=2, trace=False).run(app)
    assert result.trace is None and result.metrics is None
    with pytest.raises(RuntimeError, match="not traced"):
        result.to_perfetto()


def test_run_app_stays_a_plain_list():
    def app(comm):
        yield from comm.Barrier()
        return comm.rank

    results = run_app(app, nodes=1, ppn=2)
    assert type(results) is list
    assert results == [0, 1]


@pytest.mark.filterwarnings("error:run_app")
def test_run_app_warns_deprecation():
    def app(comm):
        yield from comm.Barrier()
        return comm.rank

    with pytest.warns(DeprecationWarning, match="run_app"):
        results = run_app(app, nodes=1, ppn=2)
    assert results == [0, 1]


def test_session_accepts_engine():
    from repro.api import Session
    from repro.sim.spec import EngineSpec

    def app(comm):
        mine = np.full(2, comm.rank, dtype=np.int64)
        out = np.empty(2 * comm.size, dtype=np.int64)
        yield from comm.Allgather(mine, out)
        return out[::2].tolist()

    ref = Session(nodes=2, ppn=2, trace=False, engine="reference").run(app)
    cal = Session(nodes=2, ppn=2, trace=False, engine="calendar").run(app)
    assert ref.values == cal.values
    assert isinstance(ref.engine, EngineSpec)
    assert ref.engine.name == "reference"
    assert cal.engine.name == "calendar"


def test_session_traced_downgrades_sharded():
    # trace=True attaches a span recorder, which the engine resolution
    # must see: sharded falls back to calendar instead of erroring.
    from repro.api import Session

    def app(comm):
        yield from comm.Barrier()
        return comm.rank

    result = Session(nodes=2, ppn=2, trace=True, engine="sharded").run(app)
    assert result.values == [0, 1, 2, 3]
    assert result.engine.name == "calendar"
    assert any("span recorder" in d for d in result.engine.downgrades)
    assert result.trace is not None


# -- Split -----------------------------------------------------------------


def test_split_subcommunicator():
    def app(comm):
        sub = yield from comm.Split(comm.rank % 2, key=comm.rank)
        assert sub.size == comm.size // 2
        mine = np.full(1, comm.rank, dtype=np.int64)
        out = np.empty(sub.size, dtype=np.int64)
        yield from sub.Allgather(mine, out)
        return (sub.rank, out.tolist())

    results = run_app(app, nodes=2, ppn=2)
    assert results[0] == (0, [0, 2])
    assert results[1] == (0, [1, 3])
    assert results[2] == (1, [0, 2])
    assert results[3] == (1, [1, 3])


@pytest.mark.parametrize("library", ["PiP-MColl", "MPICH"])
def test_split_collectives_work_under_any_library(library):
    """PiP-MColl's COMM_WORLD-only algorithms must not leak onto split
    communicators — the library falls back to flat algorithms there."""

    def app(comm):
        sub = yield from comm.Split(comm.node)
        data = np.full(2, comm.rank + 1, dtype=np.float64)
        total = np.empty_like(data)
        yield from sub.Allreduce(data, total)
        yield from sub.Barrier()
        return total[0]

    results = run_app(app, library=library, nodes=2, ppn=2)
    assert results == [3.0, 3.0, 7.0, 7.0]


def test_split_undefined_color():
    def app(comm):
        sub = yield from comm.Split(None if comm.rank == 0 else 1)
        if comm.rank == 0:
            return sub
        return sub.size

    results = run_app(app, nodes=1, ppn=3)
    assert results == [None, 2, 2]


# -- first-class nonblocking collectives -----------------------------------


def test_iallgather_wait():
    def app(comm):
        mine = np.full(4, comm.rank, dtype=np.int64)
        out = np.empty(4 * comm.size, dtype=np.int64)
        req = comm.Iallgather(mine, out)
        yield from comm.ctx.compute(1e-6)
        yield from comm.Wait(req)
        return out[::4].tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0, 1, 2, 3] for r in results)


def test_ibcast_and_iallreduce():
    def app(comm):
        data = np.full(3, comm.rank, dtype=np.float64)
        req = comm.Ibcast(data, root=1)
        yield from comm.Wait(req)
        total = np.empty(3, dtype=np.float64)
        req = comm.Iallreduce(np.full(3, comm.rank, dtype=np.float64), total)
        yield from comm.Wait(req)
        return (data[0], total[0])

    results = run_app(app, nodes=1, ppn=4)
    assert all(r == (1.0, 6.0) for r in results)


def test_ibarrier():
    def app(comm):
        req = comm.Ibarrier()
        yield from comm.Wait(req)
        return comm.now > 0

    assert all(run_app(app, nodes=1, ppn=2))


# -- new collective surface ------------------------------------------------


def test_reduce_scatter_facade():
    def app(comm):
        send = np.arange(comm.size * 2, dtype=np.float64)
        recv = np.empty(2, dtype=np.float64)
        yield from comm.Reduce_scatter(send, recv)
        return recv.tolist()

    results = run_app(app, nodes=2, ppn=2)
    for rank, got in enumerate(results):
        assert got == [4.0 * (2 * rank), 4.0 * (2 * rank + 1)]


def test_reduce_scatter_rejects_ragged_counts():
    def app(comm):
        send = np.arange(comm.size, dtype=np.float64)
        recv = np.empty(1, dtype=np.float64)
        yield from comm.Reduce_scatter(send, recv, recvcounts=[1, 3])

    with pytest.raises(NotImplementedError, match="uniform"):
        run_app(app, nodes=1, ppn=2)


def test_scan_exscan_facade():
    def app(comm):
        mine = np.full(1, comm.rank + 1, dtype=np.int64)
        inc = np.empty(1, dtype=np.int64)
        yield from comm.Scan(mine, inc)
        exc = np.zeros(1, dtype=np.int64)
        yield from comm.Exscan(mine, exc)
        return (int(inc[0]), int(exc[0]))

    results = run_app(app, nodes=1, ppn=4)
    assert [r[0] for r in results] == [1, 3, 6, 10]
    assert [r[1] for r in results][1:] == [1, 3, 6]  # rank 0 undefined


def test_alltoallv_facade():
    def app(comm):
        n = comm.size
        send = np.full(n, comm.rank, dtype=np.float64)
        recv = np.empty(n, dtype=np.float64)
        yield from comm.Alltoallv(send, [1] * n, recv, [1] * n)
        return recv.tolist()

    results = run_app(app, nodes=2, ppn=2)
    assert all(r == [0.0, 1.0, 2.0, 3.0] for r in results)
