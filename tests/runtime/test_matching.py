"""Unit tests for the matching engine (MPI matching semantics)."""

import pytest

from repro.runtime import ANY_SOURCE, ANY_TAG, Envelope, MatchingEngine
from repro.runtime.message import MessageDescriptor
from repro.sim import Simulator
from repro.transport import Transport, WireDescriptor


def make_desc(comm_id=0, src=0, tag=0, nbytes=8):
    wire = WireDescriptor(src=src, dst=1, nbytes=nbytes)
    return MessageDescriptor(
        envelope=Envelope(comm_id, src, tag),
        nbytes=nbytes,
        payload=None,
        wire=wire,
        transport=Transport(),
        src_world=src,
        dst_world=1,
    )


def test_envelope_matching_rules():
    concrete = Envelope(0, 3, 7)
    assert concrete.matches(Envelope(0, 3, 7))
    assert concrete.matches(Envelope(0, ANY_SOURCE, 7))
    assert concrete.matches(Envelope(0, 3, ANY_TAG))
    assert concrete.matches(Envelope(0, ANY_SOURCE, ANY_TAG))
    assert not concrete.matches(Envelope(1, 3, 7))  # different comm
    assert not concrete.matches(Envelope(0, 4, 7))
    assert not concrete.matches(Envelope(0, 3, 8))


def test_unexpected_then_claim_exact():
    eng = MatchingEngine()
    eng.deliver(make_desc(src=2, tag=5))
    assert eng.unexpected_messages == 1
    assert eng.claim(Envelope(0, 2, 6)) is None
    desc = eng.claim(Envelope(0, 2, 5))
    assert desc is not None and desc.envelope.src == 2
    assert eng.unexpected_messages == 0


def test_post_then_deliver_fires_event():
    sim = Simulator()
    eng = MatchingEngine()
    ev = sim.event()
    eng.post(Envelope(0, 1, 2), ev)
    assert eng.pending_receives == 1
    eng.deliver(make_desc(src=1, tag=2))
    assert ev.triggered
    assert eng.pending_receives == 0


def test_non_overtaking_same_envelope():
    """Two messages with identical envelopes are matched in send order."""
    eng = MatchingEngine()
    first = make_desc(src=1, tag=2, nbytes=10)
    second = make_desc(src=1, tag=2, nbytes=20)
    eng.deliver(first)
    eng.deliver(second)
    assert eng.claim(Envelope(0, 1, 2)).nbytes == 10
    assert eng.claim(Envelope(0, 1, 2)).nbytes == 20


def test_wildcard_claim_takes_oldest_across_sources():
    eng = MatchingEngine()
    eng.deliver(make_desc(src=3, tag=1, nbytes=30))
    eng.deliver(make_desc(src=1, tag=1, nbytes=10))
    got = eng.claim(Envelope(0, ANY_SOURCE, 1))
    assert got.nbytes == 30  # arrival order, not source order


def test_wildcard_posted_receives_fifo_priority():
    """A wildcard recv posted before an exact one wins an arriving match."""
    sim = Simulator()
    eng = MatchingEngine()
    wild = sim.event()
    exact = sim.event()
    eng.post(Envelope(0, ANY_SOURCE, ANY_TAG), wild)
    eng.post(Envelope(0, 1, 2), exact)
    eng.deliver(make_desc(src=1, tag=2))
    assert wild.triggered and not exact.triggered


def test_exact_posted_before_wildcard_wins():
    sim = Simulator()
    eng = MatchingEngine()
    exact = sim.event()
    wild = sim.event()
    eng.post(Envelope(0, 1, 2), exact)
    eng.post(Envelope(0, ANY_SOURCE, ANY_TAG), wild)
    eng.deliver(make_desc(src=1, tag=2))
    assert exact.triggered and not wild.triggered


def test_different_comms_do_not_match():
    eng = MatchingEngine()
    eng.deliver(make_desc(comm_id=1, src=0, tag=0))
    assert eng.claim(Envelope(0, 0, 0)) is None
    assert eng.claim(Envelope(1, 0, 0)) is not None


def test_any_tag_with_exact_source():
    eng = MatchingEngine()
    eng.deliver(make_desc(src=2, tag=9))
    got = eng.claim(Envelope(0, 2, ANY_TAG))
    assert got is not None and got.envelope.tag == 9
