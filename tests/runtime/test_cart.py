"""Unit + property tests for Cartesian topologies."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.cart import CartTopology, dims_create
from repro.runtime.communicator import Communicator
from repro.runtime.errors import RankMismatchError


def comm(size):
    return Communicator(0, range(size))


def test_dims_create_balanced():
    assert dims_create(12, 2) == [4, 3]
    assert dims_create(16, 2) == [4, 4]
    assert dims_create(18, 2) == [6, 3]
    assert dims_create(7, 2) == [7, 1]
    assert dims_create(8, 3) == [2, 2, 2]
    assert dims_create(1, 2) == [1, 1]
    with pytest.raises(ValueError):
        dims_create(0, 2)


@given(nnodes=st.integers(1, 2000), ndims=st.integers(1, 4))
def test_dims_create_product_invariant(nnodes, ndims):
    dims = dims_create(nnodes, ndims)
    assert math.prod(dims) == nnodes
    assert len(dims) == ndims
    assert dims == sorted(dims, reverse=True)


def test_create_validates_size():
    with pytest.raises(RankMismatchError):
        CartTopology.create(comm(6), (2, 2))
    with pytest.raises(ValueError):
        CartTopology.create(comm(4), (2, 2), periods=(True,))
    with pytest.raises(ValueError):
        CartTopology.create(comm(4), (4, 0))


def test_coords_row_major():
    cart = CartTopology.create(comm(6), (2, 3))
    assert cart.coords(0) == (0, 0)
    assert cart.coords(2) == (0, 2)
    assert cart.coords(3) == (1, 0)
    assert cart.coords(5) == (1, 2)
    with pytest.raises(RankMismatchError):
        cart.coords(6)


@given(dims=st.lists(st.integers(1, 5), min_size=1, max_size=3), data=st.data())
def test_rank_coords_roundtrip(dims, data):
    size = math.prod(dims)
    cart = CartTopology.create(comm(size), dims)
    rank = data.draw(st.integers(0, size - 1))
    assert cart.rank_of(cart.coords(rank)) == rank


def test_shift_non_periodic_edges():
    cart = CartTopology.create(comm(6), (2, 3))
    src, dst = cart.shift(0, dim=0)  # column shift at the top edge
    assert src is None and dst == 3
    src, dst = cart.shift(5, dim=1)  # row shift at the right edge
    assert src == 4 and dst is None


def test_shift_periodic_wraps():
    cart = CartTopology.create(comm(6), (2, 3), periods=(True, True))
    src, dst = cart.shift(0, dim=0)
    assert (src, dst) == (3, 3)  # only two rows: both directions wrap to 3
    src, dst = cart.shift(2, dim=1)
    assert (src, dst) == (1, 0)


def test_rank_of_periodic_coordinates():
    cart = CartTopology.create(comm(6), (2, 3), periods=(True, True))
    assert cart.rank_of((-1, 4)) == cart.rank_of((1, 1))
    non_periodic = CartTopology.create(comm(6), (2, 3))
    with pytest.raises(RankMismatchError):
        non_periodic.rank_of((-1, 0))


def test_neighbours_interior_and_corner():
    cart = CartTopology.create(comm(9), (3, 3))
    assert sorted(cart.neighbours(4)) == [1, 3, 5, 7]  # interior
    assert sorted(cart.neighbours(0)) == [1, 3]  # corner
    ring = CartTopology.create(comm(3), (3,), periods=(True,))
    assert sorted(ring.neighbours(0)) == [1, 2]


def test_shift_validates_dim():
    cart = CartTopology.create(comm(4), (2, 2))
    with pytest.raises(ValueError):
        cart.shift(0, dim=2)
    with pytest.raises(ValueError):
        cart.rank_of((0,))
