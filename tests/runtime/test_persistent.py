"""Tests for persistent requests (Send_init/Recv_init/Startall)."""

import numpy as np
import pytest

from repro.machine import small_test
from repro.runtime import ArrayBuffer, World


def make_world():
    return World(small_test(nodes=1, ppn=2))


def test_persistent_roundtrip_many_iterations():
    world = make_world()

    def program(ctx):
        buf = ArrayBuffer.zeros(8)
        if ctx.rank == 0:
            op = ctx.send_init(buf.view(), dst=1, tag=5)
            for it in range(4):
                buf.bytes_view[:] = it + 1
                req = yield from op.start(ctx)
                yield from ctx.wait(req)
            return None
        op = ctx.recv_init(buf.view(), src=0, tag=5)
        seen = []
        for _ in range(4):
            req = yield from op.start(ctx)
            yield from ctx.wait(req)
            seen.append(int(buf.bytes_view[0]))
        return seen

    assert world.run(program)[1] == [1, 2, 3, 4]
    world.assert_quiescent()


def test_startall_pairs():
    world = make_world()

    def program(ctx):
        sbuf, rbuf = ArrayBuffer.zeros(8), ArrayBuffer.zeros(8)
        partner = ctx.rank ^ 1
        sbuf.bytes_view[:] = ctx.rank + 10
        ops = [
            ctx.recv_init(rbuf.view(), src=partner, tag=1),
            ctx.send_init(sbuf.view(), dst=partner, tag=1),
        ]
        live = yield from ctx.start_all(ops)
        yield from ctx.waitall(live)
        return int(rbuf.bytes_view[0])

    assert world.run(program) == [11, 10]


def test_persistent_start_is_cheaper_than_fresh_call():
    world = World(small_test(nodes=1, ppn=2), functional=False)

    def program(ctx):
        buf = ctx.alloc(8)
        partner = ctx.rank ^ 1
        # Fresh isend/irecv pair.
        t0 = ctx.now
        if ctx.rank == 0:
            req = yield from ctx.isend(buf.view(), dst=partner, tag=0)
        else:
            req = yield from ctx.irecv(buf.view(), src=partner, tag=0)
        yield from ctx.wait(req)
        fresh = ctx.now - t0
        yield from ctx.hard_sync()
        # Persistent restart of the same operation.
        op = (ctx.send_init(buf.view(), dst=partner, tag=1) if ctx.rank == 0
              else ctx.recv_init(buf.view(), src=partner, tag=1))
        t0 = ctx.now
        req = yield from op.start(ctx)
        yield from ctx.wait(req)
        persistent = ctx.now - t0
        return (fresh, persistent)

    for fresh, persistent in world.run(program):
        assert persistent < fresh


def test_send_init_validates_peer():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        ctx.send_init(buf.view(), dst=99)
        return None
        yield  # pragma: no cover

    with pytest.raises(Exception, match="out of range"):
        world.run(program)


def test_persistent_discount_does_not_leak():
    """After a persistent start, plain calls pay full dispatch again."""
    world = World(small_test(nodes=1, ppn=2), functional=False)

    def program(ctx):
        buf = ctx.alloc(8)
        partner = ctx.rank ^ 1
        op = (ctx.send_init(buf.view(), dst=partner, tag=0) if ctx.rank == 0
              else ctx.recv_init(buf.view(), src=partner, tag=0))
        req = yield from op.start(ctx)
        yield from ctx.wait(req)
        assert ctx._dispatch_discount == 0.0
        yield from ctx.hard_sync()
        # A fresh exchange still works (and pays full dispatch).
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=partner, tag=1)
        else:
            yield from ctx.recv(buf.view(), src=partner, tag=1)
        return True

    assert world.run(program) == [True, True]
