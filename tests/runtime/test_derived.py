"""Tests for derived (strided vector) datatypes."""

import numpy as np
import pytest

from repro.machine import small_test
from repro.runtime import ArrayBuffer, World
from repro.runtime.derived import VectorLayout, pack, unpack


def run1(program):
    world = World(small_test(nodes=1, ppn=1))
    return world.run(program)[0]


def test_layout_arithmetic():
    col = VectorLayout(count=4, blocklen=8, stride=32)
    assert col.packed_nbytes == 32
    assert col.span_nbytes == 3 * 32 + 8
    assert not col.contiguous
    assert VectorLayout(4, 8, 8).contiguous
    assert VectorLayout(0, 8, 8).span_nbytes == 0
    with pytest.raises(ValueError):
        VectorLayout(4, 16, 8)
    with pytest.raises(ValueError):
        VectorLayout(-1, 8, 8)


def test_pack_extracts_matrix_column():
    matrix = np.arange(16, dtype=np.float64).reshape(4, 4)

    def program(ctx):
        src = ArrayBuffer.from_array(matrix.copy())
        col = VectorLayout(count=4, blocklen=8, stride=32)
        packed = ArrayBuffer.zeros(col.packed_nbytes)
        # Column 2 starts at byte offset 2*8.
        yield from pack(ctx, src.view(16, col.span_nbytes), col, packed.view())
        return packed.bytes_view.view(np.float64).tolist()

    assert run1(program) == [2.0, 6.0, 10.0, 14.0]


def test_pack_unpack_roundtrip():
    def program(ctx):
        original = np.arange(24, dtype=np.float64).reshape(4, 6)
        src = ArrayBuffer.from_array(original.copy())
        col = VectorLayout(count=4, blocklen=8, stride=48)
        packed = ArrayBuffer.zeros(col.packed_nbytes)
        yield from pack(ctx, src.view(0, col.span_nbytes), col, packed.view())
        dst = ArrayBuffer.zeros(col.span_nbytes)
        yield from unpack(ctx, packed.view(), col, dst.view())
        out = dst.bytes_view.view(np.float64)
        return out[::6].tolist()  # the column entries land back strided

    assert run1(program) == [0.0, 6.0, 12.0, 18.0]


def test_strided_pack_costs_more_than_contiguous():
    def program(ctx):
        src = ArrayBuffer.zeros(4096)
        strided = VectorLayout(count=64, blocklen=8, stride=64)
        contiguous = VectorLayout(count=1, blocklen=512, stride=512)
        packed = ArrayBuffer.zeros(512)
        t0 = ctx.now
        yield from pack(ctx, src.view(0, strided.span_nbytes), strided,
                        packed.view())
        t_strided = ctx.now - t0
        t0 = ctx.now
        yield from pack(ctx, src.view(0, 512), contiguous, packed.view())
        t_contig = ctx.now - t0
        return (t_strided, t_contig)

    t_strided, t_contig = run1(program)
    assert t_strided > t_contig


def test_pack_validates_sizes():
    def program(ctx):
        src = ArrayBuffer.zeros(16)
        col = VectorLayout(count=4, blocklen=8, stride=32)
        packed = ArrayBuffer.zeros(col.packed_nbytes)
        with pytest.raises(ValueError, match="cannot span"):
            yield from pack(ctx, src.view(), col, packed.view())
        big_src = ArrayBuffer.zeros(col.span_nbytes)
        small = ArrayBuffer.zeros(8)
        with pytest.raises(ValueError, match="too small"):
            yield from pack(ctx, big_src.view(), col, small.view())
        with pytest.raises(ValueError, match="too small"):
            yield from unpack(ctx, small.view(), col, big_src.view())

    run1(program)


def test_send_packed_column_between_ranks():
    """End-to-end: column of rank 0's matrix lands in rank 1's row."""
    world = World(small_test(nodes=1, ppn=2))

    def program(ctx):
        col = VectorLayout(count=4, blocklen=8, stride=32)
        if ctx.rank == 0:
            matrix = np.arange(16, dtype=np.float64).reshape(4, 4)
            src = ArrayBuffer.from_array(matrix)
            packed = ArrayBuffer.zeros(col.packed_nbytes)
            yield from pack(ctx, src.view(8, col.span_nbytes), col,
                            packed.view())
            yield from ctx.send(packed.view(), dst=1, tag=0)
            return None
        row = ArrayBuffer.zeros(col.packed_nbytes)
        yield from ctx.recv(row.view(), src=0, tag=0)
        return row.bytes_view.view(np.float64).tolist()

    assert world.run(program)[1] == [1.0, 5.0, 9.0, 13.0]
