"""Tests for MPI_Test / MPI_Probe / MPI_Iprobe semantics."""

import numpy as np
import pytest

from repro.machine import small_test
from repro.runtime import ANY_SOURCE, World


def make_world(nodes=1, ppn=2):
    return World(small_test(nodes=nodes, ppn=ppn))


def test_test_returns_false_before_arrival_true_after():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.compute(5e-6)
            yield from ctx.send(buf.view(), dst=1, tag=1)
            return None
        req = yield from ctx.irecv(buf.view(), src=0, tag=1)
        flag_early, _ = yield from ctx.test(req)
        yield from ctx.compute(20e-6)  # message arrives meanwhile
        flag_late, status = yield from ctx.test(req)
        return (flag_early, flag_late, status.nbytes)

    assert world.run(program)[1] == (False, True, 8)


def test_test_idempotent_after_completion():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
            return None
        yield from ctx.compute(20e-6)
        req = yield from ctx.irecv(buf.view(), src=0, tag=0)
        f1, s1 = yield from ctx.test(req)
        f2, s2 = yield from ctx.test(req)
        return (f1, f2, s1 is s2 or s1 == s2)

    assert world.run(program)[1] == (True, True, True)


def test_eager_send_request_is_immediately_ready():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            req = yield from ctx.isend(buf.view(), dst=1, tag=0)
            flag, _ = yield from ctx.test(req)
            return flag
        yield from ctx.recv(buf.view(), src=0, tag=0)
        return None

    assert world.run(program)[0] is True


def test_iprobe_sees_unexpected_without_consuming():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            data = ctx.alloc(8)
            data.write_bytes(0, np.full(8, 3, dtype=np.uint8))
            yield from ctx.send(data.view(), dst=1, tag=9)
            return None
        assert ctx.iprobe(src=0, tag=9) is None  # nothing yet
        yield from ctx.compute(20e-6)
        st1 = ctx.iprobe(src=0, tag=9)
        st2 = ctx.iprobe(src=ANY_SOURCE, tag=-1)
        status = yield from ctx.recv(buf.view(), src=0, tag=9)
        st3 = ctx.iprobe(src=0, tag=9)
        return (st1.nbytes, st2.source, status.nbytes, st3,
                int(buf.read_bytes(0, 1)[0]))

    assert world.run(program)[1] == (8, 0, 8, None, 3)


def test_probe_blocks_until_message():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.compute(30e-6)
            yield from ctx.send(buf.view(), dst=1, tag=4)
            return None
        status = yield from ctx.probe(src=0, tag=4)
        arrived_at = ctx.now
        yield from ctx.recv(buf.view(), src=0, tag=4)
        return (status.nbytes, arrived_at >= 30e-6)

    assert world.run(program)[1] == (8, True)
    world.assert_quiescent()


def test_operation_request_ready_tracks_process():
    world = make_world()

    def program(ctx):
        def op(ctx):
            yield from ctx.compute(10e-6)
            return 7

        req = ctx.start(op(ctx))
        assert not req.ready
        yield from ctx.compute(20e-6)
        flag, value = yield from ctx.test(req)
        return (flag, value)

    assert world.run(program) == [(True, 7)] * 2


def test_waitany_returns_first_ready():
    world = make_world(nodes=1, ppn=3)

    def program(ctx):
        buf1, buf2 = ctx.alloc(8), ctx.alloc(8)
        if ctx.rank == 0:
            r1 = yield from ctx.irecv(buf1.view(), src=1, tag=1)
            r2 = yield from ctx.irecv(buf2.view(), src=2, tag=2)
            idx, status = yield from ctx.waitany([r1, r2])
            first = (idx, status.source)
            idx2, status2 = yield from ctx.waitany([r1, r2])
            return (first, (idx2, status2.source))
        if ctx.rank == 1:
            yield from ctx.compute(50e-6)  # arrives second
            yield from ctx.send(buf1.view(), dst=0, tag=1)
        else:
            yield from ctx.compute(5e-6)  # arrives first
            yield from ctx.send(buf2.view(), dst=0, tag=2)
        return None

    first, second = world.run(program)[0]
    assert first == (1, 2)   # rank 2's message completed first
    assert second == (0, 1)  # then rank 1's


def test_waitany_rejects_empty():
    world = make_world()

    def program(ctx):
        yield from ctx.waitany([])

    with pytest.raises(ValueError, match="at least one"):
        world.run(program)


def test_waitany_with_already_completed_request():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
            return None
        yield from ctx.compute(20e-6)
        req = yield from ctx.irecv(buf.view(), src=0, tag=0)
        idx, status = yield from ctx.waitany([req])  # ready, not completed
        return (idx, status.nbytes)

    assert world.run(program)[1] == (0, 8)


def test_waitany_all_completed_returns_undefined():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
            return None
        yield from ctx.compute(20e-6)
        req = yield from ctx.irecv(buf.view(), src=0, tag=0)
        yield from ctx.wait(req)
        return (yield from ctx.waitany([req]))

    assert world.run(program)[1] == (None, None)
