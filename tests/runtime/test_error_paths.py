"""Error-path coverage for the runtime: every guard fires correctly."""

import pytest

from repro.machine import small_test
from repro.pip import AddressSpaceViolation
from repro.runtime import Communicator, RankMismatchError, World


def make_world(nodes=1, ppn=2, **kw):
    return World(small_test(nodes=nodes, ppn=ppn), **kw)


def run_expect(world, program, exc, match):
    with pytest.raises(exc, match=match):
        world.run(program)


def test_send_negative_tag():
    def program(ctx):
        buf = ctx.alloc(8)
        yield from ctx.send(buf.view(), dst=1, tag=-5)

    run_expect(make_world(), program, ValueError, "tag must be >= 0")


def test_send_rank_out_of_range():
    def program(ctx):
        buf = ctx.alloc(8)
        yield from ctx.send(buf.view(), dst=9)

    run_expect(make_world(), program, RankMismatchError, "out of range")


def test_recv_src_out_of_range():
    def program(ctx):
        buf = ctx.alloc(8)
        yield from ctx.recv(buf.view(), src=7, tag=0)

    run_expect(make_world(), program, RankMismatchError, "out of range")


def test_non_member_cannot_use_comm():
    def program(ctx):
        buf = ctx.alloc(8)
        # Rank 1 is not in the leaders' communicator on a 1-node world?
        # On 1 node the leader comm is {0}; rank 1 must be rejected.
        if ctx.rank == 1:
            yield from ctx.send(buf.view(), dst=0, comm=ctx.leader_comm)
        return None
        yield  # pragma: no cover

    run_expect(make_world(), program, RankMismatchError, "not a member")


def test_communicator_duplicate_ranks():
    with pytest.raises(RankMismatchError, match="duplicate"):
        Communicator(9, [0, 1, 1])
    with pytest.raises(RankMismatchError, match="at least one"):
        Communicator(9, [])


def test_direct_copy_size_mismatch():
    def program(ctx):
        a, b = ctx.alloc(8), ctx.alloc(16)
        yield from ctx.direct_copy(a.view(), b.view())

    run_expect(make_world(intra="pip"), program, ValueError, "size mismatch")


def test_peer_buffer_cross_node_rejected_even_with_pip():
    world = make_world(nodes=2, ppn=1, intra="pip")

    def program(ctx):
        buf = ctx.alloc(8)
        ctx.expose("b", buf)
        yield from ctx.hard_sync()
        if ctx.rank == 1:
            ctx.peer_buffer(0, "b")
        return None

    run_expect(world, program, AddressSpaceViolation, "not a task")


def test_wait_on_foreign_object():
    def program(ctx):
        yield from ctx.wait(object())  # not a Request

    with pytest.raises(AttributeError):
        make_world().run(program)


def test_world_rejects_unknown_transport():
    with pytest.raises(KeyError, match="unknown transport"):
        make_world(intra="tcp")


def test_hier_collectives_reject_non_world_comm():
    from repro.collectives import hier_allgather

    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        send = ctx.alloc(8)
        recv = ctx.alloc(8 * ctx.node_comm.size)
        yield from hier_allgather(ctx, send.view(), recv.view(),
                                  comm=ctx.node_comm)

    run_expect(world, program, ValueError, "COMM_WORLD")


def test_hier_bcast_requires_leader_root():
    from repro.collectives import hier_bcast

    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        buf = ctx.alloc(8)
        yield from hier_bcast(ctx, buf.view(), root=1)

    run_expect(world, program, ValueError, "leader root")


def test_allgather_recvbuf_size_check():
    from repro.collectives import allgather_bruck

    world = make_world()

    def program(ctx):
        send = ctx.alloc(8)
        recv = ctx.alloc(8)  # should be 16 for 2 ranks
        yield from allgather_bruck(ctx, send.view(), recv.view())

    run_expect(world, program, ValueError, "expected 2")


def test_mcoll_scatter_offset_contract():
    from repro.core import mcoll_scatter

    world = make_world(nodes=1, ppn=2, intra="pip")

    def program(ctx):
        recv = ctx.alloc(8)
        big = ctx.alloc(24)
        send = big.view(8, 16) if ctx.rank == 0 else None  # offset != 0
        yield from mcoll_scatter(ctx, send, recv.view(), root=0)

    run_expect(world, program, ValueError, "offset 0")


def test_run_until_and_interrupt_guards_still_hold():
    """Engine-level guards stay reachable through the runtime."""
    world = make_world()
    world.sim.timeout(5.0)
    world.sim.run()
    with pytest.raises(ValueError):
        world.sim.run(until=1.0)
