"""Property-based fuzz of the matching engine against a naive oracle.

The production :class:`MatchingEngine` uses dict-keyed deques for
speed; the oracle below implements MPI matching with nothing but
ordered lists.  Hypothesis drives both with random interleavings of
posts, deliveries and claims; any divergence in which message matches
which receive is a bug in the fast structure.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Envelope, MatchingEngine
from repro.runtime.matching import PostedRecv
from repro.runtime.message import ANY_SOURCE, ANY_TAG, MessageDescriptor
from repro.sim import Simulator
from repro.transport import Transport, WireDescriptor


@dataclass
class OracleEngine:
    """Straight-from-the-standard matching: ordered scans only."""

    posted: List[PostedRecv] = field(default_factory=list)
    unexpected: List[MessageDescriptor] = field(default_factory=list)
    _seq: int = 0

    def claim(self, pattern):
        for i, desc in enumerate(self.unexpected):
            if desc.envelope.matches(pattern):
                return self.unexpected.pop(i)
        return None

    def post(self, pattern, event):
        self._seq += 1
        self.posted.append(PostedRecv(self._seq, pattern, event))

    def deliver(self, desc):
        for i, posted in enumerate(self.posted):
            if desc.envelope.matches(posted.pattern):
                self.posted.pop(i)
                posted.event.succeed(desc)
                return
        self.unexpected.append(desc)


def make_desc(uid, comm_id, src, tag):
    return MessageDescriptor(
        envelope=Envelope(comm_id, src, tag),
        nbytes=uid,  # unique id smuggled through nbytes
        payload=None,
        wire=WireDescriptor(src=src, dst=0, nbytes=uid),
        transport=Transport(),
        src_world=src,
        dst_world=0,
    )


# Action alphabet: deliveries and posts over a tiny envelope space so
# collisions (the interesting part) are common.
ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("deliver"), st.integers(0, 1), st.integers(0, 2),
                  st.integers(0, 2)),
        st.tuples(st.just("post"), st.integers(0, 1),
                  st.sampled_from([0, 1, 2, ANY_SOURCE]),
                  st.sampled_from([0, 1, 2, ANY_TAG])),
        st.tuples(st.just("claim"), st.integers(0, 1),
                  st.sampled_from([0, 1, 2, ANY_SOURCE]),
                  st.sampled_from([0, 1, 2, ANY_TAG])),
    ),
    max_size=60,
)


@given(actions=ACTIONS)
@settings(max_examples=400, deadline=None)
def test_fast_engine_matches_oracle(actions):
    sim = Simulator()
    fast = MatchingEngine()
    slow = OracleEngine()
    fast_matches: List[tuple] = []
    slow_matches: List[tuple] = []
    uid = 0

    def watcher(log, post_id):
        def cb(event):
            log.append((post_id, event.value.nbytes))
        return cb

    post_id = 0
    for action in actions:
        kind = action[0]
        if kind == "deliver":
            _, comm_id, src, tag = action
            uid += 1
            fast.deliver(make_desc(uid, comm_id, src, tag))
            slow.deliver(make_desc(uid, comm_id, src, tag))
        elif kind == "post":
            _, comm_id, src, tag = action
            post_id += 1
            ev_fast, ev_slow = sim.event(), sim.event()
            ev_fast.callbacks.append(watcher(fast_matches, post_id))
            ev_slow.callbacks.append(watcher(slow_matches, post_id))
            fast.post(Envelope(comm_id, src, tag), ev_fast)
            slow.post(Envelope(comm_id, src, tag), ev_slow)
        else:
            _, comm_id, src, tag = action
            got_fast = fast.claim(Envelope(comm_id, src, tag))
            got_slow = slow.claim(Envelope(comm_id, src, tag))
            assert (got_fast is None) == (got_slow is None)
            if got_fast is not None:
                assert got_fast.nbytes == got_slow.nbytes
        sim.run()  # flush match events
        assert fast_matches == slow_matches
        # Structural probes agree too.
        assert fast.unexpected_messages == len(slow.unexpected)
        assert fast.pending_receives == len(slow.posted)


@given(actions=ACTIONS)
@settings(max_examples=100, deadline=None)
def test_peek_never_mutates(actions):
    sim = Simulator()
    engine = MatchingEngine()
    uid = 0
    for action in actions:
        kind, comm_id, src, tag = action
        if kind == "deliver":
            uid += 1
            engine.deliver(make_desc(uid, comm_id, src, tag))
        elif kind == "claim":
            before = engine.unexpected_messages
            peeked = engine.peek(Envelope(comm_id, src, tag))
            assert engine.unexpected_messages == before
            claimed = engine.claim(Envelope(comm_id, src, tag))
            # peek must preview exactly what claim takes.
            assert (peeked is None) == (claimed is None)
            if peeked is not None:
                assert peeked.nbytes == claimed.nbytes
        # "post" actions skipped: peek is only defined for unexpected.
    sim.run()
