"""Unit tests for buffers, views, datatypes and reduce ops."""

import numpy as np
import pytest

from repro.runtime import (
    ArrayBuffer,
    DatatypeError,
    NullBuffer,
    alloc,
    datatype,
    datatypes,
    ops,
    reduce_op,
)


def test_array_buffer_roundtrip():
    buf = ArrayBuffer.zeros(16)
    data = np.arange(4, dtype=np.uint8)
    buf.write_bytes(4, data)
    out = buf.read_bytes(4, 4)
    assert np.array_equal(out, data)
    assert buf.nbytes == 16


def test_read_is_a_snapshot():
    buf = ArrayBuffer.zeros(8)
    snap = buf.read_bytes(0, 8)
    buf.write_bytes(0, np.full(8, 9, dtype=np.uint8))
    assert snap.sum() == 0


def test_from_array_typed_view():
    arr = np.arange(10, dtype=np.float64)
    buf = ArrayBuffer.from_array(arr)
    assert buf.nbytes == 80
    typed = buf.typed(datatypes.FLOAT64)
    assert np.array_equal(typed, arr)
    typed[0] = -1.0
    assert buf.typed(datatypes.FLOAT64)[0] == -1.0  # a view, not a copy


def test_typed_size_mismatch_raises():
    buf = ArrayBuffer.zeros(10)
    with pytest.raises(DatatypeError):
        buf.typed(datatypes.FLOAT64)


def test_out_of_range_rejected():
    buf = ArrayBuffer.zeros(8)
    with pytest.raises(IndexError):
        buf.read_bytes(4, 5)
    with pytest.raises(IndexError):
        buf.write_bytes(7, np.zeros(2, dtype=np.uint8))
    with pytest.raises(ValueError):
        NullBuffer(-1)


def test_view_sub_and_copy():
    a = ArrayBuffer.from_array(np.arange(16, dtype=np.uint8))
    b = ArrayBuffer.zeros(16)
    b.view(8, 4).copy_from(a.view(0, 4))
    assert np.array_equal(b.read_bytes(8, 4), np.arange(4, dtype=np.uint8))
    with pytest.raises(ValueError):
        b.view(0, 4).copy_from(a.view(0, 8))
    with pytest.raises(IndexError):
        a.view(0, 4).sub(2, 4)


def test_view_write_overflow_rejected():
    buf = ArrayBuffer.zeros(8)
    with pytest.raises(IndexError):
        buf.view(0, 4).write(np.zeros(5, dtype=np.uint8))


def test_null_buffer_tracks_sizes_only():
    buf = NullBuffer(64)
    assert buf.read_bytes(0, 32) is None
    buf.write_bytes(0, np.zeros(8, dtype=np.uint8))  # dropped
    with pytest.raises(IndexError):
        buf.write_bytes(60, np.zeros(8, dtype=np.uint8))
    assert buf.typed(datatypes.FLOAT64) is None
    view = buf.view(8, 8)
    assert view.read() is None


def test_null_buffer_accepts_none_payload_into_functional():
    buf = ArrayBuffer.zeros(8)
    buf.write_bytes(0, None)  # timing-only payload: dropped, no error


def test_alloc_mode_switch():
    assert isinstance(alloc(8, functional=True), ArrayBuffer)
    assert isinstance(alloc(8, functional=False), NullBuffer)


def test_buffer_keys_unique():
    assert ArrayBuffer.zeros(1).key != ArrayBuffer.zeros(1).key


def test_datatype_lookup():
    assert datatype("FLOAT64").size == 8
    assert datatypes.BYTE.size == 1
    assert datatypes.from_numpy(np.dtype("int32")) is datatypes.INT32
    with pytest.raises(KeyError):
        datatype("COMPLEX")
    with pytest.raises(KeyError):
        datatypes.from_numpy(np.dtype("complex128"))


@pytest.mark.parametrize(
    "name,a,b,expected",
    [
        ("SUM", [1, 2], [3, 4], [4, 6]),
        ("PROD", [2, 3], [4, 5], [8, 15]),
        ("MAX", [1, 9], [5, 2], [5, 9]),
        ("MIN", [1, 9], [5, 2], [1, 2]),
        ("BAND", [0b1100, 0b1010], [0b1010, 0b1010], [0b1000, 0b1010]),
        ("BOR", [0b1100, 0], [0b0011, 0], [0b1111, 0]),
        ("BXOR", [0b1100, 1], [0b1010, 1], [0b0110, 0]),
        ("LAND", [1, 0], [2, 3], [1, 0]),
        ("LOR", [0, 0], [0, 5], [0, 1]),
    ],
)
def test_reduce_ops(name, a, b, expected):
    op = reduce_op(name)
    acc = np.array(a, dtype=np.int64)
    op.accumulate(acc, np.array(b, dtype=np.int64))
    assert acc.tolist() == expected


def test_reduce_many_matches_numpy():
    arrays = [np.arange(5, dtype=np.float64) * k for k in range(1, 5)]
    out = ops.SUM.reduce_many(arrays)
    assert np.allclose(out, np.sum(arrays, axis=0))
    with pytest.raises(ValueError):
        ops.SUM.reduce_many([])


def test_accumulate_shape_mismatch():
    with pytest.raises(ValueError):
        ops.SUM.accumulate(np.zeros(3), np.zeros(4))


def test_unknown_op():
    with pytest.raises(KeyError):
        reduce_op("AVG")
