"""Tests for nonblocking operations (ctx.start) and comm_split."""

import numpy as np
import pytest

from repro.collectives import allgather_bruck, allreduce_recursive_doubling
from repro.machine import small_test
from repro.runtime import ArrayBuffer, World
from repro.runtime.datatypes import INT64
from repro.runtime.ops import SUM
from repro.validate.checker import int_pattern, pattern


def make_world(nodes=2, ppn=2, **kw):
    return World(small_test(nodes=nodes, ppn=ppn), **kw)


def test_start_runs_collective_nonblocking_with_overlap():
    world = make_world()

    def program(ctx):
        send = ArrayBuffer.from_array(pattern(ctx.rank, 32))
        recv = ArrayBuffer.zeros(32 * ctx.size)
        req = ctx.start(allgather_bruck(ctx, send.view(), recv.view()))
        # Overlap: compute while the collective progresses.
        t0 = ctx.now
        yield from ctx.compute(50e-6)
        yield from ctx.wait(req)
        elapsed = ctx.now - t0
        want = np.concatenate([pattern(r, 32) for r in range(ctx.size)])
        assert np.array_equal(recv.bytes_view, want)
        return elapsed

    elapsed = world.run(program)
    world.assert_quiescent()
    # The collective (≈ tens of µs) hid behind the 50 µs compute:
    # total stays well under compute + collective.
    assert all(e < 70e-6 for e in elapsed)


def test_start_result_value_and_idempotent_wait():
    world = make_world(nodes=1, ppn=2)

    def op(ctx):
        yield from ctx.compute(1e-6)
        return "finished"

    def program(ctx):
        req = ctx.start(op(ctx))
        first = yield from ctx.wait(req)
        second = yield from ctx.wait(req)
        return (first, second)

    assert world.run(program) == [("finished", "finished")] * 2


def test_start_propagates_operation_errors():
    world = make_world(nodes=1, ppn=1)

    def bad(ctx):
        yield from ctx.compute(1e-6)
        raise RuntimeError("op failed")

    def program(ctx):
        req = ctx.start(bad(ctx))
        try:
            yield from ctx.wait(req)
        except RuntimeError as exc:
            return str(exc)

    assert world.run(program) == ["op failed"]


def test_two_concurrent_collectives_on_disjoint_comms():
    """Two nonblocking allreduces on different communicators overlap
    without cross-matching."""
    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        # Split into odd/even world ranks.
        sub = yield from ctx.comm_split(color=ctx.rank % 2, key=ctx.rank)
        send = ArrayBuffer.from_array(int_pattern(ctx.rank, 4))
        recv = ArrayBuffer.zeros(32)
        yield from allreduce_recursive_doubling(
            ctx, send.view(), recv.view(), INT64, SUM, comm=sub)
        return recv.bytes_view.view(np.int64).tolist()

    results = world.run(program)
    world.assert_quiescent()
    even = np.sum([int_pattern(r, 4) for r in (0, 2)], axis=0).tolist()
    odd = np.sum([int_pattern(r, 4) for r in (1, 3)], axis=0).tolist()
    assert results == [even, odd, even, odd]


def test_comm_split_groups_and_ordering():
    world = make_world(nodes=2, ppn=3)

    def program(ctx):
        # Color by node, key descending so comm ranks reverse.
        sub = yield from ctx.comm_split(color=ctx.node_id, key=-ctx.rank)
        return (sub.comm_id, sub.world_ranks, sub.to_comm(ctx.rank))

    results = world.run(program)
    # Node 0 ranks: 0,1,2 with keys 0,-1,-2 → order 2,1,0.
    assert results[0][1] == (2, 1, 0)
    assert results[0][2] == 2  # rank 0 is last
    assert results[5][1] == (5, 4, 3)
    # Same group → same interned communicator id.
    assert results[0][0] == results[1][0] == results[2][0]
    assert results[3][0] == results[4][0] == results[5][0]
    assert results[0][0] != results[3][0]


def test_comm_split_undefined_color():
    world = make_world(nodes=1, ppn=3)

    def program(ctx):
        sub = yield from ctx.comm_split(
            color=None if ctx.rank == 1 else 7, key=0)
        return None if sub is None else sub.world_ranks

    results = world.run(program)
    assert results == [(0, 2), None, (0, 2)]


def test_comm_split_costs_time():
    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        t0 = ctx.now
        yield from ctx.comm_split(color=0, key=ctx.rank)
        return ctx.now - t0

    assert all(t > 0 for t in world.run(program))


def test_split_comm_usable_for_pt2pt():
    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        sub = yield from ctx.comm_split(color=ctx.rank % 2, key=ctx.rank)
        buf = ArrayBuffer.zeros(8)
        me = sub.to_comm(ctx.rank)
        if me == 0:
            buf.bytes_view[:] = ctx.rank + 1
            yield from ctx.send(buf.view(), dst=1, tag=5, comm=sub)
        else:
            yield from ctx.recv(buf.view(), src=0, tag=5, comm=sub)
            return int(buf.bytes_view[0])
        return None

    results = world.run(program)
    assert results[2] == 1  # received from world rank 0
    assert results[3] == 2  # received from world rank 1
