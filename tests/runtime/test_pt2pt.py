"""Integration tests: point-to-point over the full runtime stack."""

import numpy as np
import pytest

from repro.machine import small_test
from repro.pip import AddressSpaceViolation
from repro.runtime import ANY_SOURCE, TruncationError, World


def make_world(nodes=2, ppn=2, intra="posix_shmem", **kw):
    return World(small_test(nodes=nodes, ppn=ppn), intra=intra, **kw)


def fill(buf, value):
    buf.write_bytes(0, np.full(buf.nbytes, value, dtype=np.uint8))


def test_intra_node_send_recv_moves_bytes():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(32)
        if ctx.rank == 0:
            fill(buf, 7)
            yield from ctx.send(buf.view(), dst=1, tag=3)
            return None
        if ctx.rank == 1:
            status = yield from ctx.recv(buf.view(), src=0, tag=3)
            return (status.source, status.tag, status.nbytes, int(buf.read_bytes(0, 1)[0]))
        return None

    results = world.run(program)
    assert results[1] == (0, 3, 32, 7)
    world.assert_quiescent()


def test_inter_node_send_recv_moves_bytes():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(64)
        if ctx.rank == 0:
            fill(buf, 42)
            yield from ctx.send(buf.view(), dst=3, tag=1)  # rank 3 is on node 1
        elif ctx.rank == 3:
            yield from ctx.recv(buf.view(), src=0, tag=1)
            return int(buf.read_bytes(63, 1)[0])
        return None

    assert world.run(program)[3] == 42


def test_inter_node_latency_exceeds_wire_latency():
    world = make_world()
    params = world.params

    def program(ctx):
        buf = ctx.alloc(8)
        start = ctx.now
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=2, tag=0)
        elif ctx.rank == 2:
            yield from ctx.recv(buf.view(), src=0, tag=0)
            return ctx.now - start
        return None

    latency = world.run(program)[2]
    assert latency > params.nic.latency
    assert latency < 20e-6  # sanity: microseconds, not milliseconds


def test_self_send_is_cheap_and_correct():
    world = make_world()

    def program(ctx):
        if ctx.rank != 0:
            return None
        buf = ctx.alloc(16)
        fill(buf, 5)
        out = ctx.alloc(16)
        start = ctx.now
        yield from ctx.send(buf.view(), dst=0, tag=9)
        yield from ctx.recv(out.view(), src=0, tag=9)
        return (ctx.now - start, int(out.read_bytes(0, 1)[0]))

    elapsed, value = world.run(program)[0]
    assert value == 5
    assert elapsed < 1e-6


def test_recv_before_send_posted_matches():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 1:
            status = yield from ctx.recv(buf.view(), src=0, tag=4)
            return status.nbytes
        if ctx.rank == 0:
            yield from ctx.compute(5e-6)  # recv is posted well before
            fill(buf, 1)
            yield from ctx.send(buf.view(), dst=1, tag=4)
        return None

    assert world.run(program)[1] == 8


def test_wildcard_recv_reports_actual_source():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 2:
            yield from ctx.send(buf.view(), dst=0, tag=11)
        elif ctx.rank == 0:
            status = yield from ctx.recv(buf.view(), src=ANY_SOURCE, tag=11)
            return status.source
        return None

    assert world.run(program)[0] == 2


def test_truncation_raises():
    world = make_world()

    def program(ctx):
        if ctx.rank == 0:
            big = ctx.alloc(64)
            yield from ctx.send(big.view(), dst=1, tag=0)
        elif ctx.rank == 1:
            small = ctx.alloc(8)
            yield from ctx.recv(small.view(), src=0, tag=0)
        return None

    with pytest.raises(TruncationError):
        world.run(program)


def test_isend_irecv_overlap():
    world = make_world()

    def program(ctx):
        bufs = [ctx.alloc(8) for _ in range(4)]
        if ctx.rank == 0:
            reqs = []
            for i, buf in enumerate(bufs):
                fill(buf, i + 1)
                req = yield from ctx.isend(buf.view(), dst=1, tag=i)
                reqs.append(req)
            yield from ctx.waitall(reqs)
        elif ctx.rank == 1:
            reqs = []
            for i, buf in enumerate(bufs):
                req = yield from ctx.irecv(buf.view(), src=0, tag=i)
                reqs.append(req)
            yield from ctx.waitall(reqs)
            return [int(b.read_bytes(0, 1)[0]) for b in bufs]
        return None

    assert world.run(program)[1] == [1, 2, 3, 4]


def test_sendrecv_pairwise_exchange_no_deadlock():
    world = make_world(nodes=1, ppn=4)

    def program(ctx):
        sbuf, rbuf = ctx.alloc(8), ctx.alloc(8)
        fill(sbuf, ctx.rank + 1)
        partner = ctx.rank ^ 1
        yield from ctx.sendrecv(sbuf.view(), partner, 0, rbuf.view(), partner, 0)
        return int(rbuf.read_bytes(0, 1)[0])

    assert world.run(program) == [2, 1, 4, 3]


def test_message_ordering_same_pair():
    world = make_world()

    def program(ctx):
        if ctx.rank == 0:
            for i in range(5):
                buf = ctx.alloc(8)
                fill(buf, i)
                yield from ctx.send(buf.view(), dst=1, tag=7)
        elif ctx.rank == 1:
            seen = []
            for _ in range(5):
                buf = ctx.alloc(8)
                yield from ctx.recv(buf.view(), src=0, tag=7)
                seen.append(int(buf.read_bytes(0, 1)[0]))
            return seen
        return None

    assert world.run(program)[1] == [0, 1, 2, 3, 4]


def test_rendezvous_send_blocks_until_delivery():
    world = make_world()
    params = world.params
    big = params.nic.eager_limit * 4

    def program(ctx):
        buf = ctx.alloc(big)
        if ctx.rank == 0:
            start = ctx.now
            yield from ctx.send(buf.view(), dst=2, tag=0)
            return ctx.now - start
        if ctx.rank == 2:
            yield from ctx.recv(buf.view(), src=0, tag=0)
        return None

    elapsed = world.run(program)[0]
    # Rendezvous: at least handshake + transfer time on the wire.
    assert elapsed >= params.nic.rendezvous_overhead + big * params.nic.byte_gap


def test_eager_send_returns_before_delivery():
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=2, tag=0)
            return ctx.now
        if ctx.rank == 2:
            yield from ctx.recv(buf.view(), src=0, tag=0)
            return ctx.now
        return None

    results = world.run(program)
    assert results[0] < results[2]  # sender done before receiver


def test_send_buffer_reusable_after_eager_send():
    """Overwriting the send buffer after send() must not corrupt the
    message (the runtime snapshots at post time, as eager MPI does)."""
    world = make_world()

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            fill(buf, 1)
            yield from ctx.send(buf.view(), dst=1, tag=0)
            fill(buf, 99)  # reuse immediately
            yield from ctx.compute(1e-3)
        elif ctx.rank == 1:
            yield from ctx.compute(1e-4)  # recv long after sender reused
            yield from ctx.recv(buf.view(), src=0, tag=0)
            return int(buf.read_bytes(0, 1)[0])
        return None

    assert world.run(program)[1] == 1


def test_peer_buffer_requires_pip_transport():
    world = make_world(intra="posix_shmem")

    def program(ctx):
        buf = ctx.alloc(8)
        ctx.expose("b", buf)
        yield from ctx.node_barrier()
        if ctx.rank == 1:
            try:
                ctx.peer_buffer(0, "b")
            except AddressSpaceViolation:
                return "refused"
        return None

    assert world.run(program)[1] == "refused"


def test_peer_buffer_and_direct_copy_with_pip():
    world = make_world(intra="pip")

    def program(ctx):
        buf = ctx.alloc(8)
        ctx.expose("b", buf)
        if ctx.rank == 0:
            fill(buf, 77)
        yield from ctx.node_barrier()
        if ctx.rank == 1:
            peer = ctx.peer_buffer(0, "b")
            mine = ctx.alloc(8)
            t0 = ctx.now
            yield from ctx.direct_copy(peer.view(), mine.view())
            cost = ctx.now - t0
            return (int(mine.read_bytes(0, 1)[0]), cost)
        return None

    value, cost = world.run(program)[1]
    assert value == 77
    assert cost == pytest.approx(world.params.memory.copy_time(8))


def test_node_barrier_aligns_node_ranks_only():
    world = make_world(nodes=2, ppn=2)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(1e-3)
        yield from ctx.node_barrier()
        return ctx.now

    times = world.run(program)
    assert times[0] == pytest.approx(times[1])  # node 0 aligned
    assert times[2] == pytest.approx(times[3])  # node 1 aligned
    assert times[2] < times[0]  # node 1 not delayed by node 0


def test_hard_sync_aligns_world_at_zero_cost():
    world = make_world()

    def program(ctx):
        yield from ctx.compute(ctx.rank * 1e-4)
        yield from ctx.hard_sync()
        return ctx.now

    times = world.run(program)
    assert len(set(times)) == 1
    assert times[0] == pytest.approx(3e-4)


def test_null_buffer_world_runs_same_timing():
    latencies = []
    for functional in (True, False):
        world = make_world(functional=functional)

        def program(ctx):
            buf = ctx.alloc(256)
            if ctx.rank == 0:
                yield from ctx.send(buf.view(), dst=3, tag=0)
            elif ctx.rank == 3:
                yield from ctx.recv(buf.view(), src=0, tag=0)
                return ctx.now
            return None

        latencies.append(world.run(program)[3])
    assert latencies[0] == pytest.approx(latencies[1])


def test_run_per_rank_args():
    world = make_world(nodes=1, ppn=2)

    def program(ctx, x):
        yield from ctx.compute(0.0)
        return x * 2

    assert world.run(program, per_rank_args=[(1,), (5,)]) == [2, 10]
    with pytest.raises(ValueError):
        world.run(program, per_rank_args=[(1,)])
