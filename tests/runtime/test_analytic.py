"""Unit tests for the vectorized analytic evaluator's envelope.

The differential matrix (``tests/validate/test_differential.py``)
proves declined calls are byte- and timestamp-exact; here we pin *when*
the evaluator engages vs declines — the ``hits`` / ``declined``
counters — and that every decline path replays the reference run
exactly.
"""

import pytest

from repro.machine import broadwell_opa
from repro.mpilibs import make_library


def _run_allgather(library, engine, nodes=4, ppn=1, nbytes=64, skew=False):
    """(results, stats-sans-sim_events, world) for a wrapped allgather."""
    from repro.bench.harness import _buffers, _invoke

    lib = make_library(library)
    world = lib.make_world(broadwell_opa(nodes=nodes, ppn=ppn),
                           functional=True, engine=engine)
    size = world.comm_world.size
    algo = lib.wrapped("allgather", nbytes, size)

    def program(ctx):
        if skew and ctx.rank == 0:
            # Stagger rank 0's entry so the dynamic same-instant guard
            # fails and the evaluator must fall back mid-flight.
            yield from ctx.compute(1e-6)
        bufs = _buffers(ctx, "allgather", nbytes, size, 0)
        yield from _invoke(algo, ctx, bufs, "allgather", 0)
        return (ctx.now, bytes(bufs["recv"].read()))

    results = world.run(program)
    world.assert_quiescent()
    stats = world.stats()
    stats.pop("sim_events")
    return results, stats, world


def test_engages_at_ppn1_pow2():
    ref, ref_stats, _ = _run_allgather("MPICH", "reference")
    got, stats, world = _run_allgather("MPICH", "analytic")
    assert world.analytic.hits == 1
    assert world.analytic.declined == 0
    assert got == ref and stats == ref_stats


def test_declines_statically_at_ppn2():
    # Intra-node traffic breaks the uniform-round model; the envelope
    # rejects ppn > 1 before touching any state.
    ref, ref_stats, _ = _run_allgather("MPICH", "reference", ppn=2)
    got, stats, world = _run_allgather("MPICH", "analytic", ppn=2)
    assert world.analytic.hits == 0
    assert world.analytic.declined == 0  # static declines aren't counted
    assert got == ref and stats == ref_stats


def test_declines_rendezvous_sized_rounds():
    # Largest recursive-doubling round is count*size/2; push it past
    # the 16 KiB eager limit and the static envelope must decline.
    nbytes = 16384  # final round = 32 KiB > eager limit
    assert broadwell_opa(nodes=4, ppn=1).nic.eager_limit < nbytes * 2
    ref, ref_stats, _ = _run_allgather("MPICH", "reference", nbytes=nbytes)
    got, stats, world = _run_allgather("MPICH", "analytic", nbytes=nbytes)
    assert world.analytic.hits == 0
    assert got == ref and stats == ref_stats


def test_ignores_non_whitelisted_algorithms():
    # PiP-MColl's multi-object allgather is not a lockstep whitelisted
    # algorithm — the evaluator must pass it through untouched.
    ref, ref_stats, _ = _run_allgather("PiP-MColl", "reference")
    got, stats, world = _run_allgather("PiP-MColl", "analytic")
    assert world.analytic.hits == 0
    assert world.analytic.declined == 0
    assert got == ref and stats == ref_stats


def test_dynamic_decline_replays_reference():
    # Ranks entering at different instants must not be parked past
    # their own entry time: the early ranks' gather expires at their
    # instant and declines, the straggler's fresh gather declines at
    # its — two declined gathers, and the fallback replays the
    # reference run to the byte and tick.
    ref, ref_stats, _ = _run_allgather("MPICH", "reference", skew=True)
    got, stats, world = _run_allgather("MPICH", "analytic", skew=True)
    assert world.analytic.hits == 0
    assert world.analytic.declined == 2
    assert got == ref and stats == ref_stats


def test_bruck_handler_engages_on_non_pow2():
    # MVAPICH2 picks Bruck for small allgathers; 3 nodes is non-pow2,
    # which recursive doubling can't do but Bruck can.
    ref, ref_stats, _ = _run_allgather("MVAPICH2", "reference", nodes=3,
                                       nbytes=32)
    got, stats, world = _run_allgather("MVAPICH2", "analytic", nodes=3,
                                       nbytes=32)
    assert world.analytic.hits == 1
    assert got == ref and stats == ref_stats


def test_session_surfaces_analytic_engine():
    import numpy as np

    from repro.api import Session

    session = Session(library="MPICH", nodes=4, ppn=1, trace=False,
                      engine="analytic")

    def app(comm):
        send = np.full(8, comm.rank, dtype=np.uint8)
        recv = np.zeros(8 * comm.size, dtype=np.uint8)
        yield from comm.Allgather(send, recv)
        return recv[::8].tolist()

    result = session.run(app)
    assert result.engine.name == "analytic"
    assert result.engine.analytic
    assert all(r == [0, 1, 2, 3] for r in result.values)


@pytest.mark.parametrize("flag", ["resources"])
def test_session_analytic_downgrade_is_visible(flag):
    from repro.api import Session

    session = Session(library="MPICH", nodes=4, ppn=1, trace=False,
                      engine="analytic", resources=True)

    def app(comm):
        yield from comm.Barrier()
        return comm.rank

    result = session.run(app)
    assert result.engine.name == "calendar"
    assert not result.engine.analytic
    assert any("resource telemetry" in d for d in result.engine.downgrades)
