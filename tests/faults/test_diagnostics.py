"""Deadlock/watchdog diagnostics: per-rank blocked reports."""

import pytest

from repro.faults import FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.errors import MpiError, MpiTimeoutError


def _all_block(ctx):
    buf = ctx.alloc(8)
    # Every rank posts a receive nobody sends: total deadlock.
    yield from ctx.recv(buf.view(), src=(ctx.rank + 1) % ctx.size, tag=42)


class TestDeadlockReport:
    def test_all_blocked_ranks_are_listed(self):
        """No more silent truncation: 12 stuck ranks, 12 named."""
        world = World(small_test(nodes=3, ppn=4))
        with pytest.raises(MpiError) as err:
            world.run(_all_block)
        text = str(err.value)
        assert "deadlock: ranks [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]" in text
        for rank in range(12):
            assert f"rank {rank}:" in text

    def test_report_names_the_blocking_recv(self):
        world = World(small_test(nodes=1, ppn=2))
        with pytest.raises(MpiError) as err:
            world.run(_all_block)
        assert "rank 0: blocked on recv(src=1, tag=42)" in str(err.value)
        assert "rank 1: blocked on recv(src=0, tag=42)" in str(err.value)

    def test_report_shows_wildcards(self):
        def program(ctx):
            buf = ctx.alloc(8)
            if ctx.rank == 0:
                yield from ctx.recv(buf.view())  # ANY_SOURCE / ANY_TAG

        world = World(small_test(nodes=1, ppn=2))
        with pytest.raises(MpiError) as err:
            world.run(program)
        assert "recv(src=ANY, tag=ANY)" in str(err.value)

    def test_report_notes_unexpected_messages(self):
        def program(ctx):
            buf = ctx.alloc(8)
            if ctx.rank == 0:
                yield from ctx.send(buf.view(), dst=1, tag=1)
            else:
                # Wrong tag: the arrived message sits unexpected.
                yield from ctx.recv(buf.view(), src=0, tag=2)

        world = World(small_test(nodes=1, ppn=2))
        with pytest.raises(MpiError) as err:
            world.run(program)
        assert "unexpected messages queued but unmatched" in str(err.value)

    def test_report_marks_crashed_ranks(self):
        plan = FaultPlan(seed=0).crash(rank=1, at_time=0.0)
        world = World(small_test(nodes=1, ppn=2), faults=plan)

        def program(ctx):
            buf = ctx.alloc(8)
            if ctx.rank == 0:
                yield from ctx.recv(buf.view(), src=1, tag=0)
            else:
                yield from ctx.send(buf.view(), dst=0, tag=0)

        with pytest.raises(MpiError) as err:
            world.run(program)
        assert "rank 1: crashed (fail-stop" in str(err.value)

    def test_report_caps_very_wide_jobs(self):
        world = World(small_test(nodes=3, ppn=4))
        report = world.blocked_report(list(range(12)), max_lines=4)
        assert "+8 more ranks" in report


class TestWatchdog:
    def test_watchdog_raises_on_livelock(self):
        def program(ctx):
            if ctx.rank == 0:
                # Probes for a message that never comes: polls forever.
                yield from ctx.probe(src=1, tag=9)
            return True

        world = World(small_test(nodes=1, ppn=2))
        with pytest.raises(MpiTimeoutError, match="watchdog") as err:
            world.run(program, watchdog=1e-3)
        assert "rank 0" in str(err.value)

    def test_watchdog_passes_finishing_runs(self):
        def program(ctx):
            yield ctx.sim.timeout(1e-6)
            return ctx.rank

        world = World(small_test(nodes=1, ppn=2))
        assert world.run(program, watchdog=1.0) == [0, 1]

    def test_watchdog_does_not_mask_deadlock_diagnosis(self):
        """A drained queue inside the window is still a deadlock."""
        world = World(small_test(nodes=1, ppn=2))
        with pytest.raises(MpiError, match="deadlock"):
            world.run(_all_block, watchdog=1.0)


class TestPendingPatterns:
    def test_patterns_in_post_order(self):
        from repro.runtime.matching import MatchingEngine
        from repro.runtime.message import Envelope
        from repro.sim import Simulator

        sim = Simulator()
        engine = MatchingEngine()
        engine.post(Envelope(0, 3, 7), sim.event())
        engine.post(Envelope(0, -1, -1), sim.event())
        engine.post(Envelope(0, 1, 2), sim.event())
        assert engine.pending_patterns() == [(3, 7), (-1, -1), (1, 2)]
