"""The issue's acceptance scenario, pinned as a test.

With a seeded FaultPlan dropping 10% of eager messages, allgather at
64 B on small_test(nodes=4, ppn=4):

* completes byte-exact via retransmission,
* accrues strictly more sim time than the fault-free run,
* reproduces the identical fault trace under the same seed,
* and with retries exhausted raises DeliveryFailedError naming the
  src/dst ranks instead of deadlocking.
"""

import pytest

from repro.collectives import allgather_bruck
from repro.faults import FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.errors import DeliveryFailedError

PARAMS = small_test(nodes=4, ppn=4)
DROP10 = FaultPlan(seed=7).drop(rate=0.1)


def _run_allgather(faults):
    from repro.validate.checker import check_allgather

    world = World(PARAMS, faults=faults, reliable=True)
    check_allgather(world, allgather_bruck, 64)  # asserts byte-exact
    return world


def test_allgather_byte_exact_under_10pct_drop():
    world = _run_allgather(DROP10)
    stats = world.stats()
    assert stats["retransmits"] >= 1
    assert world.faults.counts["drop"] >= 1


def test_faulty_run_accrues_strictly_more_sim_time():
    clean = _run_allgather(None)
    faulty = _run_allgather(DROP10)
    assert faulty.sim.now > clean.sim.now


def test_same_seed_reproduces_identical_trace():
    first = _run_allgather(DROP10)
    second = _run_allgather(DROP10)
    assert first.faults.trace_signature() == second.faults.trace_signature()
    assert first.sim.now == second.sim.now
    assert first.stats() == second.stats()


def test_different_seed_diverges():
    a = _run_allgather(DROP10)
    b = _run_allgather(DROP10.with_seed(8))
    assert a.faults.trace_signature() != b.faults.trace_signature()


def test_exhausted_retries_raise_instead_of_deadlocking():
    # Kill one inter-node flow completely: rank 4 -> rank 0.
    plan = FaultPlan(seed=1).drop(rate=1.0, src=4, dst=0)
    world = World(PARAMS, faults=plan, reliable=True)
    from repro.validate.checker import check_allgather

    with pytest.raises(DeliveryFailedError, match="rank 4 -> rank 0") as err:
        check_allgather(world, allgather_bruck, 64)
    assert err.value.src == 4 and err.value.dst == 0
