"""FaultPlan / FaultRule: validation, scoping predicates, builders."""

import pytest

from repro.faults import ALL_KINDS, FaultPlan, FaultRule


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="melt")

    def test_rate_must_be_probability(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="drop", rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="drop", rate=-0.1)

    def test_layer_must_be_known(self):
        with pytest.raises(ValueError, match="layer"):
            FaultRule(kind="drop", layer="tcp")

    def test_crash_requires_rank(self):
        with pytest.raises(ValueError, match="crash rules must name a rank"):
            FaultRule(kind="crash")

    def test_limit_and_after_bounds(self):
        with pytest.raises(ValueError, match="limit"):
            FaultRule(kind="drop", limit=0)
        with pytest.raises(ValueError, match="after"):
            FaultRule(kind="drop", after=-1)

    def test_degrade_factor_positive(self):
        with pytest.raises(ValueError, match="factor"):
            FaultRule(kind="degrade", factor=0.0)


class TestPredicates:
    def test_unscoped_rule_matches_everything(self):
        rule = FaultRule(kind="drop")
        assert rule.matches(src=0, dst=5, nbytes=64, tag=3, node=0)

    def test_rank_scoping(self):
        rule = FaultRule(kind="drop", src=2, dst=7)
        assert rule.matches(2, 7, 8, 0, 0)
        assert not rule.matches(3, 7, 8, 0, 0)
        assert not rule.matches(2, 6, 8, 0, 0)

    def test_size_band(self):
        rule = FaultRule(kind="drop", min_bytes=64, max_bytes=1024)
        assert rule.matches(0, 1, 64, 0, 0)
        assert rule.matches(0, 1, 1024, 0, 0)
        assert not rule.matches(0, 1, 63, 0, 0)
        assert not rule.matches(0, 1, 1025, 0, 0)

    def test_tag_and_node_scoping(self):
        rule = FaultRule(kind="drop", tag=9, node=1)
        assert rule.matches(0, 1, 8, 9, 1)
        assert not rule.matches(0, 1, 8, 8, 1)
        assert not rule.matches(0, 1, 8, 9, 0)


class TestPlanBuilders:
    def test_builders_chain_and_accumulate(self):
        plan = (FaultPlan(seed=3)
                .drop(rate=0.1)
                .corrupt(rate=0.05, dst=1)
                .duplicate()
                .reorder()
                .delay(1e-6)
                .degrade(factor=2.0, node=0)
                .crash(rank=3, at_time=1e-4))
        assert len(plan.rules) == 7
        assert plan.kinds() == ("drop", "corrupt", "duplicate", "reorder",
                                "delay", "degrade", "crash")
        assert set(plan.kinds()) <= set(ALL_KINDS)

    def test_reorder_defaults_to_deliver_layer(self):
        plan = FaultPlan().reorder()
        assert plan.rules[0].layer == "deliver"

    def test_with_seed_copies(self):
        plan = FaultPlan(seed=1).drop(rate=0.5)
        other = plan.with_seed(2)
        assert other.seed == 2 and plan.seed == 1
        assert other.rules == plan.rules
        other.drop(rate=0.1)
        assert len(plan.rules) == 1  # rule lists are independent

    def test_describe_lists_every_rule(self):
        plan = FaultPlan(seed=5).drop(rate=0.1, dst=2).crash(rank=1)
        text = plan.describe()
        assert "seed=5" in text and "2 rules" in text
        assert "drop" in text and "dst=2" in text and "crash" in text
