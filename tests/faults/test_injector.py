"""FaultInjector semantics: layers, throttles, crash, degrade, trace."""

import pytest

from repro.collectives import allgather_bruck, bcast_binomial
from repro.faults import FaultInjector, FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.errors import CorruptionError, MpiError
from repro.validate.checker import check_allgather, check_bcast


def _pingpong(ctx):
    buf = ctx.alloc(32)
    peer = 1 - ctx.rank
    if ctx.rank == 0:
        yield from ctx.send(buf.view(), dst=peer, tag=1)
        yield from ctx.recv(buf.view(), src=peer, tag=2)
    else:
        yield from ctx.recv(buf.view(), src=peer, tag=1)
        yield from ctx.send(buf.view(), dst=peer, tag=2)
    return ctx.now


class TestBinding:
    def test_injector_binds_once(self):
        injector = FaultInjector(FaultPlan())
        World(small_test(nodes=1, ppn=2), faults=injector)
        with pytest.raises(RuntimeError, match="already bound"):
            World(small_test(nodes=1, ppn=2), faults=injector)

    def test_plan_reusable_across_worlds(self):
        plan = FaultPlan(seed=1).drop(rate=0.5, layer="deliver")
        w1 = World(small_test(nodes=1, ppn=2), faults=plan)
        w2 = World(small_test(nodes=1, ppn=2), faults=plan)
        assert w1.faults is not w2.faults

    def test_no_plan_means_no_injector(self):
        world = World(small_test(nodes=1, ppn=2))
        assert world.faults is None


class TestLayers:
    def test_wire_rules_never_touch_intra_node(self):
        """Shared memory does not lose stores: a wire drop on a
        single-node world is a no-op."""
        plan = FaultPlan(seed=0).drop(rate=1.0, layer="wire")
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        results = world.run(_pingpong)
        assert all(r is not None for r in results)
        assert world.faults.counts == {}

    def test_deliver_rules_hit_any_transport(self):
        plan = FaultPlan(seed=0).drop(rate=1.0, dst=1, layer="deliver")
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        with pytest.raises(MpiError, match="deadlock"):
            world.run(_pingpong)
        assert world.faults.counts["drop"] >= 1

    def test_wire_drop_on_plain_network_is_permanent(self):
        """Without reliable delivery a wire drop deadlocks the job."""
        plan = FaultPlan(seed=0).drop(rate=1.0, layer="wire")
        world = World(small_test(nodes=2, ppn=1), faults=plan)
        with pytest.raises(MpiError, match="deadlock"):
            world.run(_pingpong)


class TestThrottles:
    def test_limit_caps_applications(self):
        plan = FaultPlan(seed=0).corrupt(rate=1.0, layer="deliver", limit=2)
        world = World(small_test(nodes=1, ppn=4), faults=plan)
        with pytest.raises(AssertionError):
            check_allgather(world, allgather_bruck, 64)
        assert world.faults.counts["corrupt"] == 2

    def test_after_skips_first_matches(self):
        # Drop only the 3rd+ message to rank 1; the bcast tree on 4
        # ranks sends rank 1 exactly one message, so nothing fires.
        plan = FaultPlan(seed=0).drop(rate=1.0, dst=1, layer="deliver", after=2)
        world = World(small_test(nodes=1, ppn=4), faults=plan)
        check_bcast(world, bcast_binomial, 64)
        assert world.faults.counts == {}

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=0).drop(rate=0.0, layer="deliver")
        world = World(small_test(nodes=1, ppn=4), faults=plan)
        check_allgather(world, allgather_bruck, 64)
        assert world.faults.counts == {}


class TestKinds:
    def test_detected_corruption_raises(self):
        plan = FaultPlan(seed=0).corrupt(rate=1.0, dst=1, layer="deliver",
                                         limit=1, detect=True)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        with pytest.raises(CorruptionError, match="checksum mismatch"):
            world.run(_pingpong)

    def test_duplicate_leaves_unexpected_message(self):
        plan = FaultPlan(seed=0).duplicate(rate=1.0, dst=1, layer="deliver",
                                           limit=1)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        world.run(_pingpong)
        assert world.matching[1].unexpected_messages == 1
        with pytest.raises(AssertionError, match="unexpected"):
            world.assert_quiescent()

    def test_delay_accrues_sim_time(self):
        base = World(small_test(nodes=1, ppn=2))
        base.run(_pingpong)
        plan = FaultPlan(seed=0).delay(5e-6, rate=1.0, layer="deliver")
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        world.run(_pingpong)
        assert world.sim.now > base.sim.now + 5e-6 * 0.9

    def test_reorder_still_byte_exact(self):
        """Held-back messages are flushed, so collectives stay correct
        (matching is by envelope, not arrival order)."""
        plan = FaultPlan(seed=4).reorder(rate=0.5)
        world = World(small_test(nodes=2, ppn=2), faults=plan)
        check_allgather(world, allgather_bruck, 64)
        assert world.faults.counts.get("reorder", 0) >= 1


class TestCrash:
    def test_crash_gate_freezes_rank(self):
        plan = FaultPlan(seed=0).crash(rank=1, at_time=0.0)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        results = world.run(_pingpong, allow_unfinished=True)
        assert results[1] is None  # dead rank never finished
        assert results[0] is None  # peer starves waiting for it
        assert world.faults.counts["crash"] == 1

    def test_messages_to_crashed_rank_are_swallowed(self):
        plan = FaultPlan(seed=0).crash(rank=1, at_time=0.0)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        world.run(_pingpong, allow_unfinished=True)
        assert world.matching[1].unexpected_messages == 0

    def test_crash_at_future_time_spares_early_traffic(self):
        plan = FaultPlan(seed=0).crash(rank=1, at_time=1.0)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        results = world.run(_pingpong)
        assert all(r is not None for r in results)


class TestDegradeAndTrace:
    def test_rate_factor_composes(self):
        plan = FaultPlan().degrade(factor=2.0, node=1).degrade(factor=3.0)
        world = World(small_test(nodes=2, ppn=1), faults=plan)
        assert world.faults.rate_factor(1) == pytest.approx(6.0)
        assert world.faults.rate_factor(0) == pytest.approx(3.0)

    def test_trace_is_recorded_with_times(self):
        plan = FaultPlan(seed=0).drop(rate=1.0, dst=1, layer="deliver",
                                      limit=1)
        world = World(small_test(nodes=1, ppn=2), faults=plan)
        world.run(_pingpong, allow_unfinished=True)
        events = world.faults.events
        assert len(events) == 1
        assert events[0].kind == "drop" and events[0].dst == 1
        assert events[0].t >= 0.0
        assert "drop=1" in world.faults.summary()
