"""`python -m repro faults` and the chaos sweep/report helpers."""

import pytest

from repro.cli import main
from repro.faults import ChaosPoint, chaos_point, chaos_sweep, resilience_report
from repro.machine import small_test


class TestChaosPoint:
    def test_clean_point_completes(self):
        p = chaos_point("MPICH", "allgather", 32, small_test(nodes=2, ppn=2),
                        drop_rate=0.0)
        assert p.completed and p.retransmits == 0 and p.verdict == "ok"

    def test_lossy_point_records_recovery(self):
        # PiP-MColl's leader-based schedule sends few inter-node eager
        # messages at 2x2, so use a (rate, seed) pair that does sample
        # a loss.
        p = chaos_point("PiP-MColl", "allgather", 32,
                        small_test(nodes=2, ppn=2), drop_rate=0.3, seed=1)
        assert p.completed
        assert p.faults_injected >= 1
        assert p.retransmits >= 1

    def test_failure_degrades_to_a_verdict(self):
        # drop_rate=1.0 kills every transmission: retries exhaust and
        # the point reports the error class instead of raising.
        p = chaos_point("MPICH", "allgather", 32, small_test(nodes=2, ppn=2),
                        drop_rate=1.0)
        assert not p.completed
        assert p.error == "DeliveryFailedError"
        assert "DeliveryFailedError" in p.verdict


class TestReport:
    def test_report_table_shape(self):
        points = chaos_sweep("allgather", 32, small_test(nodes=2, ppn=2),
                             drop_rates=(0.0, 0.1), libraries=("MPICH",),
                             seed=0)
        text = resilience_report(points)
        assert "chaos resilience" in text
        assert "MPICH" in text
        assert "0.0%" in text and "10.0%" in text
        assert "ok" in text

    def test_report_handles_failures(self):
        points = [
            ChaosPoint("X", "allgather", 64, 0.0, 0, 10.0, 0, 0, True),
            ChaosPoint("X", "allgather", 64, 0.5, 0, float("inf"), 0, 9,
                       False, error="DeliveryFailedError"),
        ]
        text = resilience_report(points)
        assert "FAILED (DeliveryFailedError)" in text

    def test_empty_report(self):
        assert resilience_report([]) == "no chaos points"


class TestCli:
    def test_faults_subcommand_prints_report(self, capsys):
        rc = main([
            "faults", "--collective", "allgather", "--size", "32",
            "--nodes", "2", "--ppn", "2", "--drop-rates", "0,0.1",
            "--libraries", "MPICH", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos resilience" in out and "MPICH" in out

    def test_bad_drop_rates_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "--drop-rates", "1.5"])
        with pytest.raises(SystemExit):
            main(["faults", "--drop-rates", "abc"])
