"""Property-based chaos for the reduction/vector families under the
fault-tolerant runtime.

Hypothesis draws message sizes, drop rates, delays and crash victims;
``Reduce_scatter``, ``Scan``, ``Exscan`` and ``Alltoallv`` must:

* stay byte-exact vs the full-membership oracle under drop/delay
  (reliable delivery absorbs loss; FT supervision must not corrupt a
  run that merely runs slow), and
* under a crash, complete on the survivors with the survivor-set
  oracle — no hangs, no escaped delivery errors.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.faults import FaultPlan
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)
N = 4  # world size

CHAOS_SETTINGS = dict(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

DROP = st.floats(0.0, 0.15)
DELAY = st.floats(0.0, 2e-4)
SEED = st.integers(0, 2**16)
COUNT = st.integers(1, 13)
VICTIM = st.integers(1, N - 1)  # never rank 0 (rooted paths stay alive)


def _lossy_session(drop, delay, seed):
    plan = FaultPlan(seed=seed)
    if drop:
        plan = plan.drop(rate=drop)
    if delay:
        plan = plan.delay(delay, rate=0.3)
    return Session(library="MPICH", params=PARAMS, trace=False, ft=True,
                   faults=plan, reliable=True)


def _crash_session(victim, seed):
    # 0.5 µs: early enough that the victim can never have finished the
    # collective *and* reported clean before freezing (a 4-rank run
    # needs at least one inter-node round trip).
    plan = FaultPlan(seed=seed).crash(victim, at_time=5e-7)
    return Session(library="MPICH", params=PARAMS, trace=False, ft=True,
                   faults=plan, reliable=True)


# -- byte-exact under drop/delay ----------------------------------------

@given(drop=DROP, delay=DELAY, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_reduce_scatter_byte_exact_under_loss(drop, delay, seed, count):
    def app(comm):
        send = np.array([float((comm.rank + 1) * (j + 1))
                         for j in range(N) for _ in range(count)])
        recv = np.zeros(count, dtype=np.float64)
        yield from comm.Reduce_scatter(send, recv)
        return recv

    values = _lossy_session(drop, delay, seed).run(app).values
    for r, got in enumerate(values):
        expected = sum((s + 1) * (r + 1) for s in range(N))
        assert np.all(got == expected)


@given(drop=DROP, delay=DELAY, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_scan_exscan_byte_exact_under_loss(drop, delay, seed, count):
    def app(comm):
        send = np.full(count, float(comm.rank + 1), dtype=np.float64)
        inc = np.zeros(count, dtype=np.float64)
        exc = np.zeros(count, dtype=np.float64)
        yield from comm.Scan(send, inc)
        yield from comm.Exscan(send, exc)
        return inc, exc

    values = _lossy_session(drop, delay, seed).run(app).values
    for r, (inc, exc) in enumerate(values):
        assert np.all(inc == sum(s + 1 for s in range(r + 1)))
        assert np.all(exc == sum(s + 1 for s in range(r)))


@given(drop=DROP, delay=DELAY, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_alltoallv_byte_exact_under_loss(drop, delay, seed, count):
    def app(comm):
        send = np.array([float((comm.rank + 1) * 10 + j)
                         for j in range(N) for _ in range(count)])
        recv = np.zeros(count * N, dtype=np.float64)
        yield from comm.Alltoallv(send, [count] * N, recv, [count] * N)
        return recv

    values = _lossy_session(drop, delay, seed).run(app).values
    for r, got in enumerate(values):
        blocks = got.reshape(N, count)
        for s in range(N):
            assert np.all(blocks[s] == (s + 1) * 10 + r)


# -- survivor-correct under crash ---------------------------------------

@given(victim=VICTIM, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_reduce_scatter_survivor_oracle_under_crash(victim, seed, count):
    def app(comm):
        send = np.array([float((comm.rank + 1) * (j + 1))
                         for j in range(N) for _ in range(count)])
        recv = np.zeros(count, dtype=np.float64)
        yield from comm.Reduce_scatter(send, recv)
        return recv

    values = _crash_session(victim, seed).run(app).values
    surv = [r for r in range(N) if r != victim]
    assert values[victim] is None
    for r in surv:
        expected = sum((s + 1) * (r + 1) for s in surv)
        assert np.all(values[r] == expected)


@given(victim=VICTIM, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_scan_exscan_survivor_oracle_under_crash(victim, seed, count):
    def app(comm):
        send = np.full(count, float(comm.rank + 1), dtype=np.float64)
        inc = np.zeros(count, dtype=np.float64)
        exc = np.zeros(count, dtype=np.float64)
        yield from comm.Scan(send, inc)
        yield from comm.Exscan(send, exc)
        return inc, exc

    values = _crash_session(victim, seed).run(app).values
    surv = [r for r in range(N) if r != victim]
    assert values[victim] is None
    for r in surv:
        inc, exc = values[r]
        assert np.all(inc == sum(s + 1 for s in surv if s <= r))
        assert np.all(exc == sum(s + 1 for s in surv if s < r))


@given(victim=VICTIM, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_alltoallv_survivor_oracle_under_crash(victim, seed, count):
    def app(comm):
        send = np.array([float((comm.rank + 1) * 10 + j)
                         for j in range(N) for _ in range(count)])
        recv = np.zeros(count * N, dtype=np.float64)
        yield from comm.Alltoallv(send, [count] * N, recv, [count] * N)
        return recv

    values = _crash_session(victim, seed).run(app).values
    surv = [r for r in range(N) if r != victim]
    assert values[victim] is None
    for r in surv:
        blocks = values[r].reshape(N, count)
        for s in range(N):
            if s == victim:
                assert np.all(blocks[s] == 0.0)
            else:
                assert np.all(blocks[s] == (s + 1) * 10 + r)
