"""ReliableNetworkTransport: ack/timeout/retransmit protocol."""

import pytest

from repro.collectives import allgather_bruck
from repro.faults import FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.errors import DeliveryFailedError
from repro.transport import NetworkTransport, ReliableNetworkTransport
from repro.validate.checker import check_allgather


def _pingpong(ctx, nbytes=64):
    buf = ctx.alloc(nbytes)
    peer = 1 - ctx.rank
    if ctx.rank == 0:
        yield from ctx.send(buf.view(), dst=peer, tag=1)
        yield from ctx.recv(buf.view(), src=peer, tag=2)
    else:
        yield from ctx.recv(buf.view(), src=peer, tag=1)
        yield from ctx.send(buf.view(), dst=peer, tag=2)
    return ctx.now


def _two_node(reliable=True, faults=None):
    return World(small_test(nodes=2, ppn=1), faults=faults, reliable=reliable)


class TestProtocolBasics:
    def test_fault_free_run_completes_with_acks(self):
        world = _two_node()
        assert isinstance(world.network, ReliableNetworkTransport)
        world.run(_pingpong)
        stats = world.stats()
        assert stats["retransmits"] == 0
        assert stats["acks"] == 2  # one per eager message

    def test_reliable_costs_at_least_as_much_as_plain(self):
        plain = World(small_test(nodes=2, ppn=1))
        plain.run(_pingpong)
        reliable = _two_node()
        reliable.run(_pingpong)
        assert reliable.sim.now >= plain.sim.now

    def test_rto_backs_off_exponentially(self):
        t = ReliableNetworkTransport(backoff=2.0)
        nic = small_test(nodes=2, ppn=1).nic
        wire = nic.wire_time(64)
        assert t.rto(nic, wire, 2) == pytest.approx(2.0 * t.rto(nic, wire, 1))
        assert t.rto(nic, wire, 3) == pytest.approx(4.0 * t.rto(nic, wire, 1))

    def test_rendezvous_messages_take_base_path(self):
        """Large sends bypass the eager protocol (RDMA is modeled as
        hardware-reliable) but still complete."""
        world = _two_node()
        big = world.params.nic.eager_limit + 1
        world.run(_pingpong, args=(big,))
        assert world.stats()["acks"] == 0


class TestRetransmission:
    def test_dropped_message_is_retransmitted(self):
        plan = FaultPlan(seed=0).drop(rate=1.0, limit=1)
        world = _two_node(faults=plan)
        world.run(_pingpong)
        stats = world.stats()
        assert stats["retransmits"] == 1
        assert world.faults.counts["drop"] == 1

    def test_corrupted_transmission_is_retransmitted(self):
        plan = FaultPlan(seed=0).corrupt(rate=1.0, limit=1)
        world = _two_node(faults=plan)
        world.run(_pingpong)
        assert world.stats()["retransmits"] == 1

    def test_duplicate_is_deduplicated(self):
        plan = FaultPlan(seed=0).duplicate(rate=1.0)
        world = _two_node(faults=plan)
        world.run(_pingpong)
        world.assert_quiescent()  # no double delivery

    def test_retry_cost_accrues_in_sim_time(self):
        clean = _two_node()
        clean.run(_pingpong)
        plan = FaultPlan(seed=0).drop(rate=1.0, limit=2)
        lossy = _two_node(faults=plan)
        lossy.run(_pingpong)
        assert lossy.sim.now > clean.sim.now

    def test_degraded_nic_slows_the_wire(self):
        clean = _two_node()
        clean.run(_pingpong, args=(8192,))
        slow = _two_node(faults=FaultPlan().degrade(factor=50.0, node=0))
        slow.run(_pingpong, args=(8192,))
        assert slow.sim.now > clean.sim.now


class TestExhaustion:
    def test_exhausted_retries_raise_naming_ranks(self):
        plan = FaultPlan(seed=0).drop(rate=1.0)  # every transmission dies
        world = _two_node(faults=plan)
        with pytest.raises(DeliveryFailedError,
                           match=r"rank 0 -> rank 1") as err:
            world.run(_pingpong)
        assert err.value.src == 0 and err.value.dst == 1

    def test_exhaustion_counts_configured_retries(self):
        plan = FaultPlan(seed=0).drop(rate=1.0)
        world = _two_node(faults=plan)
        world.network.max_retries = 3
        with pytest.raises(DeliveryFailedError, match="3 retries"):
            world.run(_pingpong)
        assert world.faults.counts["drop"] == 4  # 1 original + 3 retries


class TestOrdering:
    def test_flow_stays_in_order_under_loss(self):
        """A retransmitted message must not be overtaken by a later
        same-flow message (MPI non-overtaking)."""
        import numpy as np

        from repro.runtime.buffer import ArrayBuffer

        # Drop the first transmission of the first message only.
        plan = FaultPlan(seed=0).drop(rate=1.0, limit=1)
        world = _two_node(faults=plan)

        def program(ctx):
            n = 8
            if ctx.rank == 0:
                for i in range(4):
                    buf = ArrayBuffer.from_array(
                        np.full(n, i, dtype=np.uint8))
                    yield from ctx.send(buf.view(), dst=1, tag=5)
            else:
                got = []
                buf = ctx.alloc(n)
                for _ in range(4):
                    yield from ctx.recv(buf.view(), src=0, tag=5)
                    got.append(int(buf.view().read()[0]))
                return got

        results = world.run(program)
        assert results[1] == [0, 1, 2, 3]
        assert world.stats()["retransmits"] == 1

    def test_collective_byte_exact_under_heavy_loss(self):
        plan = FaultPlan(seed=11).drop(rate=0.3)
        world = World(small_test(nodes=4, ppn=2), faults=plan, reliable=True)
        check_allgather(world, allgather_bruck, 64)
        assert world.stats()["retransmits"] >= 1


class TestConfiguration:
    def test_reliable_plus_fabric_rejected(self):
        from repro.machine.fabric import FabricParams

        with pytest.raises(ValueError, match="flat network"):
            World(small_test(nodes=4, ppn=2), reliable=True,
                  fabric=FabricParams())

    def test_inter_node_flag(self):
        assert NetworkTransport.inter_node
        assert ReliableNetworkTransport.inter_node
        world = World(small_test(nodes=1, ppn=2))
        assert not world.intra.inter_node
        assert not world.loopback.inter_node

    def test_describe_mentions_protocol(self):
        text = ReliableNetworkTransport().describe()
        assert "retransmit" in text and "8 retries" in text
