"""repro.obs.host — fork-safe wall-clock telemetry.

The contracts under test:

* off by default, activation is scoped, and the disabled path is
  invisible (``host.active() is None``);
* per-event detail caps without losing aggregate exactness;
* **fork safety** — events emitted in forked workers arrive in the
  parent exactly once, merged in wall-timestamp order, through both
  raw drain/absorb and the real worker protocols (sharded engine
  workers, sweep-queue workers);
* the exports hold their schemas: the Perfetto host trace passes the
  same ``validate_chrome_trace`` checker CI runs on sim traces, the
  metrics snapshot is JSON-safe, and the report names the slowest
  shard correctly.
"""

import json
import os
from multiprocessing import Pipe

import pytest

from repro.bench import bench_collective, run_sweep
from repro.machine import broadwell_opa, small_test
from repro.obs import host
from repro.obs.host import HostReport, HostTracer, jsonl_event_writer
from repro.obs.perfetto import validate_chrome_trace
from repro.service import ResultCache, SweepJobQueue, SweepRequest


# -- tracer basics ------------------------------------------------------

def test_off_by_default_and_scoped():
    assert host.active() is None
    with host.tracing() as tracer:
        assert host.active() is tracer
        with host.tracing() as inner:
            assert host.active() is inner
        assert host.active() is tracer  # nesting restores
    assert host.active() is None


def test_span_and_counter_aggregation():
    tracer = HostTracer()
    tracer.span_at("op", 1.0, 3.0, track="t")
    tracer.span_at("op", 5.0, 6.0, track="t")
    tracer.count("hits_total", 2, kind="a")
    tracer.count("hits_total", kind="a")
    (count, total, peak) = tracer.aggregates()[("op", "t")]
    assert (count, total, peak) == (2, 3.0, 2.0)
    assert tracer.counters()[("hits_total", (("kind", "a"),))] == 3.0


def test_event_cap_keeps_aggregates_exact():
    tracer = HostTracer(max_events=10)
    for i in range(25):
        tracer.span_at("op", float(i), float(i) + 1.0)
    assert len(tracer.events()) == 10
    assert tracer.dropped == 15
    count, total, _peak = tracer.aggregates()[("op", "main")]
    assert count == 25 and total == 25.0  # exact despite the cap
    report = HostReport(tracer)
    assert "dropped" in report.format()


def test_events_merge_in_timestamp_order():
    tracer = HostTracer()
    tracer.span_at("late", 5.0, 6.0)
    tracer.span_at("early", 1.0, 2.0)
    tracer.instant("mid")  # real clock, far later than the pinned spans
    names = [e[1] for e in tracer.events()]
    assert names[:2] == ["early", "late"]


# -- fork safety --------------------------------------------------------

def test_fork_drain_absorb_exactly_once():
    tracer = HostTracer()
    tracer.span_at("parent.before", 1.0, 2.0)
    parent_conn, child_conn = Pipe()
    pid = os.fork()
    if pid == 0:
        code = 0
        try:
            # The inherited buffer must reset in the child: drain ships
            # ONLY child-emitted events, never a copy of the parent's.
            tracer.span_at("child.work", 3.0, 4.0)
            child_conn.send(tracer.drain())
            child_conn.send(tracer.drain()["events"])  # second drain: empty
        except BaseException:
            code = 1
        finally:
            os._exit(code)
    payload = parent_conn.recv()
    second = parent_conn.recv()
    _pid, status = os.waitpid(pid, 0)
    assert status == 0
    assert [e[1] for e in payload["events"]] == ["child.work"]
    assert second == []  # drained buffers don't re-ship
    tracer.absorb(payload)
    names = [e[1] for e in tracer.events()]
    assert names == ["parent.before", "child.work"]  # once, in ts order
    pids = {e[6] for e in tracer.events()}
    assert len(pids) == 2  # provenance survives the merge
    count, total, _ = tracer.aggregates()[("child.work", "main")]
    assert (count, total) == (1, 1.0)


def test_absorb_respects_cap():
    tracer = HostTracer(max_events=2)
    tracer.span_at("a", 0.0, 1.0)
    donor = HostTracer()
    donor.span_at("b", 1.0, 2.0)
    donor.span_at("c", 2.0, 3.0)
    tracer.absorb(donor.drain())
    assert len(tracer.events()) == 2
    assert tracer.dropped == 1
    assert len(tracer.aggregates()) == 3  # aggregates never capped


# -- engine instrumentation --------------------------------------------

def test_sharded_sequential_shard_tracks():
    with host.tracing() as tracer:
        bench_collective("PiP-MColl", "allgather", 64, small_test(),
                         engine="sharded:2")
    agg = tracer.aggregates()
    tracks = {t for (name, t) in agg if name == "shard.advance"}
    assert tracks == {"shard0", "shard1"}
    assert ("engine.window", "engine") in agg
    assert ("bench.cell", "bench") in agg
    counters = {name for (name, _items) in tracer.counters()}
    assert "engine_windows_total" in counters


def test_sharded_forked_worker_telemetry_ships_home():
    with host.tracing() as tracer:
        bench_collective("PiP-MColl", "allgather", 64, small_test(),
                         engine="sharded:2x2")
    agg = tracer.aggregates()
    report = HostReport(tracer)
    workers = report.worker_utilization()
    assert set(workers) == {"worker0", "worker1"}
    for row in workers.values():
        assert row["windows"] > 0
        assert 0.0 <= row["utilization"] <= 1.0
    assert ("coord.round", "coordinator") in agg
    # Shard advances happened in children; exactly one copy each.
    rounds = agg[("coord.round", "coordinator")][0]
    assert agg[("shard.advance", "shard0")][0] == rounds
    assert report.window_summary()["cross_worker_msgs"] > 0


def test_forked_engine_events_arrive_exactly_once():
    def run():
        with host.tracing() as tracer:
            bench_collective("PiP-MColl", "allgather", 64, small_test(),
                             engine="sharded:2x2")
        return tracer

    seq = run()
    # Worker windows == coordinator rounds: one busy span per window
    # per worker, so a double-absorb would double the count.
    agg = seq.aggregates()
    rounds = agg[("coord.round", "coordinator")][0]
    assert agg[("worker.window", "worker0")][0] == rounds
    assert agg[("worker.window", "worker1")][0] == rounds


# -- service instrumentation -------------------------------------------

def _cells(params, sizes=(16, 64)):
    return [SweepRequest(library=lib, collective="allgather",
                         nbytes=nbytes, params=params)
            for lib in ("MPICH", "PiP-MColl") for nbytes in sizes]


def test_cache_outcome_spans(tmp_path):
    params = broadwell_opa(nodes=2, ppn=2)
    cache = ResultCache(tmp_path / "c")
    with host.tracing() as tracer:
        SweepJobQueue(cache=cache).run(_cells(params))   # cold: misses
        SweepJobQueue(cache=cache).run(_cells(params))   # warm: hits
        victim = next(iter(cache.keys()))
        path = cache.path_for(victim)
        path.write_text(path.read_text()[:40])           # torn entry
        SweepJobQueue(cache=cache).run(_cells(params))   # heals
    by_outcome = HostReport(tracer).cache_summary()["ops"]
    assert by_outcome["miss"] == 4
    assert by_outcome["corrupt"] == 1
    assert by_outcome["hit"] == 4 + 3
    assert by_outcome["write"] == 4 + 1
    ratio = HostReport(tracer).cache_summary()["hit_ratio"]
    assert ratio == pytest.approx(7 / 12)


def test_queue_lifecycle_counters(tmp_path):
    params = broadwell_opa(nodes=2, ppn=2)
    cache = ResultCache(tmp_path / "c")
    reqs = _cells(params) + _cells(params)  # second half dedups
    with host.tracing() as tracer:
        SweepJobQueue(cache=cache).run(reqs)
    phases = HostReport(tracer).queue_summary()
    assert phases["miss"] == 4
    assert phases["dedup"] == 4
    assert phases["start"] == 4 and phases["done"] == 4


def test_queue_forked_workers_cell_spans_exactly_once(tmp_path):
    params = broadwell_opa(nodes=2, ppn=2)
    with host.tracing() as tracer:
        queue = SweepJobQueue(cache=ResultCache(tmp_path / "c"), workers=2)
        points = queue.run(_cells(params))
    assert len(points) == 4 and queue.stats.computed == 4
    count, total, _ = tracer.aggregates()[("cell.run", "queue")]
    assert count == 4  # one span per executed cell, shipped home once
    assert total > 0.0
    # bench.cell spans from inside the forked workers came home too.
    assert tracer.aggregates()[("bench.cell", "bench")][0] == 4
    assert HostReport(tracer).queue_summary()["done"] == 4


# -- reports and exports -----------------------------------------------

def test_slowest_shard_names_imbalanced_shard():
    # nodes=5 over 4 shards → shard_of_node = [0, 0, 1, 2, 3]: shard0
    # owns two nodes' worth of events, every other shard one.
    with host.tracing() as tracer:
        bench_collective("PiP-MColl", "allgather", 256,
                         broadwell_opa(nodes=5, ppn=4), engine="sharded:4")
    report = HostReport(tracer)
    shards = report.shard_breakdown()
    assert set(shards) == {"shard0", "shard1", "shard2", "shard3"}
    assert report.slowest_shard() == "shard0"


def test_perfetto_export_validates_and_tracks():
    with host.tracing() as tracer:
        bench_collective("PiP-MColl", "allgather", 64, small_test(),
                         engine="sharded:2x2")
    obj = HostReport(tracer).to_perfetto()
    assert validate_chrome_trace(obj) == len(obj["traceEvents"])
    names = {e["args"]["name"] for e in obj["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert "host" in names
    assert any(n.startswith("forked worker") for n in names)
    threads = {e["args"]["name"] for e in obj["traceEvents"]
               if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"shard0", "shard1", "worker0", "coordinator"} <= threads
    assert all(e.get("ts", 0) >= 0 for e in obj["traceEvents"])


def test_metrics_snapshot_json_safe():
    with host.tracing() as tracer:
        bench_collective("MPICH", "allgather", 16,
                         broadwell_opa(nodes=2, ppn=2), engine="sharded:2")
    snap = HostReport(tracer).metrics().snapshot()
    json.dumps(snap)  # must be serialisable as-is
    assert any(k.startswith("host_span_count") for k in snap["counters"])
    assert any("engine_windows_total" in k for k in snap["counters"])


def test_report_format_and_dict_round_trip(tmp_path):
    params = broadwell_opa(nodes=2, ppn=2)
    with host.tracing() as tracer:
        run_sweep("allgather", [16], params, libraries=["MPICH"],
                  cache=ResultCache(tmp_path / "c"), engine="sharded:2")
    report = HostReport(tracer)
    text = report.format()
    assert "window-stall breakdown by shard" in text
    assert "cache:" in text and "queue:" in text
    d = json.loads(json.dumps(report.as_dict()))
    assert d["schema"] == HostReport.SCHEMA
    assert d["slowest_shard"] in d["shards"]
    assert d["cache"]["ops"]["write"] == 1


def test_jsonl_event_writer(capsys):
    import sys

    write = jsonl_event_writer(sys.stdout, id="r9")
    write({"phase": "done", "index": 0, "total": 1, "cell": "x"})
    line = json.loads(capsys.readouterr().out)
    assert line == {"event": "progress", "id": "r9", "phase": "done",
                    "index": 0, "total": 1, "cell": "x"}


def test_to_jsonl_offline_stream():
    tracer = HostTracer()
    tracer.span_at("op", 1.0, 2.0, track="t")
    tracer.instant("mark", track="t")
    lines = [json.loads(l) for l in
             HostReport(tracer).to_jsonl().splitlines()]
    assert [l["event"] for l in lines] == ["span", "instant"]
    assert lines[0]["name"] == "op" and lines[0]["track"] == "t"


def test_tuner_candidate_spans():
    from repro.tuner import make_cells, search

    cells = make_cells("allgather", [16], 2, 2, preset="small_test")
    with host.tracing() as tracer:
        search(cells, strategy="exhaustive", seed=0)
    tuner = HostReport(tracer).tuner_summary()
    assert tuner["candidates"] > 0  # inline path: one span per candidate
    assert tuner["candidate_wall_s"] > 0.0
