"""ResourceTimeline / ResourceMonitor invariants and the metrics
cardinality guard.

The load-bearing properties:

* busy intervals are non-overlapping, monotone, and merged;
* occupancy stays in [0, 1] over any window;
* a monitored run records the same NIC/membus busy time the hardware
  counters report (the timelines hang off the same rate limiters);
* monitoring never perturbs the simulation (same latency with and
  without, fast path stays armed);
* the metrics registry refuses to grow past its label-set ceiling.
"""

from __future__ import annotations

import pytest

from repro.machine import broadwell_opa
from repro.mpilibs import make_library
from repro.obs import CardinalityError, Metrics, ResourceTimeline
from repro.bench.harness import _buffers, _invoke


def _run_allgather(nbytes=64, nodes=4, ppn=4, resources=True,
                   library="PiP-MColl"):
    lib = make_library(library)
    params = broadwell_opa(nodes=nodes, ppn=ppn)
    world = lib.make_world(params, functional=False, resources=resources)
    size = world.comm_world.size
    algo = lib.wrapped("allgather", nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, "allgather", nbytes, size, 0)
        t0 = ctx.now
        yield from _invoke(algo, ctx, bufs, "allgather", 0)
        return ctx.now - t0

    per_rank = world.run(program)
    world.assert_quiescent()
    return world, max(per_rank)


# ---------------------------------------------------------------------------
# ResourceTimeline unit behaviour
# ---------------------------------------------------------------------------
def test_timeline_merges_adjacent_intervals():
    tl = ResourceTimeline("nic_tx", "nic_tx/node0", node=0)
    tl.record_busy(0.0, 1.0)
    tl.record_busy(1.0, 2.0)  # back-to-back → merged
    tl.record_busy(3.0, 4.0)
    assert tl.intervals == [[0.0, 2.0], [3.0, 4.0]]
    assert tl.busy_time == pytest.approx(3.0)
    tl.validate()


def test_timeline_rejects_nothing_but_skips_empty():
    tl = ResourceTimeline("membus", "membus/node0", node=0)
    tl.record_busy(1.0, 1.0)  # zero-width → dropped
    tl.record_busy(2.0, 1.5)  # inverted → dropped
    assert tl.intervals == []
    assert tl.busy_time == 0.0


def test_timeline_occupancy_bounds_and_window_clip():
    tl = ResourceTimeline("uplink", "uplink_up/pod0")
    tl.record_busy(0.0, 4.0)
    assert tl.occupancy(0.0, 4.0) == pytest.approx(1.0)
    assert tl.occupancy(0.0, 8.0) == pytest.approx(0.5)
    # Window inside the interval: fully busy, still clamped to 1.
    assert tl.occupancy(1.0, 2.0) == pytest.approx(1.0)
    assert 0.0 <= tl.occupancy(3.9, 4.1) <= 1.0
    assert tl.occupancy(5.0, 5.0) == 0.0  # empty window


def test_timeline_queue_samples_collapse():
    tl = ResourceTimeline("nic_tx", "nic_tx/node0", node=0)
    tl.sample_queue(0.0, 0.0)
    tl.sample_queue(1.0, 0.0)   # same depth → collapsed
    tl.sample_queue(2.0, 3.0)
    tl.sample_queue(2.0, 5.0)   # same instant → overwritten
    assert [s[:2] for s in tl.queue_samples] == [(0.0, 0.0), (2.0, 5.0)]
    assert tl.max_queue == 5.0


def test_timeline_validate_catches_overlap():
    tl = ResourceTimeline("nic_tx", "nic_tx/node0", node=0)
    tl.intervals = [[0.0, 2.0], [1.0, 3.0]]  # forged overlap
    with pytest.raises(AssertionError):
        tl.validate()


# ---------------------------------------------------------------------------
# ResourceMonitor over a real run
# ---------------------------------------------------------------------------
def test_monitor_attaches_every_facility():
    world, _ = _run_allgather()
    mon = world.resources
    kinds = {tl.kind for tl in mon.timelines}
    assert {"nic_tx", "nic_rx", "membus"} <= kinds
    names = {tl.name for tl in mon.timelines}
    assert "nic_tx/node0" in names and "membus/node3" in names
    mon.validate()


def test_monitor_occupancy_matches_hardware_counters():
    world, _ = _run_allgather()
    mon = world.resources
    stats = world.stats()
    tx_busy = sum(tl.busy_time for tl in mon.by_kind("nic_tx"))
    bus_busy = sum(tl.busy_time for tl in mon.by_kind("membus"))
    assert tx_busy == pytest.approx(stats["tx_busy_s"], rel=1e-12)
    assert bus_busy == pytest.approx(stats["membus_busy_s"], rel=1e-12)
    for kind, occ in mon.occupancy_by_kind().items():
        assert 0.0 <= occ <= 1.0, (kind, occ)


def test_monitor_injection_summary_shape():
    world, _ = _run_allgather()
    inj = world.resources.injection_summary()
    nranks = len(world.contexts)
    assert inj["total_msgs"] == sum(inj["msgs_per_rank"])
    assert inj["active_ranks"] == sum(1 for m in inj["msgs_per_rank"] if m)
    assert inj["engine_utilization"] == pytest.approx(
        inj["active_ranks"] / nranks)
    assert 0.0 <= inj["aggregate_occupancy"] <= 1.0
    assert inj["rate_ceiling_per_rank"] > 0
    assert inj["total_bytes"] > 0  # allgather crosses nodes at 4x4


def test_monitoring_is_pure_observation():
    """Telemetry must not move simulated time or disarm the fast path."""
    world_on, t_on = _run_allgather(resources=True)
    world_off, t_off = _run_allgather(resources=False)
    assert t_on == t_off
    assert world_on._fast == world_off._fast


def test_monitor_gauges_and_reset():
    world, _ = _run_allgather()
    mon = world.resources
    m = Metrics()
    mon.register_gauges(m)
    gauges = m.format()
    assert "resource_occupancy{resource=nic_tx}" in gauges
    assert "injection_engine_utilization" in gauges
    mon.reset()
    assert all(not tl.intervals for tl in mon.timelines)
    assert all(ctx.nic_msgs == 0 for ctx in world.contexts)


# ---------------------------------------------------------------------------
# Metrics cardinality guard (satellite: no unbounded label growth)
# ---------------------------------------------------------------------------
def test_cardinality_guard_trips():
    m = Metrics(max_series=10)
    for i in range(10):
        m.inc("messages_total", transport=f"t{i}")
    with pytest.raises(CardinalityError):
        m.inc("messages_total", transport="one-too-many")


def test_cardinality_guard_ignores_existing_series():
    m = Metrics(max_series=2)
    m.set_gauge("g", 1.0)
    m.inc("c")
    for _ in range(100):  # updates, not new series
        m.set_gauge("g", 2.0)
        m.inc("c")
    with pytest.raises(CardinalityError):
        m.observe("h", 1.0)


def test_cardinality_guard_resets_with_registry():
    m = Metrics(max_series=1)
    m.inc("c")
    m.reset()
    m.inc("d")  # allowed again after reset
    with pytest.raises(CardinalityError):
        m.inc("e")


def test_default_ceiling_fits_a_monitored_paper_run():
    """The per-kind aggregation keeps a 128-node run under the guard."""
    world, _ = _run_allgather(nodes=16, ppn=6)
    m = Metrics()  # default MAX_SERIES
    world.resources.register_gauges(m)
