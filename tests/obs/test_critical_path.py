"""Critical-path extraction: synthetic chains + a real allgather."""

import pytest

from repro.api import Session
from repro.machine import small_test
from repro.obs import SpanRecorder, critical_path


class FakeSim:
    def __init__(self):
        self.now = 0.0


def build_chain_tree():
    """Rank 0 sends to 1 at t=1..2; rank 1 sends to 2 at t=3..5."""
    rec = SpanRecorder()
    sim = FakeSim()
    rec.bind(sim)

    handles = {}
    for rank in (0, 1, 2):
        handles[rank] = rec.span(rank, "allgather", cat="collective")
        handles[rank].__enter__()
    sim.now = 1.0
    with rec.span(0, "round", cat="round", idx=0):
        m0 = rec.open_message(0, 1, 64, "network", tag=0)
        sim.now = 2.0
        rec.close(m0)
    sim.now = 3.0
    with rec.span(1, "round", cat="round", idx=1):
        m1 = rec.open_message(1, 2, 128, "posix_shmem", tag=0)
        sim.now = 5.0
        rec.close(m1)
    sim.now = 6.0
    for rank in (0, 1, 2):
        handles[rank].__exit__(None, None, None)
    return rec.tree()


def test_synthetic_chain_walks_backwards():
    tree = build_chain_tree()
    cp = critical_path(tree, collective="allgather")
    assert [(h.src, h.dst) for h in cp.hops] == [(0, 1), (1, 2)]
    assert [h.round for h in cp.hops] == [0, 1]
    assert cp.hops[0].transport == "network"
    assert cp.hops[1].nbytes == 128
    assert cp.elapsed == pytest.approx(5.0)  # 1.0 → 6.0
    # the shmem hop is longer (2s vs 1s) → it bounds transport + round
    assert cp.bounding_transport == "posix_shmem"
    assert cp.bounding_round == 1


def test_whole_run_path_without_collective_filter():
    cp = critical_path(build_chain_tree())
    assert len(cp.hops) == 2
    assert cp.end_rank == 2  # destination of the last arrival


def test_unknown_collective_raises():
    with pytest.raises(ValueError, match="no collective spans"):
        critical_path(build_chain_tree(), collective="bcast")


def test_empty_tree_gives_empty_path():
    from repro.obs import TraceTree

    cp = critical_path(TraceTree([]))
    assert cp.hops == [] and cp.elapsed == 0.0
    assert cp.bounding_transport is None and cp.bounding_round is None


def test_real_allgather_names_bounding_rank_round_transport():
    """Acceptance: a traced 2-node allgather's critical path names the
    bounding rank, round and transport."""
    import numpy as np

    def app(comm):
        mine = np.full(8, comm.rank, dtype=np.int64)
        out = np.empty(8 * comm.size, dtype=np.int64)
        yield from comm.Allgather(mine, out)
        return out[::8].tolist()

    session = Session(library="PiP-MColl", params=small_test(nodes=2, ppn=2))
    result = session.run(app)
    assert all(r == [0, 1, 2, 3] for r in result)

    cp = result.critical_path("allgather")
    assert cp.hops, "an inter-node allgather must have message hops"
    # PiP-MColl moves bytes inter-node only → every hop is network, and
    # 2 nodes at radix P+1=3 finish in a single multi-object round.
    assert cp.bounding_transport == "network"
    assert cp.bounding_round == 0
    assert cp.bounding_rank in range(4)
    text = cp.describe()
    assert f"rank {cp.bounding_rank}" in text
    assert "network" in text and "round 0" in text


def test_retransmit_spans_show_up_under_faults():
    """The reliable transport's RTO windows land in the trace."""
    import numpy as np

    from repro.faults import FaultInjector, FaultPlan

    def app(comm):
        mine = np.full(4, comm.rank, dtype=np.int64)
        out = np.empty(4 * comm.size, dtype=np.int64)
        yield from comm.Allgather(mine, out)
        return out[::4].tolist()

    plan = FaultPlan(seed=7).drop(rate=0.4)
    session = Session(library="MPICH", params=small_test(nodes=2, ppn=2),
                      faults=FaultInjector(plan), reliable=True)
    result = session.run(app)
    assert all(r == [0, 1, 2, 3] for r in result)
    retrans = result.trace.find(cat="retransmit")
    assert retrans, "40% drop over 4 inter-node sends must retransmit"
    assert result.metrics.counter("retransmits_total") == len(retrans)
    assert all(s.duration > 0 for s in retrans)
