"""Span recorder semantics: nesting, async spans, metrics, reset."""

import pytest

from repro.obs import NULL_SPAN, Metrics, SpanRecorder


class FakeSim:
    """A clock the test can move by hand."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def rec():
    recorder = SpanRecorder()
    recorder.bind(FakeSim())
    return recorder


def test_stack_spans_nest_per_rank(rec):
    sim = rec._sim
    with rec.span(0, "run", cat="run"):
        sim.now = 1.0
        with rec.span(0, "allgather", cat="collective"):
            sim.now = 2.0
            with rec.span(0, "round", cat="round", idx=0):
                sim.now = 3.0
        sim.now = 4.0
    tree = rec.tree()
    rnd = tree.find(cat="round")[0]
    coll = tree.find(cat="collective")[0]
    run = tree.find(cat="run")[0]
    assert tree.parent_of(rnd) is coll
    assert tree.parent_of(coll) is run
    assert run.parent is None
    assert (rnd.t0, rnd.t1) == (2.0, 3.0)
    assert (coll.t0, coll.t1) == (1.0, 3.0)
    assert (run.t0, run.t1) == (0.0, 4.0)
    assert tree.enclosing(rnd, cat="collective") is coll


def test_ranks_have_independent_stacks(rec):
    a = rec.open(0, "phase_a")
    b = rec.open(1, "phase_b")
    rec.close(a)
    rec.close(b)
    tree = rec.tree()
    assert tree.find(rank=0)[0].parent is None
    assert tree.find(rank=1)[0].parent is None


def test_async_message_span_does_not_disturb_the_stack(rec):
    sim = rec._sim
    with rec.span(0, "collective", cat="collective"):
        sid = rec.open_message(0, 1, 64, "network", tag=5)
        # The opener's stack moves on; a later stack span must parent
        # under the collective, not under the in-flight message.
        with rec.span(0, "sync", cat="sync"):
            sim.now = 1.0
        sim.now = 2.0
        rec.close(sid)  # delivery callback fires later
    tree = rec.tree()
    msg = tree.find(cat="message")[0]
    sync = tree.find(cat="sync")[0]
    coll = tree.find(cat="collective")[0]
    assert tree.parent_of(msg) is coll
    assert tree.parent_of(sync) is coll
    assert msg.t1 == 2.0
    assert msg.attrs["transport"] == "network"


def test_metrics_derived_on_close(rec):
    sim = rec._sim
    sid = rec.open_message(0, 1, 100, "network", tag=0)
    sim.now = 2.0
    rec.close(sid)
    sid = rec.open_message(1, 0, 50, "posix_shmem", tag=0)
    sim.now = 3.0
    rec.close(sid)
    m = rec.metrics
    assert m.counter("messages_total", transport="network") == 1
    assert m.counter("bytes_total", transport="network") == 100
    assert m.by_label("bytes_total", "transport") == {
        "network": 100, "posix_shmem": 50}
    assert m.histogram("message_seconds", transport="network").count == 1


def test_sync_and_collective_metrics(rec):
    with rec.span(2, "allreduce", cat="collective"):
        with rec.span(2, "node_barrier", cat="sync"):
            pass
    m = rec.metrics
    assert m.counter("collectives_total", collective="allreduce") == 1
    assert m.counter("sync_waits_total", kind="node_barrier") == 1


def test_null_span_is_a_noop_context_manager():
    with NULL_SPAN as handle:
        assert handle is NULL_SPAN
    # exceptions propagate (no silent swallowing)
    with pytest.raises(RuntimeError):
        with NULL_SPAN:
            raise RuntimeError("boom")


def test_reset_keeps_in_flight_spans(rec):
    sim = rec._sim
    sid = rec.open_message(0, 1, 64, "network", tag=0)
    done = rec.open(0, "warmup")
    rec.close(done)
    assert len(rec.spans) == 1
    rec.reset()
    assert rec.spans == []
    assert rec.metrics.by_label("messages_total", "transport") == {}
    # the in-flight message survived the wipe and closes normally
    sim.now = 5.0
    rec.close(sid)
    assert rec.metrics.counter("messages_total", transport="network") == 1
    assert rec.tree().find(cat="message")[0].duration == 5.0


def test_metrics_standalone():
    m = Metrics()
    m.inc("x_total", 3, kind="a")
    m.inc("x_total", 4, kind="b")
    m.set_gauge("g", 7.5)
    m.observe("h_seconds", 0.5)
    m.observe("h_seconds", 1.5)
    assert m.counter("x_total", kind="a") == 3
    assert m.by_label("x_total", "kind") == {"a": 3, "b": 4}
    assert m.gauge("g") == 7.5
    h = m.histogram("h_seconds")
    assert h.count == 2 and h.mean == 1.0 and h.min == 0.5 and h.max == 1.5
    assert "x_total" in m.names()
    snap = m.snapshot()
    assert snap["counters"]["x_total{kind=a}"] == 3
    assert "h_seconds" in m.format()
