"""Perfetto/Chrome trace export: golden file + schema validator."""

import json
import pathlib

import pytest

from repro.obs import SpanRecorder, to_perfetto, validate_chrome_trace, write_perfetto

GOLDEN = pathlib.Path(__file__).with_name("golden_trace.json")


class FakeSim:
    def __init__(self):
        self.now = 0.0


def build_reference_tree():
    """A tiny deterministic two-rank trace (the golden-file scenario)."""
    rec = SpanRecorder()
    sim = FakeSim()
    rec.bind(sim)
    with rec.span(0, "allgather", cat="collective", library="PiP-MColl",
                  nbytes=64):
        sim.now = 1e-6
        with rec.span(0, "round", cat="round", idx=0):
            msg = rec.open_message(0, 1, 64, "network", tag=7)
            sim.now = 3e-6
            rec.close(msg)
            sim.now = 4e-6
        sim.now = 5e-6
    with rec.span(1, "allgather", cat="collective", library="PiP-MColl",
                  nbytes=64):
        sim.now = 6e-6
    return rec.tree()


def test_export_matches_golden_file():
    """The exported JSON is byte-stable for a fixed span tree.

    Regenerate deliberately with:
    ``python -c "from tests.obs.test_perfetto import regenerate; regenerate()"``
    """
    got = to_perfetto(build_reference_tree(), node_of={0: 0, 1: 1})
    want = json.loads(GOLDEN.read_text())
    assert got == want


def test_export_structure():
    obj = to_perfetto(build_reference_tree(), node_of={0: 0, 1: 1})
    events = obj["traceEvents"]
    assert obj["displayTimeUnit"] == "ns"
    # metadata rows name both node processes and both rank threads
    names = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
    assert {e["args"]["name"] for e in names} == {"node0", "node1"}
    # spans become X events with microsecond timestamps
    xs = [e for e in events if e["ph"] == "X"]
    round_ev = next(e for e in xs if e["name"] == "round")
    assert round_ev["ts"] == pytest.approx(1.0)  # 1e-6 s → 1 us
    assert round_ev["dur"] == pytest.approx(3.0)
    # the message emits a flow arrow pair landing on the destination
    flows = [e for e in events if e["ph"] in ("s", "f")]
    assert len(flows) == 2
    s, f = (e for e in sorted(flows, key=lambda e: e["ph"], reverse=True))
    assert s["id"] == f["id"]
    assert s["tid"] == 0 and f["tid"] == 1


def test_write_perfetto_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    obj = write_perfetto(build_reference_tree(), str(path), node_of={0: 0, 1: 1})
    loaded = json.loads(path.read_text())
    assert loaded == obj
    assert validate_chrome_trace(loaded) == len(obj["traceEvents"])


def test_validator_accepts_bare_event_list():
    assert validate_chrome_trace(
        [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]) == 1


@pytest.mark.parametrize("bad,match", [
    ({"name": "a", "ph": "Z", "ts": 0}, "bad phase"),
    ({"ph": "X", "ts": 0, "dur": 1}, "missing event name"),
    ({"name": "a", "ph": "X", "ts": -1, "dur": 1}, "bad timestamp"),
    ({"name": "a", "ph": "X", "ts": 0}, "needs dur"),
    ({"name": "a", "ph": "s", "ts": 0}, "needs an id"),
    ({"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": "x"}, "integer"),
])
def test_validator_rejects_malformed_events(bad, match):
    with pytest.raises(ValueError, match=match):
        validate_chrome_trace([bad])


def test_validator_rejects_non_trace_objects():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError, match="dict or list"):
        validate_chrome_trace("nope")


def regenerate():  # pragma: no cover - maintenance helper
    """Rewrite the golden file after an intentional format change."""
    obj = to_perfetto(build_reference_tree(), node_of={0: 0, 1: 1})
    GOLDEN.write_text(json.dumps(obj, indent=1) + "\n")
