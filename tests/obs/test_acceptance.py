"""Cross-checks between Session metrics and the profiler, plus the
engine-determinism acceptance suite (byte-identical traces, fast path
== reference path)."""

import numpy as np
import pytest

from repro.api import Session
from repro.bench import bench_collective
from repro.bench.breakdown import profile_collective
from repro.machine import broadwell_opa, small_test


def _allgather_app(nbytes):
    def app(comm):
        mine = np.zeros(nbytes, dtype=np.uint8)
        out = np.empty(nbytes * comm.size, dtype=np.uint8)
        yield from comm.Allgather(mine, out)
        return comm.now

    return app


def test_session_metrics_reproduce_profiler_bytes_by_transport():
    """Acceptance: one traced Session invocation counts exactly the
    bytes/messages per transport that profile_collective attributes to
    its measured iteration."""
    params = small_test(nodes=2, ppn=2)
    for library in ("MPICH", "PiP-MColl"):
        profile = profile_collective(library, "allgather", 64, params)
        result = Session(library=library, params=params).run(_allgather_app(64))
        assert result.metrics.by_label("bytes_total", "transport") == \
            profile.bytes_by_transport, library
        assert result.metrics.by_label("messages_total", "transport") == \
            profile.messages_by_transport, library


@pytest.mark.parametrize("library", ["MPICH", "OpenMPI", "PiP-MColl"])
def test_traced_run_simulated_time_equals_untraced(library):
    """Spans must add zero simulated time — the latency acceptance
    budget is trivially met because the clock cannot move.

    Attaching a recorder also forces the reference event path, so this
    doubles as a fast-path exactness check: the untraced run takes the
    macro-event fast path and must land on the same simulated time.
    """
    params = small_test(nodes=2, ppn=2)
    traced = Session(library=library, params=params, trace=True)
    untraced = Session(library=library, params=params, trace=False)
    app = _allgather_app(256)
    assert traced.run(app).elapsed == untraced.run(app).elapsed


def test_same_run_produces_byte_identical_perfetto_trace(tmp_path):
    """Determinism end-to-end: two runs of the same configured app
    must export byte-identical Perfetto files — same events, same
    timestamps, same ordering, no wall-clock or id leakage."""
    paths = []
    for i in range(2):
        session = Session(library="PiP-MColl",
                          params=small_test(nodes=2, ppn=2))
        result = session.run(_allgather_app(128))
        path = tmp_path / f"trace{i}.json"
        result.write_perfetto(path)
        paths.append(path)
    a, b = (p.read_bytes() for p in paths)
    assert a == b, "trace export is not deterministic"


#: the pinned timing matrix: timing-only mode (no payloads) over every
#: transport regime — intra-only, multi-node eager, and a rooted tree
_PINNED_MATRIX = [
    ("MPICH", "allgather", 64, 4, 4),
    ("MPICH", "alltoall", 32, 2, 4),
    ("OpenMPI", "allreduce", 64, 4, 2),
    ("IntelMPI", "bcast", 256, 4, 4),
    ("MVAPICH2", "scatter", 128, 2, 4),
    ("PiP-MColl", "allgather", 64, 4, 4),
    ("PiP-MColl", "barrier", 0, 2, 4),
    ("PiP-MPICH", "allreduce", 64, 1, 4),
]


@pytest.mark.parametrize("library,collective,nbytes,nodes,ppn",
                         _PINNED_MATRIX)
def test_fast_path_matches_reference_time(library, collective, nbytes,
                                          nodes, ppn):
    """The macro-event fast path must reproduce the reference event
    path's latencies exactly (not within tolerance: the fast path is
    an engine optimisation, never a model change).  Timing-only mode,
    so this covers the payload-free descriptor path the paper-scale
    benchmarks use."""
    params = broadwell_opa(nodes=nodes, ppn=ppn)
    fast = bench_collective(library, collective, nbytes, params,
                            warmup=1, iters=2, fastpath=True)
    slow = bench_collective(library, collective, nbytes, params,
                            warmup=1, iters=2, fastpath=False)
    assert fast.iterations == slow.iterations, \
        f"{library}/{collective}: fast path changed simulated time"


def test_no_spans_leak_open_after_a_run():
    from repro.obs import SpanRecorder

    # run through Session, then assert via the world's recorder
    session = Session(library="PiP-MColl", params=small_test(nodes=2, ppn=2))
    result = session.run(_allgather_app(64))
    recorder = result.world.obs
    assert isinstance(recorder, SpanRecorder)
    assert recorder.open_spans == []
