"""Cross-checks between Session metrics and the profiler."""

import numpy as np

from repro.api import Session
from repro.bench.breakdown import profile_collective
from repro.machine import small_test


def _allgather_app(nbytes):
    def app(comm):
        mine = np.zeros(nbytes, dtype=np.uint8)
        out = np.empty(nbytes * comm.size, dtype=np.uint8)
        yield from comm.Allgather(mine, out)
        return comm.now

    return app


def test_session_metrics_reproduce_profiler_bytes_by_transport():
    """Acceptance: one traced Session invocation counts exactly the
    bytes/messages per transport that profile_collective attributes to
    its measured iteration."""
    params = small_test(nodes=2, ppn=2)
    for library in ("MPICH", "PiP-MColl"):
        profile = profile_collective(library, "allgather", 64, params)
        result = Session(library=library, params=params).run(_allgather_app(64))
        assert result.metrics.by_label("bytes_total", "transport") == \
            profile.bytes_by_transport, library
        assert result.metrics.by_label("messages_total", "transport") == \
            profile.messages_by_transport, library


def test_traced_run_simulated_time_equals_untraced():
    """Spans must add zero simulated time — the latency acceptance
    budget is trivially met because the clock cannot move."""
    params = small_test(nodes=2, ppn=2)
    traced = Session(library="PiP-MColl", params=params, trace=True)
    untraced = Session(library="PiP-MColl", params=params, trace=False)
    app = _allgather_app(256)
    assert traced.run(app).elapsed == untraced.run(app).elapsed


def test_no_spans_leak_open_after_a_run():
    from repro.obs import SpanRecorder

    # run through Session, then assert via the world's recorder
    session = Session(library="PiP-MColl", params=small_test(nodes=2, ppn=2))
    result = session.run(_allgather_app(64))
    recorder = result.world.obs
    assert isinstance(recorder, SpanRecorder)
    assert recorder.open_spans == []
