"""LogGP attribution: components sum to the measured window exactly,
model diffs are sane, and critical-path hops name the resource they
waited on.

The headline invariant (ISSUE acceptance): for every collective ×
library of the pinned differential geometry, the per-component
decomposition sums to the measured sim time within 1 µs — in fact the
sequential-min allocation makes it exact, and ``Attribution.check``
asserts the tighter bound.
"""

from __future__ import annotations

import pytest

from repro.bench.breakdown import measure_attribution
from repro.machine import broadwell_opa
from repro.mpilibs import COLLECTIVES, PAPER_LINEUP
from repro.obs import COMPONENTS, SpanRecorder, attribute, critical_path
from repro.obs.attribution import RESOURCE_OF


# ---------------------------------------------------------------------------
# Exactness across the pinned matrix (collectives × libraries, 2×2)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("library", PAPER_LINEUP)
@pytest.mark.parametrize("collective", COLLECTIVES)
def test_attribution_sums_to_measured(collective, library):
    params = broadwell_opa(nodes=2, ppn=2)
    att = measure_attribution(library, collective, 64, params,
                              functional=True)
    att.check(tolerance=1e-6)  # the ±1 µs acceptance bound
    # Exact by construction: residual is floating-point noise only.
    assert abs(att.residual()) < 1e-12
    # Every component is non-negative and known.
    for name, value in att.terms.items():
        assert name in COMPONENTS
        assert value >= -1e-15, (name, value)
    # A dominant term is named and maps to a resource.
    assert att.dominant in COMPONENTS
    assert att.dominant_resource == RESOURCE_OF[att.dominant]


def test_rounds_partition_the_network_time():
    """Round-level terms sum to the round's measured share."""
    params = broadwell_opa(nodes=4, ppn=4)
    att = measure_attribution("PiP-MColl", "allgather", 64, params,
                              functional=True)
    assert att.rounds, "multi-round collective must expose rounds"
    for rnd in att.rounds:
        assert abs(sum(rnd.terms.values()) - rnd.measured) < 1e-12
        assert rnd.dominant in COMPONENTS


def test_model_diff_reports_all_components():
    params = broadwell_opa(nodes=2, ppn=2)
    att = measure_attribution("MPICH", "allgather", 256, params,
                              functional=True)
    diff = att.diff()
    assert set(diff) == set(COMPONENTS)
    # Measured L can never exceed the unclipped model prediction by
    # construction of the sequential-min allocation.
    assert att.terms["L"] <= att.model["L"] + 1e-12


def test_as_dict_round_trips_the_headline_numbers():
    params = broadwell_opa(nodes=2, ppn=2)
    att = measure_attribution("OpenMPI", "bcast", 64, params,
                              functional=True)
    d = att.as_dict()
    assert d["collective"] == "bcast"
    assert d["measured_s"] == pytest.approx(att.measured)
    assert d["dominant"] == att.dominant
    assert sum(d["terms_s"].values()) == pytest.approx(att.measured)


# ---------------------------------------------------------------------------
# Critical-path resource annotation
# ---------------------------------------------------------------------------
def _traced_tree(library, collective, nbytes, params):
    from repro.bench.harness import _buffers, _invoke
    from repro.mpilibs import make_library

    lib = make_library(library)
    world = lib.make_world(params, functional=True)
    recorder = SpanRecorder()
    world.attach_obs(recorder)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, 0)
        yield from _invoke(algo, ctx, bufs, collective, 0)

    world.run(program)
    return recorder.tree()


def test_critical_path_hops_name_waited_resource():
    params = broadwell_opa(nodes=2, ppn=2)
    tree = _traced_tree("PiP-MColl", "allgather", 64, params)
    path = critical_path(tree, collective="allgather", params=params)
    assert path.hops
    for hop in path.hops:
        assert hop.waited_on in set(RESOURCE_OF.values()), hop
    assert "waited on" in path.describe()


def test_critical_path_unannotated_without_params():
    params = broadwell_opa(nodes=2, ppn=2)
    tree = _traced_tree("MPICH", "allgather", 64, params)
    path = critical_path(tree, collective="allgather")
    assert all(hop.waited_on is None for hop in path.hops)


def test_attribute_uses_the_critical_path_window():
    params = broadwell_opa(nodes=2, ppn=2)
    tree = _traced_tree("MPICH", "allgather", 64, params)
    att = attribute(tree, "allgather", params)
    att.check(tolerance=1e-6)
    assert att.path is not None
    assert att.end_time >= att.start_time
