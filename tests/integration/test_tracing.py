"""Trace-based verification: message counts and transport usage.

An independent correctness axis: for each algorithm we know exactly
how many messages must cross which transport.  The tracer counts them,
so an algorithm silently doing extra (or missing) communication cannot
pass even if its bytes come out right.

Self-sends are delivered inline and do not appear as "message" records.
"""

import math

from repro.collectives import (
    allgather_bruck,
    barrier_dissemination,
    bcast_binomial,
    gather_binomial,
    scatter_binomial,
)
from repro.core import mcoll_allgather, mcoll_scatter
from repro.core.multiobject import bruck_schedule
from repro.machine import small_test
from repro.runtime import World
from repro.sim import Tracer
from repro.validate.checker import check_allgather, check_barrier, check_bcast, check_gather, check_scatter


def traced_world(nodes, ppn, intra="posix_shmem"):
    tracer = Tracer()
    return World(small_test(nodes=nodes, ppn=ppn), intra=intra, tracer=tracer), tracer


def messages(tracer):
    return tracer.of_kind("message")


def test_binomial_bcast_message_count():
    world, tracer = traced_world(3, 2)
    check_bcast(world, bcast_binomial, 64)
    assert len(messages(tracer)) == world.comm_world.size - 1


def test_binomial_gather_message_count():
    world, tracer = traced_world(3, 2)
    check_gather(world, gather_binomial, 64)
    assert len(messages(tracer)) == world.comm_world.size - 1


def test_binomial_scatter_message_count():
    world, tracer = traced_world(2, 3)
    check_scatter(world, scatter_binomial, 64)
    assert len(messages(tracer)) == world.comm_world.size - 1


def test_bruck_allgather_message_count():
    world, tracer = traced_world(2, 2)
    check_allgather(world, allgather_bruck, 16)
    size = world.comm_world.size
    assert len(messages(tracer)) == size * math.ceil(math.log2(size))


def test_dissemination_barrier_message_count():
    world, tracer = traced_world(2, 3)
    check_barrier(world, barrier_dissemination)
    size = world.comm_world.size
    assert len(messages(tracer)) == size * math.ceil(math.log2(size))


def test_mcoll_allgather_message_count_and_transports():
    """The paper's core property, verified structurally: the
    multi-object allgather sends exactly the scheduled inter-node
    messages and *zero* intra-node messages (all local movement is
    direct shared-address-space copies)."""
    nodes, ppn = 5, 3
    world, tracer = traced_world(nodes, ppn, intra="pip")
    check_allgather(world, mcoll_allgather, 16)
    msgs = messages(tracer)
    expected = nodes * sum(
        len(bruck_schedule(nodes, ppn, rl)) for rl in range(ppn)
    )
    assert len(msgs) == expected
    assert all(m.detail["transport"] == "network" for m in msgs)


def test_mcoll_scatter_transports():
    nodes, ppn = 3, 2
    world, tracer = traced_world(nodes, ppn, intra="pip")
    check_scatter(world, mcoll_scatter, 16)
    msgs = messages(tracer)
    # One slab per remote node, nothing else.
    assert len(msgs) == nodes - 1
    assert all(m.detail["transport"] == "network" for m in msgs)
    assert all(m.detail["nbytes"] == 16 * ppn for m in msgs)


def test_baseline_uses_intra_transport():
    world, tracer = traced_world(1, 4, intra="posix_shmem")
    check_bcast(world, bcast_binomial, 64)
    assert all(m.detail["transport"] == "posix_shmem" for m in messages(tracer))


def test_tracer_counts_kernel_events():
    world, tracer = traced_world(1, 2)
    check_bcast(world, bcast_binomial, 64)
    assert tracer.count("event:Timeout") > 0
    assert "trace summary" in tracer.summary()
    first, last = tracer.span()
    assert first <= last


def test_tracer_counters_only_mode():
    tracer = Tracer(keep_records=False)
    world = World(small_test(nodes=1, ppn=2), tracer=tracer)
    check_bcast(world, bcast_binomial, 64)
    assert tracer.count("message") == 1
    assert tracer.records == []


def test_world_stats_counters():
    from repro.collectives import allgather_bruck
    from repro.validate.checker import check_allgather

    world, _tracer = traced_world(2, 2)
    check_allgather(world, allgather_bruck, 64)
    stats = world.stats()
    # Bruck over 2x2: 6 of the 8 messages cross the network.
    assert stats["rx_messages"] == stats["tx_messages"] > 0
    assert stats["tx_busy_s"] > 0
    assert stats["membus_busy_s"] > 0
    assert stats["sim_time_s"] > 0
    assert stats["sim_events"] > 50
    assert "interpod_bytes" not in stats  # no fabric attached


def test_world_stats_with_fabric():
    from repro.collectives import allgather_bruck
    from repro.machine import FabricParams, small_test
    from repro.runtime import World
    from repro.validate.checker import check_allgather

    world = World(small_test(nodes=4, ppn=1),
                  fabric=FabricParams(pod_size=2))
    check_allgather(world, allgather_bruck, 64)
    assert world.stats()["interpod_bytes"] > 0


def test_chrome_trace_export():
    import json

    world, tracer = traced_world(2, 2)
    check_bcast(world, bcast_binomial, 64)
    events = tracer.to_chrome_trace()
    msg_events = [e for e in events if e["cat"] != "sim"]
    assert len(msg_events) == world.comm_world.size - 1
    for e in msg_events:
        assert e["ph"] == "i"
        assert e["ts"] >= 0
        assert "nbytes" in e["args"]
    json.dumps(events)  # must be serialisable as-is


def test_chrome_trace_skips_kernel_noise():
    world, tracer = traced_world(1, 2)
    check_bcast(world, bcast_binomial, 64)
    assert tracer.count("event:Timeout") > 0  # kernel events recorded...
    events = tracer.to_chrome_trace()
    assert all(not e["name"].startswith("event:") for e in events)  # ...but not exported
