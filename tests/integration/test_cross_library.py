"""Cross-library integration: performance *ordering* invariants.

These are the small-scale versions of the paper's claims — fast enough
for the unit-test suite, asserting orderings rather than magnitudes.
"""

import pytest

from repro.bench import bench_collective
from repro.machine import broadwell_opa, small_test
from repro.mpilibs import PAPER_LINEUP

PARAMS = broadwell_opa(nodes=8, ppn=6)


@pytest.fixture(scope="module")
def allgather_64():
    return {
        name: bench_collective(name, "allgather", 64, PARAMS, warmup=1, iters=1)
        for name in PAPER_LINEUP
    }


def test_pip_mcoll_wins_allgather(allgather_64):
    ours = allgather_64["PiP-MColl"].latency_us
    for name, point in allgather_64.items():
        if name != "PiP-MColl":
            assert ours < point.latency_us, name


def test_pip_mpich_never_beats_mpich(allgather_64):
    assert allgather_64["PiP-MPICH"].latency_us >= \
        allgather_64["MPICH"].latency_us * 0.999


def test_scatter_ordering():
    pts = {
        name: bench_collective(name, "scatter", 256, PARAMS, warmup=1, iters=1)
        for name in ("MPICH", "PiP-MColl")
    }
    assert pts["PiP-MColl"].latency_us < pts["MPICH"].latency_us


def test_barrier_ordering():
    pts = {
        name: bench_collective(name, "barrier", 0, PARAMS, warmup=1, iters=1)
        for name in ("MPICH", "PiP-MColl")
    }
    assert pts["PiP-MColl"].latency_us < pts["MPICH"].latency_us


def test_latency_grows_with_message_size():
    for name in ("MPICH", "PiP-MColl"):
        lats = [
            bench_collective(name, "allgather", n, PARAMS, warmup=1,
                             iters=1).latency_us
            for n in (16, 256, 4096)
        ]
        assert lats[0] < lats[1] < lats[2], (name, lats)


def test_latency_grows_with_scale():
    small = bench_collective("PiP-MColl", "allgather", 64,
                             broadwell_opa(nodes=4, ppn=6), warmup=1, iters=1)
    big = bench_collective("PiP-MColl", "allgather", 64,
                           broadwell_opa(nodes=16, ppn=6), warmup=1, iters=1)
    assert big.latency_us > small.latency_us


def test_mcoll_advantage_grows_with_nodes():
    """The A4 trend at test-suite scale: the absolute saving grows
    with node count (the ratio saturates — see A4's docstring)."""
    gaps = []
    for nodes in (8, 32):
        base = bench_collective("MPICH", "allgather", 64,
                                broadwell_opa(nodes=nodes, ppn=6),
                                warmup=1, iters=1)
        ours = bench_collective("PiP-MColl", "allgather", 64,
                                broadwell_opa(nodes=nodes, ppn=6),
                                warmup=1, iters=1)
        assert ours.latency_us < base.latency_us
        gaps.append(base.latency_us - ours.latency_us)
    assert gaps[1] > gaps[0]


def test_second_machine_preset_same_ordering():
    """The win is not an artifact of the Broadwell/OPA point."""
    from repro.machine import skylake_ib

    params = skylake_ib(nodes=8, ppn=6)
    base = bench_collective("MPICH", "allgather", 64, params, warmup=1, iters=1)
    ours = bench_collective("PiP-MColl", "allgather", 64, params, warmup=1, iters=1)
    assert ours.latency_us < base.latency_us


def test_functional_mode_full_stack():
    """Every library moves correct bytes through its selected allgather
    at a non-trivial (12-rank, non-pow2-node) shape."""
    from repro.mpilibs import make_library
    from repro.validate.checker import check_allgather

    for name in PAPER_LINEUP:
        lib = make_library(name)
        world = lib.make_world(small_test(nodes=3, ppn=4))
        check_allgather(world, lib.wrapped("allgather", 48, 12), 48)
