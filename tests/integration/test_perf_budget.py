"""Event-count regression guards.

The simulator's wall-clock cost is proportional to processed events.
These tests pin loose upper bounds on the event counts of
representative operations; an accidental choreography change that,
say, reintroduces a per-chunk event loop would blow the bound long
before anyone notices benchmarks taking ten times longer.

Counts are deterministic, so the bounds can be tight-ish; they are
still ~2× above current values to absorb legitimate model additions.
"""

from repro.bench.harness import _buffers, _invoke
from repro.machine import broadwell_opa, small_test
from repro.mpilibs import make_library


def events_for(lib_name, collective, nbytes, params):
    lib = make_library(lib_name)
    world = lib.make_world(params, functional=False)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, 0)
        yield from _invoke(algo, ctx, bufs, collective, 0)

    world.run(program)
    return world.sim.event_count, size


def test_eager_message_event_budget():
    world = make_library("MPICH").make_world(small_test(nodes=2, ppn=1),
                                             functional=False)

    def program(ctx):
        buf = ctx.alloc(64)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
        else:
            yield from ctx.recv(buf.view(), src=0, tag=0)

    world.run(program)
    # One message: sender event, delivery chain (2), recv dispatch +
    # completion, process bootstraps... budget 16.
    assert world.sim.event_count <= 16, world.sim.event_count


def test_flat_bruck_event_budget_per_message():
    events, size = events_for("MPICH", "allgather", 64,
                              broadwell_opa(nodes=16, ppn=6))
    import math

    messages = size * math.ceil(math.log2(size))
    per_msg = events / messages
    assert per_msg <= 12, f"{per_msg:.1f} events per message"


def test_mcoll_allgather_event_budget():
    events, size = events_for("PiP-MColl", "allgather", 64,
                              broadwell_opa(nodes=16, ppn=6))
    # 2 rounds × 96 messages + barriers + copies; budget 40/rank.
    assert events <= 40 * size, f"{events} events for {size} ranks"


def test_full_scale_mcoll_stays_under_a_million_events():
    """The paper-scale PiP-MColl allgather must stay cheap to simulate
    (it is the point that gets re-run hundreds of times)."""
    events, _ = events_for("PiP-MColl", "allgather", 64, broadwell_opa())
    assert events < 1_000_000, events
