"""Smoke tests: the example scripts must run and report success.

Each example is executed in-process (imported with a unique module
name and its ``main()`` called) so failures surface as ordinary test
failures with stdout attached.  The slowest examples are trimmed via
their module-level knobs where possible.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    present = sorted(p.stem for p in EXAMPLES.glob("*.py"))
    assert "quickstart" in present
    assert len(present) >= 5


def test_transport_shootout_runs(capsys):
    mod = load_example("transport_shootout")
    mod.main()
    out = capsys.readouterr().out
    assert "posix_shmem" in out and "pip" in out
    assert "cost structure" in out


def test_halo_exchange_runs(capsys):
    mod = load_example("halo_exchange")
    mod.main()
    out = capsys.readouterr().out
    assert "residual history identical" in out
    assert "PiP-MColl" in out


def test_kmeans_runs(capsys):
    mod = load_example("kmeans_allreduce")
    mod.ITERS = 4  # trim for test time
    mod.main()
    out = capsys.readouterr().out
    assert "identical convergence" in out


def test_quickstart_correctness_section(capsys):
    mod = load_example("quickstart")
    # Run only the byte-verification part (the sweep is benchmarked
    # elsewhere and takes ~1 min).
    mod.verify_allgather_bytes()
    out = capsys.readouterr().out
    assert "OK" in out


def test_conjugate_gradient_single_library(capsys):
    mod = load_example("conjugate_gradient")
    mod.MAX_ITERS = 40  # converges at 128; 40 is enough for the smoke
    residuals, elapsed = mod.run("PiP-MColl")
    assert len(residuals) == 41
    assert elapsed > 0
