"""Property-based chaos: collectives stay byte-exact under random
message loss once reliable delivery is on.

Hypothesis draws a drop rate (<= 20%), a seed, and a message size, and
every collective family must still produce byte-exact results on a
lossy wire — the retransmission protocol absorbs the losses, the
checkers verify every output byte, and the quiescence probe proves no
message leaked.  A world where this fails is a world where the chaos
benchmark numbers would be fiction.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import (
    allgather_bruck,
    allreduce_recursive_doubling,
    alltoall_bruck,
    bcast_binomial,
    gather_binomial,
    scatter_binomial,
)
from repro.faults import FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.validate.checker import (
    check_allgather,
    check_allreduce,
    check_alltoall,
    check_bcast,
    check_gather,
    check_scatter,
)

DROP = st.floats(0.0, 0.2)
SEED = st.integers(0, 2**16)
COUNT = st.integers(1, 97)
CHAOS_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def lossy_world(drop, seed):
    plan = FaultPlan(seed=seed).drop(rate=drop)
    return World(small_test(nodes=2, ppn=2), faults=plan, reliable=True)


@given(drop=DROP, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_bcast_byte_exact_under_drop(drop, seed, count):
    check_bcast(lossy_world(drop, seed), bcast_binomial, count)


@given(drop=DROP, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_gather_byte_exact_under_drop(drop, seed, count):
    check_gather(lossy_world(drop, seed), gather_binomial, count)


@given(drop=DROP, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_scatter_byte_exact_under_drop(drop, seed, count):
    check_scatter(lossy_world(drop, seed), scatter_binomial, count)


@given(drop=DROP, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_allgather_byte_exact_under_drop(drop, seed, count):
    check_allgather(lossy_world(drop, seed), allgather_bruck, count)


@given(drop=DROP, seed=SEED, count=COUNT)
@settings(**CHAOS_SETTINGS)
def test_alltoall_byte_exact_under_drop(drop, seed, count):
    check_alltoall(lossy_world(drop, seed), alltoall_bruck, count)


@given(drop=DROP, seed=SEED, count=st.integers(1, 24))
@settings(**CHAOS_SETTINGS)
def test_allreduce_byte_exact_under_drop(drop, seed, count):
    check_allreduce(lossy_world(drop, seed), allreduce_recursive_doubling,
                    count)


@given(drop=DROP, seed=SEED)
@settings(**CHAOS_SETTINGS)
def test_drop_replay_is_deterministic(drop, seed):
    """The same (plan, program) replays the identical fault trace."""
    w1 = lossy_world(drop, seed)
    check_allgather(w1, allgather_bruck, 32)
    w2 = lossy_world(drop, seed)
    check_allgather(w2, allgather_bruck, 32)
    assert w1.faults.trace_signature() == w2.faults.trace_signature()
    assert w1.sim.now == w2.sim.now
