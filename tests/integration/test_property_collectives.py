"""Property-based integration tests: random shapes × counts × roots.

Hypothesis drives the full stack — runtime, transports, algorithms —
through randomized cluster shapes and message sizes, checking byte
exactness against the numpy references every time.  Settings are tuned
so the whole module stays in tens of seconds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import (
    allgather_bruck,
    alltoall_bruck,
    bcast_binomial,
    gather_binomial,
    scatter_binomial,
)
from repro.core import mcoll_allgather, mcoll_bcast, mcoll_gather, mcoll_scatter
from repro.machine import small_test
from repro.runtime import World
from repro.validate.checker import (
    check_allgather,
    check_alltoall,
    check_bcast,
    check_gather,
    check_scatter,
)

SHAPE = st.tuples(st.integers(1, 7), st.integers(1, 6))
COUNT = st.integers(1, 97)  # deliberately includes odd sizes
PROP_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def world(shape, intra="posix_shmem"):
    return World(small_test(nodes=shape[0], ppn=shape[1]), intra=intra)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_bcast_binomial_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_bcast(world(shape), bcast_binomial, count, root=root)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_gather_binomial_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_gather(world(shape), gather_binomial, count, root=root)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_scatter_binomial_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_scatter(world(shape), scatter_binomial, count, root=root)


@given(shape=SHAPE, count=COUNT)
@settings(**PROP_SETTINGS)
def test_allgather_bruck_any_shape(shape, count):
    check_allgather(world(shape), allgather_bruck, count)


@given(shape=SHAPE, count=st.integers(1, 33))
@settings(**PROP_SETTINGS)
def test_alltoall_bruck_any_shape(shape, count):
    check_alltoall(world(shape), alltoall_bruck, count)


@given(shape=SHAPE, count=COUNT)
@settings(**PROP_SETTINGS)
def test_mcoll_allgather_any_shape(shape, count):
    """The paper's algorithm incl. remainder rounds, random shapes."""
    check_allgather(world(shape, intra="pip"), mcoll_allgather, count)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_mcoll_scatter_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_scatter(world(shape, intra="pip"), mcoll_scatter, count, root=root)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_mcoll_gather_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_gather(world(shape, intra="pip"), mcoll_gather, count, root=root)


@given(shape=SHAPE, count=COUNT, data=st.data())
@settings(**PROP_SETTINGS)
def test_mcoll_bcast_any_shape_any_root(shape, count, data):
    size = shape[0] * shape[1]
    root = data.draw(st.integers(0, size - 1))
    check_bcast(world(shape, intra="pip"), mcoll_bcast, count, root=root)
