"""Tests for the fat-tree fabric model."""

import pytest

from repro.collectives import allgather_bruck
from repro.machine import FabricParams, small_test
from repro.machine.fabric import Fabric
from repro.runtime import World
from repro.sim import Simulator
from repro.validate.checker import check_allgather


def test_fabric_params_validation():
    with pytest.raises(ValueError):
        FabricParams(pod_size=0)
    with pytest.raises(ValueError):
        FabricParams(oversubscription=0.5)
    with pytest.raises(ValueError):
        FabricParams(leaf_latency=-1.0)


def test_pod_arithmetic():
    params = small_test(nodes=5, ppn=1)
    fabric = Fabric(Simulator(), params, FabricParams(pod_size=2))
    assert fabric.n_pods == 3
    assert fabric.pod_of(0) == 0 and fabric.pod_of(3) == 1 and fabric.pod_of(4) == 2
    assert fabric.same_pod(0, 1) and not fabric.same_pod(1, 2)


def test_uplink_capacity_scales_with_pod_size():
    params = small_test(nodes=4, ppn=1)
    nonblocking = Fabric(Simulator(), params, FabricParams(pod_size=4))
    oversubscribed = Fabric(
        Simulator(), params, FabricParams(pod_size=4, oversubscription=4.0))
    assert oversubscribed.uplink_time(4096) == pytest.approx(
        4 * nonblocking.uplink_time(4096))


def test_intra_pod_cheaper_than_inter_pod():
    """Same payload, same machine: crossing the spine costs more."""
    fp = FabricParams(pod_size=2)
    world = World(small_test(nodes=4, ppn=1), fabric=fp, functional=False)

    def program(ctx):
        buf = ctx.alloc(512)
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)  # same pod
            yield from ctx.send(buf.view(), dst=2, tag=1)  # other pod
        elif ctx.rank == 1:
            yield from ctx.recv(buf.view(), src=0, tag=0)
            return ctx.now - t0
        elif ctx.rank == 2:
            yield from ctx.recv(buf.view(), src=0, tag=1)
            return ctx.now - t0
        return None

    results = world.run(program)
    assert results[2] > results[1]
    assert world.fabric.total_interpod_bytes() == 512


def test_oversubscription_throttles_aggregate_bandwidth():
    """Many simultaneous inter-pod streams: an 8:1 fabric is uplink-
    bound while a non-blocking one stays NIC-bound."""
    times = {}
    nbytes = 16384
    streams = 8
    for oversub in (1.0, 8.0):
        fp = FabricParams(pod_size=8, oversubscription=oversub)
        world = World(small_test(nodes=16, ppn=1), fabric=fp, functional=False)

        def program(ctx):
            buf = ctx.alloc(nbytes)
            yield from ctx.hard_sync()
            t0 = ctx.now
            if ctx.rank < streams:  # pod 0 blasts pod 1
                yield from ctx.send(buf.view(), dst=ctx.rank + streams, tag=0)
                return None
            yield from ctx.recv(buf.view(), src=ctx.rank - streams, tag=0)
            return ctx.now - t0

        times[oversub] = max(t for t in world.run(program) if t is not None)
    # Extra uplink serialisation ≈ streams × per-message uplink-time
    # difference (coarse: arrival staggering shifts it slightly).
    delta = times[8.0] - times[1.0]
    expected = streams * nbytes * 8e-11 * (1 - 1.0 / 8)
    assert delta == pytest.approx(expected, rel=0.3)
    assert times[8.0] > 1.5 * times[1.0]


def test_collectives_still_correct_over_fabric():
    fp = FabricParams(pod_size=2, oversubscription=2.0)
    world = World(small_test(nodes=4, ppn=2), fabric=fp)
    check_allgather(world, allgather_bruck, 32)


def test_mcoll_still_correct_over_fabric():
    from repro.core import mcoll_allgather

    fp = FabricParams(pod_size=2, oversubscription=2.0)
    world = World(small_test(nodes=5, ppn=3), intra="pip", fabric=fp)
    check_allgather(world, mcoll_allgather, 32)


def test_fabric_generator_path_matches_callback_path():
    """delivery_steps (reference) and schedule_delivery (fast) agree."""
    from repro.machine import ClusterHardware
    from repro.transport import WireDescriptor
    from repro.transport.fabric_network import FabricNetworkTransport

    params = small_test(nodes=4, ppn=1)
    fp = FabricParams(pod_size=2)
    desc = WireDescriptor(src=0, dst=2, nbytes=4096)

    def timed(use_callback):
        sim = Simulator()
        hw = ClusterHardware(sim, params)
        net = FabricNetworkTransport(Fabric(sim, params, fp))
        out = {}
        if use_callback:
            net.schedule_delivery(hw[0], hw[2], desc,
                                  lambda: out.setdefault("t", sim.now))
        else:
            def driver(sim):
                yield from net.delivery_steps(hw[0], hw[2], desc)
                out["t"] = sim.now

            sim.process(driver(sim))
        sim.run()
        return out["t"]

    assert timed(True) == pytest.approx(timed(False))
