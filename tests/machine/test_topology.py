"""Unit and property tests for cluster topology arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import Cluster


def test_basic_layout():
    c = Cluster(nodes=4, ppn=3)
    assert c.world_size == 12
    assert c.node_of(0) == 0
    assert c.node_of(11) == 3
    assert c.local_rank(7) == 1
    assert c.global_rank(2, 1) == 7
    assert c.leader_of(2) == 6
    assert c.leader_of_rank(7) == 6
    assert c.is_leader(6) and not c.is_leader(7)


def test_ranks_on_node():
    c = Cluster(nodes=3, ppn=4)
    assert list(c.ranks_on_node(1)) == [4, 5, 6, 7]


def test_leaders_list():
    c = Cluster(nodes=3, ppn=4)
    assert c.leaders() == [0, 4, 8]


def test_same_node():
    c = Cluster(nodes=2, ppn=2)
    assert c.same_node(0, 1)
    assert not c.same_node(1, 2)


def test_out_of_range_rejected():
    c = Cluster(nodes=2, ppn=2)
    with pytest.raises(ValueError):
        c.node_of(4)
    with pytest.raises(ValueError):
        c.node_of(-1)
    with pytest.raises(ValueError):
        c.global_rank(2, 0)
    with pytest.raises(ValueError):
        c.global_rank(0, 2)
    with pytest.raises(ValueError):
        c.ranks_on_node(5)
    with pytest.raises(ValueError):
        Cluster(nodes=0, ppn=1)


def test_node_pairs_excludes_self():
    c = Cluster(nodes=3, ppn=1)
    pairs = list(c.node_pairs())
    assert len(pairs) == 6
    assert all(a != b for a, b in pairs)


@given(
    nodes=st.integers(min_value=1, max_value=64),
    ppn=st.integers(min_value=1, max_value=36),
    data=st.data(),
)
def test_rank_roundtrip(nodes, ppn, data):
    """global_rank(node_of(r), local_rank(r)) == r for every rank."""
    c = Cluster(nodes=nodes, ppn=ppn)
    rank = data.draw(st.integers(min_value=0, max_value=c.world_size - 1))
    assert c.global_rank(c.node_of(rank), c.local_rank(rank)) == rank


@given(nodes=st.integers(min_value=1, max_value=32), ppn=st.integers(min_value=1, max_value=16))
def test_every_rank_on_exactly_one_node(nodes, ppn):
    c = Cluster(nodes=nodes, ppn=ppn)
    seen = []
    for node in range(nodes):
        seen.extend(c.ranks_on_node(node))
    assert seen == list(range(c.world_size))
