"""Unit tests for machine-model parameters and presets."""

import pytest

from repro.machine import (
    MachineParams,
    MemoryParams,
    NicParams,
    available_presets,
    broadwell_opa,
    preset,
    small_test,
)


def test_broadwell_matches_paper_testbed():
    p = broadwell_opa()
    assert p.nodes == 128
    assert p.ppn == 18
    assert p.world_size == 2304
    # 97 Mmsg/s, 100 Gbps — the paper's Omni-Path numbers.
    assert p.nic.message_rate == pytest.approx(97e6)
    assert p.nic.bandwidth * 8 == pytest.approx(100e9)


def test_wire_time_message_rate_bound_for_small():
    nic = NicParams()
    # A 64 B message is gap-bound, not bandwidth-bound.
    assert nic.wire_time(64) == pytest.approx(nic.msg_gap)


def test_wire_time_bandwidth_bound_for_large():
    nic = NicParams()
    one_mib = 1 << 20
    assert nic.wire_time(one_mib) == pytest.approx(one_mib * nic.byte_gap)


def test_copy_time_affine():
    mem = MemoryParams()
    assert mem.copy_time(0) == pytest.approx(mem.copy_latency)
    assert mem.copy_time(8000) == pytest.approx(mem.copy_latency + 8000 * mem.copy_byte_time)


def test_fault_time_rounds_up_to_pages():
    mem = MemoryParams(page_size=4096)
    assert mem.fault_time(1) == pytest.approx(mem.page_fault)
    assert mem.fault_time(4096) == pytest.approx(mem.page_fault)
    assert mem.fault_time(4097) == pytest.approx(2 * mem.page_fault)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        NicParams(msg_gap=0.0)
    with pytest.raises(ValueError):
        NicParams(latency=-1.0)
    with pytest.raises(ValueError):
        MemoryParams(page_size=0)
    with pytest.raises(ValueError):
        MachineParams(nodes=0)
    with pytest.raises(ValueError):
        MachineParams(ppn=0)


def test_scaled_returns_modified_copy():
    p = broadwell_opa()
    q = p.scaled(nodes=16)
    assert q.nodes == 16 and p.nodes == 128
    assert q.nic == p.nic


def test_preset_lookup_and_kwargs():
    p = preset("broadwell_opa", nodes=8, ppn=4)
    assert (p.nodes, p.ppn) == (8, 4)
    with pytest.raises(KeyError):
        preset("nonexistent")


def test_available_presets_contains_paper_machine():
    names = available_presets()
    assert "broadwell_opa" in names
    assert "small_test" in names


def test_small_test_same_cost_structure():
    small = small_test()
    big = broadwell_opa()
    assert small.nic == big.nic
    assert small.memory == big.memory


def test_describe_reports_key_figures():
    d = broadwell_opa().describe()
    assert d["ranks"] == 2304
    assert d["nic_bandwidth_Gbps"] == pytest.approx(100.0)
