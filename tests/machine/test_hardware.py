"""Tests for live hardware objects (NIC pipes, memory bus)."""

import pytest

from repro.machine import ClusterHardware, broadwell_opa, small_test
from repro.sim import Simulator


def test_cluster_hardware_one_object_per_node():
    sim = Simulator()
    hw = ClusterHardware(sim, small_test(nodes=4, ppn=2))
    assert len(hw) == 4
    assert hw[2].node_id == 2


def test_nic_injection_serialises_at_message_rate():
    """Many tiny messages drain at exactly the NIC message rate."""
    sim = Simulator()
    params = small_test()
    hw = ClusterHardware(sim, params)
    node = hw[0]
    n_msgs = 100
    finishes = []

    def blaster(sim):
        for _ in range(n_msgs):
            ev = node.inject(8)
        yield ev
        finishes.append(sim.now)

    sim.process(blaster(sim))
    sim.run()
    assert finishes[0] == pytest.approx(n_msgs * params.nic.msg_gap)
    assert node.tx_messages == n_msgs


def test_nic_large_message_is_bandwidth_bound():
    sim = Simulator()
    params = small_test()
    hw = ClusterHardware(sim, params)
    nbytes = 1 << 20
    done = []

    def sender(sim):
        yield hw[0].inject(nbytes)
        done.append(sim.now)

    sim.process(sender(sim))
    sim.run()
    assert done[0] == pytest.approx(nbytes * params.nic.byte_gap)


def test_mem_copy_blocks_for_core_time():
    sim = Simulator()
    params = small_test()
    hw = ClusterHardware(sim, params)
    done = []

    def copier(sim):
        yield from hw[0].mem_copy(8192)
        done.append(sim.now)

    sim.process(copier(sim))
    sim.run()
    assert done[0] == pytest.approx(params.memory.copy_time(8192))


def test_concurrent_copies_contend_on_bus():
    """Enough parallel copies saturate the node bus, not per-core time."""
    sim = Simulator()
    params = broadwell_opa(nodes=1, ppn=18)
    hw = ClusterHardware(sim, params)
    nbytes = 1 << 20
    ncopies = 18
    done = []

    def copier(sim):
        yield from hw[0].mem_copy(nbytes)
        done.append(sim.now)

    for _ in range(ncopies):
        sim.process(copier(sim))
    sim.run()
    bus_bound = ncopies * nbytes * params.memory.bus_byte_time
    core_bound = params.memory.copy_time(nbytes)
    assert bus_bound > core_bound  # the scenario really is bus-bound
    assert max(done) == pytest.approx(bus_bound, rel=0.01)


def test_tx_and_rx_are_independent_pipes():
    sim = Simulator()
    params = small_test()
    hw = ClusterHardware(sim, params)
    done = []

    def duplex(sim):
        a = hw[0].inject(1 << 20)
        b = hw[0].extract(1 << 20)
        yield a & b
        done.append(sim.now)

    sim.process(duplex(sim))
    sim.run()
    # Full duplex: both directions complete in one transfer time.
    assert done[0] == pytest.approx((1 << 20) * params.nic.byte_gap)
