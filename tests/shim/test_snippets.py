"""Acceptance: the SNIPPETS exemplar patterns run verbatim.

The two real-world mpi4py fragments recorded in ``SNIPPETS.md`` — the
regrid-wrapper ``Comm`` class and EmbASI's ``root_print`` /
``mpi_bcast_matrix_storage`` / ``mpi_bcast_integer`` — must execute
under ``repro.shim.MPI`` with *only the import line changed*, produce
correct values on every rank, and yield a schema-valid Perfetto trace.

The snippet source is extracted from ``SNIPPETS.md`` at test time, so
this test cannot drift from the recorded exemplars.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro import shim
from repro.obs import validate_chrome_trace

SNIPPETS = Path(__file__).resolve().parents[2] / "SNIPPETS.md"


def _snippet_sources():
    """The fenced code blocks of SNIPPETS.md, import line swapped."""
    blocks = re.findall(r"```\n(.*?)```", SNIPPETS.read_text(), re.DOTALL)
    assert len(blocks) >= 2, "SNIPPETS.md lost its code blocks?"
    swapped = []
    for block in blocks:
        assert "from mpi4py import MPI" in block
        swapped.append(block.replace("from mpi4py import MPI",
                                     "from repro.shim import MPI"))
    return swapped


def _load(source: str) -> dict:
    namespace = {}
    exec(compile(source, "<snippet>", "exec"), namespace)
    return namespace


def test_snippet1_regrid_wrapper_comm_class():
    """Snippet 1: a Comm wrapper instantiated at module level, using
    rank/size properties, barrier, and pickle bcast."""
    source = _snippet_sources()[0]

    def app():
        # Module-level `COMM = Comm()` runs on every rank, as importing
        # the module would in a real MPI job.
        ns = _load(source)
        comm = ns["COMM"]
        assert comm.size == 8
        value = {"config": [1, 2, 3]} if comm.rank == 0 else None
        got = comm.bcast(value, root=0)
        comm.barrier()
        return comm.rank, got

    result = shim.run(app, nranks=8, trace=True)
    for rank, (seen_rank, got) in enumerate(result.values):
        assert seen_rank == rank
        assert got == {"config": [1, 2, 3]}

    events = validate_chrome_trace(result.to_perfetto())
    assert events > 0
    names = {e.get("name") for e in result.to_perfetto()["traceEvents"]}
    assert "shim.bcast" in names and "shim.barrier" in names


def test_snippet2_embasi_parallel_utils(capsys):
    """Snippet 2: EmbASI's bcast-storm — shape header, key table, then
    one dense float64 matrix broadcast per key."""
    source = _snippet_sources()[1]
    nrows, ncols = 6, 5
    keys = [(0, 0), (1, 2), (3, 1)]

    def matrix(i, j):
        return (np.arange(nrows * ncols, dtype=np.float64)
                .reshape(nrows, ncols) * (1 + i) + j)

    def app():
        ns = _load(source)
        MPI = ns["MPI"]
        rank = MPI.COMM_WORLD.Get_rank()

        ns["root_print"]("hello from the root rank")

        if rank == 0:
            data_dict = {k: matrix(*k) for k in keys}
        else:
            data_dict = {}
        out = ns["mpi_bcast_matrix_storage"](data_dict, nrows, ncols)

        broadcast_int = ns["mpi_bcast_integer"](rank + 41)

        checks = {tuple(int(x) for x in k): float(v.sum())
                  for k, v in out.items()}
        return checks, broadcast_int

    result = shim.run(app, nranks=8, trace=True)
    expect = {k: float(matrix(*k).sum()) for k in keys}
    for checks, broadcast_int in result.values:
        assert checks == expect
        assert broadcast_int == 41  # root's value everywhere

    printed = capsys.readouterr().out
    assert printed.count("hello from the root rank") == 1

    events = validate_chrome_trace(result.to_perfetto())
    assert events > 0
    bcasts = [e for e in result.to_perfetto()["traceEvents"]
              if e.get("name") == "shim.Bcast"]
    # shape + key table + one per key + mpi_bcast_integer, per rank
    assert len(bcasts) >= 8 * (2 + len(keys) + 1)


def test_snippets_time_differs_across_libraries():
    """The point of the shim: the same verbatim application pattern is
    priced differently by different library models."""
    source = _snippet_sources()[1]
    nrows, ncols = 8, 8

    def app():
        ns = _load(source)
        rank = ns["MPI"].COMM_WORLD.Get_rank()
        data_dict = ({(i, i): np.full((nrows, ncols), float(i))
                      for i in range(4)} if rank == 0 else {})
        ns["mpi_bcast_matrix_storage"](data_dict, nrows, ncols)
        return None

    elapsed = {}
    for lib in ("MPICH", "PiP-MColl"):
        elapsed[lib] = shim.run(app, nranks=16, library=lib,
                                trace=False).elapsed
    assert elapsed["MPICH"] != elapsed["PiP-MColl"]
    assert elapsed["PiP-MColl"] < elapsed["MPICH"]
