"""The mpi4py-compatible surface: communicators, constants, clocks.

Everything here drives *synchronous* user functions through
:func:`repro.shim.run` — no generators, no ``yield from`` — and
asserts the shim resolves them to the right simulated rank.
"""

import numpy as np
import pytest

from repro import shim
from repro.shim import MPI
from repro.shim.errors import (ShimError, ShimNotRunningError,
                               ShimUnsupportedError)


def run4(fn, **kwargs):
    kwargs.setdefault("nodes", 2)
    kwargs.setdefault("ppn", 2)
    kwargs.setdefault("trace", False)
    return shim.run(fn, **kwargs)


def test_rank_and_size():
    def app():
        comm = MPI.COMM_WORLD
        assert comm.rank == comm.Get_rank()
        assert comm.size == comm.Get_size() == 4
        return comm.Get_rank()

    assert run4(app).values == [0, 1, 2, 3]


def test_wtime_is_per_rank_sim_time():
    def app():
        comm = MPI.COMM_WORLD
        t0 = MPI.Wtime()
        comm.barrier()
        t1 = MPI.Wtime()
        total = np.empty(4)
        comm.Allreduce(np.ones(4), total)
        t2 = MPI.Wtime()
        assert t0 <= t1 <= t2
        return t2

    result = run4(app)
    # An allreduce completes at the same instant on every rank here,
    # and nothing is left in flight: Wtime matches the world clock.
    assert all(t > 0.0 for t in result.values)
    assert max(result.values) == result.elapsed


def test_wtick_and_processor_name():
    def app():
        assert MPI.Wtick() > 0.0
        return MPI.Get_processor_name()

    names = run4(app).values
    assert names == ["node0", "node0", "node1", "node1"]


def test_split_by_parity():
    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        sub = comm.Split(color=rank % 2, key=rank)
        val = sub.allreduce(rank)
        assert sub.Get_size() == 2
        sub.Free()
        return val

    assert run4(app).values == [2, 4, 2, 4]


def test_split_undefined_returns_comm_null():
    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        sub = comm.Split(color=MPI.UNDEFINED if rank == 0 else 0, key=rank)
        if rank == 0:
            assert sub is MPI.COMM_NULL
            with pytest.raises(ShimError):
                sub.Get_rank()
            return None
        members = sub.allgather(rank)
        sub.Free()
        return members

    values = run4(app).values
    assert values[0] is None
    assert values[1:] == [[1, 2, 3]] * 3


def test_dup_is_independent_communicator():
    def app():
        comm = MPI.COMM_WORLD
        dup = comm.Dup()
        assert dup.Get_size() == comm.Get_size()
        assert dup.Get_rank() == comm.Get_rank()
        out = dup.bcast("dup" if dup.Get_rank() == 0 else None, root=0)
        dup.Free()
        return out

    assert run4(app).values == ["dup"] * 4


def test_freed_comm_rejects_use_and_world_cannot_be_freed():
    def app():
        comm = MPI.COMM_WORLD
        sub = comm.Dup()
        sub.Free()
        with pytest.raises(ShimError, match="freed"):
            sub.barrier()
        with pytest.raises(ShimError, match="COMM_WORLD"):
            comm.Free()
        return "ok"

    assert run4(app).values == ["ok"] * 4


def test_unsupported_attribute_names_the_attribute():
    def app():
        with pytest.raises(ShimUnsupportedError, match="Comm.Iprobe"):
            MPI.COMM_WORLD.Iprobe
        with pytest.raises(ShimUnsupportedError, match="MPI.Win"):
            MPI.Win
        with pytest.raises(ShimUnsupportedError, match="docs/SHIM.md"):
            MPI.Get_version()
        return "ok"

    assert run4(app).values == ["ok"] * 4


def test_calls_outside_a_run_fail_loudly():
    with pytest.raises(ShimNotRunningError, match="shim.run"):
        MPI.COMM_WORLD.Get_rank()
    with pytest.raises(ShimNotRunningError):
        MPI.Wtime()


def test_datatype_and_op_constants():
    assert MPI.DOUBLE.np_dtype == np.float64
    assert MPI.INT16_T.np_dtype == np.int16
    assert MPI.DOUBLE.Get_size() == 8
    assert MPI.SUM.py(2, 3) == 5
    assert MPI.MAX.py(2, 3) == 3
    assert MPI.MIN.py(2, 3) == 2
    assert MPI.PROD.py(2, 3) == 6


def test_buffer_ops_max_min_prod():
    def app():
        rank = MPI.COMM_WORLD.Get_rank()
        send = np.array([float(rank + 1)])
        hi, lo, prod = np.empty(1), np.empty(1), np.empty(1)
        MPI.COMM_WORLD.Allreduce(send, hi, op=MPI.MAX)
        MPI.COMM_WORLD.Allreduce(send, lo, op=MPI.MIN)
        MPI.COMM_WORLD.Allreduce(send, prod, op=MPI.PROD)
        return hi[0], lo[0], prod[0]

    assert run4(app).values == [(4.0, 1.0, 24.0)] * 4


def test_status_object():
    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        if rank == 0:
            st = MPI.Status()
            buf = np.empty(3)
            comm.Recv(buf, source=MPI.ANY_SOURCE, tag=9, status=st)
            assert st.Get_source() == 1
            assert st.Get_tag() == 9
            assert st.Get_count(MPI.DOUBLE) == 3
            assert st.Get_count() == 24  # bytes
            return list(buf)
        if rank == 1:
            comm.Send(np.array([1.0, 2.0, 3.0]), dest=0, tag=9)
        return None

    assert run4(app).values[0] == [1.0, 2.0, 3.0]


def test_proc_null_operations_complete_immediately():
    def app():
        comm = MPI.COMM_WORLD
        comm.Send(np.ones(2), dest=MPI.PROC_NULL)
        st = MPI.Status()
        buf = np.full(2, 7.0)
        comm.Recv(buf, source=MPI.PROC_NULL, status=st)
        assert st.Get_source() == MPI.PROC_NULL
        assert st.Get_count() == 0
        assert list(buf) == [7.0, 7.0]  # untouched
        assert comm.recv(source=MPI.PROC_NULL) is None
        got = comm.sendrecv("x", dest=MPI.PROC_NULL,
                            source=MPI.PROC_NULL)
        assert got is None
        return "ok"

    assert run4(app).values == ["ok"] * 4


def test_init_finalize_are_noops():
    def app():
        MPI.Init()
        assert MPI.Is_initialized()
        assert not MPI.Is_finalized()
        MPI.Finalize()
        return MPI.COMM_WORLD.Get_rank()

    assert run4(app).values == [0, 1, 2, 3]


def test_comm_handle_is_rank_private():
    """A Split communicator created by one rank cannot be smuggled to
    another (handles are per-process in MPI; per-thread here)."""
    holder = {}

    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        sub = comm.Split(color=0, key=rank)
        if rank == 0:
            holder["comm"] = sub
        comm.barrier()
        if rank == 1:
            with pytest.raises(ShimError, match="belongs to rank 0"):
                holder["comm"].Get_rank()
        comm.barrier()
        return "ok"

    assert run4(app).values == ["ok"] * 4
