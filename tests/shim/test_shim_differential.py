"""Acceptance: shim-run collectives are *timestamp-identical* to the
same sequence issued through the native :class:`~repro.api.VComm`.

Simulated time only advances inside the delegated operation
generators, so a pinned mixed sequence must produce byte-identical
buffers, the same per-call completion times and the same total elapsed
whether it is driven synchronously through the shim's thread bridge or
natively as a generator app — on both the calendar and sharded
engines.
"""

import numpy as np
import pytest

from repro import shim
from repro.api import Session
from repro.shim import MPI

NODES, PPN = 4, 2  # multi-node so the sharded engine survives resolve


def native_app(comm):
    """The pinned sequence, native generator idiom."""
    rank, size = comm.rank, comm.size
    laps = []
    red_in = np.full(64, float(rank))
    red_out = np.empty_like(red_in)
    yield from comm.Allreduce(red_in, red_out)
    laps.append(comm.now)

    part = np.full(16, float(rank))
    table = np.empty(16 * size)
    yield from comm.Allgather(part, table)
    laps.append(comm.now)

    blob = np.arange(32.0) if rank == 0 else np.zeros(32)
    yield from comm.Bcast(blob, root=0)
    laps.append(comm.now)

    ring_out = np.full(8, float(rank))
    ring_in = np.empty(8)
    yield from comm.Sendrecv(ring_out, (rank + 1) % size, 3,
                             ring_in, (rank - 1) % size, 3)
    laps.append(comm.now)

    yield from comm.Barrier()
    laps.append(comm.now)
    return laps, red_out.sum(), table.sum(), blob.sum(), ring_in.sum()


def shim_app():
    """The same pinned sequence, synchronous mpi4py idiom."""
    comm = MPI.COMM_WORLD
    rank, size = comm.Get_rank(), comm.Get_size()
    laps = []
    red_in = np.full(64, float(rank))
    red_out = np.empty_like(red_in)
    comm.Allreduce(red_in, red_out)
    laps.append(MPI.Wtime())

    part = np.full(16, float(rank))
    table = np.empty(16 * size)
    comm.Allgather(part, table)
    laps.append(MPI.Wtime())

    blob = np.arange(32.0) if rank == 0 else np.zeros(32)
    comm.Bcast(blob, root=0)
    laps.append(MPI.Wtime())

    ring_out = np.full(8, float(rank))
    ring_in = np.empty(8)
    comm.Sendrecv(ring_out, (rank + 1) % size, 3,
                  ring_in, (rank - 1) % size, 3)
    laps.append(MPI.Wtime())

    comm.Barrier()
    laps.append(MPI.Wtime())
    return laps, red_out.sum(), table.sum(), blob.sum(), ring_in.sum()


@pytest.mark.parametrize("engine", ["calendar", "sharded:4"])
@pytest.mark.parametrize("library", ["MPICH", "PiP-MColl"])
def test_shim_matches_native_timestamps(engine, library):
    native = Session(library=library, nodes=NODES, ppn=PPN, trace=False,
                     engine=engine).run(native_app)
    shimmed = shim.run(shim_app, nodes=NODES, ppn=PPN, trace=False,
                       library=library, engine=engine)

    assert shimmed.elapsed == native.elapsed
    for rank, (nat, shm) in enumerate(zip(native.values, shimmed.values)):
        # per-call completion instants, exactly equal
        assert shm[0] == nat[0], f"rank {rank} lap times diverged"
        # byte-identical payload checksums
        assert shm[1:] == nat[1:]


def test_sharded_engine_actually_sharded():
    result = shim.run(shim_app, nodes=NODES, ppn=PPN, trace=False,
                      engine="sharded:4")
    assert result.engine.name == "sharded"
    assert result.engine.shards == 4
    assert result.engine.workers == 1


def test_traced_shim_matches_traced_native():
    """With the span recorder attached both sides take the same
    downgrade (fast path off) and must still agree exactly."""
    native = Session(library="PiP-MColl", nodes=NODES, ppn=PPN,
                     trace=True).run(native_app)
    shimmed = shim.run(shim_app, nodes=NODES, ppn=PPN, trace=True,
                       library="PiP-MColl")
    assert shimmed.elapsed == native.elapsed
    assert [v[0] for v in shimmed.values] == [v[0] for v in native.values]
