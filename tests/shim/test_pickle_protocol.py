"""Pickle-protocol edge cases: the lowercase object methods.

Covers the ISSUE 10 checklist explicitly: non-contiguous numpy views,
``None`` payloads on non-root ranks, nested dicts (the EmbASI
``mpi_bcast_matrix_storage`` shape), and mismatched buffer dtypes
raising a clear :class:`ShimTypeError`.
"""

import numpy as np
import pytest

from repro import shim
from repro.shim import MPI
from repro.shim.errors import ShimTypeError, ShimUnsupportedError


def run4(fn, **kwargs):
    kwargs.setdefault("nodes", 2)
    kwargs.setdefault("ppn", 2)
    kwargs.setdefault("trace", False)
    return shim.run(fn, **kwargs)


# -- non-contiguous views ----------------------------------------------
def test_bcast_of_non_contiguous_view_roundtrips():
    """The pickle protocol handles arbitrary views (pickle preserves
    strided data); only the buffer protocol must reject them."""
    def app():
        rank = MPI.COMM_WORLD.Get_rank()
        if rank == 0:
            col = np.arange(16.0).reshape(4, 4)[:, 1]  # stride 4
            assert not col.flags.c_contiguous
        else:
            col = None
        out = MPI.COMM_WORLD.bcast(col, root=0)
        return list(out)

    assert run4(app).values == [[1.0, 5.0, 9.0, 13.0]] * 4


def test_buffer_protocol_rejects_non_contiguous():
    def app():
        comm = MPI.COMM_WORLD
        view = np.zeros((4, 4))[:, 1]
        with pytest.raises(ShimTypeError, match="not C-contiguous"):
            comm.Bcast(view, root=0)
        with pytest.raises(ShimTypeError, match="pickle-protocol"):
            comm.Send(view, dest=0)
        return "ok"

    assert run4(app).values == ["ok"] * 4


# -- None payloads ------------------------------------------------------
def test_bcast_with_none_on_non_root():
    def app():
        rank = MPI.COMM_WORLD.Get_rank()
        payload = {"weights": [1, 2, 3]} if rank == 0 else None
        return MPI.COMM_WORLD.bcast(payload, root=0)

    assert run4(app).values == [{"weights": [1, 2, 3]}] * 4


def test_bcast_of_none_itself():
    def app():
        rank = MPI.COMM_WORLD.Get_rank()
        return MPI.COMM_WORLD.bcast(None if rank == 0 else "junk", root=0)

    assert run4(app).values == [None] * 4


def test_scatter_with_none_on_non_root():
    def app():
        comm = MPI.COMM_WORLD
        items = None
        if comm.Get_rank() == 0:
            items = [{"rank": r} for r in range(comm.Get_size())]
        return comm.scatter(items, root=0)

    assert run4(app).values == [{"rank": r} for r in range(4)]


def test_gather_returns_none_on_non_root():
    def app():
        comm = MPI.COMM_WORLD
        got = comm.gather(comm.Get_rank() ** 2, root=1)
        if comm.Get_rank() == 1:
            return got
        assert got is None
        return "non-root"

    values = run4(app).values
    assert values[1] == [0, 1, 4, 9]
    assert values[0] == values[2] == values[3] == "non-root"


# -- nested dicts (EmbASI matrix-storage shape) ------------------------
def test_bcast_nested_dict_of_matrices():
    def app():
        comm = MPI.COMM_WORLD
        if comm.Get_rank() == 0:
            store = {
                (0, 1): {"dm": np.arange(6.0).reshape(2, 3), "spin": 1},
                (2, 2): {"dm": np.eye(2), "spin": -1},
            }
        else:
            store = None
        store = comm.bcast(store, root=0)
        keys = sorted(store)
        checks = [float(store[k]["dm"].sum()) for k in keys]
        return keys, checks, store[(0, 1)]["spin"]

    assert run4(app).values == [([(0, 1), (2, 2)], [15.0, 2.0], 1)] * 4


def test_allgather_and_allreduce_of_objects():
    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        everyone = comm.allgather({"rank": rank})
        assert [e["rank"] for e in everyone] == [0, 1, 2, 3]
        # Python-level fold in rank order: list concatenation is
        # order-sensitive, so this checks determinism too.
        merged = comm.allreduce([rank])
        assert merged == [0, 1, 2, 3]
        biggest = comm.allreduce(rank, op=MPI.MAX)
        folded = comm.reduce(rank + 1, op=MPI.PROD, root=0)
        return merged, biggest, folded

    values = run4(app).values
    assert values[0] == ([0, 1, 2, 3], 3, 24)
    assert values[2] == ([0, 1, 2, 3], 3, None)


# -- mismatched buffer dtypes ------------------------------------------
def test_declared_datatype_mismatch_raises_shim_type_error():
    def app():
        comm = MPI.COMM_WORLD
        wrong = np.zeros(4, dtype=np.float32)
        with pytest.raises(ShimTypeError, match="float32 does not match"):
            comm.Bcast([wrong, MPI.DOUBLE], root=0)
        with pytest.raises(ShimTypeError, match="MPI.INT16_T"):
            comm.Bcast([np.zeros(2, np.int32), MPI.INT16_T], root=0)
        return "ok"

    assert run4(app).values == ["ok"] * 4


def test_send_recv_dtype_mismatch_raises():
    def app():
        comm = MPI.COMM_WORLD
        a32 = np.zeros(4, np.float32)
        b64 = np.zeros(4, np.float64)
        with pytest.raises(ShimTypeError):
            comm.Allreduce(a32, b64)
        with pytest.raises(ShimTypeError):
            comm.Reduce(a32, b64, root=0)
        return "ok"

    assert run4(app).values == ["ok"] * 4


def test_bad_buffer_specs_raise_with_guidance():
    def app():
        comm = MPI.COMM_WORLD
        with pytest.raises(ShimTypeError, match="pickle-protocol"):
            comm.Bcast([1.0, 2.0], root=0)  # plain list, not an ndarray
        with pytest.raises(ShimTypeError, match="count"):
            comm.Bcast([np.zeros(4), 3, MPI.DOUBLE], root=0)
        with pytest.raises(ShimUnsupportedError, match="IN_PLACE"):
            comm.Allreduce(MPI.IN_PLACE, np.zeros(4))
        return "ok"

    assert run4(app).values == ["ok"] * 4


# -- point-to-point objects --------------------------------------------
def test_object_send_recv_with_wildcards():
    def app():
        comm = MPI.COMM_WORLD
        rank = comm.Get_rank()
        if rank == 0:
            seen = {}
            for _ in range(comm.Get_size() - 1):
                st = MPI.Status()
                obj = comm.recv(source=MPI.ANY_SOURCE, tag=MPI.ANY_TAG,
                                status=st)
                seen[st.Get_source()] = (obj, st.Get_tag())
            return sorted(seen.items())
        comm.send({"rank": rank, "data": list(range(rank))},
                  dest=0, tag=10 + rank)
        return None

    head = run4(app).values[0]
    assert head == [
        (1, ({"rank": 1, "data": [0]}, 11)),
        (2, ({"rank": 2, "data": [0, 1]}, 12)),
        (3, ({"rank": 3, "data": [0, 1, 2]}, 13)),
    ]


def test_object_sendrecv_ring():
    def app():
        comm = MPI.COMM_WORLD
        rank, size = comm.Get_rank(), comm.Get_size()
        got = comm.sendrecv({"from": rank}, dest=(rank + 1) % size,
                            sendtag=4, source=(rank - 1) % size,
                            recvtag=4)
        return got["from"]

    assert run4(app).values == [3, 0, 1, 2]


def test_large_object_roundtrip():
    """A payload big enough to leave the eager path still arrives
    intact through header + payload framing."""
    def app():
        comm = MPI.COMM_WORLD
        if comm.Get_rank() == 0:
            blob = {"m": np.arange(32768, dtype=np.float64)}
        else:
            blob = None
        blob = comm.bcast(blob, root=0)
        return float(blob["m"].sum())

    expect = float(np.arange(32768, dtype=np.float64).sum())
    assert run4(app).values == [expect] * 4
