"""Runner mechanics: geometry, engine clamps, teardown, the CLI."""

import threading
import time

import numpy as np
import pytest

from repro import shim
from repro.cli import main as cli_main
from repro.machine import preset
from repro.runtime.errors import MpiError
from repro.shim import MPI
from repro.shim.runner import _geometry, _serial_engine


def _shim_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("shim-rank") and t.is_alive()]


def _await_no_shim_threads(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _shim_threads():
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked rank threads: {_shim_threads()}")


# -- geometry ----------------------------------------------------------
def test_geometry_resolution():
    assert _geometry(None, None, None) == (4, 4)
    assert _geometry(None, 2, 8) == (2, 8)
    assert _geometry(16, None, None) == (2, 8)
    assert _geometry(32, None, None) == (4, 8)
    assert _geometry(4, None, None) == (2, 2)
    assert _geometry(2, None, None) == (2, 1)
    assert _geometry(1, None, None) == (1, 1)
    assert _geometry(7, None, None) == (7, 1)
    assert _geometry(12, None, 4) == (3, 4)
    assert _geometry(12, 3, None) == (3, 4)
    assert _geometry(12, 3, 4) == (3, 4)
    with pytest.raises(ValueError):
        _geometry(12, 5, None)
    with pytest.raises(ValueError):
        _geometry(12, 3, 5)
    with pytest.raises(ValueError):
        _geometry(0, None, None)


def test_params_geometry_consistency():
    params = preset("broadwell_opa", nodes=2, ppn=4)

    def app():
        return MPI.COMM_WORLD.Get_size()

    result = shim.run(app, params=params, nranks=8, trace=False)
    assert result.values == [8] * 8
    with pytest.raises(ValueError, match="inconsistent"):
        shim.run(app, params=params, nranks=4, trace=False)


# -- engine normalization ----------------------------------------------
def test_serial_engine_strips_forked_workers():
    assert _serial_engine(None) == (None, None)
    assert _serial_engine("calendar") == ("calendar", None)
    assert _serial_engine("sharded:8") == ("sharded:8", None)
    engine, note = _serial_engine("sharded:8x4")
    assert engine == "sharded:8"
    assert "workers 4 -> 1" in note


def test_worker_clamp_is_reported_on_the_result():
    def app():
        return MPI.COMM_WORLD.Get_rank()

    result = shim.run(app, nodes=4, ppn=2, engine="sharded:4x2",
                      trace=False)
    assert result.engine.workers == 1
    assert result.engine.shards == 4
    assert len(result.shim_notes) == 1 and "workers" in result.shim_notes[0]


# -- teardown ----------------------------------------------------------
def test_user_exception_propagates_and_threads_are_reaped():
    def app():
        comm = MPI.COMM_WORLD
        if comm.Get_rank() == 2:
            raise RuntimeError("rank 2 exploded")
        # Everyone else blocks in a collective that can never complete.
        comm.barrier()
        return "unreachable"

    with pytest.raises(RuntimeError, match="rank 2 exploded"):
        shim.run(app, nodes=2, ppn=2, trace=False)
    _await_no_shim_threads()


def test_deadlock_is_detected_and_threads_are_reaped():
    def app():
        comm = MPI.COMM_WORLD
        buf = np.empty(1)
        comm.Recv(buf, source=(comm.Get_rank() + 1) % comm.Get_size())
        return "unreachable"

    with pytest.raises(MpiError):
        shim.run(app, nodes=2, ppn=2, trace=False)
    _await_no_shim_threads()


def test_per_rank_return_values_and_notes_default():
    def app():
        return MPI.COMM_WORLD.Get_rank() * 10

    result = shim.run(app, nodes=2, ppn=2, trace=False)
    assert result.values == [0, 10, 20, 30]
    assert result.shim_notes == ()


def test_run_passes_args_through():
    def app(base, scale):
        return base + scale * MPI.COMM_WORLD.Get_rank()

    result = shim.run(app, nodes=2, ppn=2, trace=False, args=(100, 2))
    assert result.values == [100, 102, 104, 106]


# -- run_script + CLI --------------------------------------------------
SCRIPT = """\
import sys
import numpy as np
from mpi4py import MPI

comm = MPI.COMM_WORLD
rank = comm.Get_rank()
n = int(sys.argv[1]) if len(sys.argv) > 1 else 2
total = np.empty(n)
comm.Allreduce(np.full(n, float(rank)), total)
if rank == 0:
    print(f"RESULT {int(total[0])} ranks={comm.Get_size()} argv={sys.argv[1:]}")
"""


def test_run_script_aliases_mpi4py(tmp_path, capsys):
    script = tmp_path / "app.py"
    script.write_text(SCRIPT)
    result = shim.run_script(script, argv=("3",), nranks=8, trace=False)
    assert result.elapsed > 0
    out = capsys.readouterr().out
    assert "RESULT 28 ranks=8 argv=['3']" in out
    # The alias is scoped to the run: mpi4py is gone again afterwards.
    with pytest.raises(ImportError):
        import mpi4py  # noqa: F401


def test_run_script_missing_file():
    with pytest.raises(FileNotFoundError):
        shim.run_script("/nonexistent/app.py")


def test_cli_shim_run(tmp_path, capsys):
    script = tmp_path / "app.py"
    script.write_text(SCRIPT)
    trace_out = tmp_path / "trace.json"
    rc = cli_main(["shim", "run", "--nranks", "4", "--library", "MPICH",
                   "--trace", str(trace_out), "--validate",
                   str(script), "--", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "RESULT 6 ranks=4 argv=['2']" in out
    assert "simulated" in out and "schema OK" in out
    assert trace_out.is_file()


def test_cli_shim_run_no_trace(tmp_path, capsys):
    script = tmp_path / "app.py"
    script.write_text(SCRIPT)
    rc = cli_main(["shim", "run", "--nodes", "2", "--ppn", "2",
                   "--engine", "sharded:2", "--no-trace", str(script)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "RESULT 6 ranks=4" in out
    assert "engine sharded" in out
