"""The mpi4py example ports produce byte-identical numerics.

``examples/mpi4py_kmeans.py`` and ``examples/mpi4py_halo_exchange.py``
are plain mpi4py programs.  Run unmodified through the shim they must
reproduce the *exact* per-rank results of the native generator versions
(``examples/kmeans_allreduce.py``, ``examples/halo_exchange.py``): the
simulation moves real bytes through the same collective schedules, so
equality is ``==`` on floats, not approx.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import shim
from repro.api import Session
from repro.shim.runner import _script_environment

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    """Import an example module straight from the examples directory."""
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_shim_example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    with _script_environment(str(path), ()):
        # The mpi4py ports do `from mpi4py import MPI` at import time;
        # inside the alias context that resolves to repro.shim.mpi.
        spec.loader.exec_module(module)
    sys.modules.pop(spec.name, None)
    return module


@pytest.fixture(scope="module")
def kmeans_modules():
    return load_example("kmeans_allreduce"), load_example("mpi4py_kmeans")


@pytest.fixture(scope="module")
def halo_modules():
    return load_example("halo_exchange"), load_example("mpi4py_halo_exchange")


@pytest.mark.parametrize("library", ["MPICH", "PiP-MColl"])
def test_kmeans_port_is_byte_identical(kmeans_modules, library):
    native_mod, port_mod = kmeans_modules
    native = Session(library=library, nodes=8, ppn=4,
                     trace=False).run(native_mod.kmeans)
    shimmed = shim.run(port_mod.kmeans, nodes=8, ppn=4, trace=False,
                       library=library)

    assert len(shimmed.values) == len(native.values) == 32
    for rank, (nat, shm) in enumerate(zip(native.values, shimmed.values)):
        # (centroid_history, local_inertia, elapsed); numerics must be
        # exactly equal — elapsed may differ (the native app models
        # compute FLOPs the synchronous port cannot express).
        assert shm[0] == nat[0], f"rank {rank}: centroid history diverged"
        assert shm[1] == nat[1], f"rank {rank}: inertia diverged"


def test_halo_port_is_byte_identical(halo_modules):
    native_mod, port_mod = halo_modules
    native = Session(library="PiP-MColl", nodes=4, ppn=4,
                     trace=False).run(native_mod.jacobi)
    shimmed = shim.run(port_mod.jacobi, nodes=4, ppn=4, trace=False,
                       library="PiP-MColl")

    assert len(shimmed.values) == len(native.values) == 16
    for rank, (nat, shm) in enumerate(zip(native.values, shimmed.values)):
        assert shm[0] == nat[0], f"rank {rank}: residual history diverged"


def test_halo_port_guards_world_size(halo_modules):
    _, port_mod = halo_modules
    with pytest.raises(SystemExit, match="16 ranks"):
        shim.run(port_mod.jacobi, nodes=2, ppn=2, trace=False)


def test_kmeans_port_runs_as_a_script(capsys):
    """The full script (including its reduce/allreduce reporting in
    main()) runs end to end under run_script."""
    result = shim.run_script(EXAMPLES / "mpi4py_kmeans.py", nranks=32,
                             trace=False)
    assert result.elapsed > 0
    out = capsys.readouterr().out
    assert out.count("k-means") == 1  # root prints exactly once
    assert "32 ranks" in out
