"""Unit tests for Resource, RateLimiter, Store and FilterStore."""

import pytest

from repro.sim import FilterStore, RateLimiter, Resource, Simulator, Store


def test_resource_capacity_serialises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, tag):
        yield from res.use(2.0)
        spans.append((tag, sim.now))

    for tag in range(3):
        sim.process(worker(sim, tag))
    sim.run()
    assert spans == [(0, 2.0), (1, 4.0), (2, 6.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(sim, tag):
        yield from res.use(2.0)
        done.append((tag, sim.now))

    for tag in range(4):
        sim.process(worker(sim, tag))
    sim.run()
    assert done == [(0, 2.0), (1, 2.0), (2, 4.0), (3, 4.0)]


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def worker(sim, tag):
        yield res.request()
        grants.append(tag)
        yield sim.timeout(1.0)
        res.release()

    for tag in range(5):
        sim.process(worker(sim, tag))
    sim.run()
    assert grants == [0, 1, 2, 3, 4]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        yield res.request()
        assert res.in_use == 1
        yield sim.timeout(1.0)
        res.release()

    def waiter(sim):
        req = res.request()
        assert res.queued == 1
        yield req
        res.release()

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run()
    assert res.in_use == 0 and res.queued == 0


def test_rate_limiter_pipelines_back_to_back():
    sim = Simulator()
    pipe = RateLimiter(sim)
    finishes = []

    def job(sim, tag):
        yield pipe.occupy(1.0)
        finishes.append((tag, sim.now))

    for tag in range(3):
        sim.process(job(sim, tag))
    sim.run()
    # All submitted at t=0; the pipe serves them back to back.
    assert finishes == [(0, 1.0), (1, 2.0), (2, 3.0)]
    assert pipe.busy_time == 3.0


def test_rate_limiter_idle_gap_resets():
    sim = Simulator()
    pipe = RateLimiter(sim)
    finishes = []

    def job(sim):
        yield pipe.occupy(1.0)
        finishes.append(sim.now)
        yield sim.timeout(5.0)  # idle gap
        yield pipe.occupy(1.0)
        finishes.append(sim.now)

    sim.process(job(sim))
    sim.run()
    assert finishes == [1.0, 7.0]


def test_rate_limiter_negative_duration():
    sim = Simulator()
    pipe = RateLimiter(sim)
    with pytest.raises(ValueError):
        pipe.occupy(-1.0)


def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append((item, sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_buffers_when_no_getter():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    got = []

    def consumer(sim):
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.process(consumer(sim))
    sim.run()
    assert got == ["a", "b"]


def test_filter_store_predicate_match():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim):
        item = yield store.get(lambda m: m["tag"] == 7)
        got.append(item["tag"])

    def producer(sim):
        yield sim.timeout(1.0)
        store.put({"tag": 3})
        store.put({"tag": 7})

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [7]
    assert len(store) == 1  # tag 3 still buffered


def test_filter_store_oldest_matching_item():
    sim = Simulator()
    store = FilterStore(sim)
    store.put(1)
    store.put(2)
    store.put(3)
    got = []

    def consumer(sim):
        got.append((yield store.get(lambda x: x % 2 == 1)))
        got.append((yield store.get()))

    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2]


def test_filter_store_oldest_matching_getter_served_first():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim, tag, pred):
        item = yield store.get(pred)
        got.append((tag, item))

    sim.process(consumer(sim, "evens", lambda x: x % 2 == 0))
    sim.process(consumer(sim, "any", lambda x: True))

    def producer(sim):
        yield sim.timeout(1.0)
        store.put(4)
        store.put(5)

    sim.process(producer(sim))
    sim.run()
    assert got == [("evens", 4), ("any", 5)]
