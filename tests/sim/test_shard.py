"""Shard-boundary unit tests for the sharded simulation kernel, plus
the EngineSpec resolution/downgrade rules it sits behind.

The heavyweight byte-exactness gate lives in
``tests/validate/test_differential.py`` (engine columns); here we pin
the kernel's contracts directly: lookahead wiring, node→shard routing,
determinism under varying shard counts, and fork-parallel ≡ sequential.
"""

import pytest

from repro.machine import broadwell_opa
from repro.mpilibs import make_library
from repro.sim.shard import ShardedSimulator
from repro.sim.spec import (
    DEFAULT_MAX_SHARDS,
    ENGINE_NAMES,
    EngineSpec,
    resolve_engine,
)


# ---------------------------------------------------------------------------
# EngineSpec resolution — the single place downgrade rules live.
# ---------------------------------------------------------------------------
def test_engine_names_resolve():
    assert resolve_engine("reference").name == "reference"
    assert resolve_engine("reference").queue == "heap"
    assert not resolve_engine("reference").fastpath

    cal = resolve_engine("calendar")
    assert cal.name == "calendar" and cal.queue == "calendar" and cal.fastpath

    sh = resolve_engine("sharded:4x2", nodes=8)
    assert sh.name == "sharded" and sh.shards == 4 and sh.workers == 2
    assert sh.sharded and sh.requested == "sharded:4x2"

    an = resolve_engine("analytic")
    assert an.name == "analytic" and an.analytic and an.fastpath


def test_unknown_engine_and_bad_suffix_raise():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("warpdrive")
    with pytest.raises(ValueError, match="suffix"):
        resolve_engine("calendar:4")
    with pytest.raises(ValueError, match="sharded"):
        resolve_engine("sharded:two")


def test_engine_and_legacy_kwargs_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        resolve_engine("calendar", queue="heap")
    with pytest.raises(ValueError, match="not both"):
        resolve_engine("sharded", fastpath=False, nodes=4)


def test_legacy_kwargs_keep_pre_enginespec_behaviour():
    spec = resolve_engine(None)
    assert spec.queue == "calendar" and spec.fastpath
    assert spec.requested is None

    slow = resolve_engine(None, fastpath=False)
    assert not slow.fastpath

    traced = resolve_engine(None, tracer=True)
    assert not traced.fastpath
    assert any("fast path off" in d for d in traced.downgrades)


def test_sharded_downgrades_are_recorded():
    for flag, needle in (
        ("faults", "faults"),
        ("tracer", "tracer"),
        ("obs", "span recorder"),
        ("reliable", "reliable"),
        ("fabric", "fabric"),
        ("ft", "fault-tolerance"),
    ):
        spec = resolve_engine("sharded", nodes=8, **{flag: True})
        assert spec.name == "calendar", flag
        assert spec.shards == 1
        assert any(needle in d for d in spec.downgrades), flag

    single = resolve_engine("sharded", nodes=1)
    assert single.name == "calendar"
    assert any("single-node" in d for d in single.downgrades)


def test_sharded_shard_and_worker_clamps():
    spec = resolve_engine("sharded", nodes=3)
    assert spec.shards == 3  # min(nodes, DEFAULT_MAX_SHARDS)
    assert resolve_engine("sharded", nodes=64).shards == DEFAULT_MAX_SHARDS

    clamped = resolve_engine("sharded:16", nodes=4)
    assert clamped.shards == 4
    assert any("clamped" in d for d in clamped.downgrades)

    workers = resolve_engine("sharded:4x8", nodes=8)
    assert workers.workers == 4  # never more workers than shards

    seq = resolve_engine("sharded:4x4", nodes=8, resources=True)
    assert seq.workers == 1
    assert any("sequential" in d for d in seq.downgrades)


def test_analytic_downgrades_to_calendar():
    # The evaluator bypasses RateLimiter.reserve, where resource
    # telemetry records — so resources force plain calendar.
    spec = resolve_engine("analytic", resources=True)
    assert spec.name == "calendar" and not spec.analytic
    assert any("resource telemetry" in d for d in spec.downgrades)

    for flag in ("faults", "tracer", "obs", "reliable", "fabric", "ft"):
        spec = resolve_engine("analytic", **{flag: True})
        assert spec.name == "calendar" and not spec.analytic, flag


def test_spec_reresolution_preserves_request():
    first = resolve_engine("sharded:4x2", nodes=8)
    # Re-resolving the resolved spec against harsher conditions applies
    # the downgrade rules to the *original* request.
    again = resolve_engine(first, nodes=8, faults=True)
    assert again.name == "calendar"
    assert again.requested == "sharded:4x2"
    # ... and against friendly conditions reproduces the original.
    same = resolve_engine(first, nodes=8)
    assert (same.name, same.shards, same.workers) == ("sharded", 4, 2)


def test_describe_mentions_downgrades():
    spec = resolve_engine("sharded", nodes=1)
    text = spec.describe()
    assert "downgraded" in text and "single-node" in text
    assert set(ENGINE_NAMES) == {"reference", "calendar", "sharded",
                                 "analytic"}
    assert isinstance(spec, EngineSpec)


# ---------------------------------------------------------------------------
# Kernel contracts: constructor guards, routing, lookahead wiring.
# ---------------------------------------------------------------------------
def test_sharded_simulator_constructor_guards():
    with pytest.raises(ValueError, match="at least 2"):
        ShardedSimulator(1, 4, 1e-6)
    with pytest.raises(ValueError, match="shards for"):
        ShardedSimulator(8, 4, 1e-6)
    with pytest.raises(ValueError, match="lookahead"):
        ShardedSimulator(2, 4, 0.0)


def test_shard_of_node_is_contiguous_and_balanced():
    sim = ShardedSimulator(4, 10, 1e-6)
    mapping = [sim.shard_of_node(n) for n in range(10)]
    assert mapping == sorted(mapping)  # contiguous blocks
    assert set(mapping) == {0, 1, 2, 3}  # every shard owns nodes
    sizes = [mapping.count(s) for s in range(4)]
    assert max(sizes) - min(sizes) <= 1  # balanced within one node


def test_world_wires_nic_latency_as_lookahead():
    params = broadwell_opa(nodes=4, ppn=1)
    world = make_library("MPICH").make_world(params, functional=False,
                                             engine="sharded:4")
    assert isinstance(world.sim, ShardedSimulator)
    assert world.sim.lookahead == params.nic.latency
    assert world.sim.shards == 4
    assert world.engine.describe().startswith("sharded")


def test_cross_shard_arrivals_respect_lookahead():
    # The conservative-window contract: every cross-shard effect is at
    # least `lookahead` in the future.  Run a real inter-node exchange
    # and sanity-check the windows drained to quiescence.
    params = broadwell_opa(nodes=4, ppn=1)
    lib = make_library("MPICH")
    world = lib.make_world(params, functional=True, engine="sharded:4")

    def program(ctx):
        import numpy as np

        from repro.runtime import ArrayBuffer

        peer = (ctx.rank + 2) % 4  # always another shard
        send = ArrayBuffer.from_array(
            np.full(8, ctx.rank + 1, dtype=np.uint8))
        recv = ArrayBuffer.zeros(8)
        if ctx.rank < 2:
            yield from ctx.send(send.view(), dst=peer, tag=1)
            yield from ctx.recv(recv.view(), src=peer, tag=2)
        else:
            yield from ctx.recv(recv.view(), src=peer, tag=1)
            yield from ctx.send(send.view(), dst=peer, tag=2)
        return bytes(recv.bytes_view)

    results = world.run(program)
    world.assert_quiescent()
    assert results == [bytes([3] * 8), bytes([4] * 8),
                       bytes([1] * 8), bytes([2] * 8)]
    # Round trip across shards: at least two NIC latencies of time.
    assert world.sim.now >= 2 * params.nic.latency


# ---------------------------------------------------------------------------
# Determinism: identical bytes, timestamps and counters for every shard
# count, and for fork-parallel vs sequential execution.
# ---------------------------------------------------------------------------
def _collective_fingerprint(engine, nodes=8, ppn=2, nbytes=32,
                            collective="allgather", library="MPICH"):
    from repro.bench.harness import _buffers, _invoke

    lib = make_library(library)
    params = broadwell_opa(nodes=nodes, ppn=ppn)
    world = lib.make_world(params, functional=True, engine=engine)
    size = world.comm_world.size
    algo = lib.wrapped(collective, nbytes, size)

    def program(ctx):
        bufs = _buffers(ctx, collective, nbytes, size, 0)
        for _ in range(2):
            yield from _invoke(algo, ctx, bufs, collective, 0)
        out = [bytes(b.read()) for b in bufs.values() if b is not None]
        return (ctx.now, out)

    results = world.run(program)
    world.assert_quiescent()
    stats = world.stats()
    stats.pop("sim_events")  # engines legitimately differ here
    return results, stats


def test_identical_across_shard_counts():
    ref = _collective_fingerprint("reference")
    for engine in ("sharded:2", "sharded:4", "sharded:8"):
        assert _collective_fingerprint(engine) == ref, engine


def test_uneven_shard_split_is_exact():
    # 6 nodes over 4 shards: block sizes 1 and 2 — routing must stay
    # exact when shards own different node counts.
    ref = _collective_fingerprint("reference", nodes=6, ppn=2,
                                  collective="alltoall")
    got = _collective_fingerprint("sharded:4", nodes=6, ppn=2,
                                  collective="alltoall")
    assert got == ref


def test_fork_parallel_matches_sequential():
    seq = _collective_fingerprint("sharded:4")
    par = _collective_fingerprint("sharded:4x2")
    assert par == seq


def test_parallel_world_is_single_use():
    lib = make_library("MPICH")
    world = lib.make_world(broadwell_opa(nodes=4, ppn=1), functional=False,
                           engine="sharded:4x2")

    def program(ctx):
        yield from ctx.hard_sync()
        return ctx.rank

    assert world.run(program) == [0, 1, 2, 3]
    with pytest.raises(RuntimeError, match="fresh world"):
        world.run(program)
