"""Unit tests for the simulation engine and event primitives."""

import pytest

from repro.sim import (
    EventAlreadyTriggered,
    Interrupt,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.peek() == float("inf")


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_at_fires_at_exact_absolute_time():
    sim = Simulator()
    seen = []

    def waiter(sim):
        ev = yield sim.event_at(0.3, value="hi")
        seen.append((sim.now, ev))

    sim.process(waiter(sim))
    sim.run()
    # 0.3 exactly — not 0.0 + (0.3 - 0.0) recomputed through a delta,
    # which is the ULP drift event_at exists to avoid.
    assert seen == [(0.3, "hi")]


def test_event_at_rejects_the_past():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.event_at(1.0)


def test_run_until_deadline_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(10.0)
    sim.run(until=5.0)
    assert sim.now == 5.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(3.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_process_returns_value():
    sim = Simulator()

    def job(sim):
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(job(sim))
    sim.run()
    assert proc.triggered and proc.ok
    assert proc.value == 42
    assert sim.now == 1.0


def test_process_join_via_yield():
    sim = Simulator()
    order = []

    def child(sim):
        yield sim.timeout(2.0)
        order.append("child")
        return "payload"

    def parent(sim):
        value = yield sim.process(child(sim))
        order.append("parent")
        return value

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == "payload"
    assert order == ["child", "parent"]


def test_same_timestamp_events_fifo():
    sim = Simulator()
    order = []

    def job(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(job(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("boom"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as exc:
            seen.append(str(exc))

    def failer(sim):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter(sim))
    sim.process(failer(sim))
    sim.run()
    assert seen == ["boom"]


def test_unhandled_process_crash_surfaces():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("crashed")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="crashed"):
        sim.run()


def test_crash_propagates_to_joiner_not_engine():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("crashed")

    def joiner(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(joiner(sim))
    sim.run()
    assert caught == ["crashed"]


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(TypeError, match="must yield Event"):
        sim.run()


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    assert ev.processed

    times = []

    def job(sim):
        yield sim.timeout(3.0)
        value = yield ev
        times.append((sim.now, value))

    sim.process(job(sim))
    sim.run()
    assert times == [(3.0, "x")]


def test_all_of_collects_values():
    sim = Simulator()
    results = []

    def job(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        got = yield t1 & t2
        results.append((sim.now, sorted(got.values())))

    sim.process(job(sim))
    sim.run()
    assert results == [(2.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def job(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        got = yield t1 | t2
        results.append((sim.now, list(got.values())))

    sim.process(job(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]
    assert sim.now == 5.0  # the slow timeout still drains


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    assert cond.triggered
    assert cond.ok


def test_interrupt_detaches_from_waited_event():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        yield sim.timeout(1.0)
        log.append(("done", sim.now))

    proc = sim.process(sleeper(sim))

    def killer(sim):
        yield sim.timeout(2.0)
        proc.interrupt(cause="hurry")

    sim.process(killer(sim))
    sim.run()
    assert ("interrupted", 2.0, "hurry") in log
    assert ("done", 3.0) in log


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.5)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_event_count_increments():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    sim.run()
    assert sim.event_count == 2


def test_mixed_simulator_condition_rejected():
    sim1, sim2 = Simulator(), Simulator()
    e1, e2 = sim1.event(), sim2.event()
    with pytest.raises(ValueError):
        sim1.all_of([e1, e2])
