"""Correctness of the multi-object allgatherv extension."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import mcoll_allgatherv
from repro.machine import small_test
from repro.runtime import World
from repro.validate.checker import check_allgatherv

SHAPES = [(1, 4), (2, 2), (3, 2), (5, 3), (4, 1)]


def pip_world(nodes, ppn):
    return World(small_test(nodes=nodes, ppn=ppn), intra="pip")


def adapt(ctx, sendview, recvview, counts, comm=None):
    yield from mcoll_allgatherv(ctx, sendview, recvview, counts, comm=comm)


@pytest.mark.parametrize("nodes,ppn", SHAPES, ids=lambda v: str(v))
def test_mcoll_allgatherv_uneven(nodes, ppn):
    size = nodes * ppn
    counts = [(r * 7) % 13 + 1 for r in range(size)]
    check_allgatherv(pip_world(nodes, ppn), adapt, counts)


def test_mcoll_allgatherv_zero_blocks():
    counts = [4, 0, 9, 0, 1, 16]
    check_allgatherv(pip_world(3, 2), adapt, counts)


def test_mcoll_allgatherv_empty_node():
    # Node 1 (ranks 2-3) contributes nothing at all.
    counts = [5, 3, 0, 0, 7, 2]
    check_allgatherv(pip_world(3, 2), adapt, counts)


def test_mcoll_allgatherv_count_mismatch():
    world = pip_world(1, 2)

    def program(ctx):
        send = ctx.alloc(5)
        recv = ctx.alloc(8)
        yield from mcoll_allgatherv(ctx, send.view(), recv.view(), [4, 4])

    with pytest.raises(ValueError, match="counts say"):
        world.run(program)


def test_mcoll_allgatherv_wrong_count_len():
    world = pip_world(1, 2)

    def program(ctx):
        send = ctx.alloc(4)
        recv = ctx.alloc(4)
        yield from mcoll_allgatherv(ctx, send.view(), recv.view(), [4])

    with pytest.raises(ValueError, match="counts for"):
        world.run(program)


@given(data=st.data(), nodes=st.integers(1, 4), ppn=st.integers(1, 4))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mcoll_allgatherv_random_counts(data, nodes, ppn):
    size = nodes * ppn
    counts = data.draw(st.lists(st.integers(0, 40), min_size=size, max_size=size))
    if sum(counts) == 0:
        counts[0] = 1
    check_allgatherv(pip_world(nodes, ppn), adapt, counts)
