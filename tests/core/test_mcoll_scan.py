"""Correctness of the multi-object scan."""

import pytest

from repro.core import mcoll_scan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.ops import MAX, SUM
from repro.validate.checker import check_scan

SHAPES = [(1, 4), (2, 2), (3, 2), (5, 3), (4, 1), (7, 2)]


def pip_world(nodes, ppn):
    return World(small_test(nodes=nodes, ppn=ppn), intra="pip")


@pytest.mark.parametrize("nodes,ppn", SHAPES, ids=lambda v: str(v))
@pytest.mark.parametrize("count", [4, 96])
def test_mcoll_scan(nodes, ppn, count):
    check_scan(pip_world(nodes, ppn), mcoll_scan, count, op=SUM)


def test_mcoll_scan_max():
    check_scan(pip_world(4, 3), mcoll_scan, 8, op=MAX)


def test_mcoll_scan_single_rank():
    check_scan(pip_world(1, 1), mcoll_scan, 16, op=SUM)


def test_library_exposes_scan():
    from repro.mpilibs import make_library
    from repro.validate.checker import check_scan as check

    lib = make_library("PiP-MColl")
    assert lib.algorithm("scan", 64, 2304).__name__ == "mcoll_scan"
    world = lib.make_world(small_test(nodes=3, ppn=2))
    check(world, lib.wrapped("scan", 48, 6), 6)

    base = make_library("MPICH")
    assert base.algorithm("scan", 64, 2304).__name__ == "scan_recursive_doubling"
    assert base.algorithm("exscan", 64, 2304).__name__ == "exscan_linear"


def test_mcoll_scan_beats_baseline_scan():
    """Shared-address-space prefix beats message-based at one node."""
    from repro.bench import bench_collective  # noqa: F401  (API parity)
    from repro.collectives import scan_recursive_doubling
    from repro.machine import broadwell_opa
    from repro.runtime import World
    from repro.runtime.datatypes import FLOAT64

    def timed(algo, intra):
        world = World(broadwell_opa(nodes=4, ppn=6), intra=intra,
                      functional=False)

        def program(ctx):
            send = ctx.alloc(64)
            recv = ctx.alloc(64)
            yield from ctx.hard_sync()
            t0 = ctx.now
            yield from algo(ctx, send.view(), recv.view(), FLOAT64, SUM)
            return ctx.now - t0

        return max(world.run(program))

    assert timed(mcoll_scan, "pip") < timed(scan_recursive_doubling,
                                            "posix_shmem")
