"""Unit + property tests for the multi-object schedule math (paper §2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multiobject import (
    bruck_schedule,
    coverage_check,
    dest_node,
    final_span,
    full_spans,
    paired_rank,
    radix,
    remainder_count,
    round_partition,
    source_node,
    total_rounds,
)


def test_radix_is_ppn_plus_one():
    assert radix(18) == 19  # the paper's B_k = P + 1
    assert radix(1) == 2  # degenerates to classic radix-2 Bruck
    with pytest.raises(ValueError):
        radix(0)


def test_paper_scale_two_rounds():
    """128 nodes, 18 ppn: one full round (span 19) + one partial."""
    assert full_spans(128, 18) == [1]
    assert final_span(128, 18) == 19
    assert total_rounds(128, 18) == 2
    # Radix-2 baseline needs ceil(log2 128) = 7 rounds; multi-object
    # needs 2 — the round-count part of the paper's speedup.
    assert total_rounds(128, 1) == 7


def test_full_spans_power_of_radix():
    # 27 nodes, ppn 2 → radix 3 → spans 1, 3, 9; no partial round.
    assert full_spans(27, 2) == [1, 3, 9]
    assert final_span(27, 2) == 27
    assert total_rounds(27, 2) == 3


def test_remainder_counts_paper_example():
    """N=128, span 19: digits 1-5 move 19 chunks, digit 6 moves 14,
    digits 7+ move none; total = 128 - 19."""
    counts = [remainder_count(128, 19, d) for d in range(1, 19)]
    assert counts[:5] == [19] * 5
    assert counts[5] == 14
    assert all(c == 0 for c in counts[6:])
    assert sum(counts) == 128 - 19


def test_remainder_count_validates_digit():
    with pytest.raises(ValueError):
        remainder_count(10, 1, 0)


def test_pairing_directions():
    # Paper step 3: src = (N_id + off) % N, dst = (N_id - off) % N.
    assert source_node(0, 3, 8) == 3
    assert dest_node(0, 3, 8) == 5
    assert paired_rank(4, 2, 18) == 74  # node*P + R_l (corrected typo)


def test_bruck_schedule_shape_at_paper_scale():
    sched = bruck_schedule(128, 18, local_rank=0)  # digit 1
    assert len(sched) == 2
    assert sched[0].span == 1 and sched[0].chunks == 1
    assert sched[1].span == 19 and sched[1].chunks == 19
    # Digit 6 (local rank 5) is clipped in the partial round.
    assert bruck_schedule(128, 18, local_rank=5)[1].chunks == 14
    # Digit 7 (local rank 6) has no partial-round work.
    assert len(bruck_schedule(128, 18, local_rank=6)) == 1


def test_bruck_schedule_validates_local_rank():
    with pytest.raises(ValueError):
        bruck_schedule(8, 4, local_rank=4)


@given(n_nodes=st.integers(1, 200), ppn=st.integers(1, 36))
def test_schedule_covers_every_chunk_exactly_once(n_nodes, ppn):
    """Across all local ranks, chunks 1..N-1 are each received exactly
    once — the allgather coverage invariant (paper steps 3-5)."""
    total, seen = coverage_check(n_nodes, ppn)
    assert total == n_nodes - 1
    assert seen == list(range(1, n_nodes))


@given(n_nodes=st.integers(2, 200), ppn=st.integers(1, 36))
def test_round_count_is_log_radix(n_nodes, ppn):
    import math

    rounds = total_rounds(n_nodes, ppn)
    assert rounds == math.ceil(math.log(n_nodes, ppn + 1) - 1e-12)


@given(n_items=st.integers(0, 100), ppn=st.integers(1, 20))
def test_round_partition_covers_all_items(n_items, ppn):
    seen = sorted(i for rl in range(ppn) for i in round_partition(n_items, ppn, rl))
    assert seen == list(range(n_items))
