"""Correctness of mcoll_reduce and the any-N rsag allreduce."""

import pytest

from repro.core import mcoll_allreduce_rsag, mcoll_reduce
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.ops import MAX, SUM
from repro.validate.checker import check_allreduce, check_reduce

SHAPES = [(1, 4), (2, 2), (3, 2), (9, 2), (5, 3), (7, 4), (4, 1)]


def pip_world(nodes, ppn):
    return World(small_test(nodes=nodes, ppn=ppn), intra="pip")


@pytest.fixture(params=SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def world(request):
    return pip_world(*request.param)


@pytest.mark.parametrize("count", [8, 240])
def test_mcoll_reduce(world, count):
    check_reduce(world, mcoll_reduce, count, op=SUM)


def test_mcoll_reduce_max():
    check_reduce(pip_world(4, 3), mcoll_reduce, 32, op=MAX)


@pytest.mark.parametrize("root", [1, 5, 8])
def test_mcoll_reduce_nonzero_root(root):
    check_reduce(pip_world(3, 3), mcoll_reduce, 16, root=root)


def test_mcoll_reduce_root_needs_buffer():
    world = pip_world(1, 2)

    def program(ctx):
        from repro.runtime.datatypes import INT64

        buf = ctx.alloc(16)
        yield from mcoll_reduce(ctx, buf.view(), None, INT64, SUM, root=0)

    with pytest.raises(ValueError, match="needs a receive buffer"):
        world.run(program)


@pytest.mark.parametrize("count", [12, 120])
def test_mcoll_allreduce_rsag_any_nodes(world, count):
    """count chosen divisible by every world size in SHAPES."""
    size = world.comm_world.size
    if (count * 8) % (size * 8):
        count = size * 3  # ensure divisibility
    check_allreduce(world, mcoll_allreduce_rsag, count, op=SUM)


def test_mcoll_allreduce_rsag_rejects_indivisible():
    with pytest.raises(ValueError, match="equal"):
        check_allreduce(pip_world(3, 2), mcoll_allreduce_rsag, 7)


def test_library_allreduce_non_pow2_nodes_uses_rsag():
    """End-to-end: the PiP-MColl library handles non-pow2 node counts."""
    from repro.mpilibs import make_library

    lib = make_library("PiP-MColl")
    world = lib.make_world(small_test(nodes=3, ppn=2))
    check_allreduce(world, lib.wrapped("allreduce", 48, 6), 6)  # 6 int64 = 48 B


def test_library_reduce_is_multiobject():
    from repro.mpilibs import make_library

    lib = make_library("PiP-MColl")
    assert lib.algorithm("reduce", 64, 2304) is mcoll_reduce
    world = lib.make_world(small_test(nodes=3, ppn=3))
    check_reduce(world, lib.wrapped("reduce", 64, 9), 8)
