"""Byte-exact correctness of every PiP-MColl collective.

PiP-MColl runs under the PiP transport on COMM_WORLD.  Shapes cover:
single node, N a power of the radix, N with a partial round, ppn 1
(degenerate multi-object), and the non-trivial remainder cases.
"""

import pytest

from repro.core import (
    mcoll_allgather,
    mcoll_allgather_large,
    mcoll_allreduce,
    mcoll_alltoall,
    mcoll_barrier,
    mcoll_bcast,
    mcoll_gather,
    mcoll_reduce_scatter,
    mcoll_scatter,
)
from repro.machine import small_test
from repro.pip import AddressSpaceViolation
from repro.runtime import World
from repro.runtime.ops import MAX, SUM
from repro.validate.checker import (
    check_allgather,
    check_allreduce,
    check_alltoall,
    check_barrier,
    check_bcast,
    check_gather,
    check_reduce_scatter,
    check_scatter,
)

SHAPES = [(1, 4), (2, 2), (3, 2), (9, 2), (5, 3), (7, 4), (4, 1), (6, 5), (11, 3), (8, 8)]


def pip_world(nodes, ppn):
    return World(small_test(nodes=nodes, ppn=ppn), intra="pip")


@pytest.fixture(params=SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def world(request):
    return pip_world(*request.param)


@pytest.mark.parametrize("count", [1, 16, 300])
def test_mcoll_allgather(world, count):
    check_allgather(world, mcoll_allgather, count)


@pytest.mark.parametrize("count", [16, 300])
def test_mcoll_allgather_large(world, count):
    check_allgather(world, mcoll_allgather_large, count)


@pytest.mark.parametrize("count", [1, 16, 300])
def test_mcoll_scatter(world, count):
    check_scatter(world, mcoll_scatter, count)


def test_mcoll_scatter_nonzero_root():
    # Root in the middle of a node, not a leader.
    check_scatter(pip_world(3, 3), mcoll_scatter, 32, root=4)


@pytest.mark.parametrize("count", [1, 16, 300])
def test_mcoll_gather(world, count):
    check_gather(world, mcoll_gather, count)


def test_mcoll_gather_nonzero_root():
    check_gather(pip_world(3, 3), mcoll_gather, 32, root=5)


@pytest.mark.parametrize("count", [1, 64, 1000])
def test_mcoll_bcast(world, count):
    check_bcast(world, mcoll_bcast, count)


def test_mcoll_bcast_nonzero_root():
    check_bcast(pip_world(4, 3), mcoll_bcast, 64, root=7)


@pytest.mark.parametrize("nodes,ppn", [(1, 4), (2, 2), (4, 3), (8, 2), (4, 1)])
@pytest.mark.parametrize("count", [8, 240])
def test_mcoll_allreduce(nodes, ppn, count):
    check_allreduce(pip_world(nodes, ppn), mcoll_allreduce, count, op=SUM)


def test_mcoll_allreduce_max():
    check_allreduce(pip_world(4, 3), mcoll_allreduce, 16, op=MAX)


def test_mcoll_allreduce_rejects_non_pow2_nodes():
    with pytest.raises(ValueError, match="power-of-two node count"):
        check_allreduce(pip_world(3, 2), mcoll_allreduce, 8)


@pytest.mark.parametrize("count", [1, 8, 100])
def test_mcoll_alltoall(world, count):
    check_alltoall(world, mcoll_alltoall, count)


@pytest.mark.parametrize("count", [8, 64])
def test_mcoll_reduce_scatter(world, count):
    check_reduce_scatter(world, mcoll_reduce_scatter, count, op=SUM)


def test_mcoll_barrier(world):
    check_barrier(world, mcoll_barrier)


def test_mcoll_requires_pip_transport():
    world = World(small_test(nodes=2, ppn=2), intra="posix_shmem")
    with pytest.raises(AddressSpaceViolation):
        check_allgather(world, mcoll_allgather, 16)


def test_mcoll_requires_world_comm():
    world = pip_world(2, 2)

    def program(ctx):
        buf = ctx.alloc(8)
        out = ctx.alloc(8 * ctx.node_comm.size)
        yield from mcoll_allgather(ctx, buf.view(), out.view(), comm=ctx.node_comm)

    with pytest.raises(ValueError, match="COMM_WORLD"):
        world.run(program)


def test_mcoll_back_to_back_no_cross_matching():
    world = pip_world(3, 2)
    check_allgather(world, mcoll_allgather, 16)
    check_scatter(world, mcoll_scatter, 16)
    check_gather(world, mcoll_gather, 16)
    check_bcast(world, mcoll_bcast, 16)
    check_barrier(world, mcoll_barrier)
    check_alltoall(world, mcoll_alltoall, 16)


def test_mcoll_allgather_paper_shape_small_scale():
    """A shape with a genuine partial round and clipped digits
    (N=23, P=4 → radix 5, spans [1], partial with clipping)."""
    check_allgather(pip_world(23, 4), mcoll_allgather, 8)


def test_mcoll_timing_mode_runs():
    """Timing-only (NullBuffer) worlds execute the full choreography."""
    world = World(small_test(nodes=3, ppn=2), intra="pip", functional=False)

    def program(ctx):
        send = ctx.alloc(64)
        recv = ctx.alloc(64 * ctx.size)
        yield from mcoll_allgather(ctx, send.view(), recv.view())
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    assert all(t > 0 for t in times)
