"""Unit tests for the intra-node transports' cost structure.

These tests measure each transport phase in isolation on a single
node and check the *relationships* the paper's §1 is built on:

* POSIX-SHMEM pays two payload copies; the others pay one.
* CMA pays a syscall per message; PiP pays none.
* XPMEM's first touch is expensive (attach + faults) and later uses
  are cheap but still cost a lookup.
* PiP is the cheapest at small sizes; PiP+sizesync stalls the sender.
"""

import pytest

from repro.machine import ClusterHardware, single_node
from repro.sim import Simulator
from repro.transport import (
    WireDescriptor,
    available_transports,
    make_transport,
)

PARAMS = single_node(ppn=2)


def run_phases(transport, nbytes, buf_key=None, repeat=1):
    """Run sender/delivery/receiver once each; return (s, d, r) times."""
    timings = []
    for _ in range(repeat):
        sim = Simulator()
        hw = ClusterHardware(sim, PARAMS)
        desc = WireDescriptor(src=0, dst=1, nbytes=nbytes, buf_key=buf_key)
        spans = {}

        def phase(sim, name, gen):
            start = sim.now
            yield from gen
            spans[name] = sim.now - start

        def driver(sim):
            yield sim.process(phase(sim, "s", transport.sender_steps(hw[0], desc)))
            yield sim.process(phase(sim, "d", transport.delivery_steps(hw[0], hw[0], desc)))
            yield sim.process(phase(sim, "r", transport.receiver_steps(hw[0], desc)))

        sim.process(driver(sim))
        sim.run()
        timings.append((spans["s"], spans["d"], spans["r"]))
    return timings[-1]


def total(transport, nbytes, **kw):
    return sum(run_phases(transport, nbytes, **kw))


def test_registry_lists_all_five():
    names = available_transports()
    assert names == ["cma", "pip", "pip_sizesync", "posix_shmem", "xpmem"]
    for name in names:
        assert make_transport(name).name.startswith(name.split("_")[0])


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        make_transport("tcp")


def test_registry_returns_fresh_instances():
    a = make_transport("xpmem")
    b = make_transport("xpmem")
    assert a is not b


def test_posix_double_copy_vs_pip_single_copy():
    """At large sizes POSIX costs ~2 copies, PiP ~1."""
    nbytes = 1 << 20
    mem = PARAMS.memory
    posix = total(make_transport("posix_shmem"), nbytes)
    pip = total(make_transport("pip"), nbytes)
    one_copy = mem.copy_time(nbytes)
    assert posix == pytest.approx(2 * one_copy, rel=0.1)
    assert pip == pytest.approx(one_copy, rel=0.1)


def test_cma_small_message_dominated_by_syscall():
    mem = PARAMS.memory
    s, d, r = run_phases(make_transport("cma"), 64)
    assert r >= mem.syscall_overhead
    # The syscall is the biggest term at 64 B.
    assert mem.syscall_overhead > mem.copy_time(64)


def test_pip_beats_others_at_small_sizes():
    nbytes = 64
    pip = total(make_transport("pip"), nbytes)
    for other in ("posix_shmem", "cma", "xpmem"):
        assert pip < total(make_transport(other), nbytes), other


def test_pip_sizesync_slower_than_posix_at_tiny_sizes():
    """The paper's PiP-MPICH observation: naive PiP can place last."""
    nbytes = 16
    naive = total(make_transport("pip_sizesync"), nbytes)
    posix = total(make_transport("posix_shmem"), nbytes)
    assert naive > posix


def test_xpmem_attach_amortises():
    t = make_transport("xpmem")
    first = total(t, 4096, buf_key="bufA")
    assert t.attach_cache_size == 1
    second = total(t, 4096, buf_key="bufA")
    assert second < first
    # First touch pays attach + at least one page fault.
    mem = PARAMS.memory
    assert first - second >= mem.attach_overhead - mem.attach_lookup


def test_xpmem_unkeyed_buffers_never_amortise():
    t = make_transport("xpmem")
    first = total(t, 4096, buf_key=None)
    second = total(t, 4096, buf_key=None)
    assert first == pytest.approx(second)
    assert t.attach_cache_size == 0


def test_xpmem_cached_still_beats_cma_small():
    """After warmup, XPMEM's lookup < CMA's syscall (both 1 copy)."""
    x = make_transport("xpmem")
    total(x, 256, buf_key="b")  # warm the cache
    warm = total(x, 256, buf_key="b")
    cma = total(make_transport("cma"), 256)
    assert warm < cma


def test_only_pip_supports_peer_views():
    for name in available_transports():
        t = make_transport(name)
        expected = name.startswith("pip")
        assert t.supports_peer_views is expected, name


def test_describe_mentions_copy_count():
    assert "2 copies" in make_transport("posix_shmem").describe()
    assert "1 copy" in make_transport("cma").describe()
    assert "1 copy" in make_transport("pip").describe()
