"""The flat fast paths must time exactly like the reference generators.

Each transport ships two implementations of its cost model: generator
phases (the reference choreography) and closed-form flat times (the
fast path the pt2pt engine prefers).  Divergence between them would
silently change benchmark results, so this suite pins them together.
"""

import pytest

from repro.machine import ClusterHardware, single_node, small_test
from repro.sim import Simulator
from repro.transport import (
    NetworkTransport,
    WireDescriptor,
    available_transports,
    make_transport,
)

PARAMS = single_node(ppn=2)


def run_gen(gen_factory):
    """Execute one generator phase; return its simulated duration."""
    sim = Simulator()
    hw = ClusterHardware(sim, PARAMS)
    out = {}

    def driver(sim):
        t0 = sim.now
        yield from gen_factory(hw)
        out["t"] = sim.now - t0

    sim.process(driver(sim))
    sim.run()
    return out["t"]


@pytest.mark.parametrize("name", available_transports())
@pytest.mark.parametrize("nbytes", [16, 4096])
def test_sender_flat_matches_generator(name, nbytes):
    desc = WireDescriptor(src=0, dst=1, nbytes=nbytes)
    ref = run_gen(lambda hw, t=make_transport(name): t.sender_steps(hw[0], desc))
    flat = make_transport(name).sender_flat_time(
        ClusterHardware(Simulator(), PARAMS)[0], desc)
    if flat is None:
        pytest.skip(f"{name} has no sender fast path at {nbytes} B")
    assert flat == pytest.approx(ref)


@pytest.mark.parametrize("name", available_transports())
@pytest.mark.parametrize("nbytes", [16, 4096])
def test_receiver_flat_matches_generator(name, nbytes):
    desc = WireDescriptor(src=0, dst=1, nbytes=nbytes, buf_key="k")
    ref = run_gen(lambda hw, t=make_transport(name): t.receiver_steps(hw[0], desc))
    flat = make_transport(name).receiver_flat_time(
        ClusterHardware(Simulator(), PARAMS)[0], desc)
    if flat is None:
        pytest.skip(f"{name} has no receiver fast path at {nbytes} B")
    assert flat == pytest.approx(ref)


@pytest.mark.parametrize("nbytes", [16, 4096])
def test_network_flat_matches_generator(nbytes):
    net = NetworkTransport()
    desc = WireDescriptor(src=0, dst=2, nbytes=nbytes)
    ref_s = run_gen(lambda hw: net.sender_steps(hw[0], desc))
    ref_r = run_gen(lambda hw: net.receiver_steps(hw[0], desc))
    hw0 = ClusterHardware(Simulator(), PARAMS)[0]
    assert net.sender_flat_time(hw0, desc) == pytest.approx(ref_s)
    assert net.receiver_flat_time(hw0, desc) == pytest.approx(ref_r)


@pytest.mark.parametrize("nbytes", [64, 100_000])  # eager and rendezvous
def test_network_schedule_delivery_matches_generator(nbytes):
    """Callback delivery and generator delivery arrive at the same time."""
    params = small_test(nodes=2, ppn=1)
    desc = WireDescriptor(src=0, dst=1, nbytes=nbytes)

    def timed_generator():
        sim = Simulator()
        hw = ClusterHardware(sim, params)
        net = NetworkTransport()
        out = {}

        def driver(sim):
            yield from net.delivery_steps(hw[0], hw[1], desc)
            out["t"] = sim.now

        sim.process(driver(sim))
        sim.run()
        return out["t"]

    def timed_callback():
        sim = Simulator()
        hw = ClusterHardware(sim, params)
        net = NetworkTransport()
        out = {}
        net.schedule_delivery(hw[0], hw[1], desc, lambda: out.setdefault("t", sim.now))
        sim.run()
        return out["t"]

    assert timed_callback() == pytest.approx(timed_generator())


def test_intra_schedule_delivery_is_flag_hop():
    sim = Simulator()
    hw = ClusterHardware(sim, PARAMS)
    t = make_transport("pip")
    desc = WireDescriptor(src=0, dst=1, nbytes=64)
    out = {}
    t.schedule_delivery(hw[0], hw[0], desc, lambda: out.setdefault("t", sim.now))
    sim.run()
    assert out["t"] == pytest.approx(PARAMS.memory.flag_latency)


def test_xpmem_flat_path_maintains_attach_cache():
    """The fast path must warm the same cache the generator uses."""
    t = make_transport("xpmem")
    hw0 = ClusterHardware(Simulator(), PARAMS)[0]
    desc = WireDescriptor(src=0, dst=1, nbytes=256, buf_key="bufZ")
    cold = t.receiver_flat_time(hw0, desc)
    warm = t.receiver_flat_time(hw0, desc)
    assert t.attach_cache_size == 1
    assert warm < cold
