"""Byte-exact correctness of vector collectives and exscan."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import (
    allgatherv_ring,
    alltoallv_pairwise,
    exscan_linear,
    gatherv_linear,
    packed_displs,
    scatterv_linear,
)
from repro.runtime.ops import MAX, SUM
from repro.validate.checker import (
    check_allgatherv,
    check_alltoallv,
    check_exscan,
    check_gatherv,
    check_scatterv,
)

from .conftest import make_world

PROP = dict(max_examples=12, deadline=None,
            suppress_health_check=[HealthCheck.too_slow])


def test_packed_displs():
    assert packed_displs([3, 0, 5]) == [0, 3, 3]
    assert packed_displs([]) == []


def test_gatherv_uneven_counts(world):
    size = world.comm_world.size
    counts = [(r * 7) % 13 + 1 for r in range(size)]
    check_gatherv(world, gatherv_linear, counts)


def test_gatherv_with_zero_counts():
    counts = [4, 0, 9, 0, 1, 16]
    check_gatherv(make_world(3, 2), gatherv_linear, counts)


def test_gatherv_nonzero_root():
    counts = [5, 3, 8, 2, 7, 1]
    check_gatherv(make_world(2, 3), gatherv_linear, counts, root=4)


def test_gatherv_root_missing_counts():
    world = make_world(1, 2)

    def program(ctx):
        buf = ctx.alloc(4)
        yield from gatherv_linear(ctx, buf.view(), buf.view(), counts=None, root=0)

    with pytest.raises(ValueError, match="root needs"):
        world.run(program)


def test_scatterv_uneven_counts(world):
    size = world.comm_world.size
    counts = [(r * 5) % 11 + 1 for r in range(size)]
    check_scatterv(world, scatterv_linear, counts)


def test_scatterv_with_zero_counts():
    counts = [0, 6, 0, 2, 12, 3]
    check_scatterv(make_world(3, 2), scatterv_linear, counts)


def test_scatterv_nonzero_root():
    counts = [2, 9, 4, 1, 6, 8]
    check_scatterv(make_world(2, 3), scatterv_linear, counts, root=5)


def test_allgatherv_uneven_counts(world):
    size = world.comm_world.size
    counts = [(r * 3) % 9 + 1 for r in range(size)]
    check_allgatherv(world, allgatherv_ring, counts)


def test_allgatherv_zero_count_blocks():
    counts = [4, 0, 7, 0, 2, 5]
    check_allgatherv(make_world(3, 2), allgatherv_ring, counts)


def test_allgatherv_count_mismatch_raises():
    world = make_world(1, 2)

    def program(ctx):
        send = ctx.alloc(5)
        recv = ctx.alloc(8)
        yield from allgatherv_ring(ctx, send.view(), recv.view(), counts=[4, 4])

    with pytest.raises(ValueError, match="counts say"):
        world.run(program)


def test_alltoallv_full_matrix(world):
    size = world.comm_world.size
    matrix = [[(i * size + j) % 7 + 1 for j in range(size)] for i in range(size)]
    check_alltoallv(world, alltoallv_pairwise, matrix)


def test_alltoallv_sparse_matrix():
    size = 6
    matrix = [[(3 if (i + j) % 2 else 0) if i != j else 2 for j in range(size)]
              for i in range(size)]
    check_alltoallv(make_world(2, 3), alltoallv_pairwise, matrix)


def test_alltoallv_wrong_count_len():
    world = make_world(1, 2)

    def program(ctx):
        buf = ctx.alloc(8)
        yield from alltoallv_pairwise(ctx, buf.view(), [4], buf.view(), [4, 4])

    with pytest.raises(ValueError, match="counts"):
        world.run(program)


@pytest.mark.parametrize("count", [4, 64])
def test_exscan_linear(world, count):
    check_exscan(world, exscan_linear, count, op=SUM)


def test_exscan_max():
    check_exscan(make_world(5, 3), exscan_linear, 8, op=MAX)


@given(data=st.data(), nodes=st.integers(1, 4), ppn=st.integers(1, 4))
@settings(**PROP)
def test_gatherv_random_counts(data, nodes, ppn):
    size = nodes * ppn
    counts = data.draw(st.lists(st.integers(0, 40), min_size=size, max_size=size))
    if sum(counts) == 0:
        counts[0] = 1
    check_gatherv(make_world(nodes, ppn), gatherv_linear, counts)


@given(data=st.data(), nodes=st.integers(1, 4), ppn=st.integers(1, 4))
@settings(**PROP)
def test_allgatherv_random_counts(data, nodes, ppn):
    size = nodes * ppn
    counts = data.draw(st.lists(st.integers(0, 40), min_size=size, max_size=size))
    if sum(counts) == 0:
        counts[0] = 1
    check_allgatherv(make_world(nodes, ppn), allgatherv_ring, counts)


@given(data=st.data(), nodes=st.integers(1, 3), ppn=st.integers(1, 3))
@settings(**PROP)
def test_alltoallv_random_matrix(data, nodes, ppn):
    size = nodes * ppn
    matrix = data.draw(st.lists(
        st.lists(st.integers(0, 20), min_size=size, max_size=size),
        min_size=size, max_size=size))
    for i in range(size):
        matrix[i][i] = max(matrix[i][i], 0)
    check_alltoallv(make_world(nodes, ppn), alltoallv_pairwise, matrix)
