"""Shared fixtures for collective correctness tests."""

import pytest

from repro.machine import small_test
from repro.runtime import World

# (nodes, ppn) shapes covering: single node, power-of-two world,
# non-power-of-two world, ppn=1 (no intra-node), tall and wide.
WORLD_SHAPES = [(1, 4), (2, 2), (3, 2), (2, 3), (4, 1), (5, 3)]


def make_world(nodes, ppn, intra="posix_shmem"):
    return World(small_test(nodes=nodes, ppn=ppn), intra=intra)


@pytest.fixture(params=WORLD_SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def world(request):
    nodes, ppn = request.param
    return make_world(nodes, ppn)


@pytest.fixture(params=[(2, 2), (4, 1), (2, 4)], ids=lambda s: f"{s[0]}x{s[1]}")
def pow2_world(request):
    nodes, ppn = request.param
    return make_world(nodes, ppn)
