"""Tests pinning the library selection tables (tuning introspection)."""

import pytest

from repro.collectives.tuning import (
    compare_libraries,
    cutoffs,
    format_selection_tables,
    selection_table,
)
from repro.mpilibs import PAPER_LINEUP


def test_mpich_allgather_cliff_at_paper_scale():
    """The Bruck→ring switch at 2304 ranks falls between 128 B and
    256 B per process (512 KB total) — the cliff EXPERIMENTS.md
    discusses."""
    cuts = cutoffs("MPICH", "allgather", 2304, sizes=(16, 128, 256, 1024))
    assert cuts[0][1] == "allgather_bruck"
    names = [name for _size, name in cuts]
    assert "allgather_ring" in names
    ring_from = next(size for size, name in cuts if name == "allgather_ring")
    assert ring_from == 256


def test_mpich_allgather_rd_for_pow2():
    cuts = cutoffs("MPICH", "allgather", 2048, sizes=(16,))
    assert cuts[0][1] == "allgather_recursive_doubling"


def test_pip_mcoll_size_switch():
    cuts = cutoffs("PiP-MColl", "allgather", 2304,
                   sizes=(64, 8192, 16384))
    assert cuts[0][1] == "mcoll_allgather"
    assert cuts[-1][1] == "mcoll_allgather_large"


def test_selection_table_shape():
    table = selection_table("MPICH", "bcast", 96, sizes=(64, 65536))
    assert [row.nbytes for row in table] == [64, 65536]
    assert table[0].algorithm == "bcast_binomial"
    assert table[1].algorithm == "bcast_ring_pipeline"


def test_format_tables_mentions_every_collective():
    text = format_selection_tables("PiP-MColl", 2304)
    for coll in ("bcast", "allgather", "scatter", "barrier"):
        assert coll in text
    assert "mcoll_scatter" in text


def test_compare_libraries_keys():
    grid = compare_libraries("allgather", 2304, PAPER_LINEUP, sizes=(64,))
    assert set(grid) == set(PAPER_LINEUP)
    # Every baseline picks a *different function* than PiP-MColl.
    ours = grid["PiP-MColl"][0].algorithm
    assert all(grid[lib][0].algorithm != ours
               for lib in PAPER_LINEUP if lib != "PiP-MColl")


def test_selection_accepts_library_instance():
    from repro.mpilibs import make_library

    lib = make_library("MPICH")
    assert selection_table(lib, "barrier", 8, sizes=(0,))[0].algorithm == \
        "barrier_dissemination"
