"""Byte-exact correctness of rooted collectives (bcast/gather/scatter/reduce)."""

import pytest

from repro.runtime.ops import MAX, SUM
from repro.validate.checker import (
    check_bcast,
    check_gather,
    check_reduce,
    check_scatter,
)
from repro.collectives import (
    bcast_binomial,
    bcast_ring_pipeline,
    gather_binomial,
    gather_linear,
    reduce_binomial,
    scatter_binomial,
    scatter_linear,
)

from .conftest import make_world


@pytest.mark.parametrize("count", [1, 64, 1000])
def test_bcast_binomial(world, count):
    check_bcast(world, bcast_binomial, count)


@pytest.mark.parametrize("root", [1, 3])
def test_bcast_binomial_nonzero_root(root):
    check_bcast(make_world(2, 3), bcast_binomial, 128, root=root)


@pytest.mark.parametrize("segment", [64, 1000, 4096])
def test_bcast_ring_pipeline(world, segment):
    check_bcast(world, lambda ctx, v, root, comm: bcast_ring_pipeline(
        ctx, v, root, comm, segment=segment), 3000)


def test_bcast_ring_pipeline_nonzero_root():
    check_bcast(make_world(3, 2), bcast_ring_pipeline, 512, root=2)


def test_bcast_ring_bad_segment():
    with pytest.raises(ValueError):
        check_bcast(make_world(1, 2), lambda ctx, v, root, comm:
                    bcast_ring_pipeline(ctx, v, root, comm, segment=0), 64)


@pytest.mark.parametrize("count", [1, 64, 500])
def test_gather_binomial(world, count):
    check_gather(world, gather_binomial, count)


@pytest.mark.parametrize("root", [1, 4])
def test_gather_binomial_nonzero_root(root):
    check_gather(make_world(3, 2), gather_binomial, 64, root=root)


def test_gather_linear(world):
    check_gather(world, gather_linear, 64)


def test_gather_linear_nonzero_root():
    check_gather(make_world(2, 3), gather_linear, 64, root=5)


@pytest.mark.parametrize("count", [1, 64, 500])
def test_scatter_binomial(world, count):
    check_scatter(world, scatter_binomial, count)


@pytest.mark.parametrize("root", [1, 5])
def test_scatter_binomial_nonzero_root(root):
    check_scatter(make_world(3, 2), scatter_binomial, 64, root=root)


def test_scatter_linear(world):
    check_scatter(world, scatter_linear, 64)


@pytest.mark.parametrize("count", [8, 256])
def test_reduce_binomial_sum(world, count):
    check_reduce(world, reduce_binomial, count, op=SUM)


def test_reduce_binomial_max():
    check_reduce(make_world(3, 2), reduce_binomial, 32, op=MAX)


def test_reduce_binomial_nonzero_root():
    check_reduce(make_world(2, 3), reduce_binomial, 16, root=4)


def test_gather_root_missing_recvbuf_raises():
    world = make_world(1, 2)

    def program(ctx):
        buf = ctx.alloc(8)
        yield from gather_binomial(ctx, buf.view(), None, root=0)

    with pytest.raises(ValueError, match="needs a receive buffer"):
        world.run(program)


def test_scatter_wrong_sendbuf_size_raises():
    world = make_world(1, 2)

    def program(ctx):
        recv = ctx.alloc(8)
        send = ctx.alloc(8)  # should be 16 for 2 ranks
        yield from scatter_binomial(
            ctx, send.view() if ctx.rank == 0 else None, recv.view(), root=0)

    with pytest.raises(ValueError, match="expected 2"):
        world.run(program)


def test_single_rank_world_rooted_collectives():
    world = make_world(1, 1)
    check_bcast(world, bcast_binomial, 64)
    check_gather(world, gather_binomial, 64)
    check_scatter(world, scatter_binomial, 64)
    check_reduce(world, reduce_binomial, 64)
