"""Byte-exact correctness of unrooted collectives."""

import pytest

from repro.collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scan_linear,
    scan_recursive_doubling,
)
from repro.runtime.ops import MAX, SUM
from repro.validate.checker import (
    check_allgather,
    check_allreduce,
    check_alltoall,
    check_barrier,
    check_reduce_scatter,
    check_scan,
)

from .conftest import make_world


@pytest.mark.parametrize("count", [1, 16, 300])
def test_allgather_bruck(world, count):
    check_allgather(world, allgather_bruck, count)


@pytest.mark.parametrize("count", [16, 300])
def test_allgather_recursive_doubling(pow2_world, count):
    check_allgather(pow2_world, allgather_recursive_doubling, count)


def test_allgather_recursive_doubling_rejects_non_pow2():
    with pytest.raises(ValueError, match="power-of-two"):
        check_allgather(make_world(3, 2), allgather_recursive_doubling, 16)


@pytest.mark.parametrize("count", [16, 300])
def test_allgather_ring(world, count):
    check_allgather(world, allgather_ring, count)


@pytest.mark.parametrize("count", [8, 256])
def test_allreduce_recursive_doubling(world, count):
    check_allreduce(world, allreduce_recursive_doubling, count, op=SUM)


def test_allreduce_recursive_doubling_max():
    check_allreduce(make_world(5, 3), allreduce_recursive_doubling, 32, op=MAX)


@pytest.mark.parametrize("count", [16, 64])
def test_allreduce_rabenseifner(pow2_world, count):
    check_allreduce(pow2_world, allreduce_rabenseifner, count, op=SUM)


def test_allreduce_rabenseifner_rejects_non_pow2():
    with pytest.raises(ValueError, match="power-of-two"):
        check_allreduce(make_world(3, 2), allreduce_rabenseifner, 16)


def test_allreduce_rabenseifner_rejects_indivisible():
    with pytest.raises(ValueError, match="divisible"):
        check_allreduce(make_world(2, 4), allreduce_rabenseifner, 3)


@pytest.mark.parametrize("count", [1, 8, 100])
def test_alltoall_pairwise(world, count):
    check_alltoall(world, alltoall_pairwise, count)


@pytest.mark.parametrize("count", [1, 8, 100])
def test_alltoall_bruck(world, count):
    check_alltoall(world, alltoall_bruck, count)


@pytest.mark.parametrize("count", [4, 64])
def test_reduce_scatter_recursive_halving(pow2_world, count):
    check_reduce_scatter(pow2_world, reduce_scatter_recursive_halving, count, op=SUM)


def test_reduce_scatter_recursive_halving_rejects_non_pow2():
    with pytest.raises(ValueError, match="power-of-two"):
        check_reduce_scatter(make_world(3, 2), reduce_scatter_recursive_halving, 4)


@pytest.mark.parametrize("count", [4, 64])
def test_reduce_scatter_fallback_any_size(world, count):
    check_reduce_scatter(world, reduce_scatter_reduce_then_scatter, count, op=SUM)


@pytest.mark.parametrize("count", [8, 128])
def test_scan_linear(world, count):
    check_scan(world, scan_linear, count, op=SUM)


@pytest.mark.parametrize("count", [8, 128])
def test_scan_recursive_doubling(world, count):
    check_scan(world, scan_recursive_doubling, count, op=SUM)


def test_scan_recursive_doubling_max():
    check_scan(make_world(5, 3), scan_recursive_doubling, 16, op=MAX)


def test_barrier_dissemination(world):
    check_barrier(world, barrier_dissemination)


def test_barrier_single_rank():
    check_barrier(make_world(1, 1), barrier_dissemination)


def test_allgather_on_subcommunicator():
    """Collectives must work on node/leader communicators too."""
    world = make_world(3, 2)

    def program(ctx):
        import numpy as np

        from repro.runtime import ArrayBuffer
        from repro.validate.checker import pattern

        comm = ctx.node_comm
        cr = comm.to_comm(ctx.rank)
        send = ArrayBuffer.from_array(pattern(ctx.rank, 32))
        recv = ArrayBuffer.zeros(32 * comm.size)
        yield from allgather_bruck(ctx, send.view(), recv.view(), comm=comm)
        want = np.concatenate([pattern(w, 32) for w in comm.world_ranks])
        assert np.array_equal(recv.read_bytes(0, recv.nbytes), want), f"rank {ctx.rank}"
        return cr

    world.run(program)
    world.assert_quiescent()


def test_back_to_back_collectives_do_not_cross_match():
    """Tag spaces keep two successive collectives separate."""
    world = make_world(2, 2)
    check_allgather(world, allgather_bruck, 16)
    check_allreduce(world, allreduce_recursive_doubling, 16)
    check_alltoall(world, alltoall_bruck, 16)
    check_barrier(world, barrier_dissemination)
