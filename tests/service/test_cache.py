"""ResultCache: round-trips, atomicity, and corruption detection.

Damage of every kind — truncation, bit flips, entry-for-another-key,
schema/layout bumps, hand-edited records — must read as a miss (and be
counted and unlinked), never as data.  Hypothesis drives the
truncation/flip offsets over a real serialized entry.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import bench_collective
from repro.bench.record import SCHEMA_VERSION
from repro.machine import small_test
from repro.service import (
    CACHE_LAYOUT_VERSION,
    ResultCache,
    as_cache,
    cell_key,
    point_from_record,
    record_digest,
)

PARAMS = small_test()


@pytest.fixture(scope="module")
def point():
    return bench_collective("MPICH", "allgather", 64, PARAMS,
                            warmup=1, iters=2)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


KEY = cell_key("MPICH", "allgather", 64, PARAMS, warmup=1, iters=2)


# -- round-trip ---------------------------------------------------------

def test_round_trip_is_byte_identical(cache, point):
    cache.put_point(KEY, point)
    got = cache.get(KEY)
    want = point.to_record().as_dict()
    assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True)
    rebuilt = point_from_record(got)
    assert (json.dumps(rebuilt.to_record(run="x").as_dict(), sort_keys=True)
            == json.dumps(point.to_record(run="x").as_dict(), sort_keys=True))


def test_layout_path_and_maintenance(cache, point):
    path = cache.put(KEY, point.to_record().as_dict())
    assert path == (cache.root / f"v{CACHE_LAYOUT_VERSION}"
                    / KEY[:2] / f"{KEY}.json")
    assert list(cache.keys()) == [KEY]
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(KEY) is None


def test_miss_on_empty_cache(cache):
    assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_rejects_invalid_records(cache, point):
    record = point.to_record().as_dict()
    record["latency_us"] = "not-a-number"
    with pytest.raises((TypeError, ValueError)):
        cache.put(KEY, record)
    assert cache.get(KEY) is None


def test_no_tmp_litter_after_put(cache, point):
    cache.put_point(KEY, point)
    leftovers = [p for p in cache.path_for(KEY).parent.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_as_cache_coercions(tmp_path, cache):
    assert as_cache(None) is None
    assert as_cache(cache) is cache
    made = as_cache(tmp_path / "elsewhere")
    assert isinstance(made, ResultCache)


# -- corruption detection ----------------------------------------------

def _entry_text(cache, point):
    path = cache.put(KEY, point.to_record().as_dict())
    return path, path.read_text()


def test_truncated_entry_is_a_counted_miss(cache, point):
    path, text = _entry_text(cache, point)
    path.write_text(text[: len(text) // 2])
    assert cache.get(KEY) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()  # bad entries are dropped


@settings(max_examples=30, deadline=None, derandomize=True)
@given(frac=st.floats(0.01, 0.99))
def test_any_truncation_point_is_a_miss(tmp_path_factory, point, frac):
    cache = ResultCache(tmp_path_factory.mktemp("trunc"))
    path, text = _entry_text(cache, point)
    cut = max(1, int(len(text) * frac))
    path.write_text(text[:cut])
    assert cache.get(KEY) is None
    assert cache.stats.hits == 0


@settings(max_examples=30, deadline=None, derandomize=True)
@given(pos=st.integers(0, 10_000), delta=st.integers(1, 255))
def test_any_single_byte_flip_is_a_miss_or_equal(tmp_path_factory, point,
                                                 pos, delta):
    cache = ResultCache(tmp_path_factory.mktemp("flip"))
    path, text = _entry_text(cache, point)
    raw = bytearray(text.encode())
    pos %= len(raw)
    raw[pos] = (raw[pos] + delta) % 256
    path.write_bytes(bytes(raw))
    got = cache.get(KEY)
    # Flips in JSON *whitespace/indentation* can leave the decoded
    # entry semantically identical; anything content-bearing must miss.
    if got is not None:
        assert got == point.to_record().as_dict()
    else:
        assert cache.stats.corrupt == 1


def test_entry_for_another_key_is_corrupt(cache, point):
    path, text = _entry_text(cache, point)
    other = cell_key("MPICH", "allgather", 4096, PARAMS)
    target = cache.path_for(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)  # embedded key says KEY, file says `other`
    assert cache.get(other) is None
    assert cache.stats.corrupt == 1


def test_hand_edited_record_fails_the_digest(cache, point):
    path, text = _entry_text(cache, point)
    entry = json.loads(text)
    entry["record"]["latency_us"] += 1.0  # digest now disagrees
    path.write_text(json.dumps(entry, indent=2))
    assert cache.get(KEY) is None
    assert cache.stats.corrupt == 1


def test_future_record_schema_is_stale_not_corrupt(cache, point):
    path, text = _entry_text(cache, point)
    entry = json.loads(text)
    entry["record"]["schema"] = SCHEMA_VERSION + 1
    entry["sha256"] = record_digest(entry["record"])
    path.write_text(json.dumps(entry))
    assert cache.get(KEY) is None
    assert cache.stats.stale == 1
    assert cache.stats.corrupt == 0


def test_future_layout_version_is_stale(cache, point):
    path, text = _entry_text(cache, point)
    entry = json.loads(text)
    entry["layout"] = 999
    path.write_text(json.dumps(entry))
    assert cache.get(KEY) is None
    assert cache.stats.stale == 1


def test_recompute_after_corruption_heals_the_entry(cache, point):
    path, text = _entry_text(cache, point)
    path.write_text("garbage")
    assert cache.get(KEY) is None
    cache.put_point(KEY, point)  # the recompute's write-back
    assert cache.get(KEY) == point.to_record().as_dict()


def test_stats_describe_mentions_damage(cache, point):
    path, _ = _entry_text(cache, point)
    path.write_text("{")
    cache.get(KEY)
    text = cache.stats.describe()
    assert "corrupt" in text and "1 miss" in text
