"""The service front ends: JSONL serve loop and the CLI surface.

``serve`` is exercised in-process over StringIO streams (the
transport-agnostic design exists exactly so tests need no sockets or
subprocesses); the ``sweep --cache`` / ``serve`` commands go through
``repro.cli.main``.
"""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.service import RESPONSE_SCHEMA, ResultCache, parse_request, serve
from repro.service.server import RequestError


def _serve_lines(lines, cache=None, workers=1):
    out = io.StringIO()
    rc = serve(io.StringIO("\n".join(lines) + "\n"), out,
               cache=cache, workers=workers)
    return rc, [json.loads(l) for l in out.getvalue().splitlines()]


REQ = {"id": "r1", "collective": "allgather", "sizes": [16, 64],
       "libraries": ["MPICH", "PiP-MColl"], "preset": "small_test",
       "nodes": 2, "ppn": 2}


# -- request validation -------------------------------------------------

def test_parse_request_defaults():
    req = parse_request({"collective": "allgather", "sizes": [16]})
    assert req["preset"] == "broadwell_opa"
    assert (req["nodes"], req["ppn"]) == (16, 6)
    assert len(req["libraries"]) == 6  # the paper lineup


@pytest.mark.parametrize("bad", [
    [],                                           # not an object
    {"sizes": [16]},                              # missing collective
    {"collective": "allgather"},                  # missing sizes
    {"collective": "allgather", "sizes": []},     # empty sizes
    {"collective": "allgather", "sizes": [-1]},   # negative size
    {"collective": "allgather", "sizes": [True]},  # bool is not a size
    {"collective": "nope", "sizes": [16]},        # unknown collective
    {"collective": "allgather", "sizes": [16], "preset": "nope"},
    {"collective": "allgather", "sizes": [16], "surprise": 1},
])
def test_parse_request_rejects(bad):
    with pytest.raises(RequestError):
        parse_request(bad)


# -- serve loop ---------------------------------------------------------

def test_serve_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    rc, responses = _serve_lines([json.dumps(REQ)], cache=cache)
    assert rc == 0
    (resp,) = responses
    assert resp["ok"] is True
    assert resp["id"] == "r1"
    assert resp["schema"] == RESPONSE_SCHEMA
    assert len(resp["records"]) == 4  # 2 libraries x 2 sizes
    assert all(r["schema"] == 1 for r in resp["records"])
    assert resp["cache"]["writes"] == 4


def test_serve_warm_second_request_hits(tmp_path):
    cache = ResultCache(tmp_path / "c")
    _, first = _serve_lines([json.dumps(REQ)], cache=cache)
    cache = ResultCache(tmp_path / "c")  # fresh stats
    _, second = _serve_lines([json.dumps(REQ)], cache=cache)
    assert second[0]["cache"]["hits"] == 4
    assert second[0]["cache"]["writes"] == 0
    assert second[0]["records"] == first[0]["records"]


def test_serve_bad_lines_are_data_not_crashes(tmp_path):
    rc, responses = _serve_lines([
        "this is not json",
        json.dumps({"id": 7, "collective": "nope", "sizes": [16]}),
        json.dumps(REQ),
        "",  # blank lines are skipped
    ], cache=ResultCache(tmp_path / "c"))
    assert rc == 1  # some requests failed...
    assert [r["ok"] for r in responses] == [False, False, True]
    assert "bad JSON" in responses[0]["error"]
    assert responses[1]["id"] == 7
    assert "collective" in responses[1]["error"]


def test_serve_without_cache_still_serves():
    rc, responses = _serve_lines([json.dumps(REQ)])
    assert rc == 0
    assert responses[0]["ok"] is True
    assert "cache" not in responses[0]


# -- CLI ----------------------------------------------------------------

def test_parser_accepts_service_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(["sweep", "--cache", str(tmp_path),
                              "--workers", "3", "--progress"])
    assert args.cache == str(tmp_path) and args.workers == 3
    args = parser.parse_args(["serve", "--cache", str(tmp_path)])
    assert args.requests == "-"
    args = parser.parse_args(["tune", "search", "--cache", str(tmp_path)])
    assert args.cache == str(tmp_path)


def test_cli_sweep_cache_cold_then_warm(tmp_path, capsys):
    argv = ["sweep", "--collective", "allgather", "--sizes", "16,64",
            "--libraries", "MPICH,PiP-MColl", "--preset", "small_test",
            "--nodes", "2", "--ppn", "2", "--cache", str(tmp_path / "c")]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "4 misses" in cold and "4 writes" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "4 hits" in warm and "0 misses" in warm
    # the latency table itself is identical either way
    table = lambda out: [l for l in out.splitlines() if " B " in l]
    assert table(cold) == table(warm)


def test_cli_serve_from_request_file(tmp_path, capsys):
    reqfile = tmp_path / "requests.jsonl"
    reqfile.write_text(json.dumps(REQ) + "\n")
    rc = main(["serve", "--cache", str(tmp_path / "c"),
               "--requests", str(reqfile)])
    assert rc == 0
    out = capsys.readouterr().out
    resp = json.loads(out.splitlines()[-1])
    assert resp["ok"] is True and len(resp["records"]) == 4


def test_serve_events_interleaves_progress(tmp_path):
    out = io.StringIO()
    cache = ResultCache(tmp_path / "c")
    rc = serve(io.StringIO(json.dumps(REQ) + "\n"), out,
               cache=cache, events=True)
    assert rc == 0
    lines = [json.loads(l) for l in out.getvalue().splitlines()]
    # All progress lines stream BEFORE the response they belong to,
    # each stamped with the request id so clients can demux.
    progress, responses = lines[:-1], lines[-1:]
    assert all(l["event"] == "progress" for l in progress)
    assert all(l["id"] == "r1" for l in progress)
    assert {l["phase"] for l in progress} == {"miss", "start", "done"}
    assert sum(l["phase"] == "done" for l in progress) == 4
    assert responses[0]["event"] == "response"
    assert responses[0]["ok"] is True and responses[0]["id"] == "r1"


def test_serve_without_events_is_responses_only(tmp_path):
    rc, responses = _serve_lines([json.dumps(REQ)],
                                 cache=ResultCache(tmp_path / "c"))
    assert rc == 0
    assert len(responses) == 1            # no progress lines by default
    assert "event" not in responses[0]    # response schema unchanged
