"""Differential contract: the cache path IS the direct path, in bytes.

A pinned matrix (paper-lineup subset × Fig.2-style sizes) runs through
``run_sweep`` three ways — direct, cold-cache, warm-cache — plus a
mixed run where half the grid is pre-warmed and half is cold, on both
the calendar and sharded engines.  Every BenchRecord must be
byte-identical to the direct run's; a cache that changes a single bit
of a result is worse than no cache.
"""

import json

import pytest

from repro.bench import run_sweep
from repro.machine import small_test
from repro.service import ResultCache, SweepJobQueue, SweepRequest

PARAMS = small_test()

#: pinned differential matrix — changing it invalidates recorded
#: expectations, so keep it boring and small
LIBRARIES = ["MPICH", "OpenMPI", "PiP-MColl"]
SIZES = [16, 64, 256]
COLLECTIVE = "allgather"

ENGINES = [None, "sharded:2"]


def _records(sweep):
    return {
        key: json.dumps(point.to_record().as_dict(), sort_keys=True)
        for key, point in sweep.points.items()
    }


def _direct(engine):
    return _records(run_sweep(COLLECTIVE, SIZES, PARAMS,
                              libraries=LIBRARIES, engine=engine))


@pytest.mark.parametrize("engine", ENGINES,
                         ids=["calendar", "sharded"])
def test_cold_then_warm_match_direct(tmp_path, engine):
    want = _direct(engine)
    cache = ResultCache(tmp_path / "c")

    cold = run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=LIBRARIES,
                     engine=engine, cache=cache)
    assert _records(cold) == want
    assert cache.stats.hits == 0
    assert cache.stats.writes == len(want)

    warm = run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=LIBRARIES,
                     engine=engine, cache=cache)
    assert _records(warm) == want
    assert cache.stats.hits == len(want)
    assert cache.stats.writes == len(want)  # nothing rewritten


@pytest.mark.parametrize("engine", ENGINES,
                         ids=["calendar", "sharded"])
def test_mixed_cold_warm_concurrent_matches_direct(tmp_path, engine):
    want = _direct(engine)
    cache = ResultCache(tmp_path / "c")
    # Pre-warm half the grid (one library's row) ...
    SweepJobQueue(cache=cache).run([
        SweepRequest(library=LIBRARIES[0], collective=COLLECTIVE,
                     nbytes=n, params=PARAMS, engine=engine)
        for n in SIZES
    ])
    warmed = cache.stats.writes
    # ... then sweep the full grid with forked workers: hits and
    # misses interleave and the cold cells execute concurrently.
    mixed = run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=LIBRARIES,
                      engine=engine, cache=cache, workers=2)
    assert _records(mixed) == want
    assert cache.stats.hits == warmed
    assert cache.stats.writes == len(want)


def test_engines_never_share_entries(tmp_path):
    cache = ResultCache(tmp_path / "c")
    run_sweep(COLLECTIVE, [64], PARAMS, libraries=["MPICH"],
              engine=None, cache=cache)
    run_sweep(COLLECTIVE, [64], PARAMS, libraries=["MPICH"],
              engine="sharded:2", cache=cache)
    # byte-identical results, but separate entries: a cached calendar
    # record must never mask a sharded-engine regression
    assert len(cache) == 2


def test_tuned_library_round_trips_through_the_cache(tmp_path):
    from pathlib import Path

    db = (Path(__file__).parent.parent / "tuner" / "fixtures" /
          "small_test_allgather.tunedb.json")
    spec = f"tuned:{db}"
    want = _records(run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=[spec]))
    cache = ResultCache(tmp_path / "c")
    run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=[spec], cache=cache)
    warm = run_sweep(COLLECTIVE, SIZES, PARAMS, libraries=[spec],
                     cache=cache)
    assert _records(warm) == want
    assert cache.stats.hits == len(SIZES)
