"""Cache-key canonicalisation properties (service.keys).

The content address must be *injective* over everything that changes a
result and *stable* over everything that doesn't: spec aliases, engine
spellings, dict key order, and the machine's display name.  Hypothesis
drives both directions over the real key derivation — no mocked
hashes.
"""

import dataclasses
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import small_test
from repro.mpilibs import COLLECTIVES, make_library
from repro.mpilibs.base import MpiLibrary
from repro.service import (
    CacheKeyError,
    cell_key,
    engine_fingerprint,
    key_payload,
    library_fingerprint,
    machine_fingerprint,
)

PARAMS = small_test()

FIXTURE_DB = (Path(__file__).parent.parent / "tuner" / "fixtures" /
              "small_test_allgather.tunedb.json")

#: the result-determining call-shape dimensions one cell key covers
TUPLES = st.tuples(
    st.sampled_from(["MPICH", "PiP-MColl", "OpenMPI"]),   # library
    st.sampled_from(sorted(COLLECTIVES)),                  # collective
    st.sampled_from([0, 16, 64, 4096]),                    # nbytes
    st.integers(0, 2),                                     # warmup
    st.integers(1, 3),                                     # iters
    st.booleans(),                                         # functional
    st.integers(0, 3),                                     # root
    st.sampled_from(["calendar", "sharded", "analytic"]),  # engine
    st.booleans(),                                         # resources
)


def _key(t, params=PARAMS):
    lib, coll, nbytes, warmup, iters, functional, root, engine, res = t
    return cell_key(lib, coll, nbytes, params, warmup=warmup, iters=iters,
                    functional=functional, root=root, engine=engine,
                    resources=res)


# -- injectivity --------------------------------------------------------

@settings(max_examples=50, deadline=None, derandomize=True)
@given(st.lists(TUPLES, min_size=2, max_size=8, unique=True))
def test_distinct_tuples_get_distinct_keys(tuples):
    keys = [_key(t) for t in tuples]
    assert len(set(keys)) == len(tuples)


def test_geometry_is_part_of_the_address():
    assert _key(("MPICH", "allgather", 64, 1, 3, False, 0, "calendar", False),
                params=small_test(nodes=2, ppn=2)) != \
           _key(("MPICH", "allgather", 64, 1, 3, False, 0, "calendar", False),
                params=small_test(nodes=4, ppn=2))


def test_cost_model_is_part_of_the_address():
    bumped = dataclasses.replace(
        PARAMS, nic=dataclasses.replace(PARAMS.nic,
                                        eager_limit=PARAMS.nic.eager_limit + 1))
    t = ("MPICH", "allgather", 64, 1, 3, False, 0, "calendar", False)
    assert _key(t) != _key(t, params=bumped)


# -- stability ----------------------------------------------------------

@settings(max_examples=50, deadline=None, derandomize=True)
@given(TUPLES)
def test_key_is_deterministic(t):
    assert _key(t) == _key(t)


def test_library_spec_aliases_collapse():
    for name in ("MPICH", "PiP-MColl"):
        assert (cell_key(name, "allgather", 64, PARAMS)
                == cell_key(make_library(name), "allgather", 64, PARAMS))


def test_tuned_spec_aliases_collapse_and_db_content_matters():
    spec = f"tuned:{FIXTURE_DB}"
    assert (cell_key(spec, "allgather", 64, PARAMS)
            == cell_key(make_library(spec), "allgather", 64, PARAMS))
    # ...and the tuned fingerprint is the DB content, not the base name
    fp = library_fingerprint(spec)
    assert "tunedb" in fp
    assert fp != library_fingerprint(make_library(spec).base)


def test_engine_aliases_collapse():
    base = cell_key("MPICH", "allgather", 64, PARAMS, engine=None)
    assert cell_key("MPICH", "allgather", 64, PARAMS,
                    engine="calendar") == base
    sharded = {cell_key("MPICH", "allgather", 64, PARAMS, engine=e)
               for e in ("sharded", "sharded:2", "sharded:4x2", "sharded:8")}
    assert len(sharded) == 1
    assert base not in sharded  # entries stay engine-segregated


def test_machine_display_name_never_matters():
    renamed = dataclasses.replace(PARAMS, name="totally-different-box")
    t = ("MPICH", "allgather", 64, 1, 3, False, 0, "calendar", False)
    assert _key(t) == _key(t, params=renamed)
    assert machine_fingerprint(PARAMS) == machine_fingerprint(renamed)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(st.permutations([("zeta", 1), ("alpha", 2), ("mid", [3, "x"])]))
def test_extra_dict_key_order_never_matters(items):
    key = cell_key("MPICH", "allgather", 64, PARAMS, extra=dict(items))
    assert key == cell_key("MPICH", "allgather", 64, PARAMS,
                           extra={"zeta": 1, "alpha": 2, "mid": [3, "x"]})


# -- refusal ------------------------------------------------------------

class _AdHoc(MpiLibrary):
    def __init__(self):
        self.profile = make_library("MPICH").profile

    def algorithm(self, collective, nbytes, world_size):  # pragma: no cover
        raise NotImplementedError

    def subcomm_algorithm(self, collective, nbytes, comm_size):  # pragma: no cover
        raise NotImplementedError


def test_unaddressable_library_raises():
    with pytest.raises(CacheKeyError):
        library_fingerprint(_AdHoc())
    with pytest.raises(CacheKeyError):
        cell_key(_AdHoc(), "allgather", 64, PARAMS)


def test_library_id_override_rescues_unaddressable():
    key = cell_key(_AdHoc(), "allgather", 64, PARAMS,
                   library_id={"name": "adhoc", "v": 1})
    assert key != cell_key("MPICH", "allgather", 64, PARAMS)


def test_unknown_engine_raises():
    with pytest.raises(CacheKeyError):
        engine_fingerprint("warpdrive")


def test_payload_shape_is_documented():
    payload = key_payload("MPICH", "allgather", 64, PARAMS)
    assert payload["schema"] == 1
    assert payload["library"] == {"name": "MPICH"}
    assert payload["engine"] == "calendar"
    assert set(payload["machine"]) == {"cost", "nodes", "ppn"}
