"""SweepJobQueue: dedup window, batching, events, failure modes.

Simulation counting works by monkeypatching
``repro.bench.harness.bench_collective`` — the queue looks the symbol
up late precisely so tests can observe every real measurement.
"""

import json

import pytest

import repro.bench.harness as harness
from repro.machine import small_test
from repro.mpilibs import make_library
from repro.mpilibs.base import MpiLibrary
from repro.service import (
    CacheKeyError,
    ResultCache,
    SweepJobQueue,
    SweepRequest,
    cached_bench_collective,
)

PARAMS = small_test()


def _req(nbytes=64, library="MPICH", **kw):
    return SweepRequest(library=library, collective="allgather",
                        nbytes=nbytes, params=PARAMS, **kw)


def _counting(monkeypatch):
    """Count pass-through calls to the real bench_collective."""
    calls = []
    real = harness.bench_collective

    def spy(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(harness, "bench_collective", spy)
    return calls


# -- dedup + caching ----------------------------------------------------

def test_duplicates_simulate_once_and_share_the_point(monkeypatch, tmp_path):
    calls = _counting(monkeypatch)
    queue = SweepJobQueue(cache=tmp_path / "c")
    points = queue.run([_req(64), _req(16), _req(64), _req(64)])
    assert len(calls) == 2
    assert queue.stats.deduped == 2
    assert queue.stats.computed == 2
    assert points[0].latency_us == points[2].latency_us == points[3].latency_us
    assert len(points) == 4


def test_warm_run_is_all_hits(monkeypatch, tmp_path):
    cache = ResultCache(tmp_path / "c")
    SweepJobQueue(cache=cache).run([_req(16), _req(64)])
    calls = _counting(monkeypatch)
    queue = SweepJobQueue(cache=cache)
    points = queue.run([_req(16), _req(64)])
    assert calls == []
    assert queue.stats.hits == 2
    assert [p.nbytes for p in points] == [16, 64]


def test_dedup_without_cache_still_works(monkeypatch):
    calls = _counting(monkeypatch)
    queue = SweepJobQueue(cache=None)
    queue.run([_req(64), _req(64), _req(64)])
    assert len(calls) == 1
    assert queue.stats.deduped == 2


def test_forked_workers_match_inline_byte_for_byte(tmp_path):
    reqs = [_req(n, library=lib)
            for lib in ("MPICH", "PiP-MColl") for n in (16, 64, 256)]
    inline = SweepJobQueue(cache=None, workers=1).run(reqs)
    forked = SweepJobQueue(cache=None, workers=3).run(reqs)
    for a, b in zip(inline, forked):
        assert (json.dumps(a.to_record().as_dict(), sort_keys=True)
                == json.dumps(b.to_record().as_dict(), sort_keys=True))


def test_forked_workers_fill_the_cache(tmp_path):
    cache = ResultCache(tmp_path / "c")
    queue = SweepJobQueue(cache=cache, workers=2)
    queue.run([_req(16), _req(64), _req(256)])
    assert cache.stats.writes == 3
    assert len(cache) == 3


# -- uncacheable cells --------------------------------------------------

class _AdHoc(MpiLibrary):
    def __init__(self):
        base = make_library("MPICH")
        self.profile = base.profile
        self._base = base

    def algorithm(self, collective, nbytes, world_size):
        return self._base.algorithm(collective, nbytes, world_size)

    def subcomm_algorithm(self, collective, nbytes, comm_size):
        return self._base.subcomm_algorithm(collective, nbytes, comm_size)


def test_uncacheable_cells_run_but_never_cache_or_dedup(monkeypatch, tmp_path):
    calls = _counting(monkeypatch)
    cache = ResultCache(tmp_path / "c")
    queue = SweepJobQueue(cache=cache)
    reqs = [_req(64, library=_AdHoc()), _req(64, library=_AdHoc())]
    points = queue.run(reqs)
    assert len(calls) == 2  # identical cells, but nothing sound to dedup on
    assert queue.stats.deduped == 0
    assert len(cache) == 0
    assert all(p.latency_us > 0 for p in points)


# -- events -------------------------------------------------------------

def test_event_stream_phases_and_order(tmp_path):
    cache = ResultCache(tmp_path / "c")
    SweepJobQueue(cache=cache).run([_req(16)])
    events = []
    queue = SweepJobQueue(cache=cache, on_event=events.append)
    queue.run([_req(16), _req(64), _req(64)])
    phases = [e["phase"] for e in events]
    assert phases == ["hit", "miss", "dedup", "start", "done"]
    assert all(e["total"] == 3 for e in events)
    assert all("allgather" in e["cell"] for e in events)
    miss = next(e for e in events if e["phase"] == "miss")
    assert miss["key"] is not None


# -- failure propagation ------------------------------------------------

class _Exploding(_AdHoc):
    def algorithm(self, collective, nbytes, world_size):
        raise RuntimeError("boom at algorithm-selection time")


def test_worker_failure_surfaces_with_the_cell_label():
    queue = SweepJobQueue(cache=None, workers=2)
    reqs = [_req(16), _req(64, library=_Exploding()), _req(256)]
    with pytest.raises(RuntimeError, match="sweep worker failed"):
        queue.run(reqs)


def test_inline_failure_propagates_too():
    queue = SweepJobQueue(cache=None)
    with pytest.raises(RuntimeError, match="boom"):
        queue.run([_req(64, library=_Exploding())])


def test_failed_cells_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path / "c")
    queue = SweepJobQueue(cache=cache)
    with pytest.raises(RuntimeError):
        queue.run([_req(64, library=_Exploding())])
    assert len(cache) == 0


# -- cached_bench_collective / harness integration ----------------------

def test_cached_bench_collective_round_trip(monkeypatch, tmp_path):
    calls = _counting(monkeypatch)
    cold = cached_bench_collective("MPICH", "allgather", 64, PARAMS,
                                   cache=tmp_path / "c")
    warm = cached_bench_collective("MPICH", "allgather", 64, PARAMS,
                                   cache=tmp_path / "c")
    assert len(calls) == 1
    assert (json.dumps(cold.to_record().as_dict(), sort_keys=True)
            == json.dumps(warm.to_record().as_dict(), sort_keys=True))


def test_cached_bench_collective_refuses_unaddressable(tmp_path):
    with pytest.raises(CacheKeyError):
        cached_bench_collective(_AdHoc(), "allgather", 64, PARAMS,
                                cache=tmp_path / "c")


def test_harness_falls_back_for_unaddressable(monkeypatch, tmp_path):
    # bench_collective(cache=...) must measure ad-hoc libraries
    # directly instead of refusing.
    point = harness.bench_collective(_AdHoc(), "allgather", 64, PARAMS,
                                     cache=tmp_path / "c")
    assert point.latency_us > 0
    assert len(ResultCache(tmp_path / "c")) == 0


def test_harness_cache_kwarg_hits_on_second_call(monkeypatch, tmp_path):
    a = harness.bench_collective("MPICH", "allgather", 64, PARAMS,
                                 cache=tmp_path / "c")
    cache = ResultCache(tmp_path / "c")
    b = harness.bench_collective("MPICH", "allgather", 64, PARAMS,
                                 cache=cache)
    assert cache.stats.hits == 1
    assert (json.dumps(a.to_record().as_dict(), sort_keys=True)
            == json.dumps(b.to_record().as_dict(), sort_keys=True))
