"""Concurrency stress: N processes hammer one cache directory.

Four fork-context processes release from a barrier simultaneously and
each runs the same sweep grid against one shared ``ResultCache``.
Races across *processes* are benign by design (the simulator is
deterministic, so concurrent writers of a key write the same bytes,
and ``os.replace`` keeps every read old-or-new, never torn) — but
within each process the dedup window must hold, every process must
come home with the complete, byte-identical result set, and the cache
must end up fully intact.

Follows the A12 convention for under-provisioned runners: below
``GATE_CORES`` cores the stress gate skips (with the reason recorded
in the skip message) instead of pretending single-core interleaving
stresses anything.
"""

import json
import multiprocessing
import os

import pytest

from repro.machine import small_test
from repro.service import ResultCache, SweepJobQueue, SweepRequest

PARAMS = small_test()

#: processes hammering the shared cache directory
HAMMERS = 4
#: the A12 bar: below this many cores, concurrency is theatre
GATE_CORES = 4

LIBRARIES = ["MPICH", "PiP-MColl"]
SIZES = [16, 64, 256]

needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < GATE_CORES,
    reason=f"stress gate needs >= {GATE_CORES} cores to run "
           f"{HAMMERS} hammer processes side by side (A12 convention)",
)


def _grid():
    return [SweepRequest(library=lib, collective="allgather", nbytes=n,
                         params=PARAMS)
            for lib in LIBRARIES for n in SIZES]


def _hammer(cache_dir, barrier, out, idx):
    barrier.wait()  # maximise overlap: everyone starts together
    queue = SweepJobQueue(cache=cache_dir)
    points = queue.run(_grid())
    out.put((idx, queue.stats.computed_keys,
             [json.dumps(p.to_record().as_dict(), sort_keys=True)
              for p in points]))


@needs_cores
def test_hammering_one_cache_dir(tmp_path):
    ctx = multiprocessing.get_context("fork")
    cache_dir = tmp_path / "shared"
    barrier = ctx.Barrier(HAMMERS)
    out = ctx.Queue()
    procs = [ctx.Process(target=_hammer,
                         args=(cache_dir, barrier, out, i))
             for i in range(HAMMERS)]
    for p in procs:
        p.start()
    results = {}
    for _ in range(HAMMERS):
        idx, computed_keys, records = out.get(timeout=120)
        results[idx] = (computed_keys, records)
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0

    grid = _grid()
    # -- complete, byte-identical result sets --------------------------
    assert set(results) == set(range(HAMMERS))
    reference = results[0][1]
    assert len(reference) == len(grid)
    for idx in range(1, HAMMERS):
        assert results[idx][1] == reference

    # -- dedup window held inside every process ------------------------
    for computed_keys, _ in results.values():
        assert None not in computed_keys  # every cell was addressable
        assert len(computed_keys) == len(set(computed_keys))
        assert len(computed_keys) <= len(grid)

    # -- the shared cache is complete and nothing is torn --------------
    cache = ResultCache(cache_dir)
    keys = list(cache.keys())
    assert len(keys) == len(grid)
    for key in keys:
        assert cache.get(key) is not None
    assert cache.stats.hits == len(grid)
    assert cache.stats.corrupt == 0
    assert cache.stats.stale == 0
    # no stray temp files survived the races
    stray = [p for p in cache.dir.rglob("*") if p.suffix == ".tmp"]
    assert stray == []


@needs_cores
def test_warm_cache_after_the_stampede_is_all_hits(tmp_path):
    ctx = multiprocessing.get_context("fork")
    cache_dir = tmp_path / "shared"
    barrier = ctx.Barrier(2)
    out = ctx.Queue()
    procs = [ctx.Process(target=_hammer, args=(cache_dir, barrier, out, i))
             for i in range(2)]
    for p in procs:
        p.start()
    for _ in range(2):
        out.get(timeout=120)
    for p in procs:
        p.join(timeout=30)
    queue = SweepJobQueue(cache=cache_dir)
    queue.run(_grid())
    assert queue.stats.hits == len(_grid())
    assert queue.stats.computed == 0
