"""Differential + property harness: every collective, every library,
fast path vs reference path vs the numpy oracle.

Three-way agreement is checked for each sampled case:

* the macro-event **fast path** (``fastpath=True``, the default) and
  the reference event path (``fastpath=False``) must produce
  **byte-identical per-rank results, the exact same simulated time,
  and byte-identical resource telemetry** — the fast path is an
  engine optimisation, never a model change;
* both must match :mod:`repro.validate.reference`, the pure-numpy
  oracle, byte-for-byte — a correct-looking latency can never hide a
  wrong permutation.

Two layers:

* a **pinned matrix** running every collective × every library on a
  fixed geometry (deterministic, exhaustive over the API surface,
  including the nonblocking I* forms);
* **hypothesis sweeps** drawing random (nodes, ppn, counts, dtype,
  op, root, library) per collective family.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.machine import broadwell_opa
from repro.mpilibs import PAPER_LINEUP, register_library
from repro.runtime.ops import BXOR, MAX, MIN, SUM
from repro.tuner import CellResult, Trial, TuneDB, compile_db
from repro.validate import reference

# Exact (order-insensitive) ops on integer dtypes: every algorithm may
# reduce in a different association order, so the oracle comparison
# must be bitwise-independent of that order.
OPS = {"SUM": SUM, "MAX": MAX, "MIN": MIN, "BXOR": BXOR}
DTYPES = {"int32": np.int32, "int64": np.int64}

#: sentinel byte for buffers MPI leaves undefined (Exscan rank 0)
_SENTINEL = 0xA5


def _input_bytes(seed: int, rank: int, nbytes: int) -> np.ndarray:
    rng = np.random.default_rng((seed, rank))
    return rng.integers(0, 256, nbytes, dtype=np.uint8)


def _typed_input(seed: int, rank: int, count: int, dtype) -> np.ndarray:
    itemsize = np.dtype(dtype).itemsize
    return _input_bytes(seed, rank, count * itemsize).view(dtype)


class Case:
    """One drawn differential case (geometry + data shape)."""

    def __init__(self, collective: str, library: str, nodes: int, ppn: int,
                 count: int, dtype_name: str, op_name: str, root: int,
                 seed: int) -> None:
        self.collective = collective
        self.library = library
        self.nodes = nodes
        self.ppn = ppn
        self.size = nodes * ppn
        self.count = count
        self.dtype = DTYPES[dtype_name]
        self.op = OPS[op_name]
        # Hierarchical algorithms model the common library restriction
        # that the root is a node leader; the harness (like the paper's
        # benchmarks) roots everything at 0.
        self.root = root
        self.seed = seed

    def __repr__(self) -> str:  # shown by hypothesis on failure
        return (f"Case({self.collective}, {self.library}, "
                f"{self.nodes}x{self.ppn}, count={self.count}, "
                f"dtype={np.dtype(self.dtype).name}, op={self.op.name}, "
                f"root={self.root}, seed={self.seed})")


def _app_and_oracle(case: Case):
    """Build (app generator fn, expected per-rank output bytes)."""
    c, size, root = case, case.size, case.root
    itemsize = np.dtype(c.dtype).itemsize
    nbytes = c.count * itemsize
    ins_typed = [_typed_input(c.seed, r, c.count, c.dtype)
                 for r in range(size)]
    ins_bytes = [a.view(np.uint8) for a in ins_typed]
    dt = np.dtype(c.dtype)

    def out(app, expected):
        return app, [np.asarray(e).reshape(-1).view(np.uint8)
                     for e in expected]

    if c.collective == "barrier":
        def app(comm):
            yield from comm.Barrier()
            return b""
        return app, [np.empty(0, np.uint8)] * size

    if c.collective == "ibarrier":
        def app(comm):
            req = comm.Ibarrier()
            result = yield from comm.Wait(req)
            assert result is None or result == []  # no payload
            return b""
        return app, [np.empty(0, np.uint8)] * size

    if c.collective in ("bcast", "ibcast"):
        nonblocking = c.collective.startswith("i")

        def app(comm):
            buf = ins_bytes[comm.rank].copy()
            if nonblocking:
                req = comm.Ibcast(buf, root=root)
                yield from comm.Wait(req)
            else:
                yield from comm.Bcast(buf, root=root)
            return buf.tobytes()
        return out(app, reference.bcast(ins_bytes, root=root))

    if c.collective == "scatter":
        root_data = np.concatenate(ins_bytes)

        def app(comm):
            send = root_data.copy() if comm.rank == root else None
            recv = np.full(nbytes, _SENTINEL, np.uint8)
            yield from comm.Scatter(send, recv, root=root)
            return recv.tobytes()
        return out(app, reference.scatter(root_data, size, root=root))

    if c.collective == "gather":
        def app(comm):
            recv = (np.full(nbytes * size, _SENTINEL, np.uint8)
                    if comm.rank == root else None)
            yield from comm.Gather(ins_bytes[comm.rank].copy(), recv,
                                   root=root)
            return recv.tobytes() if recv is not None else b""
        return out(app, reference.gather(ins_bytes, root=root))

    if c.collective in ("allgather", "iallgather"):
        nonblocking = c.collective.startswith("i")

        def app(comm):
            recv = np.full(nbytes * size, _SENTINEL, np.uint8)
            send = ins_bytes[comm.rank].copy()
            if nonblocking:
                req = comm.Iallgather(send, recv)
                yield from comm.Wait(req)
            else:
                yield from comm.Allgather(send, recv)
            return recv.tobytes()
        return out(app, reference.allgather(ins_bytes))

    if c.collective in ("allreduce", "iallreduce"):
        nonblocking = c.collective.startswith("i")

        def app(comm):
            recv = np.zeros(c.count, c.dtype)
            send = ins_typed[comm.rank].copy()
            if nonblocking:
                req = comm.Iallreduce(send, recv, op=c.op)
                yield from comm.Wait(req)
            else:
                yield from comm.Allreduce(send, recv, op=c.op)
            return recv.tobytes()
        return out(app, reference.allreduce(ins_bytes, c.op, dt))

    if c.collective == "reduce":
        def app(comm):
            recv = (np.zeros(c.count, c.dtype)
                    if comm.rank == root else None)
            yield from comm.Reduce(ins_typed[comm.rank].copy(), recv,
                                   op=c.op, root=root)
            return recv.tobytes() if recv is not None else b""
        return out(app, reference.reduce(ins_bytes, c.op, dt, root=root))

    if c.collective == "alltoall":
        full = [_input_bytes(c.seed, r, nbytes * size) for r in range(size)]

        def app(comm):
            recv = np.full(nbytes * size, _SENTINEL, np.uint8)
            yield from comm.Alltoall(full[comm.rank].copy(), recv)
            return recv.tobytes()
        return out(app, reference.alltoall(full))

    if c.collective in ("reduce_scatter", "reduce_scatter_block"):
        full = [_typed_input(c.seed, r, c.count * size, c.dtype)
                for r in range(size)]
        block = c.collective == "reduce_scatter_block"

        def app(comm):
            recv = np.zeros(c.count, c.dtype)
            send = full[comm.rank].copy()
            if block:
                yield from comm.Reduce_scatter_block(send, recv, op=c.op)
            else:
                yield from comm.Reduce_scatter(send, recv, op=c.op)
            return recv.tobytes()
        return out(app, reference.reduce_scatter_block(
            [a.view(np.uint8) for a in full], c.op, dt))

    if c.collective == "scan":
        def app(comm):
            recv = np.zeros(c.count, c.dtype)
            yield from comm.Scan(ins_typed[comm.rank].copy(), recv, op=c.op)
            return recv.tobytes()
        return out(app, reference.scan(ins_bytes, c.op, dt))

    if c.collective == "exscan":
        expected = reference.exscan(ins_bytes, c.op, dt)
        # Rank 0's buffer is undefined in MPI → ours must be untouched.
        sentinel = np.full(nbytes, _SENTINEL, np.uint8)
        expected = [sentinel] + list(expected[1:])

        def app(comm):
            recv = np.full(nbytes, _SENTINEL, np.uint8).view(c.dtype)
            yield from comm.Exscan(ins_typed[comm.rank].copy(), recv,
                                   op=c.op)
            return recv.tobytes()
        return out(app, expected)

    if c.collective == "allgatherv":
        counts = [((c.seed + r) % c.count) + 1 for r in range(size)]
        var_ins = [_input_bytes(c.seed, r, counts[r]) for r in range(size)]
        total = sum(counts)

        def app(comm):
            recv = np.full(total, _SENTINEL, np.uint8)
            yield from comm.Allgatherv(var_ins[comm.rank].copy(), recv,
                                       counts)
            return recv.tobytes()
        return out(app, reference.allgatherv(var_ins))

    if c.collective == "alltoallv":
        matrix = [[((c.seed + i * size + j) % c.count) + 1
                   for j in range(size)] for i in range(size)]
        var_ins = [_input_bytes(c.seed, i, sum(matrix[i]))
                   for i in range(size)]

        def app(comm):
            i = comm.rank
            recvcounts = [matrix[j][i] for j in range(size)]
            recv = np.full(sum(recvcounts), _SENTINEL, np.uint8)
            yield from comm.Alltoallv(var_ins[i].copy(), matrix[i],
                                      recv, recvcounts)
            return recv.tobytes()
        return out(app, reference.alltoallv(var_ins, matrix))

    raise KeyError(f"unknown collective {c.collective!r}")


def _run(case: Case, app, fastpath: bool):
    session = Session(library=case.library,
                      params=broadwell_opa(nodes=case.nodes, ppn=case.ppn),
                      trace=False, functional=True, fastpath=fastpath,
                      resources=True)
    result = session.run(app)
    telemetry = json.dumps(result.resources.as_dict(), sort_keys=True)
    result.resources.validate()
    return result.elapsed, list(result.values), telemetry


def check_case(case: Case) -> None:
    """Run one case on both engine paths and diff against the oracle."""
    app, expected = _app_and_oracle(case)
    fast_t, fast_out, fast_tl = _run(case, app, fastpath=True)
    slow_t, slow_out, slow_tl = _run(case, app, fastpath=False)
    assert fast_t == slow_t, \
        f"{case}: fast path moved simulated time {fast_t} != {slow_t}"
    assert fast_out == slow_out, f"{case}: fast path changed rank results"
    # Resource telemetry rides the same FIFO funnels on both paths, so
    # the recorded timelines must be byte-identical too.
    assert fast_tl == slow_tl, \
        f"{case}: fast path changed resource telemetry"
    for rank, (got, want) in enumerate(zip(fast_out, expected)):
        assert got == want.tobytes(), \
            f"{case}: rank {rank} result differs from the numpy oracle"


# ---------------------------------------------------------------------------
# The tuned library column: a handcrafted tuning DB whose winners are
# *deliberately flipped* away from PiP-MColl's own picks (single-lane
# Bruck, an odd pipeline segment, flat pow2 algorithms), compiled and
# registered so ``Session(library=TUNED_LIBRARY)`` resolves it like any
# stock model.  Covered cells are at 2×2 (the pinned geometry); every
# other geometry falls back to the base library — both paths must stay
# byte-exact against the oracle.
# ---------------------------------------------------------------------------
def _tuned_column():
    flips = {
        "allgather": {"algorithm": "mcoll_bruck", "senders": 1},
        "bcast": {"algorithm": "ring_pipeline", "segment": 7},
        "allreduce": {"algorithm": "recursive_doubling"},
        "reduce_scatter": {"algorithm": "recursive_halving"},
        "alltoall": {"algorithm": "bruck"},
        "gather": {"algorithm": "linear"},
        "scatter": {"algorithm": "linear"},
        "reduce": {"algorithm": "binomial"},
        "barrier": {"algorithm": "dissemination"},
    }
    cells = {}
    for collective, best in flips.items():
        result = CellResult(
            collective=collective, nbytes=0, nodes=2, ppn=2,
            best=best, best_latency_us=1.0, runner_up=None,
            margin_us=None, baseline_us=None,
            trials=[Trial(config=best, latency_us=1.0)],
        )
        cells[result.cell.key()] = result
    db = TuneDB(
        base_library="PiP-MColl", preset="small_test",
        provenance={"machine_hash": "differential-fixture", "git": "test",
                    "seed": 0, "strategy": "exhaustive"},
        cells=cells,
    )
    return compile_db(db, name="Tuned[diff]")


TUNED_LIBRARY = register_library(_tuned_column(), name="Tuned[diff]")
DIFF_LINEUP = PAPER_LINEUP + (TUNED_LIBRARY,)

#: every collective the differential harness covers (API surface)
ALL_COLLECTIVES = (
    "barrier", "bcast", "scatter", "gather", "allgather", "allreduce",
    "reduce", "alltoall", "reduce_scatter", "reduce_scatter_block",
    "scan", "exscan", "allgatherv", "alltoallv",
    "ibarrier", "ibcast", "iallgather", "iallreduce",
)

#: reduction-shaped collectives (draw dtype and op)
_REDUCING = {"allreduce", "iallreduce", "reduce", "reduce_scatter",
             "reduce_scatter_block", "scan", "exscan"}


# ---------------------------------------------------------------------------
# Layer 1: pinned matrix — every collective × every library (the paper
# lineup plus the compiled tuned column), fixed geometry.
# Deterministic and exhaustive over the API surface.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("library", DIFF_LINEUP)
@pytest.mark.parametrize("collective", ALL_COLLECTIVES)
def test_pinned_matrix(collective, library):
    check_case(Case(collective, library, nodes=2, ppn=2, count=3,
                    dtype_name="int64", op_name="SUM", root=0, seed=7))


# ---------------------------------------------------------------------------
# Engine columns: the sharded kernel and the analytic evaluator must be
# byte- and timestamp-exact vs the reference engine on the same matrix.
# ``sim_events`` is excluded — engines legitimately differ in how many
# scheduler entries they process; every *physical* counter must match.
# ---------------------------------------------------------------------------
def _run_engine(case: Case, app, engine):
    session = Session(library=case.library,
                      params=broadwell_opa(nodes=case.nodes, ppn=case.ppn),
                      trace=False, functional=True, engine=engine)
    result = session.run(app)
    stats = dict(result.stats)
    stats.pop("sim_events")
    return result.elapsed, list(result.values), stats, result


@pytest.mark.parametrize("library", DIFF_LINEUP)
@pytest.mark.parametrize("collective", ALL_COLLECTIVES)
def test_pinned_matrix_engines(collective, library):
    case = Case(collective, library, nodes=2, ppn=2, count=3,
                dtype_name="int64", op_name="SUM", root=0, seed=7)
    app, expected = _app_and_oracle(case)
    ref_t, ref_out, ref_stats, _ = _run_engine(case, app, "reference")
    for rank, (got, want) in enumerate(zip(ref_out, expected)):
        assert got == want.tobytes(), \
            f"{case}: rank {rank} reference result differs from the oracle"
    for engine in ("sharded", "analytic"):
        t, out, stats, result = _run_engine(case, app, engine)
        assert result.engine.requested == engine
        assert t == ref_t, \
            f"{case}: {engine} moved simulated time {t} != {ref_t}"
        assert out == ref_out, f"{case}: {engine} changed rank results"
        assert stats == ref_stats, \
            f"{case}: {engine} changed hardware counters"


@pytest.mark.parametrize("library", ("MPICH", "IntelMPI", "OpenMPI"))
def test_analytic_engine_engages_at_ppn1(library):
    # ppn=1, pow2 world, eager-sized rounds: the whitelisted lockstep
    # allgather algorithms must actually take the vectorized path (not
    # silently fall back) and still be exact in time, bytes and stats.
    case = Case("allgather", library, nodes=4, ppn=1, count=8,
                dtype_name="int64", op_name="SUM", root=0, seed=11)
    app, expected = _app_and_oracle(case)
    ref_t, ref_out, ref_stats, _ = _run_engine(case, app, "reference")
    t, out, stats, result = _run_engine(case, app, "analytic")
    assert result.world.analytic is not None
    assert result.world.analytic.hits > 0, \
        f"{case}: evaluator never engaged"
    assert t == ref_t and out == ref_out and stats == ref_stats
    for rank, (got, want) in enumerate(zip(out, expected)):
        assert got == want.tobytes(), \
            f"{case}: rank {rank} analytic result differs from the oracle"


def test_pinned_ulp_telemetry_case():
    # Regression: the reference path used to schedule pipe completions
    # via a relative timeout (now + (finish + tail - now)), landing a
    # ULP away from the fast path's absolute-time arrival and breaking
    # byte-identical telemetry at exactly this geometry
    # (RateLimiter.occupy now uses Simulator.event_at).
    check_case(Case("scatter", "IntelMPI", nodes=3, ppn=4, count=5,
                    dtype_name="int64", op_name="SUM", root=0, seed=0))


# ---------------------------------------------------------------------------
# Layer 2: hypothesis sweeps — random geometry / counts / dtype / op.
# ---------------------------------------------------------------------------
def _cases(collective):
    ops = st.sampled_from(sorted(OPS)) if collective in _REDUCING \
        else st.just("SUM")
    dtypes = st.sampled_from(sorted(DTYPES)) if collective in _REDUCING \
        else st.just("int64")
    return st.builds(
        Case,
        collective=st.just(collective),
        library=st.sampled_from(list(DIFF_LINEUP)),
        nodes=st.integers(1, 4),
        ppn=st.integers(1, 4),
        count=st.integers(1, 8),
        dtype_name=dtypes,
        op_name=ops,
        root=st.just(0),
        seed=st.integers(0, 2**16),
    )


@pytest.mark.parametrize("collective", ALL_COLLECTIVES)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_differential_sweep(collective, data):
    check_case(data.draw(_cases(collective)))


# ---------------------------------------------------------------------------
# Host telemetry is observation-only: enabling the wall-clock tracer
# must not move a single byte of any result, on any engine path —
# including forked workers, where the tracer rides the worker pipes.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine", [None, "sharded:2", "sharded:2x2"])
def test_host_telemetry_is_byte_identical(engine):
    from repro.bench import bench_collective
    from repro.obs import host

    def grid():
        records = {}
        for library in ("MPICH", "PiP-MColl"):
            for nbytes in (16, 64):
                point = bench_collective(
                    library, "allgather", nbytes,
                    broadwell_opa(nodes=2, ppn=2), engine=engine)
                records[(library, nbytes)] = json.dumps(
                    point.to_record().as_dict(), sort_keys=True)
        return records

    assert host.active() is None  # off by default
    plain = grid()
    with host.tracing() as tracer:
        traced = grid()
    assert host.active() is None  # scope restored
    assert traced == plain, \
        f"engine={engine}: host telemetry changed result records"
    assert tracer.events(), "tracer recorded nothing"
