"""Unit + property tests for the numpy reference collectives.

The references are the ground truth every algorithm is compared
against, so they get their own sanity suite (small hand-checked cases
plus hypothesis properties relating the collectives to one another).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.ops import MAX, SUM
from repro.validate import reference
from repro.validate.checker import int_pattern, pattern


def arrays(size, count):
    return [pattern(r, count) for r in range(size)]


def test_bcast_everyone_gets_root_data():
    ins = arrays(4, 8)
    outs = reference.bcast(ins, root=2)
    assert all(np.array_equal(o, ins[2]) for o in outs)


def test_gather_concatenates_in_rank_order():
    ins = arrays(3, 4)
    outs = reference.gather(ins, root=1)
    assert outs[0].size == 0 and outs[2].size == 0
    assert np.array_equal(outs[1], np.concatenate(ins))


def test_scatter_blocks():
    root_data = np.arange(12, dtype=np.uint8)
    outs = reference.scatter(root_data, size=3, root=0)
    assert [o.tolist() for o in outs] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
    with pytest.raises(ValueError):
        reference.scatter(np.arange(10, dtype=np.uint8), size=3, root=0)


def test_alltoall_transposes_blocks():
    ins = [np.array([10 * r + c for c in range(3)], dtype=np.uint8) for r in range(3)]
    outs = reference.alltoall(ins)
    # Block j of rank i == block i of rank j.
    for i in range(3):
        assert outs[i].tolist() == [10 * j + i for j in range(3)]
    with pytest.raises(ValueError):
        reference.alltoall([np.zeros(3, np.uint8), np.zeros(6, np.uint8), np.zeros(3, np.uint8)])


def test_reduce_scatter_needs_divisible_blocks():
    ins = [int_pattern(r, 5) for r in range(2)]
    with pytest.raises(ValueError):
        reference.reduce_scatter_block(ins, SUM, np.dtype(np.int64))


@given(size=st.integers(1, 12), count=st.integers(1, 32))
def test_allgather_equals_bcast_of_gather(size, count):
    ins = arrays(size, count)
    ag = reference.allgather(ins)
    gathered = reference.gather(ins, root=0)[0]
    assert all(np.array_equal(a, gathered) for a in ag)


@given(size=st.integers(1, 12), count=st.integers(1, 16))
def test_allreduce_equals_reduce_everywhere(size, count):
    ins = [int_pattern(r, count) for r in range(size)]
    ar = reference.allreduce(ins, SUM, np.dtype(np.int64))
    red = reference.reduce(ins, SUM, np.dtype(np.int64), root=0)[0]
    assert all(np.array_equal(a, red) for a in ar)


@given(size=st.integers(1, 12), count=st.integers(1, 8))
def test_scan_last_rank_equals_allreduce(size, count):
    ins = [int_pattern(r, count) for r in range(size)]
    sc = reference.scan(ins, SUM, np.dtype(np.int64))
    ar = reference.allreduce(ins, SUM, np.dtype(np.int64))[0]
    assert np.array_equal(sc[-1], ar)


@given(size=st.integers(1, 10), count=st.integers(1, 8))
def test_reduce_scatter_concatenates_to_allreduce(size, count):
    ins = [int_pattern(r, count * size) for r in range(size)]
    rs = reference.reduce_scatter_block(ins, SUM, np.dtype(np.int64))
    ar = reference.allreduce(ins, SUM, np.dtype(np.int64))[0]
    assert np.array_equal(np.concatenate(rs), ar)


@given(size=st.integers(1, 10), count=st.integers(1, 16))
def test_scatter_inverts_gather(size, count):
    ins = arrays(size, count)
    gathered = reference.gather(ins, root=0)[0]
    scattered = reference.scatter(gathered, size, root=0)
    for r in range(size):
        assert np.array_equal(scattered[r], ins[r])


@given(size=st.integers(1, 8), count=st.integers(1, 8))
def test_alltoall_is_an_involution_under_transpose(size, count):
    ins = [pattern(r, size * count) for r in range(size)]
    once = reference.alltoall(ins)
    twice = reference.alltoall(once)
    for r in range(size):
        assert np.array_equal(twice[r], ins[r])


def test_reduce_max_vs_sum_differ():
    ins = [int_pattern(r, 4) for r in range(3)]
    s = reference.reduce(ins, SUM, np.dtype(np.int64), 0)[0]
    m = reference.reduce(ins, MAX, np.dtype(np.int64), 0)[0]
    assert not np.array_equal(s, m)
