"""Fault injection: the validation harness must catch planted bugs.

A validator that passes everything is worthless; these tests sabotage
the stack in controlled ways — corrupted payloads, dropped deliveries,
misrouted blocks, wrong reduction maths — and assert the byte-exact
checkers and quiescence probes *fail loudly* on each.
"""

import numpy as np
import pytest

from repro.collectives import allgather_bruck, bcast_binomial
from repro.faults import FaultPlan
from repro.machine import small_test
from repro.runtime import World
from repro.runtime.ops import SUM
from repro.validate.checker import (
    check_allgather,
    check_allreduce,
    check_bcast,
    check_scatter,
)

def test_checker_catches_corrupted_bytes():
    """Flip one payload byte in flight → checker must raise.

    Driven by the first-class FaultInjector (deliver-layer corrupt
    rule scoped to rank 1, applied once) — no monkeypatching.
    """
    plan = FaultPlan(seed=0).corrupt(rate=1.0, dst=1, layer="deliver", limit=1)
    world = World(small_test(nodes=1, ppn=4), intra="posix_shmem", faults=plan)
    with pytest.raises(AssertionError, match="wrong at"):
        check_bcast(world, bcast_binomial, 64)
    assert world.faults.counts.get("corrupt") == 1

def test_quiescence_catches_dropped_message():
    """Silently dropping a delivery leaves a dangling posted recv —
    the run deadlocks benignly (sim drains) and quiescence fails."""
    plan = FaultPlan(seed=0).drop(rate=1.0, dst=1, layer="deliver")
    world = World(small_test(nodes=1, ppn=2), intra="posix_shmem", faults=plan)

    def program(ctx):
        buf = ctx.alloc(8)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
        else:
            yield from ctx.recv(buf.view(), src=0, tag=0)
        return True

    # Without the escape hatch, the deadlock is diagnosed by name.
    with pytest.raises(Exception, match="deadlock: ranks \\[1\\]"):
        world.run(program)

    world2 = World(small_test(nodes=1, ppn=2), intra="posix_shmem",
                   faults=plan.with_seed(0))
    results = world2.run(program, allow_unfinished=True)
    assert results[1] is None  # rank 1 never finished
    with pytest.raises(AssertionError, match="never matched"):
        world2.assert_quiescent()

def test_checker_catches_misrouted_block():
    """An allgather that swaps two output blocks must be caught."""

    def buggy_allgather(ctx, sendview, recvview, comm=None):
        yield from allgather_bruck(ctx, sendview, recvview, comm=comm)
        size = (comm or ctx.comm_world).size
        if size >= 2 and recvview.read() is not None:
            count = sendview.nbytes
            a = recvview.sub(0, count).read()
            b = recvview.sub(count, count).read()
            recvview.sub(0, count).write(b)
            recvview.sub(count, count).write(a)

    world = World(small_test(nodes=1, ppn=4))
    with pytest.raises(AssertionError, match="allgather: rank"):
        check_allgather(world, buggy_allgather, 16)

def test_checker_catches_off_by_one_rotation():
    """The classic Bruck bug: rotation shifted by one rank."""

    def buggy_bruck(ctx, sendview, recvview, comm=None):
        from repro.collectives.base import TAG_ALLGATHER, resolve_comm

        comm = resolve_comm(ctx, comm)
        size = comm.size
        count = sendview.nbytes
        rank = comm.to_comm(ctx.rank)
        tmp = ctx.alloc(count * size)
        tmp.view(0, count).copy_from(sendview)
        step = 1
        while step < size:
            cnt = min(step, size - step)
            yield from ctx.sendrecv(
                tmp.view(0, cnt * count), (rank - step) % size, TAG_ALLGATHER,
                tmp.view(step * count, cnt * count), (rank + step) % size,
                TAG_ALLGATHER, comm=comm,
            )
            step <<= 1
        for i in range(size):
            # BUG: forgot the +rank rotation.
            recvview.sub(i * count, count).copy_from(tmp.view(i * count, count))
        yield from ctx.node_hw.mem_copy(size * count)

    world = World(small_test(nodes=2, ppn=2))
    with pytest.raises(AssertionError, match="allgather: rank"):
        check_allgather(world, buggy_bruck, 16)

def test_checker_catches_wrong_reduction_op():
    """An allreduce that multiplies instead of adding must be caught."""

    def buggy_allreduce(ctx, sendview, recvview, dtype, op, comm=None):
        from repro.collectives import allreduce_recursive_doubling
        from repro.runtime.ops import PROD

        yield from allreduce_recursive_doubling(
            ctx, sendview, recvview, dtype, PROD, comm=comm)

    world = World(small_test(nodes=1, ppn=4))
    with pytest.raises(AssertionError, match="allreduce: rank"):
        check_allreduce(world, buggy_allreduce, 8, op=SUM)

def test_checker_catches_partial_scatter():
    """A scatter that skips the last rank must be caught."""

    def buggy_scatter(ctx, sendview, recvview, root=0, comm=None):

        comm_ = comm or ctx.comm_world
        rank = comm_.to_comm(ctx.rank)
        if rank == comm_.size - 1:
            # BUG: last rank never receives; fabricate zeros instead.
            recvview.write(np.zeros(recvview.nbytes, dtype=np.uint8))
            return
            yield  # pragma: no cover
        # Root must also skip the send to the last rank or it would leak.
        if rank == root:
            for dst in range(comm_.size - 1):
                if dst == root:
                    continue
                yield from ctx.send(
                    sendview.sub(dst * recvview.nbytes, recvview.nbytes),
                    dst=dst, tag=99, comm=comm_)
            recvview.write(sendview.sub(root * recvview.nbytes,
                                        recvview.nbytes).read())
        else:
            yield from ctx.recv(recvview, src=root, tag=99, comm=comm_)

    world = World(small_test(nodes=1, ppn=4))
    with pytest.raises(AssertionError, match="scatter: rank 3"):
        check_scatter(world, buggy_scatter, 16)

def test_null_buffer_mode_is_rejected_by_checkers():
    """Checkers validate bytes; a timing-only world can't fake it."""
    world = World(small_test(nodes=1, ppn=2), functional=False)
    # The checker allocates its own functional buffers, so it still
    # works — but an algorithm returning None data from ctx.alloc'd
    # buffers would fail _compare.  Exercise the _compare None branch:
    from repro.validate.checker import _compare

    with pytest.raises(AssertionError, match="no data"):
        _compare("x", 0, None, np.zeros(4, dtype=np.uint8))
    del world
