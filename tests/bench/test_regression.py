"""Tests for the golden-baseline drift guard."""

import json
from pathlib import Path

import pytest

from repro.bench.regression import (
    GOLDEN_GRID,
    capture_baseline,
    compare_to_baseline,
    measure_grid,
)

GOLDEN = Path(__file__).resolve().parents[2] / "benchmarks" / "golden.json"


def test_repo_baseline_has_no_drift():
    """The committed golden numbers must match a fresh run exactly
    (the simulator is deterministic)."""
    report = compare_to_baseline(GOLDEN, tolerance=0.001)
    assert report.ok(), report.format()


def test_capture_roundtrip(tmp_path):
    path = tmp_path / "golden.json"
    values = capture_baseline(path)
    assert len(values) == len(GOLDEN_GRID)
    stored = json.loads(path.read_text())
    assert stored == values
    assert compare_to_baseline(path).ok()


def test_drift_detected(tmp_path):
    path = tmp_path / "golden.json"
    values = capture_baseline(path)
    key = sorted(values)[0]
    values[key] *= 1.5  # simulate a model change
    path.write_text(json.dumps(values))
    report = compare_to_baseline(path, tolerance=0.01)
    assert not report.ok()
    assert any(k == key for k, _g, _f in report.drifts)
    assert "+" in report.format() or "-" in report.format()


def test_missing_key_detected(tmp_path):
    path = tmp_path / "golden.json"
    values = capture_baseline(path)
    key = sorted(values)[0]
    del values[key]
    path.write_text(json.dumps(values))
    report = compare_to_baseline(path)
    assert report.missing == [key]
    assert "missing" in report.format()


def test_deterministic_measurement():
    assert measure_grid() == measure_grid()
