"""BenchRecord schema + the `repro report` pipeline end to end.

Small geometry (4×4) so the whole chain runs in seconds: harness →
records.json → ingest → tables → CSV/HTML/summary — plus Perfetto
counter tracks passing the Chrome trace-event validator.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.bench.harness import bench_collective, single_leader_allgather
from repro.bench.record import (SCHEMA_VERSION, BenchRecord, load_records,
                                record_key, validate_file, validate_record,
                                write_records)
from repro.machine import broadwell_opa
from repro.obs import validate_chrome_trace
from repro.report import (build_report, build_summary, render_html,
                          validate_summary, write_summary)

PARAMS = broadwell_opa(nodes=4, ppn=4)


@pytest.fixture(scope="module")
def records_dir(tmp_path_factory):
    """One measured records file shared by the pipeline tests."""
    points = [
        bench_collective(lib, "allgather", 64, PARAMS, warmup=1, iters=1,
                         resources=True, attribution=(lib == "PiP-MColl"))
        for lib in ("PiP-MColl", "PiP-MPICH")
    ]
    points.append(single_leader_allgather(64, PARAMS, warmup=1, iters=1,
                                          resources=True))
    root = tmp_path_factory.mktemp("results")
    write_records(root / "mini.records.json", [
        pt.to_record(experiment="unit") for pt in points])
    return root


# ---------------------------------------------------------------------------
# Record schema
# ---------------------------------------------------------------------------
def test_record_key_matches_regression_keys():
    assert record_key("PiP-MColl", "allgather", 64, 128, 18) == \
        "PiP-MColl/allgather/64B@128x18"


def test_record_validates_and_round_trips(tmp_path):
    rec = BenchRecord(library="MPICH", collective="bcast", nbytes=256,
                      nodes=2, ppn=4, latency_us=12.5, min_us=12.0,
                      max_us=13.0, iterations_us=[12.0, 13.0])
    validate_record(rec.as_dict())
    path = tmp_path / "one.records.json"
    write_records(path, [rec])
    loaded = load_records(path)
    assert set(loaded) == {rec.key}
    assert loaded[rec.key]["schema"] == SCHEMA_VERSION
    assert loaded[rec.key]["latency_us"] == 12.5


@pytest.mark.parametrize("mutation, message", [
    ({"schema": 99}, "schema"),
    ({"latency_us": "fast"}, "latency_us"),
    ({"key": "Other/bcast/256B@2x4"}, "key"),
    ({"iterations_us": [1.0, "x"]}, "iterations_us"),
])
def test_record_schema_rejections(mutation, message):
    rec = BenchRecord(library="MPICH", collective="bcast", nbytes=256,
                      nodes=2, ppn=4, latency_us=12.5, min_us=12.0,
                      max_us=13.0, iterations_us=[12.0, 13.0]).as_dict()
    rec.update(mutation)
    with pytest.raises(ValueError, match=message):
        validate_record(rec)


def test_validate_file_shape():
    with pytest.raises(ValueError, match="records"):
        validate_file({"schema": SCHEMA_VERSION})
    assert validate_file({"schema": SCHEMA_VERSION, "records": []}) == 0


# ---------------------------------------------------------------------------
# Report pipeline end to end
# ---------------------------------------------------------------------------
def test_report_end_to_end(records_dir, tmp_path):
    golden = tmp_path / "golden.json"
    records = load_records(records_dir)
    golden.write_text(json.dumps(
        {k: r["latency_us"] for k, r in records.items()}))
    report = build_report(records_dir, golden=golden)

    assert len(report.records) == 3
    [group] = report.groups
    assert group.collective == "allgather"
    assert group.speedup("PiP-MColl", 64) > 1.0
    # Telemetry flowed through: occupancy rows + the engine-ratio row.
    assert len(report.occupancy) == 3
    [ratio] = report.ratios
    assert ratio["engine_ratio"] > 1.0
    assert ratio["occupancy_ratio"] > 1.0
    # Attribution flowed through for the one attributed record.
    [att] = report.attribution
    assert att["library"] == "PiP-MColl"
    assert att["dominant"] in att["terms_us"]
    assert sum(att["terms_us"].values()) == pytest.approx(
        att["measured_us"], abs=1.0)  # ±1 µs acceptance bound
    # Golden built from the same numbers → compared, nothing drifted.
    assert len(report.flags) == 3
    assert not report.drifted

    csvs = report.to_csv()
    assert {"speedup.csv", "occupancy.csv", "occupancy_ratios.csv",
            "attribution.csv", "regression.csv"} <= set(csvs)
    assert "PiP-MColl" in csvs["speedup.csv"]
    text = report.format()
    assert "PASS" in text or "FAIL" in text  # the bar verdict is stated


def test_report_flags_drift(records_dir, tmp_path):
    records = load_records(records_dir)
    golden = tmp_path / "golden.json"
    golden.write_text(json.dumps(
        {k: r["latency_us"] * 2.0 for k, r in records.items()}))
    report = build_report(records_dir, golden=golden, tolerance=0.10)
    assert len(report.drifted) == 3
    assert "DRIFT" in report.format()


def test_html_render_is_self_contained(records_dir):
    report = build_report(records_dir)
    html = render_html(report)
    assert html.startswith("<!doctype html>")
    for fragment in ("<style>", "allgather @ 4x4", "LogGP attribution",
                     "injection engines"):
        assert fragment in html, fragment
    # Self-contained: no external fetches.
    assert "http://" not in html and "https://" not in html


def test_summary_schema(records_dir, tmp_path):
    report = build_report(records_dir)
    path = tmp_path / "BENCH_summary.json"
    write_summary(path, report)
    obj = json.loads(path.read_text())
    assert validate_summary(obj) == 3
    assert obj == build_summary(report)
    entry = obj["benchmarks"]["PiP-MColl/allgather/64B@4x4"]
    assert entry["dominant_term"]
    assert 0.0 <= entry["engine_utilization"] <= 1.0


def test_summary_validation_rejects_mangled(records_dir):
    report = build_report(records_dir)
    obj = build_summary(report)
    obj["record_count"] = 99
    with pytest.raises(ValueError, match="record_count"):
        validate_summary(obj)


# ---------------------------------------------------------------------------
# Perfetto counter tracks
# ---------------------------------------------------------------------------
def test_counter_tracks_pass_trace_validation():
    session = Session(library="PiP-MColl", params=PARAMS, trace=True,
                      resources=True)

    def app(comm):
        import numpy as np
        recv = np.zeros(64 * comm.size, np.uint8)
        yield from comm.Allgather(np.full(64, comm.rank, np.uint8), recv)
        return comm.now

    result = session.run(app)
    trace = result.to_perfetto()
    validate_chrome_trace(trace)  # raises on schema violations
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counters, "resources=True must add counter tracks"
    names = {e["name"] for e in counters}
    assert any(n.startswith("nic_tx/") for n in names)
    assert any(n.endswith(" queue") for n in names)
    # Counter events carry numeric args on the sim-clock timeline.
    for event in counters:
        assert event["ts"] >= 0
        for value in event["args"].values():
            assert isinstance(value, (int, float))
