"""Tests for the scale-sweep drivers and CSV export."""

import pytest

from repro.bench.sweep import (
    node_scaling_sweep,
    oversubscription_sweep,
    ppn_scaling_sweep,
)


def test_node_scaling_sweep_grid():
    sweep = node_scaling_sweep("allgather", 64, [2, 4], ppn=2,
                               libraries=["MPICH", "PiP-MColl"])
    assert sweep.axis == [2, 4]
    assert sweep.latency("MPICH", 4) > sweep.latency("MPICH", 2)
    assert sweep.speedup("PiP-MColl", 4) > 1.0


def test_ppn_scaling_sweep_grid():
    sweep = ppn_scaling_sweep("allgather", 64, [2, 4], nodes=4,
                              libraries=["MPICH", "PiP-MColl"])
    # Speedup grows with ppn (A5's property, at tiny scale).
    assert sweep.speedup("PiP-MColl", 4) > sweep.speedup("PiP-MColl", 2)


def test_oversubscription_sweep():
    sweep = oversubscription_sweep("allgather", 256, [1.0, 4.0],
                                   nodes=8, ppn=4, pod_size=4)
    for lib in ("MPICH", "PiP-MColl"):
        assert sweep.latency(lib, 4.0) > sweep.latency(lib, 1.0)
    assert sweep.speedup("PiP-MColl", 4.0) >= sweep.speedup("PiP-MColl", 1.0)


def test_csv_export_shape():
    sweep = node_scaling_sweep("barrier", 0, [2], ppn=2,
                               libraries=["MPICH", "PiP-MColl"])
    lines = sweep.to_csv().splitlines()
    assert lines[0] == "nodes,MPICH,PiP-MColl"
    assert lines[1].startswith("2,")
    assert len(lines) == 2
