"""Tests for the CLI and the ASCII figure renderer."""

import pytest

from repro.bench import run_sweep
from repro.bench.plot import ascii_figure
from repro.cli import _parse_sizes, build_parser, main
from repro.machine import small_test


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep("allgather", [16, 64], small_test(nodes=2, ppn=2),
                     libraries=["MPICH", "PiP-MColl"], iters=1)


def test_parse_sizes():
    assert _parse_sizes("16,64,1k") == [16, 64, 1024]
    with pytest.raises(Exception):
        _parse_sizes("banana")


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["bench", "--library", "MPICH", "--size", "32"])
    assert args.library == "MPICH" and args.size == 32
    args = parser.parse_args(["sweep", "--sizes", "16,32"])
    assert args.sizes == [16, 32]
    with pytest.raises(SystemExit):
        parser.parse_args(["bench", "--library", "NotALib"])
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "broadwell_opa" in out
    assert "PiP-MColl" in out
    assert "xpmem" in out


def test_cli_bench(capsys):
    rc = main(["bench", "--library", "MPICH", "--collective", "barrier",
               "--size", "0", "--nodes", "2", "--ppn", "2", "--iters", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MPICH barrier" in out and "us" in out


def test_cli_sweep_with_plot(capsys):
    rc = main(["sweep", "--sizes", "16,64", "--nodes", "2", "--ppn", "2",
               "--libraries", "MPICH,PiP-MColl", "--iters", "1", "--plot"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "o=MPICH" in out


def test_ascii_figure_contains_all_series(small_sweep):
    chart = ascii_figure(small_sweep, width=40, height=12)
    assert "o=MPICH" in chart and "x=PiP-MColl" in chart
    assert "16B" in chart and "64B" in chart
    # Both markers actually plotted.
    body = chart.split("latency")[0]
    assert "o" in body and "x" in body


def test_ascii_figure_single_point():
    sweep = run_sweep("barrier", [0], small_test(nodes=1, ppn=2),
                      libraries=["MPICH"], iters=1)
    # Zero-size label and a single column must not crash.
    chart = ascii_figure(sweep, width=30, height=8)
    assert "o=MPICH" in chart


def test_ascii_figure_rejects_empty():
    sweep = run_sweep("barrier", [0], small_test(nodes=1, ppn=1),
                      libraries=["MPICH"], iters=1)
    sweep.sizes = []
    with pytest.raises(ValueError):
        ascii_figure(sweep)


def test_cli_figures_tiny_scale(capsys):
    rc = main(["figures", "--nodes", "4", "--ppn", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 1 (MPI_Scatter)" in out
    assert "Figure 2 (MPI_Allgather)" in out
    assert "best speedup" in out


def test_cli_tables(capsys):
    rc = main(["tables", "--ranks", "96", "--libraries", "MPICH"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MPICH selection table at 96 ranks" in out
    assert "allgather" in out
