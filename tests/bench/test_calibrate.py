"""Tests for the calibration utilities."""

import pytest

from repro.bench.calibrate import (
    memory_from_microbenchmarks,
    nic_from_microbenchmarks,
    verify_pt2pt,
)
from repro.machine import MachineParams, broadwell_opa


def test_nic_from_datasheet_numbers():
    nic = nic_from_microbenchmarks(
        latency_us=1.8, bandwidth_gbps=100.0, message_rate_mps=97.0)
    assert nic.bandwidth * 8 == pytest.approx(100e9)
    assert nic.message_rate == pytest.approx(97e6)
    # Latency budget is split: wire + endpoint overheads ≈ target.
    total = nic.latency + nic.inject_overhead + nic.recv_overhead
    assert total == pytest.approx(1.8e-6, rel=0.01)


def test_nic_validation():
    with pytest.raises(ValueError):
        nic_from_microbenchmarks(0, 100, 97)
    with pytest.raises(ValueError):
        nic_from_microbenchmarks(1, 100, 97, overhead_fraction=1.5)


def test_memory_from_stream_numbers():
    mem = memory_from_microbenchmarks(copy_bandwidth_gbs=8.0,
                                      node_bandwidth_gbs=100.0)
    assert 1.0 / mem.copy_byte_time == pytest.approx(8e9)
    assert 1.0 / mem.bus_byte_time == pytest.approx(100e9)
    with pytest.raises(ValueError):
        memory_from_microbenchmarks(10.0, 5.0)


def test_calibrated_machine_meets_targets():
    nic = nic_from_microbenchmarks(
        latency_us=1.8, bandwidth_gbps=100.0, message_rate_mps=97.0)
    params = MachineParams(nodes=2, ppn=1, nic=nic)
    report = verify_pt2pt(params, target_latency_us=1.8,
                          target_bandwidth_gbps=100.0)
    assert report.ok(tolerance=0.25), report
    assert report.bandwidth_error < 1e-9


def test_paper_preset_is_consistent_with_its_own_targets():
    """broadwell_opa was calibrated to ~2 µs pt2pt and 100 Gbps."""
    report = verify_pt2pt(broadwell_opa(), target_latency_us=2.0,
                          target_bandwidth_gbps=100.0)
    assert report.ok(tolerance=0.25), report


def test_report_flags_a_bad_machine():
    bad = broadwell_opa().scaled(
        nic=broadwell_opa().nic.__class__(latency=50e-6))
    report = verify_pt2pt(bad, target_latency_us=2.0,
                          target_bandwidth_gbps=100.0)
    assert not report.ok()
    assert report.latency_error > 1.0
