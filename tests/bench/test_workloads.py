"""Tests for the workload generators and trace replay."""

import pytest

from repro.bench.workloads import (
    CollectiveTrace,
    analytics_shuffle,
    bcast_storm,
    compare_on_trace,
    replay_trace,
    stencil_app,
    training_step_mix,
    uniform_mix,
)
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)


def test_uniform_mix_reproducible():
    a = uniform_mix(n_calls=30, seed=7)
    b = uniform_mix(n_calls=30, seed=7)
    c = uniform_mix(n_calls=30, seed=8)
    assert a.calls == b.calls
    assert a.calls != c.calls
    assert len(a) == 30
    # Barriers carry zero bytes; everything else at least 8.
    for coll, nbytes in a.calls:
        assert (nbytes == 0) == (coll == "barrier")


def test_stencil_trace_shape():
    t = stencil_app(steps=30, check_every=5)
    hist = t.histogram()
    assert hist == {"allreduce": 6, "gather": 1}
    assert t.total_bytes() == 6 * 8 + 64


def test_training_mix_shape():
    t = training_step_mix(layers=(128, 256), steps=3)
    assert t.histogram() == {"allreduce": 6, "bcast": 3}


def test_bcast_storm_shape():
    t = bcast_storm(n_keys=3, nrows=6, ncols=5)
    # shape header + key table + one matrix per key + trailing scalar
    assert t.histogram() == {"bcast": 3 + 3}
    assert t.total_bytes() == 8 + 12 + 3 * 6 * 5 * 8 + 8
    # The storm mixes tiny headers with dense payloads.
    sizes = [n for _c, n in t.calls]
    assert min(sizes) == 8 and max(sizes) == 6 * 5 * 8


def test_bcast_storm_replayable():
    t = bcast_storm(n_keys=2, nrows=4, ncols=4)
    a = replay_trace("MPICH", t, PARAMS)
    b = replay_trace("MPICH", t, PARAMS)
    assert a.per_call_us == b.per_call_us
    assert len(a.per_call_us) == len(t)


def test_analytics_shuffle_shape():
    t = analytics_shuffle(rounds=2)
    assert t.histogram() == {"alltoall": 2, "barrier": 2, "allgather": 1}


def test_replay_returns_per_call_latencies():
    trace = stencil_app(steps=10, check_every=5)
    result = replay_trace("MPICH", trace, PARAMS)
    assert len(result.per_call_us) == len(trace)
    assert result.total_us == pytest.approx(sum(result.per_call_us))
    idx, worst = result.slowest_call()
    assert result.per_call_us[idx] == worst


def test_replay_deterministic():
    trace = uniform_mix(n_calls=12, seed=3)
    a = replay_trace("MPICH", trace, PARAMS)
    b = replay_trace("MPICH", trace, PARAMS)
    assert a.per_call_us == b.per_call_us


def test_replay_functional_mode_matches_timing_mode():
    trace = training_step_mix(layers=(64,), steps=2)
    t = replay_trace("MPICH", trace, PARAMS, functional=False)
    f = replay_trace("MPICH", trace, PARAMS, functional=True)
    assert t.per_call_us == pytest.approx(f.per_call_us)


def test_pip_mcoll_wins_end_to_end_on_every_workload():
    """The application-level claim: whole traces, not single calls."""
    params = small_test(nodes=4, ppn=4)
    for trace in (
        uniform_mix(n_calls=20, seed=2),
        stencil_app(),
        training_step_mix(),
        analytics_shuffle(),
        bcast_storm(n_keys=4, nrows=8, ncols=8),
    ):
        results = compare_on_trace(trace, params, ["MPICH", "PiP-MColl"])
        assert results["PiP-MColl"].total_us < results["MPICH"].total_us, trace.name


def test_trace_dataclass_basics():
    t = CollectiveTrace("custom", (("bcast", 64), ("barrier", 0)))
    assert len(t) == 2
    assert t.total_bytes() == 64
