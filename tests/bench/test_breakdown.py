"""Tests for the collective profiler (latency attribution)."""

import pytest

from repro.bench.breakdown import profile_collective
from repro.machine import small_test


def test_profile_fields_and_attribution():
    params = small_test(nodes=2, ppn=2)
    profile = profile_collective("MPICH", "allgather", 64, params)
    assert profile.library == "MPICH"
    assert profile.latency_us > 0
    # 4 ranks is a power of two → recursive doubling: round 1 is
    # fully intra-node (rank^1 pairs), round 2 fully inter-node.
    assert profile.messages_by_transport["network"] == 4
    assert profile.messages_by_transport["posix_shmem"] == 4
    assert profile.total_messages == 8
    assert profile.total_bytes > 0
    assert profile.sim_events > 0
    assert profile.nic_tx_busy_us > 0


def test_profile_shows_mcoll_zero_intra_messages():
    """The headline structural fact, via the profiler."""
    params = small_test(nodes=3, ppn=2)
    ours = profile_collective("PiP-MColl", "allgather", 64, params)
    base = profile_collective("MPICH", "allgather", 64, params)
    assert set(ours.messages_by_transport) == {"network"}
    assert "posix_shmem" in base.messages_by_transport
    assert ours.total_bytes < base.total_bytes
    assert ours.latency_us < base.latency_us


def test_profile_format_readable():
    params = small_test(nodes=1, ppn=2)
    text = profile_collective("PiP-MPICH", "bcast", 64, params).format()
    assert "PiP-MPICH bcast 64 B" in text
    assert "pip+sizesync" in text
    assert "membus busy" in text


def test_profile_measures_warm_iteration_only():
    """XPMEM's cold attach must not pollute the measured iteration."""
    params = small_test(nodes=1, ppn=2)
    profile = profile_collective("MVAPICH2", "bcast", 4096, params)
    mem = params.memory
    # Warm latency: well under one attach (2.2 us) + fault chain.
    assert profile.latency_us * 1e-6 < mem.attach_overhead + mem.fault_time(4096)
