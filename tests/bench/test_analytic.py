"""Simulator vs closed-form LogGP algebra.

On contention-free single-rank-per-node cases the DES must agree with
pencil-and-paper to within a few percent; larger gaps would mean the
event choreography drifted from the model it claims to implement.
"""

import pytest

from repro.bench.analytic import (
    binomial_bcast_time,
    binomial_depth,
    bruck_allgather_time,
    dissemination_barrier_time,
    eager_message_time,
    flat_bruck_round_count,
    mcoll_allgather_bound,
    mcoll_round_count,
)
from repro.bench import bench_collective
from repro.machine import broadwell_opa
from repro.runtime import World


def flat_params(nodes):
    return broadwell_opa(nodes=nodes, ppn=1)


def test_eager_message_time_matches_sim():
    params = flat_params(2)
    world = World(params, functional=False)
    nbytes = 256

    def program(ctx):
        buf = ctx.alloc(nbytes)
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=0)
        else:
            yield from ctx.recv(buf.view(), src=0, tag=0)
            return ctx.now - t0
        return None

    sim_time = world.run(program)[1]
    assert sim_time == pytest.approx(eager_message_time(params, nbytes), rel=0.02)


def test_eager_formula_rejects_rendezvous_sizes():
    with pytest.raises(ValueError):
        eager_message_time(flat_params(2), 1 << 20)


@pytest.mark.parametrize("nodes", [2, 8, 32, 33])
def test_binomial_bcast_matches_sim(nodes):
    params = flat_params(nodes)
    point = bench_collective("MPICH", "bcast", 64, params, warmup=1, iters=1)
    analytic = binomial_bcast_time(params, 64) * 1e6
    # The library wrapper adds one call overhead; allow a few percent.
    assert point.latency_us == pytest.approx(analytic, rel=0.08)


@pytest.mark.parametrize("nodes", [4, 16, 33])
def test_bruck_allgather_matches_sim(nodes):
    params = flat_params(nodes)
    point = bench_collective("MPICH", "allgather", 64, params, warmup=1, iters=1)
    analytic = bruck_allgather_time(params, 64) * 1e6
    assert point.latency_us == pytest.approx(analytic, rel=0.08)


@pytest.mark.parametrize("nodes", [2, 8, 31])
def test_dissemination_barrier_matches_sim(nodes):
    params = flat_params(nodes)
    point = bench_collective("MPICH", "barrier", 0, params, warmup=1, iters=1)
    analytic = dissemination_barrier_time(params) * 1e6
    assert point.latency_us == pytest.approx(analytic, rel=0.08)


def test_formulas_require_flat_geometry():
    fat = broadwell_opa(nodes=4, ppn=2)
    with pytest.raises(ValueError):
        binomial_bcast_time(fat, 64)
    with pytest.raises(ValueError):
        bruck_allgather_time(fat, 64)
    with pytest.raises(ValueError):
        dissemination_barrier_time(fat)


def test_mcoll_bound_is_a_lower_bound():
    params = broadwell_opa(nodes=16, ppn=6)
    point = bench_collective("PiP-MColl", "allgather", 64, params,
                             warmup=1, iters=1)
    bound = mcoll_allgather_bound(params, 64) * 1e6
    assert point.latency_us >= bound
    # ...and not absurdly loose: within 4x at this scale.
    assert point.latency_us <= 4 * bound


def test_round_counts_paper_scale():
    """The round-count argument of the paper, as pure numbers."""
    assert flat_bruck_round_count(2304) == 12
    assert mcoll_round_count(128, 18) == 2
    assert mcoll_round_count(1, 18) == 0
    assert flat_bruck_round_count(1) == 0


def test_binomial_depth_values():
    assert binomial_depth(1) == 0
    assert binomial_depth(2) == 1
    assert binomial_depth(32) == 5
    assert binomial_depth(33) == 5   # deepest leaf is vrank 31
    assert binomial_depth(48) == 5   # vrank 47 = 0b101111
    # Brute force agreement for all small n.
    for n in range(1, 600):
        want = max(bin(v).count("1") for v in range(n))
        assert binomial_depth(n) == want, n
