"""Unit tests for the benchmark harness and reporting."""

import pytest

from repro.bench import (
    bench_collective,
    format_paper_table,
    format_series,
    run_sweep,
    summarize_speedups,
)
from repro.machine import small_test

PARAMS = small_test(nodes=2, ppn=2)


def test_bench_point_fields():
    p = bench_collective("MPICH", "allgather", 64, PARAMS, warmup=1, iters=3)
    assert p.library == "MPICH"
    assert p.collective == "allgather"
    assert p.nbytes == 64
    assert len(p.iterations) == 3
    assert p.min_us <= p.latency_us <= p.max_us
    assert p.latency_us > 0


def test_bench_deterministic_across_repeats():
    a = bench_collective("MPICH", "allgather", 64, PARAMS, warmup=1, iters=2)
    b = bench_collective("MPICH", "allgather", 64, PARAMS, warmup=1, iters=2)
    assert a.iterations == b.iterations


def test_bench_iterations_stable_after_warmup():
    """The simulator is deterministic: measured iterations agree once
    caches (XPMEM attach) are warm."""
    p = bench_collective("MVAPICH2", "allgather", 64, PARAMS, warmup=1, iters=3)
    assert max(p.iterations) - min(p.iterations) < 0.05 * p.latency_us


def test_warmup_matters_for_xpmem():
    cold = bench_collective("MVAPICH2", "bcast", 4096, PARAMS, warmup=0, iters=1)
    warm = bench_collective("MVAPICH2", "bcast", 4096, PARAMS, warmup=1, iters=1)
    assert warm.latency_us < cold.latency_us


@pytest.mark.parametrize("collective", [
    "bcast", "gather", "scatter", "allgather", "allreduce", "reduce",
    "alltoall", "reduce_scatter", "barrier",
])
@pytest.mark.parametrize("library", ["MPICH", "PiP-MColl"])
def test_every_collective_benches(library, collective):
    p = bench_collective(library, collective, 64, PARAMS, warmup=0, iters=1)
    assert p.latency_us > 0


def test_functional_and_timing_modes_agree():
    f = bench_collective("MPICH", "allgather", 64, PARAMS, functional=True)
    t = bench_collective("MPICH", "allgather", 64, PARAMS, functional=False)
    assert f.iterations == pytest.approx(t.iterations)


def test_invalid_iteration_counts():
    with pytest.raises(ValueError):
        bench_collective("MPICH", "barrier", 0, PARAMS, iters=0)
    with pytest.raises(ValueError):
        bench_collective("MPICH", "barrier", 0, PARAMS, warmup=-1)


def test_sweep_grid_and_speedups():
    sweep = run_sweep("allgather", [16, 64], PARAMS,
                      libraries=["MPICH", "PiP-MColl"], iters=1)
    assert sweep.latency("MPICH", 16) > 0
    lib, lat = sweep.best_other("PiP-MColl", 16)
    assert lib == "MPICH"
    assert sweep.speedup("PiP-MColl", 16) == pytest.approx(
        lat / sweep.latency("PiP-MColl", 16))
    size, factor = sweep.best_speedup("PiP-MColl")
    assert size in (16, 64) and factor > 0


def test_format_paper_table_marks_exclusions():
    sweep = run_sweep("allgather", [16], PARAMS,
                      libraries=["MPICH", "PiP-MColl"], iters=1)
    # Force an exclusion by using a tiny factor.
    table = format_paper_table(sweep, exclude_factor=0.5)
    assert ">(0x)" in table or ">" in table
    full = format_paper_table(sweep, exclude_factor=None)
    assert "MPICH" in full and "PiP-MColl" in full and "16 B" in full


def test_format_series_csv_shape():
    sweep = run_sweep("barrier", [0], PARAMS,
                      libraries=["MPICH", "PiP-MColl"], iters=1)
    lines = format_series(sweep).splitlines()
    assert lines[0].startswith("collective,library")
    assert len(lines) == 1 + 2  # header + 2 libs × 1 size


def test_summarize_speedups_mentions_best():
    sweep = run_sweep("allgather", [16, 64], PARAMS,
                      libraries=["MPICH", "PiP-MColl"], iters=1)
    text = summarize_speedups(sweep)
    assert "best speedup" in text
    assert "PiP-MColl" in text
