"""Tests for the PiP address-space emulation."""

import numpy as np
import pytest

from repro.machine import Cluster
from repro.pip import (
    AddressSpace,
    AddressSpaceViolation,
    BufferNotExposed,
    spawn_tasks,
)


def test_peer_view_is_the_same_memory():
    space = AddressSpace(node_id=0, pip_enabled=True)
    space.join(0)
    space.join(1)
    arr = np.zeros(16, dtype=np.uint8)
    space.expose(0, "buf", arr)
    view = space.peer_view(1, 0, "buf")
    view[3] = 99
    assert arr[3] == 99  # direct load/store, not a copy


def test_non_pip_space_refuses_peer_view():
    space = AddressSpace(node_id=0, pip_enabled=False)
    space.join(0)
    space.join(1)
    space_arr = np.zeros(4, dtype=np.uint8)
    space.expose(0, "buf", space_arr)
    with pytest.raises(AddressSpaceViolation):
        space.peer_view(1, 0, "buf")


def test_non_member_cannot_expose_or_view():
    space = AddressSpace(node_id=0, pip_enabled=True)
    space.join(0)
    with pytest.raises(AddressSpaceViolation):
        space.expose(5, "buf", np.zeros(4, dtype=np.uint8))
    space.expose(0, "buf", np.zeros(4, dtype=np.uint8))
    with pytest.raises(AddressSpaceViolation):
        space.peer_view(5, 0, "buf")
    space.join(1)
    with pytest.raises(AddressSpaceViolation):
        space.peer_view(1, 7, "buf")


def test_unexposed_buffer_raises():
    space = AddressSpace(node_id=0, pip_enabled=True)
    space.join(0)
    space.join(1)
    with pytest.raises(BufferNotExposed):
        space.peer_view(1, 0, "never")


def test_withdraw_removes_exposure():
    space = AddressSpace(node_id=0, pip_enabled=True)
    space.join(0)
    space.join(1)
    space.expose(0, "buf", np.zeros(4, dtype=np.uint8))
    assert space.exposed_count == 1
    space.withdraw(0, "buf")
    assert space.exposed_count == 0
    with pytest.raises(BufferNotExposed):
        space.peer_view(1, 0, "buf")
    space.withdraw(0, "buf")  # idempotent


def test_spawn_tasks_one_space_per_node():
    cluster = Cluster(nodes=3, ppn=2)
    tasks = spawn_tasks(cluster, pip_enabled=True)
    assert len(tasks) == 6
    # Same node → same space; different node → different space.
    assert tasks[0].space is tasks[1].space
    assert tasks[0].space is not tasks[2].space
    assert all(t.is_pip for t in tasks.values())
    assert tasks[5].local_rank == 1


def test_spawn_tasks_classic_processes():
    cluster = Cluster(nodes=2, ppn=2)
    tasks = spawn_tasks(cluster, pip_enabled=False)
    assert not tasks[0].is_pip
    tasks[0].space.expose(0, "b", np.zeros(4, dtype=np.uint8))
    with pytest.raises(AddressSpaceViolation):
        tasks[0].space.peer_view(1, 0, "b")


def test_cross_node_access_impossible_even_with_pip():
    cluster = Cluster(nodes=2, ppn=2)
    tasks = spawn_tasks(cluster, pip_enabled=True)
    tasks[0].space.expose(0, "b", np.zeros(4, dtype=np.uint8))
    # Rank 2 lives on node 1; node 0's space refuses it.
    with pytest.raises(AddressSpaceViolation):
        tasks[0].space.peer_view(2, 0, "b")
