"""Tests for PiP intra-node synchronisation primitives."""

import math

import pytest

from repro.machine import MemoryParams
from repro.pip import NodeBarrier, SharedFlag, SizeSync
from repro.sim import Simulator

MEM = MemoryParams()


def test_flag_wait_then_signal_costs_latency():
    sim = Simulator()
    flag = SharedFlag(sim, MEM)
    seen = []

    def waiter(sim):
        gen = yield flag.wait(1)
        seen.append((sim.now, gen))

    def signaller(sim):
        yield sim.timeout(1.0)
        flag.signal()

    sim.process(waiter(sim))
    sim.process(signaller(sim))
    sim.run()
    assert seen == [(1.0 + MEM.flag_latency, 1)]


def test_flag_signal_before_wait_still_costs_latency():
    sim = Simulator()
    flag = SharedFlag(sim, MEM)
    flag.signal()
    seen = []

    def waiter(sim):
        yield flag.wait(1)
        seen.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert seen == [MEM.flag_latency]


def test_flag_generations_accumulate():
    sim = Simulator()
    flag = SharedFlag(sim, MEM)
    seen = []

    def waiter(sim):
        yield flag.wait(3)
        seen.append(sim.now)

    def signaller(sim):
        for _ in range(3):
            yield sim.timeout(1.0)
            flag.signal()

    sim.process(waiter(sim))
    sim.process(signaller(sim))
    sim.run()
    assert seen == [3.0 + MEM.flag_latency]


def test_barrier_releases_all_at_once():
    sim = Simulator()
    nranks = 8
    bar = NodeBarrier(sim, MEM, nranks)
    releases = []

    def member(sim, tag):
        yield sim.timeout(float(tag))  # staggered arrivals
        yield bar.arrive()
        releases.append((tag, sim.now))

    for tag in range(nranks):
        sim.process(member(sim, tag))
    sim.run()
    expected = (nranks - 1) + math.ceil(math.log2(nranks)) * MEM.flag_latency
    assert all(t == pytest.approx(expected) for _, t in releases)
    assert len(releases) == nranks


def test_barrier_reusable_across_rounds():
    sim = Simulator()
    bar = NodeBarrier(sim, MEM, 2)
    log = []

    def member(sim, tag):
        for round_no in range(3):
            yield bar.arrive()
            log.append((round_no, tag))
            yield sim.timeout(1.0)

    sim.process(member(sim, 0))
    sim.process(member(sim, 1))
    sim.run()
    # Rounds complete in order, both members present in each.
    assert sorted(log[:2]) == [(0, 0), (0, 1)]
    assert sorted(log[2:4]) == [(1, 0), (1, 1)]
    assert sorted(log[4:]) == [(2, 0), (2, 1)]


def test_single_rank_barrier_is_free():
    sim = Simulator()
    bar = NodeBarrier(sim, MEM, 1)
    times = []

    def solo(sim):
        yield bar.arrive()
        times.append(sim.now)

    sim.process(solo(sim))
    sim.run()
    assert times == [0.0]


def test_barrier_invalid_nranks():
    with pytest.raises(ValueError):
        NodeBarrier(Simulator(), MEM, 0)


def test_size_sync_cost_is_two_hops_plus_header():
    ss = SizeSync(MEM)
    assert ss.cost() == pytest.approx(2 * MEM.flag_latency + SizeSync.HEADER_COST)
    # It must be large enough to hurt at small sizes: more than one copy
    # of a 64 B message, which is the paper's explanation for PiP-MPICH
    # sometimes placing last.
    assert ss.cost() > MEM.copy_time(64)
