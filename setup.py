"""Legacy shim so editable installs work offline (no `wheel` package
available, so PEP 660 builds fail; `setup.py develop` does not need it)."""
from setuptools import setup

setup()
