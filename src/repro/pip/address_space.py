"""Emulation of PiP address-space sharing (Hori et al., HPDC '18).

Process-in-Process loads every task (process) on a node into one
virtual address space, so task A can dereference a pointer into task
B's private memory exactly as a thread would — no ``mmap`` of shared
segments (POSIX-SHMEM), no kernel-mediated copy (CMA), no
expose/attach (XPMEM).

In this reproduction every simulated rank lives inside one Python
interpreter, so *physically* any rank could touch any buffer.  The
:class:`AddressSpace` makes the paper's distinction enforceable: ranks
must *expose* buffers, and :meth:`peer_view` hands out a direct numpy
view **only** when both tasks are in the same PiP-enabled address
space.  Transports and collectives for non-PiP libraries never get a
view and must move bytes through staged copies with their own modeled
costs; PiP-based collectives get the view plus a cost model of a plain
user-space copy.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

from .errors import AddressSpaceViolation, BufferNotExposed

Handle = Tuple[int, Hashable]  # (owner world-rank, buffer key)


class AddressSpace:
    """One node's virtual address space.

    Parameters
    ----------
    node_id:
        The node this space belongs to.
    pip_enabled:
        True when tasks on the node were spawned as PiP tasks.  When
        False, :meth:`peer_view` refuses (models classic processes with
        isolated address spaces).
    """

    def __init__(self, node_id: int, pip_enabled: bool) -> None:
        self.node_id = node_id
        self.pip_enabled = pip_enabled
        self._exposed: Dict[Handle, np.ndarray] = {}
        self._members: set[int] = set()

    # -- membership -----------------------------------------------------
    def join(self, rank: int) -> None:
        """Register ``rank`` as a task living in this address space."""
        self._members.add(rank)

    def is_member(self, rank: int) -> bool:
        """True if ``rank`` was loaded into this space."""
        return rank in self._members

    # -- buffer exposure --------------------------------------------------
    def expose(self, owner: int, key: Hashable, array: np.ndarray) -> None:
        """Publish ``array`` under ``(owner, key)``.

        With PiP this is free (the memory is already addressable); we
        still require the call so access patterns stay explicit and
        auditable in tests.
        """
        if not self.is_member(owner):
            raise AddressSpaceViolation(
                f"rank {owner} is not a task in node {self.node_id}'s address space"
            )
        self._exposed[(owner, key)] = array

    def withdraw(self, owner: int, key: Hashable) -> None:
        """Remove a previously exposed buffer."""
        self._exposed.pop((owner, key), None)

    def peer_view(self, requester: int, owner: int, key: Hashable) -> np.ndarray:
        """Direct view of a peer's buffer — the PiP superpower.

        Raises
        ------
        AddressSpaceViolation
            If the space is not PiP-enabled, or either rank is not a
            member (e.g. ranks on different nodes).
        BufferNotExposed
            If the owner never exposed ``key``.
        """
        if not self.pip_enabled:
            raise AddressSpaceViolation(
                f"node {self.node_id}: address space is not shared "
                "(tasks are classic processes); direct peer access is impossible"
            )
        if not self.is_member(requester):
            raise AddressSpaceViolation(
                f"rank {requester} is not a task in node {self.node_id}'s address space"
            )
        if not self.is_member(owner):
            raise AddressSpaceViolation(
                f"rank {owner} is not a task in node {self.node_id}'s address space"
            )
        try:
            return self._exposed[(owner, key)]
        except KeyError:
            raise BufferNotExposed(f"rank {owner} has not exposed buffer {key!r}") from None

    @property
    def exposed_count(self) -> int:
        """Number of currently exposed buffers (leak probe for tests)."""
        return len(self._exposed)
