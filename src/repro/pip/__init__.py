"""Process-in-Process substrate emulation (subsystem S3)."""

from .address_space import AddressSpace
from .errors import AddressSpaceViolation, BufferNotExposed, PipError
from .sync import NodeBarrier, SharedFlag, SizeSync
from .task import PipTask, spawn_tasks

__all__ = [
    "AddressSpace",
    "AddressSpaceViolation",
    "BufferNotExposed",
    "NodeBarrier",
    "PipError",
    "PipTask",
    "SharedFlag",
    "SizeSync",
    "spawn_tasks",
]
