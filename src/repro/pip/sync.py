"""Intra-node synchronisation primitives with modeled costs.

PiP tasks synchronise through ordinary loads and stores on shared
cachelines.  The visibility delay of one store→load pair is
``MemoryParams.flag_latency``; everything here is built from that
single term so the cost model stays auditable.

``SizeSync`` models the overhead the paper observed in its *naive*
PiP-MPICH baseline (§3): every intra-node transfer first synchronises
the message size between sender and receiver, costing a full
store→load round trip plus header handling — which is why PiP-MPICH is
sometimes the *slowest* library at small sizes despite using PiP.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

from ..machine.params import MemoryParams
from ..sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class SharedFlag:
    """A single-writer flag cell; waiters observe a store after
    ``flag_latency``.

    Reusable: each :meth:`signal` increments a generation counter and
    wakes waiters of that generation.
    """

    def __init__(self, sim: Simulator, mem: MemoryParams) -> None:
        self.sim = sim
        self.latency = mem.flag_latency
        self.generation = 0
        self._waiters: List[tuple[int, Event]] = []

    def signal(self) -> None:
        """Store a new value; pending waiters see it ``latency`` later."""
        self.generation += 1
        still_waiting: List[tuple[int, Event]] = []
        for gen, ev in self._waiters:
            if self.generation >= gen:
                self._fire(ev)
            else:
                still_waiting.append((gen, ev))
        self._waiters = still_waiting

    def wait(self, generation: int = 1) -> Event:
        """Event firing once the flag has been signalled ``generation``
        times (cumulative)."""
        ev = Event(self.sim)
        if self.generation >= generation:
            self._fire(ev)
        else:
            self._waiters.append((generation, ev))
        return ev

    def _fire(self, ev: Event) -> None:
        ev._ok = True
        ev._value = self.generation
        self.sim._push(ev, self.latency)


class NodeBarrier:
    """Barrier over the ``nranks`` tasks of one node.

    Cost model: a dissemination barrier needs ``ceil(log2(P))`` rounds
    of flag store→load, so release happens ``rounds × flag_latency``
    after the last arrival.
    """

    def __init__(self, sim: Simulator, mem: MemoryParams, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.sim = sim
        self.nranks = nranks
        self.release_delay = math.ceil(math.log2(nranks)) * mem.flag_latency if nranks > 1 else 0.0
        self._arrived = 0
        self._release = Event(sim)

    def arrive(self) -> Event:
        """Register arrival; the returned event fires at release time."""
        self._arrived += 1
        release = self._release
        if self._arrived == self.nranks:
            self._arrived = 0
            self._release = Event(self.sim)  # fresh event for the next round
            delay = self.release_delay

            def _open(_ev: Event, release: Event = release) -> None:
                release.succeed()

            self.sim.timeout(delay).callbacks.append(_open)
        return release


class SizeSync:
    """The naive PiP-MPICH per-message size synchronisation (paper §3).

    ``cost()`` is charged to the sender of every intra-node message in
    the PiP-MPICH library model: one flag round trip (sender publishes
    the size, receiver acknowledges) plus header bookkeeping.
    """

    #: fixed bookkeeping on top of the two flag hops (writing/parsing the
    #: size header and re-polling the progress engine)
    HEADER_COST = 2.0e-7

    def __init__(self, mem: MemoryParams) -> None:
        self.mem = mem

    def cost(self) -> float:
        """Sender-side stall per intra-node message."""
        return 2.0 * self.mem.flag_latency + self.HEADER_COST
