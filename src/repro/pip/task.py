"""PiP task spawning: which ranks share which address space.

``pip_spawn_node`` mirrors ``pip_spawn()`` from the PiP library: it
creates one :class:`AddressSpace` per node and registers every local
rank as a task inside it.  The same helper builds *non*-shared spaces
for classic MPI libraries, so all libraries go through an identical
bootstrap and differ only in the ``pip_enabled`` capability — keeping
the comparison honest.
"""

from __future__ import annotations

from typing import Dict, List

from ..machine import Cluster
from .address_space import AddressSpace


class PipTask:
    """One task (rank) loaded into a node's address space."""

    __slots__ = ("rank", "local_rank", "space")

    def __init__(self, rank: int, local_rank: int, space: AddressSpace) -> None:
        self.rank = rank
        self.local_rank = local_rank
        self.space = space

    @property
    def is_pip(self) -> bool:
        """True when this task shares its address space with peers."""
        return self.space.pip_enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "pip" if self.is_pip else "proc"
        return f"<PipTask rank={self.rank} local={self.local_rank} {kind}>"


def spawn_tasks(cluster: Cluster, pip_enabled: bool) -> Dict[int, PipTask]:
    """Create one task per rank, grouped into per-node address spaces.

    Returns a map from world rank to its :class:`PipTask`.
    """
    tasks: Dict[int, PipTask] = {}
    spaces: List[AddressSpace] = [
        AddressSpace(node_id, pip_enabled) for node_id in range(cluster.nodes)
    ]
    for rank in cluster.ranks():
        node = cluster.node_of(rank)
        space = spaces[node]
        space.join(rank)
        tasks[rank] = PipTask(rank, cluster.local_rank(rank), space)
    return tasks
