"""PiP substrate errors."""

from __future__ import annotations


class PipError(Exception):
    """Base class for PiP substrate errors."""


class AddressSpaceViolation(PipError):
    """Direct load/store on a peer buffer without PiP address-space sharing.

    Raised when code tries to obtain a peer view while the owning and
    requesting tasks are not in the same (PiP-shared) address space —
    i.e. when a non-PiP MPI library's collective tries to cheat.
    """


class BufferNotExposed(PipError):
    """Lookup of a buffer handle the owner never exposed."""
