"""mpi4py-flavoured facade over the virtual runtime.

For users who think in ``comm.Bcast(buf, root=0)`` rather than in
algorithm functions, :class:`VComm` wraps a :class:`RankContext` with
upper-case, numpy-first methods following mpi4py's buffer-protocol
conventions (``Send``/``Recv``/``Bcast``/``Scatter``/…).  The
collective implementations are whatever the chosen MPI library model
would select for the call's message size — so application code written
against :class:`VComm` can be re-run under every library in the paper
by changing one string.

Usage::

    from repro.api import run_app
    import numpy as np

    def app(comm):
        data = np.full(4, comm.rank, dtype=np.float64)
        total = np.empty_like(data)
        yield from comm.Allreduce(data, total)
        return total.sum()

    results = run_app(app, library="PiP-MColl", nodes=4, ppn=4)

Rank programs remain generators (``yield from`` every communication),
matching the cooperative simulation underneath.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from .machine import MachineParams, broadwell_opa
from .mpilibs import MpiLibrary, make_library
from .runtime import ArrayBuffer, World
from .runtime.context import RankContext
from .runtime.datatypes import from_numpy
from .runtime.ops import ReduceOp, SUM


def _as_buffer(array: np.ndarray) -> ArrayBuffer:
    """Wrap (a contiguous snapshot of) a numpy array for sending."""
    return ArrayBuffer(np.ascontiguousarray(array))


class VComm:
    """An mpi4py-style communicator bound to one simulated rank."""

    def __init__(self, ctx: RankContext, library: MpiLibrary) -> None:
        self._ctx = ctx
        self._lib = library

    # -- introspection -------------------------------------------------
    @property
    def rank(self) -> int:
        """This rank (COMM_WORLD numbering)."""
        return self._ctx.rank

    @property
    def size(self) -> int:
        """World size."""
        return self._ctx.size

    @property
    def node(self) -> int:
        """Node id hosting this rank."""
        return self._ctx.node_id

    @property
    def now(self) -> float:
        """Simulated time (seconds)."""
        return self._ctx.now

    @property
    def ctx(self) -> RankContext:
        """Escape hatch to the low-level context."""
        return self._ctx

    def _algo(self, collective: str, nbytes: int):
        return self._lib.wrapped(collective, nbytes, self.size)

    # -- point-to-point --------------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0):
        """Blocking send of a contiguous numpy array."""
        buf = _as_buffer(array)
        yield from self._ctx.send(buf.view(), dst=dest, tag=tag)

    def Recv(self, array: np.ndarray, source: int, tag: int = -1):
        """Blocking receive into a contiguous numpy array."""
        buf = ArrayBuffer(np.ascontiguousarray(array))
        status = yield from self._ctx.recv(buf.view(), src=source, tag=tag)
        array.reshape(-1).view(np.uint8)[:] = buf.bytes_view
        return status

    def Sendrecv(self, send_array: np.ndarray, dest: int, sendtag: int,
                 recv_array: np.ndarray, source: int, recvtag: int):
        """Paired exchange."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        status = yield from self._ctx.sendrecv(
            sbuf.view(), dest, sendtag, rbuf.view(), source, recvtag)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view
        return status

    # -- collectives ---------------------------------------------------------
    def Barrier(self):
        """World barrier."""
        yield from self._algo("barrier", 0)(self._ctx)

    def Bcast(self, array: np.ndarray, root: int = 0):
        """Broadcast ``array`` from ``root`` (in place everywhere)."""
        buf = ArrayBuffer(np.ascontiguousarray(array))
        yield from self._algo("bcast", buf.nbytes)(self._ctx, buf.view(), root=root)
        array.reshape(-1).view(np.uint8)[:] = buf.bytes_view

    def Scatter(self, send_array: Optional[np.ndarray],
                recv_array: np.ndarray, root: int = 0):
        """Scatter equal blocks of ``send_array`` (root) to everyone."""
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        sbuf = _as_buffer(send_array) if send_array is not None else None
        yield from self._algo("scatter", rbuf.nbytes)(
            self._ctx, sbuf.view() if sbuf else None, rbuf.view(), root=root)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Gather(self, send_array: np.ndarray,
               recv_array: Optional[np.ndarray], root: int = 0):
        """Gather equal blocks to ``root``."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array)) if recv_array is not None else None
        yield from self._algo("gather", sbuf.nbytes)(
            self._ctx, sbuf.view(), rbuf.view() if rbuf else None, root=root)
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Allgather(self, send_array: np.ndarray, recv_array: np.ndarray):
        """Allgather equal blocks."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._algo("allgather", sbuf.nbytes)(
            self._ctx, sbuf.view(), rbuf.view())
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Allreduce(self, send_array: np.ndarray, recv_array: np.ndarray,
                  op: ReduceOp = SUM):
        """Elementwise allreduce (dtype inferred from the arrays)."""
        if send_array.dtype != recv_array.dtype:
            raise ValueError("Allreduce arrays must share a dtype")
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._algo("allreduce", sbuf.nbytes)(
            self._ctx, sbuf.view(), rbuf.view(), dtype, op)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Reduce(self, send_array: np.ndarray,
               recv_array: Optional[np.ndarray], op: ReduceOp = SUM,
               root: int = 0):
        """Elementwise reduce to ``root``."""
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array)) if recv_array is not None else None
        yield from self._algo("reduce", sbuf.nbytes)(
            self._ctx, sbuf.view(), rbuf.view() if rbuf else None,
            dtype, op, root=root)
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Alltoall(self, send_array: np.ndarray, recv_array: np.ndarray):
        """All-to-all of equal blocks."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._algo("alltoall", sbuf.nbytes // self.size)(
            self._ctx, sbuf.view(), rbuf.view())
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    # -- vector collectives (counts in elements, mpi4py-style) -----------
    def Allgatherv(self, send_array: np.ndarray, recv_array: np.ndarray,
                   counts) -> "object":
        """Allgatherv; ``counts`` are per-rank element counts."""
        itemsize = recv_array.dtype.itemsize
        byte_counts = [c * itemsize for c in counts]
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        algo = self._algo("allgatherv", sbuf.nbytes)
        yield from algo(self._ctx, sbuf.view(), rbuf.view(), byte_counts)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Gatherv(self, send_array: np.ndarray,
                recv_array: Optional[np.ndarray], counts=None,
                root: int = 0):
        """Gatherv; root passes per-rank element ``counts``."""
        sbuf = _as_buffer(send_array)
        rbuf = (ArrayBuffer(np.ascontiguousarray(recv_array))
                if recv_array is not None else None)
        byte_counts = None
        if counts is not None:
            itemsize = (recv_array if recv_array is not None
                        else send_array).dtype.itemsize
            byte_counts = [c * itemsize for c in counts]
        algo = self._algo("gatherv", sbuf.nbytes)
        yield from algo(self._ctx, sbuf.view(),
                        rbuf.view() if rbuf else None,
                        counts=byte_counts, root=root)
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Scatterv(self, send_array: Optional[np.ndarray], counts,
                 recv_array: np.ndarray, root: int = 0):
        """Scatterv; root passes per-rank element ``counts``."""
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        sbuf = _as_buffer(send_array) if send_array is not None else None
        byte_counts = None
        if counts is not None:
            byte_counts = [c * recv_array.dtype.itemsize for c in counts]
        algo = self._algo("scatterv", rbuf.nbytes)
        yield from algo(self._ctx, sbuf.view() if sbuf else None,
                        counts=byte_counts, recvview=rbuf.view(), root=root)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    # -- nonblocking -----------------------------------------------------
    def Istart(self, operation):
        """Launch any of this communicator's operations nonblocking::

            req = comm.Istart(comm.Allgather(send, recv))
            ...
            yield from comm.Wait(req)
        """
        return self._ctx.start(operation)

    def Wait(self, request):
        """Complete a request from :meth:`Istart`."""
        result = yield from self._ctx.wait(request)
        return result


def run_app(
    app: Callable[[VComm], Any],
    library: str = "PiP-MColl",
    nodes: int = 4,
    ppn: int = 4,
    params: Optional[MachineParams] = None,
) -> List[Any]:
    """Run an mpi4py-style generator app on every rank; returns the
    per-rank return values (indexed by rank)."""
    lib = make_library(library)
    machine = params if params is not None else broadwell_opa(nodes=nodes, ppn=ppn)
    world: World = lib.make_world(machine)

    def program(ctx):
        comm = VComm(ctx, lib)
        result = yield from app(comm)
        return result

    return world.run(program)
