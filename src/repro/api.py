"""mpi4py-flavoured facade over the virtual runtime.

For users who think in ``comm.Bcast(buf, root=0)`` rather than in
algorithm functions, :class:`VComm` wraps a :class:`RankContext` with
upper-case, numpy-first methods following mpi4py's buffer-protocol
conventions (``Send``/``Recv``/``Bcast``/``Scatter``/…).  The
collective implementations are whatever the chosen MPI library model
would select for the call's message size — so application code written
against :class:`VComm` can be re-run under every library in the paper
by changing one string.

The entry point is :class:`Session`: configure the library and machine
once, then ``session.run(app)`` executes the app on every rank and
returns a :class:`RunResult` carrying the per-rank values *and* the
run's observability artifacts — span timeline, derived metrics, a
Perfetto exporter and critical-path extraction (see
:mod:`repro.obs`)::

    from repro.api import Session
    import numpy as np

    def app(comm):
        data = np.full(4, comm.rank, dtype=np.float64)
        total = np.empty_like(data)
        yield from comm.Allreduce(data, total)
        return total.sum()

    result = Session(library="PiP-MColl", nodes=4, ppn=4).run(app)
    result.values          # per-rank return values
    result.elapsed         # simulated seconds
    result.write_perfetto("trace.json")   # → ui.perfetto.dev
    print(result.critical_path("allreduce").describe())

:func:`run_app` remains as a thin shim with the original signature and
return type (a plain list of per-rank values, tracing off).

Rank programs remain generators (``yield from`` every communication),
matching the cooperative simulation underneath.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from .ft.heal import invoke as _invoke
from .machine import MachineParams, broadwell_opa
from .mpilibs import MpiLibrary, make_library
from .obs import CriticalPath, Metrics, SpanRecorder, TraceTree
from .obs import critical_path as _critical_path
from .obs import to_perfetto as _to_perfetto
from .obs import write_perfetto as _write_perfetto
from .runtime import ArrayBuffer, World
from .runtime.communicator import Communicator
from .runtime.context import RankContext
from .runtime.datatypes import from_numpy
from .runtime.ops import ReduceOp, SUM
from .sim.spec import EngineSpec


def _as_buffer(array: np.ndarray) -> ArrayBuffer:
    """Wrap (a contiguous snapshot of) a numpy array for sending."""
    return ArrayBuffer(np.ascontiguousarray(array))


class VComm:
    """An mpi4py-style communicator bound to one simulated rank.

    Bound either to COMM_WORLD (the default) or — after
    :meth:`Split` — to a sub-communicator.  On a sub-communicator the
    library falls back to its geometry-agnostic algorithm table
    (:meth:`~repro.mpilibs.MpiLibrary.subcomm_algorithm`), exactly as
    real libraries abandon their topology-aware paths off COMM_WORLD.
    """

    def __init__(self, ctx: RankContext, library: MpiLibrary,
                 comm: Optional[Communicator] = None) -> None:
        self._ctx = ctx
        self._lib = library
        self._comm = comm  # None → COMM_WORLD

    # -- introspection -------------------------------------------------
    @property
    def _is_sub(self) -> bool:
        return (self._comm is not None
                and self._comm is not self._ctx.comm_world)

    @property
    def rank(self) -> int:
        """This rank, in this communicator's numbering."""
        if self._is_sub:
            return self._comm.to_comm(self._ctx.rank)
        return self._ctx.rank

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        if self._is_sub:
            return self._comm.size
        return self._ctx.size

    @property
    def node(self) -> int:
        """Node id hosting this rank."""
        return self._ctx.node_id

    @property
    def now(self) -> float:
        """Simulated time (seconds)."""
        return self._ctx.now

    @property
    def ctx(self) -> RankContext:
        """Escape hatch to the low-level context."""
        return self._ctx

    def _algo(self, collective: str, nbytes: int):
        if self._is_sub:
            return self._lib.wrapped(collective, nbytes, self._comm.size,
                                     subcomm=True)
        return self._lib.wrapped(collective, nbytes, self.size)

    def _run(self, collective: str, nbytes: int, spec: dict):
        """Route one collective call: fault-tolerant supervision when
        the world is armed (``ft=True`` plus a bound fault injector),
        the library's plain algorithm otherwise.

        Split communicators always take the plain path — ULFM scopes
        revocation/shrink to the communicator the failure was observed
        on, and this layer implements it for COMM_WORLD, where the
        paper's collectives run.
        """
        ft = self._ctx.world.ft
        if ft is not None and ft.armed and not self._is_sub:
            yield from ft.run_collective(
                self._ctx, self._lib, collective, nbytes, spec,
                self._comm if self._comm is not None
                else self._ctx.comm_world)
        else:
            yield from _invoke(self._ctx, self._algo(collective, nbytes),
                               collective, spec, self._comm)

    # -- fault-tolerance operations (ULFM analogues) -----------------------
    def Revoke(self):
        """MPI_Comm_revoke (generator): notify every member that this
        communicator is revoked; the next collective re-establishes a
        consistent membership before running.  No-op when the session
        is not fault-armed."""
        ft = self._ctx.world.ft
        if ft is None or self._is_sub:
            return
        yield from ft.revoke(self._ctx)

    def Shrink(self):
        """MPI_Comm_shrink (generator): agree on the surviving
        membership; returns the list of surviving world ranks."""
        ft = self._ctx.world.ft
        if ft is None or self._is_sub:
            return list(range(self.size))
        members = yield from ft.shrink(self._ctx)
        return members

    def Agree(self, flag: bool = True):
        """MPI_Comm_agree (generator): crash-tolerant AND of ``flag``
        over the surviving members."""
        ft = self._ctx.world.ft
        if ft is None or self._is_sub:
            return bool(flag)
        result = yield from ft.agree(self._ctx, flag)
        return result

    # -- communicator management -----------------------------------------
    def Split(self, color: Optional[int], key: int = 0):
        """MPI_Comm_split (generator): ranks with equal ``color`` form a
        new communicator ordered by ``(key, old rank)``.

        Returns a new :class:`VComm` over the sub-communicator, or
        ``None`` for ``color=None`` (MPI_UNDEFINED).  Collective over
        this communicator — every rank must call it.
        """
        new_comm = yield from self._ctx.comm_split(color, key,
                                                   comm=self._comm)
        if new_comm is None:
            return None
        return VComm(self._ctx, self._lib, new_comm)

    # -- point-to-point --------------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0):
        """Blocking send of a contiguous numpy array."""
        buf = _as_buffer(array)
        yield from self._ctx.send(buf.view(), dst=dest, tag=tag,
                                  comm=self._comm)

    def Recv(self, array: np.ndarray, source: int, tag: int = -1):
        """Blocking receive into a contiguous numpy array."""
        buf = ArrayBuffer(np.ascontiguousarray(array))
        status = yield from self._ctx.recv(buf.view(), src=source, tag=tag,
                                           comm=self._comm)
        array.reshape(-1).view(np.uint8)[:] = buf.bytes_view
        return status

    def Sendrecv(self, send_array: np.ndarray, dest: int, sendtag: int,
                 recv_array: np.ndarray, source: int, recvtag: int):
        """Paired exchange."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        status = yield from self._ctx.sendrecv(
            sbuf.view(), dest, sendtag, rbuf.view(), source, recvtag,
            comm=self._comm)
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view
        return status

    # -- collectives ---------------------------------------------------------
    def Barrier(self):
        """Barrier over this communicator."""
        yield from self._run("barrier", 0, {})

    def Bcast(self, array: np.ndarray, root: int = 0):
        """Broadcast ``array`` from ``root`` (in place everywhere)."""
        buf = ArrayBuffer(np.ascontiguousarray(array))
        yield from self._run("bcast", buf.nbytes,
                             {"view": buf.view(), "root": root})
        array.reshape(-1).view(np.uint8)[:] = buf.bytes_view

    def Scatter(self, send_array: Optional[np.ndarray],
                recv_array: np.ndarray, root: int = 0):
        """Scatter equal blocks of ``send_array`` (root) to everyone."""
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        sbuf = _as_buffer(send_array) if send_array is not None else None
        yield from self._run("scatter", rbuf.nbytes,
                             {"send": sbuf.view() if sbuf else None,
                              "recv": rbuf.view(), "root": root})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Gather(self, send_array: np.ndarray,
               recv_array: Optional[np.ndarray], root: int = 0):
        """Gather equal blocks to ``root``."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array)) if recv_array is not None else None
        yield from self._run("gather", sbuf.nbytes,
                             {"send": sbuf.view(),
                              "recv": rbuf.view() if rbuf else None,
                              "root": root})
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Allgather(self, send_array: np.ndarray, recv_array: np.ndarray):
        """Allgather equal blocks."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("allgather", sbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view()})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Allreduce(self, send_array: np.ndarray, recv_array: np.ndarray,
                  op: ReduceOp = SUM):
        """Elementwise allreduce (dtype inferred from the arrays)."""
        if send_array.dtype != recv_array.dtype:
            raise ValueError("Allreduce arrays must share a dtype")
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("allreduce", sbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view(),
                              "dtype": dtype, "op": op})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Reduce(self, send_array: np.ndarray,
               recv_array: Optional[np.ndarray], op: ReduceOp = SUM,
               root: int = 0):
        """Elementwise reduce to ``root``."""
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array)) if recv_array is not None else None
        yield from self._run("reduce", sbuf.nbytes,
                             {"send": sbuf.view(),
                              "recv": rbuf.view() if rbuf else None,
                              "dtype": dtype, "op": op, "root": root})
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Alltoall(self, send_array: np.ndarray, recv_array: np.ndarray):
        """All-to-all of equal blocks."""
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("alltoall", sbuf.nbytes // self.size,
                             {"send": sbuf.view(), "recv": rbuf.view()})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Reduce_scatter(self, send_array: np.ndarray,
                       recv_array: np.ndarray, recvcounts=None,
                       op: ReduceOp = SUM):
        """Reduce-scatter: elementwise reduce ``send_array`` across the
        communicator, block ``i`` lands on rank ``i``.

        Only the block-regular case is modeled (uniform
        ``recvcounts``); that is also all the paper's benchmark surface
        exercises.  ``recvcounts=None`` infers the uniform block from
        ``recv_array``.
        """
        if recvcounts is not None and len(set(recvcounts)) > 1:
            raise NotImplementedError(
                "Reduce_scatter models uniform recvcounts only "
                "(block-regular reduce-scatter)"
            )
        if send_array.dtype != recv_array.dtype:
            raise ValueError("Reduce_scatter arrays must share a dtype")
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("reduce_scatter", rbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view(),
                              "dtype": dtype, "op": op})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Reduce_scatter_block(self, send_array: np.ndarray,
                             recv_array: np.ndarray, op: ReduceOp = SUM):
        """MPI_Reduce_scatter_block — alias of the uniform case."""
        yield from self.Reduce_scatter(send_array, recv_array, op=op)

    def Scan(self, send_array: np.ndarray, recv_array: np.ndarray,
             op: ReduceOp = SUM):
        """Inclusive prefix reduction: rank ``i`` gets ranks ``0..i``."""
        if send_array.dtype != recv_array.dtype:
            raise ValueError("Scan arrays must share a dtype")
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("scan", sbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view(),
                              "dtype": dtype, "op": op})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Exscan(self, send_array: np.ndarray, recv_array: np.ndarray,
               op: ReduceOp = SUM):
        """Exclusive prefix reduction: rank ``i`` gets ranks ``0..i-1``
        (rank 0's receive buffer is left untouched, as in MPI)."""
        if send_array.dtype != recv_array.dtype:
            raise ValueError("Exscan arrays must share a dtype")
        dtype = from_numpy(send_array.dtype)
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("exscan", sbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view(),
                              "dtype": dtype, "op": op})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    # -- vector collectives (counts in elements, mpi4py-style) -----------
    def Allgatherv(self, send_array: np.ndarray, recv_array: np.ndarray,
                   counts) -> "object":
        """Allgatherv; ``counts`` are per-rank element counts."""
        itemsize = recv_array.dtype.itemsize
        byte_counts = [c * itemsize for c in counts]
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("allgatherv", sbuf.nbytes,
                             {"send": sbuf.view(), "recv": rbuf.view(),
                              "counts": byte_counts})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Gatherv(self, send_array: np.ndarray,
                recv_array: Optional[np.ndarray], counts=None,
                root: int = 0):
        """Gatherv; root passes per-rank element ``counts``."""
        sbuf = _as_buffer(send_array)
        rbuf = (ArrayBuffer(np.ascontiguousarray(recv_array))
                if recv_array is not None else None)
        byte_counts = None
        if counts is not None:
            itemsize = (recv_array if recv_array is not None
                        else send_array).dtype.itemsize
            byte_counts = [c * itemsize for c in counts]
        yield from self._run("gatherv", sbuf.nbytes,
                             {"send": sbuf.view(),
                              "recv": rbuf.view() if rbuf else None,
                              "counts": byte_counts, "root": root})
        if recv_array is not None:
            recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Scatterv(self, send_array: Optional[np.ndarray], counts,
                 recv_array: np.ndarray, root: int = 0):
        """Scatterv; root passes per-rank element ``counts``."""
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        sbuf = _as_buffer(send_array) if send_array is not None else None
        byte_counts = None
        if counts is not None:
            byte_counts = [c * recv_array.dtype.itemsize for c in counts]
        yield from self._run("scatterv", rbuf.nbytes,
                             {"send": sbuf.view() if sbuf else None,
                              "counts": byte_counts, "recv": rbuf.view(),
                              "root": root})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    def Alltoallv(self, send_array: np.ndarray, sendcounts: Sequence[int],
                  recv_array: np.ndarray, recvcounts: Sequence[int]):
        """Alltoallv; per-destination / per-source element counts,
        blocks packed contiguously (displacements = running sums)."""
        itemsize = send_array.dtype.itemsize
        send_bytes = [c * itemsize for c in sendcounts]
        recv_bytes = [c * recv_array.dtype.itemsize for c in recvcounts]
        sbuf = _as_buffer(send_array)
        rbuf = ArrayBuffer(np.ascontiguousarray(recv_array))
        yield from self._run("alltoallv", max(send_bytes, default=0),
                             {"send": sbuf.view(), "send_counts": send_bytes,
                              "recv": rbuf.view(),
                              "recv_counts": recv_bytes})
        recv_array.reshape(-1).view(np.uint8)[:] = rbuf.bytes_view

    # -- nonblocking -----------------------------------------------------
    def Ibcast(self, array: np.ndarray, root: int = 0):
        """Nonblocking broadcast; returns a request for :meth:`Wait`."""
        return self._ctx.start(self.Bcast(array, root=root))

    def Iallgather(self, send_array: np.ndarray, recv_array: np.ndarray):
        """Nonblocking allgather; returns a request for :meth:`Wait`."""
        return self._ctx.start(self.Allgather(send_array, recv_array))

    def Iallreduce(self, send_array: np.ndarray, recv_array: np.ndarray,
                   op: ReduceOp = SUM):
        """Nonblocking allreduce; returns a request for :meth:`Wait`."""
        return self._ctx.start(self.Allreduce(send_array, recv_array, op=op))

    def Ibarrier(self):
        """Nonblocking barrier; returns a request for :meth:`Wait`."""
        return self._ctx.start(self.Barrier())

    def Wait(self, request):
        """Complete a request from a nonblocking operation."""
        result = yield from self._ctx.wait(request)
        return result


class RunResult:
    """Everything one :meth:`Session.run` produced.

    Sequence protocol delegates to :attr:`values`, so code written for
    the old ``run_app`` list (``result[0]``, ``len(result)``,
    iteration) keeps working on a :class:`RunResult`.
    """

    def __init__(self, values: List[Any], elapsed: float,
                 trace: Optional[TraceTree], metrics: Optional[Metrics],
                 stats: dict, library: str, world: World,
                 resources: "Optional[Any]" = None) -> None:
        #: per-rank app return values, indexed by world rank
        self.values = values
        #: the resolved :class:`~repro.sim.spec.EngineSpec` the run
        #: executed on (including any auto-downgrades that fired)
        self.engine = world.engine
        #: simulated wall-clock of the whole run (seconds)
        self.elapsed = elapsed
        #: span timeline (:class:`~repro.obs.TraceTree`), or None when
        #: the session ran with ``trace=False``
        self.trace = trace
        #: derived :class:`~repro.obs.Metrics`, or None untraced
        self.metrics = metrics
        #: end-of-run hardware counters (``World.stats()``)
        self.stats = stats
        #: library model name the session ran under
        self.library = library
        #: the simulated world (hardware state, cluster geometry)
        self.world = world
        #: :class:`~repro.obs.ResourceMonitor` with per-facility busy
        #: timelines, or None when the session ran ``resources=False``
        self.resources = resources

    # -- sequence protocol over the per-rank values -----------------------
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx):
        return self.values[idx]

    def __iter__(self):
        return iter(self.values)

    def _require_trace(self) -> TraceTree:
        if self.trace is None:
            raise RuntimeError(
                "this run was not traced; construct the Session with "
                "trace=True (the default) to record spans"
            )
        return self.trace

    # -- observability exports -------------------------------------------
    def to_perfetto(self) -> dict:
        """The run as a Chrome trace-event object (ui.perfetto.dev).

        When the session ran with ``resources=True``, per-facility
        busy/queue counter tracks ride along with the spans.
        """
        return _to_perfetto(self._require_trace(),
                            node_of=self.world.node_of(),
                            resources=self.resources)

    def write_perfetto(self, path) -> None:
        """Write :meth:`to_perfetto` as JSON to ``path``."""
        _write_perfetto(self._require_trace(), path,
                        node_of=self.world.node_of(),
                        resources=self.resources)

    def critical_path(self, collective: Optional[str] = None) -> CriticalPath:
        """Critical path through the message-dependency graph (of one
        ``collective`` span by name, or of the whole run)."""
        return _critical_path(self._require_trace(), collective=collective)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        traced = "traced" if self.trace is not None else "untraced"
        return (f"<RunResult {self.library} ranks={len(self.values)} "
                f"elapsed={self.elapsed:.3e}s {traced}>")


class Session:
    """Configured entry point: library + machine + observability.

    A session is reusable — every :meth:`run` builds a fresh
    :class:`World` so runs never share simulator or hardware state.
    """

    def __init__(self, library: str = "PiP-MColl", nodes: int = 4,
                 ppn: int = 4, params: Optional[MachineParams] = None,
                 trace: bool = True, resources: bool = False,
                 engine: "Union[str, EngineSpec, None]" = None,
                 **world_kwargs) -> None:
        # Accepts a name, a registered-instance name, a ``tuned:<db>``
        # spec, or an MpiLibrary instance (see mpilibs.registry).
        self._lib = make_library(library)
        self.library = self._lib.profile.name
        self.machine = (params if params is not None
                        else broadwell_opa(nodes=nodes, ppn=ppn))
        #: record spans + metrics during runs (adds zero simulated time)
        self.trace = trace
        #: record per-resource busy/queue timelines during runs
        self.resources = resources
        #: requested engine — name (``"sharded:8"``), resolved
        #: :class:`~repro.sim.spec.EngineSpec`, or None (default).
        #: The *resolved* spec of each run is on ``RunResult.engine``.
        self.engine = engine
        self._world_kwargs = world_kwargs

    def run(self, app: Callable[[VComm], Any]) -> RunResult:
        """Run an mpi4py-style generator app on every rank."""
        # The recorder rides through the World constructor (not
        # attach_obs) so engine resolution sees it — sharded/analytic
        # requests auto-downgrade instead of erroring.
        recorder = SpanRecorder() if self.trace else None
        world: World = self._lib.make_world(self.machine,
                                            resources=self.resources,
                                            engine=self.engine,
                                            obs=recorder,
                                            **self._world_kwargs)
        lib = self._lib

        armed = world.ft is not None and world.ft.armed

        def program(ctx):
            comm = VComm(ctx, lib)
            if recorder is None:
                result = yield from app(comm)
            else:
                with recorder.span(ctx.rank, "run", cat="run",
                                   library=lib.profile.name):
                    result = yield from app(comm)
            if armed:
                # Crashed ranks never reach this; excluded ranks return
                # early inside — only clean survivors drain and retire
                # their responders.
                yield from world.ft.rank_shutdown(ctx)
            return result

        values = world.run(program, allow_unfinished=armed)
        elapsed = world.sim.now
        trace = None
        metrics = None
        if recorder is not None:
            recorder.finalize(world)
            trace = recorder.tree()
            metrics = recorder.metrics
        return RunResult(values=values, elapsed=elapsed, trace=trace,
                         metrics=metrics, stats=world.stats(),
                         library=self.library, world=world,
                         resources=world.resources)

    def sweep(self, collective: str, sizes: Sequence[int], *,
              libraries: Optional[Sequence] = None, warmup: int = 1,
              iters: int = 3, cache=None, workers: int = 1,
              progress=None):
        """Benchmark ``collective`` across ``sizes`` on this session's
        machine and engine (default: just this session's library).

        ``cache`` (a directory or :class:`~repro.service.ResultCache`)
        and ``workers`` route the grid through the sweep service —
        warm cells are file reads, cold cells batch across forked
        workers, and ``progress`` streams per-cell events.  Returns
        the :class:`~repro.bench.harness.Sweep`.
        """
        from .bench import run_sweep

        libs = list(libraries) if libraries is not None else [self._lib]
        return run_sweep(collective, list(sizes), self.machine,
                         libraries=libs, warmup=warmup, iters=iters,
                         engine=self.engine, cache=cache, workers=workers,
                         progress=progress)


def run_app(
    app: Callable[[VComm], Any],
    library: str = "PiP-MColl",
    nodes: int = 4,
    ppn: int = 4,
    params: Optional[MachineParams] = None,
) -> List[Any]:
    """Run an mpi4py-style generator app on every rank; returns the
    per-rank return values (indexed by rank).

    .. deprecated::
        Thin alias over :class:`Session` kept for existing callers —
        same signature, same plain-list return, tracing off.  New code
        should construct a :class:`Session`;
        ``Session(...).run(app).values`` is this function's return
        value.  Plain (non-generator) mpi4py-style functions run
        unmodified through :func:`repro.shim.run`.
    """
    warnings.warn(
        "run_app() is deprecated; use Session(...).run(app) for "
        "generator apps (.values on the RunResult is run_app's old "
        "return value), or repro.shim.run(fn) to run plain mpi4py-style "
        "functions unmodified",
        DeprecationWarning, stacklevel=2,
    )
    session = Session(library=library, nodes=nodes, ppn=ppn, params=params,
                      trace=False)
    return session.run(app).values
