"""MPI library models.

A library model = an intra-node transport choice + an algorithm
selection table + a per-call software overhead.  That triple is what
actually differs between the five stacks the paper benchmarks (plus
PiP-MColl itself); encoding it explicitly keeps the comparison honest
and auditable.

``algorithm(collective, nbytes, world_size)`` returns a generator
function with the standard signature for that collective family (see
:mod:`repro.collectives.base`), already selected for the message size
— mirroring the tuned decision tables real libraries ship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..machine import MachineParams
from ..runtime import World

#: collectives every library must provide (benchmarkable surface)
COLLECTIVES = (
    "bcast",
    "gather",
    "scatter",
    "allgather",
    "allreduce",
    "reduce",
    "alltoall",
    "reduce_scatter",
    "barrier",
)

#: vector variants (variable per-rank counts); also selectable via
#: :meth:`MpiLibrary.algorithm`
V_COLLECTIVES = ("gatherv", "scatterv", "allgatherv", "alltoallv")

#: prefix reductions; also selectable via :meth:`MpiLibrary.algorithm`
SCAN_COLLECTIVES = ("scan", "exscan")


@dataclass(frozen=True)
class LibraryProfile:
    """Static facts about one library model."""

    name: str
    intra: str  # transport registry name
    call_overhead: float  # software stack depth per collective call (s)
    description: str


class MpiLibrary:
    """Base library model.  Subclasses fill in the selection table."""

    profile: LibraryProfile

    #: failure unit of the library's runtime: ``"rank"`` — one process
    #: per rank dies alone; ``"node"`` — ranks are objects inside one
    #: process-in-process address space, so a crash takes out the whole
    #: node's worth of them (the fault-tolerance layer widens agreed
    #: exclusions accordingly)
    ft_crash_scope = "rank"

    def degraded_algorithm(self, collective: str, nbytes: int,
                           size: int) -> Callable:
        """The algorithm a *recovered* (shrunken/degraded) communicator
        runs: flat, geometry-agnostic point-to-point.

        After a failure the node-structured fast paths are off the
        table — a survivor set has holes in its node geometry, and an
        interrupted attempt may have poisoned node-barrier and
        shared-staging state that only the flat algorithms are immune
        to.  Same selection the library uses for arbitrary split
        communicators.
        """
        return flat_algorithm(collective, nbytes, size)

    def make_world(self, params: MachineParams, functional: bool = True,
                   **world_kwargs) -> World:
        """A fresh world wired with this library's transport.

        Extra keyword arguments go straight to :class:`World` — how
        chaos runs thread ``faults=`` / ``reliable=`` through the
        benchmark harness without per-library plumbing.
        """
        return World(params, intra=self.profile.intra, functional=functional,
                     **world_kwargs)

    # -- selection table -------------------------------------------------
    def algorithm(self, collective: str, nbytes: int, world_size: int) -> Callable:
        """The algorithm this library runs for ``collective`` at
        ``nbytes`` per-process bytes on ``world_size`` ranks."""
        if (collective not in COLLECTIVES and collective not in V_COLLECTIVES
                and collective not in SCAN_COLLECTIVES):
            raise KeyError(
                f"unknown collective {collective!r}; available: "
                f"{COLLECTIVES + V_COLLECTIVES + SCAN_COLLECTIVES}"
            )
        picker: Optional[Callable] = getattr(self, f"_pick_{collective}", None)
        if picker is None:
            raise NotImplementedError(
                f"{self.profile.name} does not implement {collective}"
            )
        return picker(nbytes, world_size)

    def subcomm_algorithm(self, collective: str, nbytes: int,
                          comm_size: int) -> Callable:
        """The algorithm to run for ``collective`` on a **split**
        communicator of ``comm_size`` ranks.

        The tuned tables above may select algorithms that exploit
        COMM_WORLD's node structure (PiP-MColl's multi-object schedules,
        the hierarchical leader variants) — structure an arbitrary
        ``comm_split`` group does not have.  Real libraries fall back to
        flat, geometry-agnostic algorithms there; so do we.
        """
        return flat_algorithm(collective, nbytes, comm_size)

    def wrapped(self, collective: str, nbytes: int, world_size: int,
                subcomm: bool = False) -> Callable:
        """Like :meth:`algorithm` but with the library's per-call
        software overhead charged at entry (what benchmarks run).

        With an attached :class:`~repro.obs.SpanRecorder` the whole
        call is wrapped in a ``collective`` span carrying the library,
        algorithm and payload size.  ``subcomm=True`` selects via
        :meth:`subcomm_algorithm` (split-communicator calls).
        """
        if subcomm:
            algo = self.subcomm_algorithm(collective, nbytes, world_size)
        else:
            algo = self.algorithm(collective, nbytes, world_size)
        overhead = self.profile.call_overhead
        library = self.profile.name

        def with_overhead(ctx, *args, **kwargs):
            obs = ctx.world.obs
            if obs is None:
                yield ctx.sim.timeout(overhead)
                analytic = ctx.world.analytic
                if analytic is not None:
                    gen = analytic.intercept(algo, ctx, args, kwargs)
                    if gen is not None:
                        yield from gen
                        return
                yield from algo(ctx, *args, **kwargs)
                return
            with obs.span(ctx.rank, collective, cat="collective",
                          library=library, algorithm=algo.__name__,
                          nbytes=nbytes):
                yield ctx.sim.timeout(overhead)
                yield from algo(ctx, *args, **kwargs)

        with_overhead.__name__ = f"{self.profile.name}:{collective}"
        return with_overhead

    # -- vector collectives: production libraries all use linear /
    # ring / pairwise here (trees can't split unknown counts), so the
    # defaults live in the base class; PiP-MColl overrides what the
    # paper's design generalises to.
    def _pick_gatherv(self, nbytes, size):
        from ..collectives import gatherv_linear

        return gatherv_linear

    def _pick_scatterv(self, nbytes, size):
        from ..collectives import scatterv_linear

        return scatterv_linear

    def _pick_allgatherv(self, nbytes, size):
        from ..collectives import allgatherv_ring

        return allgatherv_ring

    def _pick_alltoallv(self, nbytes, size):
        from ..collectives import alltoallv_pairwise

        return alltoallv_pairwise

    def _pick_scan(self, nbytes, size):
        from ..collectives import scan_recursive_doubling

        return scan_recursive_doubling

    def _pick_exscan(self, nbytes, size):
        from ..collectives import exscan_linear

        return exscan_linear

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiLibrary {self.profile.name}>"


def is_pow2(n: int) -> bool:
    """True for powers of two (algorithm selection guard)."""
    return n > 0 and (n & (n - 1)) == 0


def flat_algorithm(collective: str, nbytes: int, size: int) -> Callable:
    """Geometry-agnostic selection for arbitrary communicators.

    Every algorithm here honours the ``comm=`` argument and assumes
    nothing about node placement, so it is safe on any
    ``MPI_Comm_split`` result.  Message-size tuning is deliberately
    coarse — split communicators are control plane, not the hot path.
    """
    from .. import collectives as C

    if collective == "bcast":
        return C.bcast_binomial
    if collective == "gather":
        return C.gather_binomial
    if collective == "scatter":
        return C.scatter_binomial
    if collective == "allgather":
        return (C.allgather_recursive_doubling if is_pow2(size)
                else C.allgather_bruck)
    if collective == "allreduce":
        return C.allreduce_recursive_doubling
    if collective == "reduce":
        return C.reduce_binomial
    if collective == "alltoall":
        return C.alltoall_bruck
    if collective == "reduce_scatter":
        return (C.reduce_scatter_recursive_halving if is_pow2(size)
                else C.reduce_scatter_reduce_then_scatter)
    if collective == "barrier":
        return C.barrier_dissemination
    if collective == "scan":
        return C.scan_recursive_doubling
    if collective == "exscan":
        return C.exscan_linear
    if collective == "gatherv":
        return C.gatherv_linear
    if collective == "scatterv":
        return C.scatterv_linear
    if collective == "allgatherv":
        return C.allgatherv_ring
    if collective == "alltoallv":
        return C.alltoallv_pairwise
    raise KeyError(
        f"no split-communicator algorithm for {collective!r}"
    )
