"""MVAPICH2 model: CMA/XPMEM intra-node + two-level collectives.

MVAPICH2 ships hierarchical ("2-level") collectives enabled by default
for allgather/bcast/allreduce on multi-core nodes, with XPMEM-based
reductions (Hashmi et al., the paper's reference [2]) — single copy,
but attach/expose overhead at small sizes.  Rooted scatter/gather stay
flat binomial.
"""

from __future__ import annotations

from ..collectives import (
    allgather_bruck,
    allgather_ring,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_ring_pipeline,
    gather_binomial,
    hier_allgather,
    hier_allreduce,
    hier_bcast,
    reduce_binomial,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scatter_binomial,
)
from .base import LibraryProfile, MpiLibrary, is_pow2


class Mvapich(MpiLibrary):
    """MVAPICH2 with XPMEM shared memory and 2-level collectives."""

    profile = LibraryProfile(
        name="MVAPICH2",
        intra="xpmem",
        call_overhead=1.3e-7,
        description="XPMEM single copy (attach cached) + 2-level collectives",
    )

    def _pick_bcast(self, nbytes, size):
        return hier_bcast if nbytes <= 65536 else bcast_ring_pipeline

    def _pick_gather(self, nbytes, size):
        return gather_binomial

    def _pick_scatter(self, nbytes, size):
        return scatter_binomial

    def _pick_allgather(self, nbytes, size):
        # MV2's default allgather is Bruck/RD (flat); the 2-level
        # variant is opt-in and kicks in for medium sizes here.
        if nbytes <= 1024:
            return allgather_bruck
        if nbytes <= 8192:
            return hier_allgather
        return allgather_ring

    def _pick_allreduce(self, nbytes, size):
        return hier_allreduce if nbytes <= 16384 else allreduce_recursive_doubling

    def _pick_reduce(self, nbytes, size):
        return reduce_binomial

    def _pick_alltoall(self, nbytes, size):
        return alltoall_bruck if nbytes <= 256 else alltoall_pairwise

    def _pick_reduce_scatter(self, nbytes, size):
        if is_pow2(size):
            return reduce_scatter_recursive_halving
        return reduce_scatter_reduce_then_scatter

    def _pick_barrier(self, nbytes, size):
        return barrier_dissemination
