"""PiP-MPICH: the paper's *naive* baseline (§3).

MPICH's algorithms, unchanged, running over the PiP transport with its
per-message size synchronisation.  PiP removes the double copy, but
the size handshake stalls the sender on every intra-node message —
which is why the paper observes PiP-MPICH "sometimes has the worst
performance among all the MPI implementations" at small sizes.
"""

from __future__ import annotations

from .base import LibraryProfile
from .mpich import Mpich


class PipMpich(Mpich):
    """MPICH algorithms over naive PiP (size-sync per message)."""

    profile = LibraryProfile(
        name="PiP-MPICH",
        intra="pip_sizesync",
        call_overhead=1.5e-7,
        description="MPICH decision table over PiP with per-message size sync",
    )

    #: PiP address-space sharing: a crash takes the whole node down
    ft_crash_scope = "node"
