"""Library registry — the paper's benchmark lineup plus extensions.

Three ways to get a library:

* a built-in display name (``"PiP-MColl"``) — instantiates the class;
* a registered **instance** name (:func:`register_library`) — e.g. a
  compiled :class:`~repro.tuner.compile.TunedLibrary`;
* a ``tuned:<path>.tunedb.json`` spec string — compiles the tuning DB
  at that path on the fly (see :mod:`repro.tuner`).

Passing an :class:`MpiLibrary` instance to :func:`make_library` is
also accepted (returned as-is), so every ``library=`` argument in the
repo takes names, specs, and objects interchangeably.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from .base import MpiLibrary
from .intelmpi import IntelMpi
from .mpich import Mpich
from .mvapich import Mvapich
from .openmpi import OpenMpi
from .pip_mcoll import PipMColl
from .pip_mpich import PipMpich

_LIBRARIES: Dict[str, Type[MpiLibrary]] = {
    cls.profile.name: cls
    for cls in (Mpich, OpenMpi, Mvapich, IntelMpi, PipMpich, PipMColl)
}

#: named library *instances* (tuned libraries, test doubles, ...)
_INSTANCES: Dict[str, MpiLibrary] = {}

#: prefix of on-the-fly tuning-DB specs
TUNED_PREFIX = "tuned:"

#: the lineup of the paper's figures, in plot order
PAPER_LINEUP = ("OpenMPI", "MVAPICH2", "IntelMPI", "MPICH", "PiP-MPICH", "PiP-MColl")
#: every comparator except the paper's system
BASELINES = tuple(n for n in PAPER_LINEUP if n != "PiP-MColl")


def register_library(lib: MpiLibrary, name: str = None) -> str:
    """Register a library *instance* under ``name`` (defaults to its
    profile name) so it resolves anywhere a library name is accepted.

    Returns the registered name.  Re-registering a name replaces the
    instance; shadowing a built-in class name is rejected.
    """
    if not isinstance(lib, MpiLibrary):
        raise TypeError(
            f"register_library needs an MpiLibrary, got {type(lib).__name__}"
        )
    name = name if name is not None else lib.profile.name
    if name in _LIBRARIES:
        raise KeyError(f"{name!r} is a built-in library name")
    _INSTANCES[name] = lib
    return name


def unregister_library(name: str) -> None:
    """Remove a registered instance (missing names are a no-op)."""
    _INSTANCES.pop(name, None)


def validate_library_spec(spec: str) -> str:
    """Check that a string will resolve via :func:`make_library`
    without building anything (``tuned:`` DBs compile lazily, so only
    the spec *form* is checked here; the path is read at resolve time).

    The one place library-spec syntax is known — the CLI's parse-time
    validation, :class:`~repro.api.Session` and the bench harness all
    funnel through it (the latter two via :func:`make_library`).
    Returns the spec unchanged; raises ``KeyError`` otherwise.
    """
    if not isinstance(spec, str):
        raise TypeError(
            f"library must be a name, spec, or MpiLibrary instance; "
            f"got {type(spec).__name__}"
        )
    if (spec.startswith(TUNED_PREFIX) or spec in _LIBRARIES
            or spec in _INSTANCES):
        return spec
    known = sorted(_LIBRARIES) + sorted(_INSTANCES)
    raise KeyError(
        f"unknown MPI library {spec!r}; available: {known}, "
        f"or a '{TUNED_PREFIX}<path>.tunedb.json' spec"
    )


def make_library(name: Union[str, MpiLibrary]) -> MpiLibrary:
    """Resolve a library: instance, display name, registered-instance
    name, or ``tuned:<path>`` spec."""
    if isinstance(name, MpiLibrary):
        return name
    validate_library_spec(name)
    if name.startswith(TUNED_PREFIX):
        from ..tuner import compile_db

        return compile_db(name[len(TUNED_PREFIX):])
    cls = _LIBRARIES.get(name)
    if cls is not None:
        return cls()
    return _INSTANCES[name]


def available_libraries(include_registered: bool = False) -> List[str]:
    """Names accepted by :func:`make_library`.

    The default lists only the built-in models (what the paper lineup
    enumerates); ``include_registered=True`` adds instance names.
    """
    names = sorted(_LIBRARIES)
    if include_registered:
        names += sorted(_INSTANCES)
    return names
