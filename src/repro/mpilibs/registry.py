"""Library registry — the paper's benchmark lineup."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import MpiLibrary
from .intelmpi import IntelMpi
from .mpich import Mpich
from .mvapich import Mvapich
from .openmpi import OpenMpi
from .pip_mcoll import PipMColl
from .pip_mpich import PipMpich

_LIBRARIES: Dict[str, Type[MpiLibrary]] = {
    cls.profile.name: cls
    for cls in (Mpich, OpenMpi, Mvapich, IntelMpi, PipMpich, PipMColl)
}

#: the lineup of the paper's figures, in plot order
PAPER_LINEUP = ("OpenMPI", "MVAPICH2", "IntelMPI", "MPICH", "PiP-MPICH", "PiP-MColl")
#: every comparator except the paper's system
BASELINES = tuple(n for n in PAPER_LINEUP if n != "PiP-MColl")


def make_library(name: str) -> MpiLibrary:
    """Instantiate a library model by its display name."""
    try:
        cls = _LIBRARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown MPI library {name!r}; available: {sorted(_LIBRARIES)}"
        ) from None
    return cls()


def available_libraries() -> List[str]:
    """Names accepted by :func:`make_library`."""
    return sorted(_LIBRARIES)
