"""PiP-MColl: the paper's contribution as a library model.

Multi-object collectives over the PiP transport.  Small/medium
messages use the multi-object Bruck/tree algorithms; large messages
switch to the multi-object striped ring (the paper's "also boosts
performance for larger messages").  Collectives the paper leaves
untouched (reduce) fall back to sane baselines that still benefit from
the PiP transport.
"""

from __future__ import annotations

from ..core import (
    mcoll_allgather,
    mcoll_allreduce_rsag,
    mcoll_allgather_large,
    mcoll_allreduce,
    mcoll_alltoall,
    mcoll_barrier,
    mcoll_bcast,
    mcoll_gather,
    mcoll_reduce,
    mcoll_reduce_scatter,
    mcoll_scatter,
)
from ..collectives import (
    allreduce_recursive_doubling,
    bcast_ring_pipeline,
)
from .base import LibraryProfile, MpiLibrary, is_pow2

#: per-process size above which allgather switches to the striped ring
ALLGATHER_LARGE = 8192
#: message size above which bcast switches to the pipelined ring
BCAST_LARGE = 262144


class PipMColl(MpiLibrary):
    """The paper's system."""

    profile = LibraryProfile(
        name="PiP-MColl",
        intra="pip",
        call_overhead=1.2e-7,
        description="multi-object collectives over PiP address-space sharing",
    )

    #: all of a node's ranks live in one PiP address space — one crash
    #: kills the whole node's worth of rank objects
    ft_crash_scope = "node"

    def _pick_bcast(self, nbytes, size):
        return mcoll_bcast if nbytes <= BCAST_LARGE else bcast_ring_pipeline

    def _pick_gather(self, nbytes, size):
        return mcoll_gather

    def _pick_scatter(self, nbytes, size):
        return mcoll_scatter

    def _pick_allgather(self, nbytes, size):
        return mcoll_allgather if nbytes <= ALLGATHER_LARGE else mcoll_allgather_large

    def _pick_allreduce(self, nbytes, size):
        def pick(ctx, send, recv, dtype, op, comm=None):
            if is_pow2(ctx.cluster.nodes):
                yield from mcoll_allreduce(ctx, send, recv, dtype, op, comm=comm)
            elif not send.nbytes % (size * dtype.size):
                # Any node count: multi-object reduce-scatter + allgather.
                yield from mcoll_allreduce_rsag(ctx, send, recv, dtype, op,
                                                comm=comm)
            else:
                yield from allreduce_recursive_doubling(ctx, send, recv, dtype,
                                                        op, comm=comm)

        pick.__name__ = "mcoll_allreduce_auto"
        return pick

    def _pick_reduce(self, nbytes, size):
        return mcoll_reduce

    def _pick_alltoall(self, nbytes, size):
        return mcoll_alltoall

    def _pick_reduce_scatter(self, nbytes, size):
        return mcoll_reduce_scatter

    def _pick_barrier(self, nbytes, size):
        return mcoll_barrier

    def _pick_scan(self, nbytes, size):
        from ..core import mcoll_scan

        return mcoll_scan

    def _pick_allgatherv(self, nbytes, size):
        from ..core import mcoll_allgatherv

        def adapter(ctx, sendview, recvview, counts, displs=None, comm=None):
            yield from mcoll_allgatherv(ctx, sendview, recvview, counts,
                                        displs=displs, comm=comm)

        adapter.__name__ = "mcoll_allgatherv"
        return adapter
