"""Open MPI model: vader/CMA intra-node + tuned-module decision table.

Open MPI's ``coll/tuned`` defaults are close to MPICH's shapes but
with different cutoffs, and the BTL stack is deeper (component
dispatch), which shows up as a higher per-call overhead — consistent
with Open MPI trailing in small-message OSU collectives on Omni-Path
systems (and with its placement in the paper's figures).
"""

from __future__ import annotations

from ..collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    bcast_ring_pipeline,
    gather_binomial,
    reduce_binomial,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scatter_binomial,
)
from .base import LibraryProfile, MpiLibrary, is_pow2


class OpenMpi(MpiLibrary):
    """Open MPI with vader (CMA single copy) shared memory."""

    profile = LibraryProfile(
        name="OpenMPI",
        intra="cma",
        call_overhead=2.8e-7,
        description="vader/CMA single copy + syscall; coll/tuned table",
    )

    def _pick_bcast(self, nbytes, size):
        return bcast_binomial if nbytes <= 8192 else bcast_ring_pipeline

    def _pick_gather(self, nbytes, size):
        return gather_binomial

    def _pick_scatter(self, nbytes, size):
        return scatter_binomial

    def _pick_allgather(self, nbytes, size):
        if nbytes <= 1024:
            return allgather_bruck
        if is_pow2(size) and nbytes * size <= 262144:
            return allgather_recursive_doubling
        return allgather_ring

    def _pick_allreduce(self, nbytes, size):
        if nbytes <= 4096 or not is_pow2(size):
            return allreduce_recursive_doubling

        def rabenseifner_or_rd(ctx, send, recv, dtype, op, comm=None):
            if send.nbytes % (size * dtype.size):
                yield from allreduce_recursive_doubling(ctx, send, recv, dtype,
                                                        op, comm=comm)
            else:
                yield from allreduce_rabenseifner(ctx, send, recv, dtype, op,
                                                  comm=comm)

        return rabenseifner_or_rd

    def _pick_reduce(self, nbytes, size):
        return reduce_binomial

    def _pick_alltoall(self, nbytes, size):
        return alltoall_bruck if nbytes <= 128 else alltoall_pairwise

    def _pick_reduce_scatter(self, nbytes, size):
        if is_pow2(size):
            return reduce_scatter_recursive_halving
        return reduce_scatter_reduce_then_scatter

    def _pick_barrier(self, nbytes, size):
        return barrier_dissemination
