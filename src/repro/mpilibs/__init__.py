"""MPI library models (subsystem S8)."""

from .base import COLLECTIVES, SCAN_COLLECTIVES, V_COLLECTIVES, LibraryProfile, MpiLibrary
from .intelmpi import IntelMpi
from .mpich import Mpich
from .mvapich import Mvapich
from .openmpi import OpenMpi
from .pip_mcoll import PipMColl
from .pip_mpich import PipMpich
from .registry import BASELINES, PAPER_LINEUP, available_libraries, make_library

__all__ = [
    "BASELINES",
    "COLLECTIVES",
    "SCAN_COLLECTIVES",
    "V_COLLECTIVES",
    "IntelMpi",
    "LibraryProfile",
    "Mpich",
    "MpiLibrary",
    "Mvapich",
    "OpenMpi",
    "PAPER_LINEUP",
    "PipMColl",
    "PipMpich",
    "available_libraries",
    "make_library",
]
