"""MPI library models (subsystem S8)."""

from .base import COLLECTIVES, SCAN_COLLECTIVES, V_COLLECTIVES, LibraryProfile, MpiLibrary
from .intelmpi import IntelMpi
from .mpich import Mpich
from .mvapich import Mvapich
from .openmpi import OpenMpi
from .pip_mcoll import PipMColl
from .pip_mpich import PipMpich
from .registry import (
    BASELINES,
    PAPER_LINEUP,
    TUNED_PREFIX,
    available_libraries,
    make_library,
    register_library,
    unregister_library,
    validate_library_spec,
)

__all__ = [
    "BASELINES",
    "COLLECTIVES",
    "SCAN_COLLECTIVES",
    "V_COLLECTIVES",
    "IntelMpi",
    "LibraryProfile",
    "Mpich",
    "MpiLibrary",
    "Mvapich",
    "OpenMpi",
    "PAPER_LINEUP",
    "PipMColl",
    "PipMpich",
    "TUNED_PREFIX",
    "available_libraries",
    "make_library",
    "register_library",
    "unregister_library",
    "validate_library_spec",
]
