"""MPICH model: Nemesis POSIX-SHMEM intra-node + public decision table.

Cutoffs follow MPICH's shipped defaults (coll tuning in
``src/mpi/coll``): binomial trees for rooted small messages, Bruck /
recursive doubling for small allgathers, ring for large, Rabenseifner
above the short-allreduce cutoff.
"""

from __future__ import annotations

from ..collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    bcast_ring_pipeline,
    gather_binomial,
    reduce_binomial,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scatter_binomial,
)
from .base import LibraryProfile, MpiLibrary, is_pow2

#: MPICH decision-table cutoffs (bytes)
BCAST_SHORT = 12288
ALLGATHER_LONG_TOTAL = 524288
ALLREDUCE_SHORT = 2048
ALLTOALL_SHORT = 256


class Mpich(MpiLibrary):
    """Stock MPICH (ch3:nemesis-style shared memory)."""

    profile = LibraryProfile(
        name="MPICH",
        intra="posix_shmem",
        call_overhead=1.5e-7,
        description="nemesis POSIX-SHMEM double copy; public decision table",
    )

    def _pick_bcast(self, nbytes, size):
        return bcast_binomial if nbytes <= BCAST_SHORT else bcast_ring_pipeline

    def _pick_gather(self, nbytes, size):
        return gather_binomial

    def _pick_scatter(self, nbytes, size):
        return scatter_binomial

    def _pick_allgather(self, nbytes, size):
        total = nbytes * size
        if total <= ALLGATHER_LONG_TOTAL:
            return allgather_recursive_doubling if is_pow2(size) else allgather_bruck
        return allgather_ring

    def _pick_allreduce(self, nbytes, size):
        if nbytes <= ALLREDUCE_SHORT or not is_pow2(size):
            return allreduce_recursive_doubling

        def rabenseifner_or_rd(ctx, send, recv, dtype, op, comm=None):
            if send.nbytes % (size * dtype.size):
                yield from allreduce_recursive_doubling(ctx, send, recv, dtype,
                                                        op, comm=comm)
            else:
                yield from allreduce_rabenseifner(ctx, send, recv, dtype, op,
                                                  comm=comm)

        return rabenseifner_or_rd

    def _pick_reduce(self, nbytes, size):
        return reduce_binomial

    def _pick_alltoall(self, nbytes, size):
        return alltoall_bruck if nbytes <= ALLTOALL_SHORT else alltoall_pairwise

    def _pick_reduce_scatter(self, nbytes, size):
        if is_pow2(size):
            return reduce_scatter_recursive_halving
        return reduce_scatter_reduce_then_scatter

    def _pick_barrier(self, nbytes, size):
        return barrier_dissemination
