"""Intel MPI model: tuned SHM transport + autotuned decision table.

Intel MPI's strengths in published OSU numbers are a very lean
software path (lowest per-call overhead of the four) and aggressive
topology-aware selection; its shared memory is a classic double-copy
SHM segment (like MPICH's nemesis, with better constants absorbed into
the call overhead).
"""

from __future__ import annotations

from ..collectives import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    alltoall_bruck,
    alltoall_pairwise,
    barrier_dissemination,
    bcast_binomial,
    bcast_ring_pipeline,
    gather_binomial,
    hier_allreduce,
    reduce_binomial,
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
    scatter_binomial,
)
from .base import LibraryProfile, MpiLibrary, is_pow2


class IntelMpi(MpiLibrary):
    """Intel MPI (impi) model."""

    profile = LibraryProfile(
        name="IntelMPI",
        intra="posix_shmem",
        call_overhead=1.0e-7,
        description="tuned SHM double copy; autotuner-style selection",
    )

    def _pick_bcast(self, nbytes, size):
        return bcast_binomial if nbytes <= 16384 else bcast_ring_pipeline

    def _pick_gather(self, nbytes, size):
        return gather_binomial

    def _pick_scatter(self, nbytes, size):
        return scatter_binomial

    def _pick_allgather(self, nbytes, size):
        total = nbytes * size
        if is_pow2(size) and total <= 524288:
            return allgather_recursive_doubling
        if total <= 524288:
            return allgather_bruck
        return allgather_ring

    def _pick_allreduce(self, nbytes, size):
        if nbytes <= 8192:
            return hier_allreduce

        def rabenseifner_or_rd(ctx, send, recv, dtype, op, comm=None):
            if is_pow2(comm.size if comm else ctx.size) and \
                    not send.nbytes % ((comm.size if comm else ctx.size) * dtype.size):
                yield from allreduce_rabenseifner(ctx, send, recv, dtype, op,
                                                  comm=comm)
            else:
                yield from allreduce_recursive_doubling(ctx, send, recv, dtype,
                                                        op, comm=comm)

        return rabenseifner_or_rd

    def _pick_reduce(self, nbytes, size):
        return reduce_binomial

    def _pick_alltoall(self, nbytes, size):
        return alltoall_bruck if nbytes <= 512 else alltoall_pairwise

    def _pick_reduce_scatter(self, nbytes, size):
        if is_pow2(size):
            return reduce_scatter_recursive_halving
        return reduce_scatter_reduce_then_scatter

    def _pick_barrier(self, nbytes, size):
        return barrier_dissemination
