"""Seeded chaos sweeps: latency-vs-drop-rate resilience reports.

This is the consumer-facing layer over :mod:`repro.faults`: build a
drop plan at each rate, run the normal benchmark harness over the
reliable transport, and report how much the retransmission protocol
costs — or where a library stops completing at all.  Used by the
``python -m repro faults`` CLI subcommand and the
``benchmarks/test_r1_chaos_resilience.py`` sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .plan import FaultPlan

#: drop rates a default resilience sweep probes
DEFAULT_DROP_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class ChaosPoint:
    """One (library, collective, size, drop rate) resilience sample."""

    library: str
    collective: str
    nbytes: int
    drop_rate: float
    seed: int
    latency_us: float
    retransmits: int
    faults_injected: int
    completed: bool
    error: Optional[str] = None

    @property
    def verdict(self) -> str:
        return "ok" if self.completed else f"FAILED ({self.error})"


def chaos_point(
    library: str,
    collective: str,
    nbytes: int,
    params,
    drop_rate: float,
    seed: int = 0,
    warmup: int = 0,
    iters: int = 1,
    root: int = 0,
) -> ChaosPoint:
    """Benchmark one point under a seeded drop plan + reliable delivery.

    A run that degrades into a diagnosed failure (``DeliveryFailedError``
    after retry exhaustion, a watchdog timeout, a deadlock report) is
    captured as a non-completing point, not an exception — that *is*
    the resilience result.
    """
    from ..bench.harness import bench_collective
    from ..runtime.errors import MpiError

    plan = None
    if drop_rate > 0.0:
        plan = FaultPlan(seed=seed).drop(rate=drop_rate)
    try:
        bp = bench_collective(
            library, collective, nbytes, params,
            warmup=warmup, iters=iters, functional=True, root=root,
            faults=plan, reliable=True,
        )
    except MpiError as exc:
        return ChaosPoint(
            library=library, collective=collective, nbytes=nbytes,
            drop_rate=drop_rate, seed=seed, latency_us=float("inf"),
            retransmits=0, faults_injected=0, completed=False,
            error=type(exc).__name__,
        )
    stats = bp.stats or {}
    return ChaosPoint(
        library=library, collective=collective, nbytes=nbytes,
        drop_rate=drop_rate, seed=seed, latency_us=bp.latency_us,
        retransmits=int(stats.get("retransmits", 0)),
        faults_injected=int(stats.get("faults_injected", 0)),
        completed=True,
    )


def chaos_sweep(
    collective: str,
    nbytes: int,
    params,
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    libraries: Sequence[str] = ("MPICH", "PiP-MColl"),
    seed: int = 0,
    iters: int = 1,
) -> List[ChaosPoint]:
    """All (library × drop rate) points, same seed per rate column."""
    return [
        chaos_point(lib, collective, nbytes, params, rate, seed=seed,
                    iters=iters)
        for lib in libraries
        for rate in drop_rates
    ]


def resilience_report(points: Sequence[ChaosPoint]) -> str:
    """The human-readable latency-vs-drop-rate table."""
    if not points:
        return "no chaos points"
    head = points[0]
    lines = [
        f"chaos resilience — {head.collective} {head.nbytes} B "
        f"(seed={head.seed}, reliable delivery on)",
        f"{'library':<12} {'drop':>6} {'latency':>12} {'slowdown':>9} "
        f"{'rexmits':>8} {'faults':>7}  verdict",
    ]
    baselines = {
        p.library: p.latency_us
        for p in points
        if p.drop_rate == 0.0 and p.completed
    }
    for p in points:
        base = baselines.get(p.library)
        if p.completed:
            latency = f"{p.latency_us:10.2f}us"
            slow = f"x{p.latency_us / base:7.2f}" if base else f"{'—':>8}"
        else:
            latency = f"{'—':>12}"
            slow = f"{'—':>8}"
        lines.append(
            f"{p.library:<12} {p.drop_rate * 100:5.1f}% {latency:>12} "
            f"{slow:>9} {p.retransmits:>8} {p.faults_injected:>7}  {p.verdict}"
        )
    return "\n".join(lines)
