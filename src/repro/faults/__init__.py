"""Fault injection and chaos testing (subsystem S12).

Three layers:

* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  (what to break, scoped by rank/node/size/tag predicates);
* :mod:`repro.faults.injector` — the bound :class:`FaultInjector`
  (first-class hooks in the transport and matching layers);
* :mod:`repro.faults.chaos` — resilience sweeps over the reliable
  delivery protocol (latency vs drop rate).

Entry point: ``World(params, faults=FaultPlan(...).drop(rate=0.1),
reliable=True)``.
"""

from .chaos import (
    DEFAULT_DROP_RATES,
    ChaosPoint,
    chaos_point,
    chaos_sweep,
    resilience_report,
)
from .injector import FaultEvent, FaultInjector, WireFault
from .plan import ALL_KINDS, LAYERS, MESSAGE_KINDS, FaultPlan, FaultRule

__all__ = [
    "ALL_KINDS",
    "ChaosPoint",
    "DEFAULT_DROP_RATES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "LAYERS",
    "MESSAGE_KINDS",
    "WireFault",
    "chaos_point",
    "chaos_sweep",
    "resilience_report",
]
