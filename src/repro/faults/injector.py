"""The live fault injector: *where* a plan's rules bite.

One :class:`FaultInjector` is bound to one
:class:`~repro.runtime.world.World` (``World(..., faults=plan)``).  It
exposes exactly three hook surfaces, all first-class (no
monkeypatching):

``deliver_hook(desc, engine)``
    called by the pt2pt engine instead of ``engine.deliver(desc)`` for
    every message of every transport.  Applies ``layer="deliver"``
    rules always, and ``layer="wire"`` rules to inter-node messages
    whose transport did *not* already handle them (i.e. the plain,
    unreliable network — where a wire drop is a permanent loss).

``wire_fault(wire, attempt)`` / ``rate_factor(node_id)``
    called by the reliable network transport once per transmission
    attempt / per pipe occupancy, so wire faults become retransmission
    and degraded NICs become longer wire times.

``crash_gate(rank)``
    called at each send/recv dispatch; returns a never-firing event
    once the rank's fail-stop instant has passed, freezing the rank
    exactly like a dead process (peers then time out or deadlock with
    a diagnosis, which is the point).

Every decision is drawn from per-rule seeded streams and recorded in
:attr:`events`, so two runs of the same (plan, world, program) produce
byte-identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .plan import CRASH, DEGRADE, FaultPlan, FaultRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.matching import MatchingEngine
    from ..runtime.message import MessageDescriptor
    from ..runtime.world import World
    from ..transport.base import WireDescriptor

#: fallback release delay for held (reordered) messages with no
#: successor to overtake them — prevents a reorder from becoming a drop
REORDER_FLUSH_S = 2.0e-5


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the deterministic trace."""

    t: float
    kind: str
    src: int
    dst: int
    nbytes: int
    attempt: int = 0
    note: str = ""


@dataclass
class WireFault:
    """What the injector decided for one wire transmission attempt."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0

    @property
    def lost(self) -> bool:
        """Does this attempt fail to deliver a clean payload?"""
        return self.drop or self.corrupt


@dataclass
class _RuleState:
    """Mutable per-rule bookkeeping (match/apply counters + RNG)."""

    rule: FaultRule
    rng: random.Random
    seen: int = 0
    applied: int = 0

    def fires(self) -> bool:
        """Sample the rule against its scoping throttles (mutates)."""
        rule = self.rule
        self.seen += 1
        if self.seen <= rule.after:
            return False
        if rule.limit is not None and self.applied >= rule.limit:
            return False
        if rule.rate < 1.0 and self.rng.random() >= rule.rate:
            return False
        self.applied += 1
        return True


class FaultInjector:
    """Executes a :class:`FaultPlan` against one world (see module doc)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.world: Optional["World"] = None
        #: deterministic trace of every injected fault
        self.events: List[FaultEvent] = []
        #: per-kind totals (cheap probe for tests/reports)
        self.counts: Dict[str, int] = {}
        self._states: List[_RuleState] = [
            _RuleState(rule, random.Random(f"{plan.seed}:{i}:{rule.kind}"))
            for i, rule in enumerate(plan.rules)
        ]
        self._message_states = [s for s in self._states
                                if s.rule.kind not in (DEGRADE, CRASH)]
        self._crash_rules = [s.rule for s in self._states if s.rule.kind == CRASH]
        self._degrade_rules = [s.rule for s in self._states if s.rule.kind == DEGRADE]
        self._crashed_noted: set = set()
        #: reordered messages held per destination world rank
        self._held: Dict[int, List[Tuple["MessageDescriptor", "MatchingEngine"]]] = {}

    # -- binding --------------------------------------------------------
    def bind(self, world: "World") -> None:
        """Attach to a world; an injector serves exactly one world."""
        if self.world is not None:
            raise RuntimeError(
                "FaultInjector is already bound to a world; build a fresh "
                "injector (or pass the FaultPlan itself) per world"
            )
        self.world = world

    # -- trace ----------------------------------------------------------
    def note(self, kind: str, src: int, dst: int, nbytes: int,
             attempt: int = 0, note: str = "") -> None:
        """Record one fault occurrence in the deterministic trace."""
        self.events.append(FaultEvent(
            self.world.sim.now, kind, src, dst, nbytes, attempt, note))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def trace_signature(self) -> Tuple[FaultEvent, ...]:
        """Hashable snapshot of the full trace (replay comparisons)."""
        return tuple(self.events)

    # -- crash (rank-scoped) -------------------------------------------
    def crash_time(self, rank: int) -> Optional[float]:
        """The rank's fail-stop instant, or None if it never crashes."""
        times = [r.at_time for r in self._crash_rules if r.src == rank]
        return min(times) if times else None

    def is_crashed(self, rank: int, now: float) -> bool:
        """Has ``rank`` passed its fail-stop instant?"""
        when = self.crash_time(rank)
        return when is not None and now >= when

    def crash_gate(self, rank: int):
        """A never-firing event if ``rank`` is dead, else None.

        The pt2pt engine yields the event, freezing the rank's
        coroutine forever — the fail-stop model.
        """
        now = self.world.sim.now
        if not self.is_crashed(rank, now):
            return None
        if rank not in self._crashed_noted:
            self._crashed_noted.add(rank)
            self.note(CRASH, rank, -1, 0, note=f"fail-stop at t<={now:.3e}s")
        return self.world.sim.event()  # pending forever

    # -- degrade (node-scoped) -----------------------------------------
    def rate_factor(self, node_id: int) -> float:
        """Product of wire-time multipliers for a node's NIC."""
        factor = 1.0
        for rule in self._degrade_rules:
            if rule.node is None or rule.node == node_id:
                factor *= rule.factor
        return factor

    # -- wire layer (reliable transport) -------------------------------
    def wire_fault(self, wire: "WireDescriptor", attempt: int) -> WireFault:
        """Sample wire-layer rules for one transmission attempt."""
        fault = WireFault()
        tag = wire.meta.get("tag")
        node = self.world.cluster.node_of(wire.src)
        for state in self._message_states:
            rule = state.rule
            if rule.layer != "wire":
                continue
            if not rule.matches(wire.src, wire.dst, wire.nbytes, tag, node):
                continue
            if not state.fires():
                continue
            if rule.kind == "drop":
                fault.drop = True
            elif rule.kind == "corrupt":
                fault.corrupt = True
            elif rule.kind == "duplicate":
                fault.duplicate = True
            elif rule.kind == "delay":
                fault.extra_delay += rule.delay
            elif rule.kind == "reorder":
                # The wire protocol is FIFO per flow; a wire "reorder"
                # manifests as straggling behind the flush window.
                fault.extra_delay += REORDER_FLUSH_S
            self.note(rule.kind, wire.src, wire.dst, wire.nbytes,
                      attempt=attempt, note="wire")
        return fault

    # -- deliver layer (matching engines) ------------------------------
    def deliver_hook(self, desc: "MessageDescriptor",
                     engine: "MatchingEngine") -> None:
        """Fault-filtered replacement for ``engine.deliver(desc)``."""
        sim = self.world.sim
        if self.is_crashed(desc.dst_world, sim.now):
            # A dead process drains nothing; the message evaporates.
            self.note("drop", desc.src_world, desc.dst_world, desc.nbytes,
                      note="dst crashed")
            return
        wire_handled = bool(desc.wire.meta.get("reliable"))
        on_network = bool(getattr(desc.transport, "inter_node", False))
        env = desc.envelope
        node = self.world.cluster.node_of(desc.src_world)
        extra_delay = 0.0
        duplicate = False
        hold = False
        for state in self._message_states:
            rule = state.rule
            if rule.layer == "wire" and (wire_handled or not on_network):
                continue
            if not rule.matches(desc.src_world, desc.dst_world, desc.nbytes,
                                env.tag, node):
                continue
            if not state.fires():
                continue
            if rule.kind == "drop":
                self.note("drop", desc.src_world, desc.dst_world, desc.nbytes)
                return
            if rule.kind == "corrupt":
                if rule.detect:
                    from ..runtime.errors import CorruptionError

                    self.note("corrupt", desc.src_world, desc.dst_world,
                              desc.nbytes, note="detected")
                    raise CorruptionError(
                        f"checksum mismatch on {desc.nbytes} B message "
                        f"{desc.src_world}->{desc.dst_world} "
                        f"(tag={env.tag}) — payload corrupted in flight"
                    )
                self._corrupt_payload(state, desc)
            elif rule.kind == "duplicate":
                duplicate = True
                self.note("duplicate", desc.src_world, desc.dst_world, desc.nbytes)
            elif rule.kind == "delay":
                extra_delay += rule.delay
                self.note("delay", desc.src_world, desc.dst_world, desc.nbytes,
                          note=f"+{rule.delay:.3e}s")
            elif rule.kind == "reorder":
                hold = True
                self.note("reorder", desc.src_world, desc.dst_world, desc.nbytes)
        if hold:
            self._hold(desc, engine)
            return
        if extra_delay > 0.0:
            ev = sim.timeout(extra_delay)
            ev.callbacks.append(lambda _e, d=desc, e=engine: self._release(d, e))
            if duplicate:
                ev.callbacks.append(
                    lambda _e, d=replace(desc), e=engine: self._release(d, e))
            return
        self._release(desc, engine)
        if duplicate:
            self._release(replace(desc), engine)

    def _corrupt_payload(self, state: _RuleState, desc: "MessageDescriptor") -> None:
        if desc.payload is None or not desc.payload.size:
            self.note("corrupt", desc.src_world, desc.dst_world, desc.nbytes,
                      note="null buffer — size-only world, no bytes to flip")
            return
        idx = state.rng.randrange(desc.payload.size)
        desc.payload[idx] ^= 0xFF
        self.note("corrupt", desc.src_world, desc.dst_world, desc.nbytes,
                  note=f"byte {idx} flipped")

    # -- reorder plumbing ----------------------------------------------
    def _release(self, desc: "MessageDescriptor",
                 engine: "MatchingEngine") -> None:
        """Deliver ``desc``, then flush anything it was overtaking."""
        engine.deliver(desc)
        held = self._held.pop(desc.dst_world, None)
        if held:
            for held_desc, held_engine in held:
                held_engine.deliver(held_desc)

    def _hold(self, desc: "MessageDescriptor", engine: "MatchingEngine") -> None:
        self._held.setdefault(desc.dst_world, []).append((desc, engine))
        ev = self.world.sim.timeout(REORDER_FLUSH_S)
        ev.callbacks.append(
            lambda _e, d=desc, dst=desc.dst_world: self._flush_one(dst, d))

    def _flush_one(self, dst: int, desc: "MessageDescriptor") -> None:
        """Fallback: release a held message nobody overtook."""
        held = self._held.get(dst)
        if not held:
            return
        for i, (held_desc, held_engine) in enumerate(held):
            if held_desc is desc:
                held.pop(i)
                if not held:
                    del self._held[dst]
                held_engine.deliver(held_desc)
                return

    # -- reporting ------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph totals for reports and the CLI."""
        if not self.counts:
            return "no faults injected"
        parts = [f"{kind}={count}" for kind, count in sorted(self.counts.items())]
        return f"{len(self.events)} faults injected ({', '.join(parts)})"
