"""Declarative fault plans: *what* to break, scoped and seeded.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` objects
plus a seed.  It is pure data — building a plan injects nothing; the
plan only takes effect when handed to a
:class:`~repro.runtime.world.World` (``World(..., faults=plan)``),
which binds a :class:`~repro.faults.injector.FaultInjector` to it.

Rules are scoped by predicates (src/dst rank, source node, payload
size band, tag) and throttled by ``after`` (skip the first N matching
messages) and ``limit`` (apply at most N times).  Every probabilistic
decision draws from a per-rule ``random.Random`` stream derived from
``(seed, rule index, kind)``, so a plan replayed on the deterministic
simulator reproduces the *identical* fault sequence — the property the
chaos acceptance tests pin.

Layers
------
``"wire"`` (the default for message faults)
    the fault happens on the inter-node fabric.  Under the reliable
    transport (``World(reliable=True)``) the protocol detects and
    retransmits; under the plain network transport the loss is
    permanent (delivered corrupt / never delivered).  Wire rules never
    touch intra-node or self-send traffic — shared memory does not
    lose stores.
``"deliver"``
    the fault is applied at the matching engine of the destination
    rank, for *any* transport.  This is the sabotage hook the
    validation suite uses to prove the checkers catch planted bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

#: message-scoped fault kinds (samplable per message / per attempt)
MESSAGE_KINDS = ("drop", "corrupt", "duplicate", "reorder", "delay")
#: node-scoped: multiply NIC wire time (rate degradation)
DEGRADE = "degrade"
#: rank-scoped: fail-stop at a simulated instant
CRASH = "crash"

ALL_KINDS = MESSAGE_KINDS + (DEGRADE, CRASH)
LAYERS = ("wire", "deliver")


@dataclass(frozen=True)
class FaultRule:
    """One scoped fault directive (see module docstring for layers)."""

    kind: str
    #: probability of applying to each matching message / attempt
    rate: float = 1.0
    #: predicates — ``None`` matches anything; ranks are world ranks
    src: Optional[int] = None
    dst: Optional[int] = None
    node: Optional[int] = None  # source node id
    tag: Optional[int] = None
    min_bytes: int = 0
    max_bytes: Optional[int] = None
    #: skip the first ``after`` matching messages
    after: int = 0
    #: apply at most ``limit`` times (None = unbounded)
    limit: Optional[int] = None
    #: extra delivery delay in seconds (kind="delay")
    delay: float = 0.0
    #: wire-time multiplier (kind="degrade"; > 1 slows the NIC)
    factor: float = 1.0
    #: crash instant in simulated seconds (kind="crash")
    at_time: float = 0.0
    #: corrupt only: raise CorruptionError instead of silently
    #: flipping bytes (models a checksum-verifying receiver on an
    #: unreliable path)
    detect: bool = False
    layer: str = "wire"

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {ALL_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.layer not in LAYERS:
            raise ValueError(f"layer must be one of {LAYERS}, got {self.layer!r}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 (or None)")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.kind == DEGRADE and self.factor <= 0:
            raise ValueError("degrade factor must be > 0")
        if self.kind == CRASH:
            if self.src is None:
                raise ValueError("crash rules must name a rank via src=")
            if self.at_time < 0:
                raise ValueError("at_time must be >= 0")

    def matches(self, src: int, dst: int, nbytes: int,
                tag: Optional[int], node: int) -> bool:
        """Do the scoping predicates accept this message?"""
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.node is not None and node != self.node:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        if nbytes < self.min_bytes:
            return False
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        return True

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        scope = []
        for name in ("src", "dst", "node", "tag"):
            value = getattr(self, name)
            if value is not None:
                scope.append(f"{name}={value}")
        if self.min_bytes:
            scope.append(f">={self.min_bytes}B")
        if self.max_bytes is not None:
            scope.append(f"<={self.max_bytes}B")
        extras = {
            "delay": f"+{self.delay * 1e6:.2f}us" if self.kind == "delay" else "",
            "degrade": f"x{self.factor:g}" if self.kind == DEGRADE else "",
            "crash": f"at t={self.at_time:g}s" if self.kind == CRASH else "",
        }.get(self.kind, "")
        bits = [self.kind, f"p={self.rate:g}", self.layer]
        if extras:
            bits.append(extras)
        if scope:
            bits.append(",".join(scope))
        if self.limit is not None:
            bits.append(f"limit={self.limit}")
        return " ".join(bits)


@dataclass
class FaultPlan:
    """A seeded, ordered collection of fault rules (builder-style).

    Example::

        plan = (FaultPlan(seed=7)
                .drop(rate=0.1)                       # lossy fabric
                .degrade(node=2, factor=4.0)          # one slow NIC
                .crash(rank=5, at_time=2e-4))         # fail-stop
        world = World(small_test(), faults=plan, reliable=True)
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)

    def _add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    # -- builders -------------------------------------------------------
    def drop(self, rate: float = 1.0, **scope) -> "FaultPlan":
        """Lose matching messages (retransmitted under reliable delivery)."""
        return self._add(FaultRule(kind="drop", rate=rate, **scope))

    def corrupt(self, rate: float = 1.0, **scope) -> "FaultPlan":
        """Flip a payload byte in flight (checksum-caught on the
        reliable path; delivered corrupt otherwise)."""
        return self._add(FaultRule(kind="corrupt", rate=rate, **scope))

    def duplicate(self, rate: float = 1.0, **scope) -> "FaultPlan":
        """Deliver matching messages twice (deduplicated by the
        reliable protocol's sequence numbers)."""
        return self._add(FaultRule(kind="duplicate", rate=rate, **scope))

    def reorder(self, rate: float = 1.0, **scope) -> "FaultPlan":
        """Hold a message back so a later one overtakes it
        (deliver-layer only — the wire protocol is FIFO)."""
        scope.setdefault("layer", "deliver")
        return self._add(FaultRule(kind="reorder", rate=rate, **scope))

    def delay(self, delay: float, rate: float = 1.0, **scope) -> "FaultPlan":
        """Straggle matching messages by ``delay`` seconds."""
        return self._add(FaultRule(kind="delay", delay=delay, rate=rate, **scope))

    def degrade(self, factor: float, node: Optional[int] = None,
                **scope) -> "FaultPlan":
        """Multiply a node's NIC wire time by ``factor`` (reliable
        transport path)."""
        return self._add(FaultRule(kind=DEGRADE, factor=factor, node=node, **scope))

    def crash(self, rank: int, at_time: float = 0.0, **scope) -> "FaultPlan":
        """Fail-stop ``rank`` at simulated time ``at_time``: its later
        sends/receives silently hang (a dead process), and messages
        addressed to it are swallowed."""
        return self._add(FaultRule(kind=CRASH, src=rank, at_time=at_time, **scope))

    # -- introspection --------------------------------------------------
    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different seed."""
        return FaultPlan(seed=seed, rules=list(self.rules))

    def scaled(self, **changes) -> "FaultPlan":  # pragma: no cover - convenience
        return replace(self, **changes)

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.rules)} rules)"]
        lines += [f"  [{i}] {rule.describe()}" for i, rule in enumerate(self.rules)]
        return "\n".join(lines)

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds this plan can inject."""
        seen: List[str] = []
        for rule in self.rules:
            if rule.kind not in seen:
                seen.append(rule.kind)
        return tuple(seen)
