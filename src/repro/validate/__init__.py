"""Validation substrate (subsystem S10): references and checkers."""

from . import checker, reference
from .checker import int_pattern, pattern

__all__ = ["checker", "int_pattern", "pattern", "reference"]
