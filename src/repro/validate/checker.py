"""Byte-exact validation harness for collective algorithms.

Each ``check_*`` function builds rank-stamped inputs in a functional
world, runs the algorithm under test on every rank, and compares every
output byte against :mod:`repro.validate.reference`.  All checkers
also assert the world is quiescent afterwards (no leaked messages or
dangling receives) and return the per-rank completion times so callers
can make coarse timing assertions too.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..runtime import ArrayBuffer, World
from ..runtime.communicator import Communicator
from ..runtime.datatypes import Datatype, INT64
from ..runtime.ops import ReduceOp, SUM
from . import reference


def pattern(rank: int, nbytes: int) -> np.ndarray:
    """A deterministic per-rank byte pattern (distinct across ranks)."""
    return ((rank * 131 + np.arange(nbytes) * 17 + 7) % 251).astype(np.uint8)


def int_pattern(rank: int, count: int) -> np.ndarray:
    """Per-rank int64 values for reductions (overflow-safe for SUM/MAX)."""
    return (rank * 1000 + np.arange(count) * 3 + 1).astype(np.int64)


def _compare(kind: str, rank: int, got: np.ndarray, want: np.ndarray) -> None:
    if got is None:
        raise AssertionError(f"{kind}: rank {rank} produced no data (null buffer?)")
    if not np.array_equal(got, want):
        bad = np.nonzero(got != want)[0]
        raise AssertionError(
            f"{kind}: rank {rank} wrong at {bad.size}/{want.size} bytes "
            f"(first at offset {bad[0]}: got {got[bad[0]]}, want {want[bad[0]]})"
        )


def _comm_of(world: World, comm: Optional[Communicator]) -> Communicator:
    return comm if comm is not None else world.comm_world


def check_bcast(world: World, algo: Callable, count: int, root: int = 0,
                comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [pattern(r, count) for r in range(comm_.size)]
    want = reference.bcast(inputs, root)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        buf = ArrayBuffer.from_array(
            inputs[cr].copy() if cr == root else np.zeros(count, dtype=np.uint8)
        )
        yield from algo(ctx, buf.view(), root=root, comm=comm_)
        _compare("bcast", cr, buf.read_bytes(0, count), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_gather(world: World, algo: Callable, count: int, root: int = 0,
                 comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [pattern(r, count) for r in range(comm_.size)]
    want = reference.gather(inputs, root)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(count * comm_.size) if cr == root else None
        yield from algo(
            ctx,
            sendbuf.view(),
            recvbuf.view() if recvbuf is not None else None,
            root=root,
            comm=comm_,
        )
        if cr == root:
            _compare("gather", cr, recvbuf.read_bytes(0, count * comm_.size), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_scatter(world: World, algo: Callable, count: int, root: int = 0,
                  comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    root_data = pattern(root, count * comm_.size)
    want = reference.scatter(root_data, comm_.size, root)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(root_data.copy()) if cr == root else None
        recvbuf = ArrayBuffer.zeros(count)
        yield from algo(
            ctx,
            sendbuf.view() if sendbuf is not None else None,
            recvbuf.view(),
            root=root,
            comm=comm_,
        )
        _compare("scatter", cr, recvbuf.read_bytes(0, count), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_allgather(world: World, algo: Callable, count: int,
                    comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [pattern(r, count) for r in range(comm_.size)]
    want = reference.allgather(inputs)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(count * comm_.size)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), comm=comm_)
        _compare("allgather", cr, recvbuf.read_bytes(0, count * comm_.size), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_alltoall(world: World, algo: Callable, count: int,
                   comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [pattern(r, count * comm_.size) for r in range(comm_.size)]
    want = reference.alltoall(inputs)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(count * comm_.size)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), comm=comm_)
        _compare("alltoall", cr, recvbuf.read_bytes(0, count * comm_.size), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_reduce(world: World, algo: Callable, count: int, root: int = 0,
                 op: ReduceOp = SUM, dtype: Datatype = INT64,
                 comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [int_pattern(r, count) for r in range(comm_.size)]
    want = reference.reduce(inputs, op, dtype.np_dtype, root)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(sendbuf.nbytes) if cr == root else None
        yield from algo(
            ctx,
            sendbuf.view(),
            recvbuf.view() if recvbuf is not None else None,
            dtype,
            op,
            root=root,
            comm=comm_,
        )
        if cr == root:
            _compare("reduce", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_allreduce(world: World, algo: Callable, count: int,
                    op: ReduceOp = SUM, dtype: Datatype = INT64,
                    comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [int_pattern(r, count) for r in range(comm_.size)]
    want = reference.allreduce(inputs, op, dtype.np_dtype)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(sendbuf.nbytes)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), dtype, op, comm=comm_)
        _compare("allreduce", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_reduce_scatter(world: World, algo: Callable, count_per_rank: int,
                         op: ReduceOp = SUM, dtype: Datatype = INT64,
                         comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    total = count_per_rank * comm_.size
    inputs = [int_pattern(r, total) for r in range(comm_.size)]
    want = reference.reduce_scatter_block(inputs, op, dtype.np_dtype)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(count_per_rank * dtype.size)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), dtype, op, comm=comm_)
        _compare("reduce_scatter", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_scan(world: World, algo: Callable, count: int,
               op: ReduceOp = SUM, dtype: Datatype = INT64,
               comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [int_pattern(r, count) for r in range(comm_.size)]
    want = reference.scan(inputs, op, dtype.np_dtype)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(sendbuf.nbytes)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), dtype, op, comm=comm_)
        _compare("scan", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_barrier(world: World, algo: Callable,
                  comm: Optional[Communicator] = None) -> None:
    """A barrier is correct if nobody exits before the last arrival."""
    comm_ = _comm_of(world, comm)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        yield from ctx.compute(cr * 1.0e-6)  # staggered arrivals
        arrived = ctx.now
        yield from algo(ctx, comm=comm_)
        return (arrived, ctx.now)

    results = [r for r in world.run(program) if r is not None]
    world.assert_quiescent()
    last_arrival = max(arr for arr, _exit in results)
    for arr, exit_ in results:
        if exit_ < last_arrival:
            raise AssertionError(
                f"barrier violated: a rank exited at {exit_} before the "
                f"last arrival at {last_arrival}"
            )


def check_gatherv(world: World, algo: Callable, counts, root: int = 0,
                  comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    assert len(counts) == comm_.size
    inputs = [pattern(r, counts[r]) for r in range(comm_.size)]
    want = reference.gatherv(inputs, root)
    total = sum(counts)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy()) if counts[cr] else ArrayBuffer.zeros(0)
        recvbuf = ArrayBuffer.zeros(total) if cr == root else None
        yield from algo(
            ctx, sendbuf.view(),
            recvbuf.view() if recvbuf is not None else None,
            counts=counts if cr == root else None,
            root=root, comm=comm_,
        )
        if cr == root:
            _compare("gatherv", cr, recvbuf.read_bytes(0, total), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_scatterv(world: World, algo: Callable, counts, root: int = 0,
                   comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    total = sum(counts)
    root_data = pattern(root, total)
    want = reference.scatterv(root_data, counts, root)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(root_data.copy()) if cr == root else None
        recvbuf = ArrayBuffer.zeros(counts[cr]) if counts[cr] else ArrayBuffer.zeros(0)
        yield from algo(
            ctx,
            sendbuf.view() if sendbuf is not None else None,
            counts=counts if cr == root else None,
            recvview=recvbuf.view(),
            root=root, comm=comm_,
        )
        _compare("scatterv", cr, recvbuf.read_bytes(0, counts[cr]), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_allgatherv(world: World, algo: Callable, counts,
                     comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [pattern(r, counts[r]) for r in range(comm_.size)]
    want = reference.allgatherv(inputs)
    total = sum(counts)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy()) if counts[cr] else ArrayBuffer.zeros(0)
        recvbuf = ArrayBuffer.zeros(total)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), counts=counts, comm=comm_)
        _compare("allgatherv", cr, recvbuf.read_bytes(0, total), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_alltoallv(world: World, algo: Callable, count_matrix,
                    comm: Optional[Communicator] = None) -> List[float]:
    """``count_matrix[i][j]`` bytes flow from rank i to rank j."""
    comm_ = _comm_of(world, comm)
    size = comm_.size
    inputs = [pattern(r, sum(count_matrix[r])) for r in range(size)]
    want = reference.alltoallv(inputs, count_matrix)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        send_counts = list(count_matrix[cr])
        recv_counts = [count_matrix[j][cr] for j in range(size)]
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(sum(recv_counts))
        yield from algo(ctx, sendbuf.view(), send_counts,
                        recvbuf.view(), recv_counts, comm=comm_)
        _compare("alltoallv", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times


def check_exscan(world: World, algo: Callable, count: int,
                 op: ReduceOp = SUM, dtype: Datatype = INT64,
                 comm: Optional[Communicator] = None) -> List[float]:
    comm_ = _comm_of(world, comm)
    inputs = [int_pattern(r, count) for r in range(comm_.size)]
    want = reference.exscan(inputs, op, dtype.np_dtype)

    def program(ctx):
        if not comm_.contains(ctx.rank):
            return None
        cr = comm_.to_comm(ctx.rank)
        sendbuf = ArrayBuffer.from_array(inputs[cr].copy())
        recvbuf = ArrayBuffer.zeros(sendbuf.nbytes)
        yield from algo(ctx, sendbuf.view(), recvbuf.view(), dtype, op, comm=comm_)
        if cr > 0:  # rank 0's buffer is undefined in MPI
            _compare("exscan", cr, recvbuf.read_bytes(0, recvbuf.nbytes), want[cr])
        return ctx.now

    times = world.run(program)
    world.assert_quiescent()
    return times
