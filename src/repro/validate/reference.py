"""Pure-numpy reference semantics for every collective.

Each function takes per-rank *input* byte arrays (index = comm rank)
and returns the per-rank expected *output* byte arrays.  Algorithms are
validated against these references byte-for-byte, so a correct-looking
latency curve can never hide a wrong permutation (the classic Bruck
bug class).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..runtime.ops import ReduceOp


def _as_u8(arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    return [np.asarray(a).reshape(-1).view(np.uint8) for a in arrays]


def bcast(inputs: Sequence[np.ndarray], root: int) -> List[np.ndarray]:
    """Everyone ends with the root's data."""
    data = _as_u8(inputs)[root]
    return [data.copy() for _ in inputs]


def gather(inputs: Sequence[np.ndarray], root: int) -> List[np.ndarray]:
    """Root gets the rank-ordered concatenation; others get nothing."""
    cat = np.concatenate(_as_u8(inputs))
    return [cat.copy() if r == root else np.empty(0, dtype=np.uint8) for r in range(len(inputs))]


def scatter(root_input: np.ndarray, size: int, root: int) -> List[np.ndarray]:
    """Rank ``i`` gets block ``i`` of the root's buffer."""
    flat = np.asarray(root_input).reshape(-1).view(np.uint8)
    if flat.nbytes % size:
        raise ValueError(f"scatter buffer of {flat.nbytes} B not divisible by {size}")
    blocks = flat.reshape(size, -1)
    return [blocks[i].copy() for i in range(size)]


def allgather(inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Everyone gets the rank-ordered concatenation."""
    cat = np.concatenate(_as_u8(inputs))
    return [cat.copy() for _ in inputs]


def alltoall(inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Output block ``j`` of rank ``i`` is input block ``i`` of rank ``j``."""
    size = len(inputs)
    u8 = _as_u8(inputs)
    per = u8[0].nbytes // size
    if any(a.nbytes != per * size for a in u8):
        raise ValueError("alltoall inputs must all be size × per-block bytes")
    mats = [a.reshape(size, per) for a in u8]
    return [np.concatenate([mats[j][i] for j in range(size)]) for i in range(size)]


def reduce(inputs: Sequence[np.ndarray], op: ReduceOp, dtype: np.dtype,
           root: int) -> List[np.ndarray]:
    """Root gets the elementwise reduction; others get nothing."""
    typed = [np.asarray(a).reshape(-1).view(dtype) for a in inputs]
    out = op.reduce_many(typed).view(np.uint8)
    return [out.copy() if r == root else np.empty(0, dtype=np.uint8) for r in range(len(inputs))]


def allreduce(inputs: Sequence[np.ndarray], op: ReduceOp, dtype: np.dtype) -> List[np.ndarray]:
    """Everyone gets the elementwise reduction."""
    typed = [np.asarray(a).reshape(-1).view(dtype) for a in inputs]
    out = op.reduce_many(typed).view(np.uint8)
    return [out.copy() for _ in inputs]


def reduce_scatter_block(inputs: Sequence[np.ndarray], op: ReduceOp,
                         dtype: np.dtype) -> List[np.ndarray]:
    """Rank ``i`` gets block ``i`` of the elementwise reduction."""
    size = len(inputs)
    typed = [np.asarray(a).reshape(-1).view(dtype) for a in inputs]
    total = op.reduce_many(typed)
    if total.size % size:
        raise ValueError("reduce_scatter inputs not divisible into equal blocks")
    blocks = total.reshape(size, -1)
    return [blocks[i].view(np.uint8).copy() for i in range(size)]


def scan(inputs: Sequence[np.ndarray], op: ReduceOp, dtype: np.dtype) -> List[np.ndarray]:
    """Rank ``i`` gets the inclusive prefix reduction over ranks 0..i."""
    typed = [np.asarray(a).reshape(-1).view(dtype) for a in inputs]
    outs = []
    for i in range(len(inputs)):
        outs.append(op.reduce_many(typed[: i + 1]).view(np.uint8))
    return outs


def gatherv(inputs: Sequence[np.ndarray], root: int) -> List[np.ndarray]:
    """Root gets the rank-ordered concatenation of variable blocks."""
    cat = np.concatenate(_as_u8(inputs)) if inputs else np.empty(0, np.uint8)
    return [cat.copy() if r == root else np.empty(0, dtype=np.uint8) for r in range(len(inputs))]


def allgatherv(inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Everyone gets the rank-ordered concatenation of variable blocks."""
    cat = np.concatenate(_as_u8(inputs))
    return [cat.copy() for _ in inputs]


def scatterv(root_input: np.ndarray, counts: Sequence[int], root: int) -> List[np.ndarray]:
    """Rank ``i`` gets ``counts[i]`` bytes at the packed offset."""
    flat = np.asarray(root_input).reshape(-1).view(np.uint8)
    if sum(counts) > flat.nbytes:
        raise ValueError("scatterv counts exceed the root buffer")
    outs, off = [], 0
    for c in counts:
        outs.append(flat[off : off + c].copy())
        off += c
    return outs


def alltoallv(inputs: Sequence[np.ndarray], count_matrix: Sequence[Sequence[int]]) -> List[np.ndarray]:
    """``count_matrix[i][j]`` bytes go from rank i to rank j (packed)."""
    size = len(inputs)
    u8 = _as_u8(inputs)
    outs = []
    for j in range(size):
        parts = []
        for i in range(size):
            off = sum(count_matrix[i][:j])
            parts.append(u8[i][off : off + count_matrix[i][j]])
        outs.append(np.concatenate(parts) if parts else np.empty(0, np.uint8))
    return outs


def exscan(inputs: Sequence[np.ndarray], op: ReduceOp, dtype: np.dtype) -> List[np.ndarray]:
    """Rank ``i`` gets the reduction over ranks 0..i-1 (rank 0:
    undefined in MPI; we return an empty array)."""
    typed = [np.asarray(a).reshape(-1).view(dtype) for a in inputs]
    outs = [np.empty(0, dtype=np.uint8)]
    for i in range(1, len(inputs)):
        outs.append(op.reduce_many(typed[:i]).view(np.uint8))
    return outs
