"""Broadcast algorithms.

* :func:`bcast_binomial` — MPICH's small-message default: a binomial
  tree rooted (via virtual ranks) at ``root``; ``ceil(log2 P)`` rounds.
* :func:`bcast_ring_pipeline` — large-message store-and-forward ring
  with segmentation, so bandwidth is pipelined instead of multiplied
  by tree depth.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import TAG_BCAST, rank_of_vrank, resolve_comm, vrank_of


def bcast_binomial(ctx: RankContext, view: BufferView, root: int = 0,
                   comm: Optional[Communicator] = None):
    """Binomial-tree broadcast (small/medium messages)."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size == 1:
        return
    rank = comm.to_comm(ctx.rank)
    vrank = vrank_of(rank, root, size)

    # Receive once from the parent (lowest set bit determines it).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of_vrank(vrank - mask, root, size)
            yield from ctx.recv(view, src=parent, tag=TAG_BCAST, comm=comm)
            break
        mask <<= 1
    # Forward to children (higher bits below my receive bit).
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = rank_of_vrank(vrank + mask, root, size)
            yield from ctx.send(view, dst=child, tag=TAG_BCAST, comm=comm)
        mask >>= 1


def bcast_ring_pipeline(ctx: RankContext, view: BufferView, root: int = 0,
                        comm: Optional[Communicator] = None,
                        segment: int = 8192):
    """Segmented ring-pipeline broadcast (large messages).

    The message is cut into ``segment``-byte pieces; each rank receives
    piece ``k`` from its ring predecessor while its successor can
    already be forwarding piece ``k-1``.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size == 1:
        return
    if segment <= 0:
        raise ValueError(f"segment must be > 0, got {segment}")
    rank = comm.to_comm(ctx.rank)
    vrank = vrank_of(rank, root, size)
    prev = rank_of_vrank(vrank - 1, root, size)
    nxt = rank_of_vrank(vrank + 1, root, size)
    nbytes = view.nbytes
    nsegs = max(1, -(-nbytes // segment))
    for k in range(nsegs):
        off = k * segment
        piece = view.sub(off, min(segment, nbytes - off))
        if vrank != 0:
            yield from ctx.recv(piece, src=prev, tag=TAG_BCAST + 1 + k, comm=comm)
        if vrank != size - 1:
            yield from ctx.send(piece, dst=nxt, tag=TAG_BCAST + 1 + k, comm=comm)
