"""Hierarchical (leader-based, *single-object*) collectives.

The classic two-level design (Parsons & Pai, MVAPICH2 2-level
algorithms): all intra-node traffic funnels through one leader rank
per node, leaders run the inter-node collective, results fan back out
locally.  Exactly one process per node touches the network — the
"single-object" structure whose injection bottleneck the paper's
multi-object design removes.  These serve both as library-model
building blocks and as the A1 ablation baseline.

All algorithms here require the communicator to be COMM_WORLD (the
node/leader sub-communicators are precomputed by the world).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from .allgather import allgather_bruck
from .allreduce import allreduce_recursive_doubling
from .base import resolve_comm
from .bcast import bcast_binomial
from .gather import gather_binomial
from .reduce import reduce_binomial
from .scatter import scatter_binomial


def _require_world(ctx: RankContext, comm: Optional[Communicator]) -> Communicator:
    comm = resolve_comm(ctx, comm)
    if comm is not ctx.comm_world:
        raise ValueError("hierarchical collectives require COMM_WORLD")
    return comm


def hier_bcast(ctx: RankContext, view: BufferView, root: int = 0,
               comm: Optional[Communicator] = None):
    """Leaders relay via binomial tree, then broadcast inside nodes.

    For simplicity the implementation requires the root to be a node
    leader (benchmarks use root 0), matching the common library case.
    """
    comm = _require_world(ctx, comm)
    if not ctx.cluster.is_leader(root):
        raise ValueError("hier_bcast requires a leader root")
    leader_root = ctx.leader_comm.to_comm(root)
    if ctx.is_leader:
        yield from bcast_binomial(ctx, view, root=leader_root, comm=ctx.leader_comm)
    yield from bcast_binomial(ctx, view, root=0, comm=ctx.node_comm)


def hier_gather(ctx: RankContext, sendview: BufferView,
                recvview: Optional[BufferView], root: int = 0,
                comm: Optional[Communicator] = None):
    """Node gather to leaders, then leader gather to the root.

    Requires a leader root.  Because ranks are blocked by node, each
    node's blocks are contiguous in the result — leader gather blocks
    concatenate directly.
    """
    comm = _require_world(ctx, comm)
    if not ctx.cluster.is_leader(root):
        raise ValueError("hier_gather requires a leader root")
    count = sendview.nbytes
    ppn = ctx.cluster.ppn
    node_buf = ctx.alloc(count * ppn) if ctx.is_leader else None
    yield from gather_binomial(
        ctx, sendview, node_buf.view() if node_buf is not None else None,
        root=0, comm=ctx.node_comm,
    )
    if ctx.is_leader:
        leader_root = ctx.leader_comm.to_comm(root)
        yield from gather_binomial(
            ctx, node_buf.view(),
            recvview if ctx.rank == root else None,
            root=leader_root, comm=ctx.leader_comm,
        )


def hier_scatter(ctx: RankContext, sendview: Optional[BufferView],
                 recvview: BufferView, root: int = 0,
                 comm: Optional[Communicator] = None):
    """Leader scatter of node-sized slabs, then node scatter."""
    comm = _require_world(ctx, comm)
    if not ctx.cluster.is_leader(root):
        raise ValueError("hier_scatter requires a leader root")
    count = recvview.nbytes
    ppn = ctx.cluster.ppn
    node_buf = ctx.alloc(count * ppn) if ctx.is_leader else None
    if ctx.is_leader:
        leader_root = ctx.leader_comm.to_comm(root)
        yield from scatter_binomial(
            ctx, sendview if ctx.rank == root else None,
            node_buf.view(), root=leader_root, comm=ctx.leader_comm,
        )
    yield from scatter_binomial(
        ctx, node_buf.view() if node_buf is not None else None,
        recvview, root=0, comm=ctx.node_comm,
    )


def hier_allgather(ctx: RankContext, sendview: BufferView,
                   recvview: BufferView,
                   comm: Optional[Communicator] = None):
    """Node gather → leader allgather (Bruck) → node broadcast.

    The single-object Figure 2 baseline: per round, one leader core
    pays every injection while ``ppn - 1`` cores idle.
    """
    comm = _require_world(ctx, comm)
    count = sendview.nbytes
    ppn = ctx.cluster.ppn
    node_buf = ctx.alloc(count * ppn) if ctx.is_leader else None
    yield from gather_binomial(
        ctx, sendview, node_buf.view() if node_buf is not None else None,
        root=0, comm=ctx.node_comm,
    )
    if ctx.is_leader:
        yield from allgather_bruck(ctx, node_buf.view(), recvview,
                                   comm=ctx.leader_comm)
    yield from bcast_binomial(ctx, recvview, root=0, comm=ctx.node_comm)


def hier_reduce(ctx: RankContext, sendview: BufferView,
                recvview: Optional[BufferView], dtype: Datatype,
                op: ReduceOp, root: int = 0,
                comm: Optional[Communicator] = None):
    """Node reduce to leaders, then leader reduce to the root."""
    comm = _require_world(ctx, comm)
    if not ctx.cluster.is_leader(root):
        raise ValueError("hier_reduce requires a leader root")
    node_buf = ctx.alloc(sendview.nbytes) if ctx.is_leader else None
    yield from reduce_binomial(
        ctx, sendview, node_buf.view() if node_buf is not None else None,
        dtype, op, root=0, comm=ctx.node_comm,
    )
    if ctx.is_leader:
        leader_root = ctx.leader_comm.to_comm(root)
        yield from reduce_binomial(
            ctx, node_buf.view(), recvview if ctx.rank == root else None,
            dtype, op, root=leader_root, comm=ctx.leader_comm,
        )


def hier_allreduce(ctx: RankContext, sendview: BufferView,
                   recvview: BufferView, dtype: Datatype, op: ReduceOp,
                   comm: Optional[Communicator] = None):
    """Node reduce → leader allreduce → node broadcast."""
    comm = _require_world(ctx, comm)
    node_buf = ctx.alloc(sendview.nbytes) if ctx.is_leader else None
    yield from reduce_binomial(
        ctx, sendview, node_buf.view() if node_buf is not None else None,
        dtype, op, root=0, comm=ctx.node_comm,
    )
    if ctx.is_leader:
        yield from allreduce_recursive_doubling(
            ctx, node_buf.view(), recvview, dtype, op, comm=ctx.leader_comm,
        )
    yield from bcast_binomial(ctx, recvview, root=0, comm=ctx.node_comm)
