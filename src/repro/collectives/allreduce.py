"""Allreduce algorithms.

* :func:`allreduce_recursive_doubling` — MPICH's small-message default.
  Handles non-power-of-two sizes with the standard fold-in/fold-out
  phases (the nearest power-of-two ranks do the exchange).
* :func:`allreduce_rabenseifner` — reduce-scatter (recursive halving)
  followed by allgather (recursive doubling); bandwidth-optimal for
  large messages.  Power-of-two sizes; callers fall back otherwise.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from .base import TAG_ALLREDUCE, local_copy, resolve_comm
from .reduce import _accumulate


def _largest_pow2_leq(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


def allreduce_recursive_doubling(ctx: RankContext, sendview: BufferView,
                                 recvview: BufferView, dtype: Datatype,
                                 op: ReduceOp,
                                 comm: Optional[Communicator] = None):
    """Recursive-doubling allreduce (any size, via pow2 fold phases)."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    if recvview.nbytes != count:
        raise ValueError("allreduce: send/recv sizes differ")
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview)
    if size == 1:
        return

    pow2 = _largest_pow2_leq(size)
    rem = size - pow2
    incoming = ctx.alloc(count)

    # Fold-in: the first 2*rem ranks pair (even → odd); odd ranks carry
    # the pair's sum into the power-of-two phase.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.send(recvview, dst=rank + 1, tag=TAG_ALLREDUCE, comm=comm)
            new_rank = -1  # out of the pow2 phase
        else:
            yield from ctx.recv(incoming.view(), src=rank - 1, tag=TAG_ALLREDUCE, comm=comm)
            yield from _accumulate(ctx, recvview, incoming.view(), dtype, op)
            new_rank = rank // 2
    else:
        new_rank = rank - rem

    if new_rank >= 0:
        mask = 1
        while mask < pow2:
            new_partner = new_rank ^ mask
            partner = new_partner * 2 + 1 if new_partner < rem else new_partner + rem
            yield from ctx.sendrecv(
                recvview, partner, TAG_ALLREDUCE + 1,
                incoming.view(), partner, TAG_ALLREDUCE + 1,
                comm=comm,
            )
            yield from _accumulate(ctx, recvview, incoming.view(), dtype, op)
            mask <<= 1

    # Fold-out: odd partners return the final result to the evens.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.recv(recvview, src=rank + 1, tag=TAG_ALLREDUCE + 2, comm=comm)
        else:
            yield from ctx.send(recvview, dst=rank - 1, tag=TAG_ALLREDUCE + 2, comm=comm)


def allreduce_rabenseifner(ctx: RankContext, sendview: BufferView,
                           recvview: BufferView, dtype: Datatype,
                           op: ReduceOp,
                           comm: Optional[Communicator] = None):
    """Rabenseifner's algorithm (power-of-two sizes, divisible counts)."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size & (size - 1):
        raise ValueError(f"rabenseifner needs a power-of-two size, got {size}")
    count = sendview.nbytes
    if recvview.nbytes != count:
        raise ValueError("allreduce: send/recv sizes differ")
    if count % (size * dtype.size):
        raise ValueError(
            f"rabenseifner needs count divisible into {size} element blocks"
        )
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview)
    if size == 1:
        return
    incoming = ctx.alloc(count)

    # Phase 1: reduce-scatter by recursive halving.  After each step I
    # keep responsibility for half of my previous byte range.
    lo, hi = 0, count
    step = 1
    while step < size:
        partner = rank ^ step
        half = (hi - lo) // 2
        if rank & step:
            mine_lo, mine_hi = lo + half, hi
            theirs_lo, theirs_hi = lo, lo + half
        else:
            mine_lo, mine_hi = lo, lo + half
            theirs_lo, theirs_hi = lo + half, hi
        yield from ctx.sendrecv(
            recvview.sub(theirs_lo, theirs_hi - theirs_lo), partner, TAG_ALLREDUCE + 3,
            incoming.view(mine_lo, mine_hi - mine_lo), partner, TAG_ALLREDUCE + 3,
            comm=comm,
        )
        yield from _accumulate(
            ctx,
            recvview.sub(mine_lo, mine_hi - mine_lo),
            incoming.view(mine_lo, mine_hi - mine_lo),
            dtype, op,
        )
        lo, hi = mine_lo, mine_hi
        step <<= 1

    # Phase 2: allgather by recursive doubling (mirror of phase 1).
    step = size // 2
    while step >= 1:
        partner = rank ^ step
        span = hi - lo
        if rank & step:
            theirs_lo = lo - span
        else:
            theirs_lo = hi
        yield from ctx.sendrecv(
            recvview.sub(lo, span), partner, TAG_ALLREDUCE + 4,
            recvview.sub(theirs_lo, span), partner, TAG_ALLREDUCE + 4,
            comm=comm,
        )
        lo = min(lo, theirs_lo)
        hi = lo + 2 * span
        step >>= 1
