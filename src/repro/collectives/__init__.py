"""Baseline MPI collective algorithm library (subsystem S6)."""

from .allgather import allgather_bruck, allgather_recursive_doubling, allgather_ring
from .allreduce import allreduce_rabenseifner, allreduce_recursive_doubling
from .alltoall import alltoall_bruck, alltoall_pairwise
from .barrier import barrier_dissemination
from .bcast import bcast_binomial, bcast_ring_pipeline
from .gather import gather_binomial, gather_linear
from .hierarchical import (
    hier_allgather,
    hier_allreduce,
    hier_bcast,
    hier_gather,
    hier_reduce,
    hier_scatter,
)
from .reduce import reduce_binomial
from .reduce_scatter import (
    reduce_scatter_recursive_halving,
    reduce_scatter_reduce_then_scatter,
)
from .scan import exscan_linear, scan_linear, scan_recursive_doubling
from .scatter import scatter_binomial, scatter_linear
from .vector import (
    allgatherv_ring,
    alltoallv_pairwise,
    gatherv_linear,
    packed_displs,
    scatterv_linear,
)

__all__ = [
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allreduce_rabenseifner",
    "allreduce_recursive_doubling",
    "alltoall_bruck",
    "alltoall_pairwise",
    "allgatherv_ring",
    "alltoallv_pairwise",
    "barrier_dissemination",
    "bcast_binomial",
    "bcast_ring_pipeline",
    "exscan_linear",
    "gather_binomial",
    "gather_linear",
    "gatherv_linear",
    "hier_allgather",
    "hier_allreduce",
    "hier_bcast",
    "hier_gather",
    "hier_reduce",
    "hier_scatter",
    "reduce_binomial",
    "reduce_scatter_recursive_halving",
    "reduce_scatter_reduce_then_scatter",
    "packed_displs",
    "scan_linear",
    "scan_recursive_doubling",
    "scatter_binomial",
    "scatterv_linear",
    "scatter_linear",
]
