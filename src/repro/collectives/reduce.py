"""Reduce algorithms."""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from .base import TAG_REDUCE, local_copy, rank_of_vrank, resolve_comm, vrank_of


def _accumulate(ctx: RankContext, acc: BufferView, incoming: BufferView,
                dtype: Datatype, op: ReduceOp):
    """``acc op= incoming`` (functional when buffers are real) plus the
    modeled cost of one streaming pass over both operands."""
    acc_bytes = acc.read()
    inc_bytes = incoming.read()
    if acc_bytes is not None and inc_bytes is not None:
        a = acc_bytes.view(dtype.np_dtype)
        op.accumulate(a, inc_bytes.view(dtype.np_dtype))
        acc.write(a.view("uint8"))
    yield from ctx.node_hw.mem_copy(acc.nbytes)


def reduce_binomial(ctx: RankContext, sendview: BufferView,
                    recvview: Optional[BufferView], dtype: Datatype,
                    op: ReduceOp, root: int = 0,
                    comm: Optional[Communicator] = None):
    """Binomial-tree reduction to ``root``."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    rank = comm.to_comm(ctx.rank)
    if rank == root and recvview is None:
        raise ValueError("reduce: root needs a receive buffer")
    if size == 1:
        yield from local_copy(ctx, sendview, recvview)
        return
    vrank = vrank_of(rank, root, size)

    acc = ctx.alloc(count)
    acc.view().copy_from(sendview)
    incoming = ctx.alloc(count)
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of_vrank(vrank - mask, root, size)
            yield from ctx.send(acc.view(), dst=parent, tag=TAG_REDUCE, comm=comm)
            return
        if vrank + mask < size:
            child = rank_of_vrank(vrank + mask, root, size)
            yield from ctx.recv(incoming.view(), src=child, tag=TAG_REDUCE, comm=comm)
            yield from _accumulate(ctx, acc.view(), incoming.view(), dtype, op)
        mask <<= 1
    # vrank 0 == root holds the total.
    yield from local_copy(ctx, acc.view(), recvview)
