"""Vector (v-) collectives: per-rank variable counts.

MPI's production libraries use *linear* algorithms for rooted vector
collectives (only the root knows the counts, so trees cannot split
subtree payloads without an extra count exchange) and ring/pairwise
for the symmetric ones — this module follows that.

Count conventions (all in bytes):

* ``gatherv`` / ``scatterv``: ``counts``/``displs`` are only
  meaningful at the root (pass ``None`` elsewhere); ``displs`` default
  to the packed prefix sums.
* ``allgatherv``: every rank passes the same ``counts`` (as in MPI,
  where the counts array is replicated).
* ``alltoallv``: every rank passes its own ``send_counts`` and
  ``recv_counts`` rows; ``recv_counts[j]`` must equal rank ``j``'s
  ``send_counts[i]`` — checked functionally by the byte comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import TAG_ALLGATHER, TAG_ALLTOALL, TAG_GATHER, TAG_SCATTER, local_copy, resolve_comm


def packed_displs(counts: Sequence[int]) -> List[int]:
    """Prefix-sum displacements for tightly packed blocks."""
    displs = []
    off = 0
    for c in counts:
        displs.append(off)
        off += c
    return displs


def _check_counts(counts: Sequence[int], size: int, what: str) -> None:
    if len(counts) != size:
        raise ValueError(f"{what}: {len(counts)} counts for {size} ranks")
    if any(c < 0 for c in counts):
        raise ValueError(f"{what}: negative count in {counts}")


def gatherv_linear(ctx: RankContext, sendview: BufferView,
                   recvview: Optional[BufferView],
                   counts: Optional[Sequence[int]] = None,
                   displs: Optional[Sequence[int]] = None,
                   root: int = 0,
                   comm: Optional[Communicator] = None):
    """Linear gatherv: every rank sends its block straight to the root."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    if rank != root:
        if sendview.nbytes:
            yield from ctx.send(sendview, dst=root, tag=TAG_GATHER + 0x80, comm=comm)
        return
    if recvview is None or counts is None:
        raise ValueError("gatherv: root needs recvview and counts")
    _check_counts(counts, size, "gatherv counts")
    displs = list(displs) if displs is not None else packed_displs(counts)
    reqs = []
    for src in range(size):
        block = recvview.sub(displs[src], counts[src])
        if src == root:
            if counts[src]:
                yield from local_copy(ctx, sendview.sub(0, counts[src]), block)
        elif counts[src]:
            req = yield from ctx.irecv(block, src=src, tag=TAG_GATHER + 0x80,
                                       comm=comm)
            reqs.append(req)
    yield from ctx.waitall(reqs)


def scatterv_linear(ctx: RankContext, sendview: Optional[BufferView],
                    counts: Optional[Sequence[int]] = None,
                    displs: Optional[Sequence[int]] = None,
                    recvview: Optional[BufferView] = None,
                    root: int = 0,
                    comm: Optional[Communicator] = None):
    """Linear scatterv: the root sends each rank its block directly."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    if recvview is None:
        raise ValueError("scatterv: every rank needs a recvview")
    if rank != root:
        if recvview.nbytes:
            yield from ctx.recv(recvview, src=root, tag=TAG_SCATTER + 0x80,
                                comm=comm)
        return
    if sendview is None or counts is None:
        raise ValueError("scatterv: root needs sendview and counts")
    _check_counts(counts, size, "scatterv counts")
    displs = list(displs) if displs is not None else packed_displs(counts)
    for dst in range(size):
        block = sendview.sub(displs[dst], counts[dst])
        if dst == root:
            if counts[dst]:
                yield from local_copy(ctx, block, recvview.sub(0, counts[dst]))
        elif counts[dst]:
            yield from ctx.send(block, dst=dst, tag=TAG_SCATTER + 0x80, comm=comm)


def allgatherv_ring(ctx: RankContext, sendview: BufferView,
                    recvview: BufferView,
                    counts: Sequence[int],
                    displs: Optional[Sequence[int]] = None,
                    comm: Optional[Communicator] = None):
    """Ring allgatherv: block ownership walks the ring, variable sizes."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    _check_counts(counts, size, "allgatherv counts")
    if sendview.nbytes != counts[rank]:
        raise ValueError(
            f"allgatherv: rank {rank} sends {sendview.nbytes} B, "
            f"counts say {counts[rank]} B"
        )
    displs = list(displs) if displs is not None else packed_displs(counts)
    if counts[rank]:
        yield from local_copy(ctx, sendview,
                              recvview.sub(displs[rank], counts[rank]))
    nxt = (rank + 1) % size
    prev = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        # Zero-count blocks still make the exchange so the ring stays
        # in lockstep (a zero-byte message, like real implementations).
        yield from ctx.sendrecv(
            recvview.sub(displs[send_block], counts[send_block]), nxt,
            TAG_ALLGATHER + 0x80,
            recvview.sub(displs[recv_block], counts[recv_block]), prev,
            TAG_ALLGATHER + 0x80,
            comm=comm,
        )


def alltoallv_pairwise(ctx: RankContext, sendview: BufferView,
                       send_counts: Sequence[int],
                       recvview: BufferView,
                       recv_counts: Sequence[int],
                       send_displs: Optional[Sequence[int]] = None,
                       recv_displs: Optional[Sequence[int]] = None,
                       comm: Optional[Communicator] = None):
    """Pairwise alltoallv."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    _check_counts(send_counts, size, "alltoallv send_counts")
    _check_counts(recv_counts, size, "alltoallv recv_counts")
    sd = list(send_displs) if send_displs is not None else packed_displs(send_counts)
    rd = list(recv_displs) if recv_displs is not None else packed_displs(recv_counts)
    if send_counts[rank] != recv_counts[rank]:
        raise ValueError("alltoallv: self block sizes disagree")
    if send_counts[rank]:
        yield from local_copy(
            ctx,
            sendview.sub(sd[rank], send_counts[rank]),
            recvview.sub(rd[rank], recv_counts[rank]),
        )
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from ctx.sendrecv(
            sendview.sub(sd[dst], send_counts[dst]), dst, TAG_ALLTOALL + 0x80,
            recvview.sub(rd[src], recv_counts[src]), src, TAG_ALLTOALL + 0x80,
            comm=comm,
        )
