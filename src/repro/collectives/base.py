"""Shared machinery for collective algorithms.

Every algorithm is a generator ``algo(ctx, ..., comm=None)`` run by all
member ranks of ``comm``.  Algorithms are byte-oriented: they take
:class:`~repro.runtime.buffer.BufferView` windows and move whole blocks;
reduction algorithms additionally take a datatype + op.

Conventions
-----------
* block ``i`` of an allgather/gather result is the contribution of comm
  rank ``i``, at byte offset ``i * count``;
* tag spaces: each algorithm family owns a disjoint base tag so nested
  or back-to-back collectives can't cross-match;
* "virtual ranks": tree algorithms renumber ranks so the root is vrank
  0 (``vrank = (rank - root) % size``).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView, NullBuffer
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext

# -- tag spaces (disjoint per family) -----------------------------------
TAG_BCAST = 0x1000
TAG_GATHER = 0x2000
TAG_SCATTER = 0x3000
TAG_ALLGATHER = 0x4000
TAG_ALLREDUCE = 0x5000
TAG_REDUCE = 0x6000
TAG_ALLTOALL = 0x7000
TAG_REDUCE_SCATTER = 0x8000
TAG_BARRIER = 0x9000
TAG_SCAN = 0xA000
TAG_MCOLL = 0xB000


def resolve_comm(ctx: RankContext, comm: Optional[Communicator]) -> Communicator:
    """Default to COMM_WORLD."""
    return comm if comm is not None else ctx.comm_world


def vrank_of(rank: int, root: int, size: int) -> int:
    """Virtual rank with the tree rooted at vrank 0."""
    return (rank - root) % size


def rank_of_vrank(vrank: int, root: int, size: int) -> int:
    """Inverse of :func:`vrank_of`."""
    return (vrank + root) % size


def local_copy(ctx: RankContext, src: BufferView, dst: BufferView):
    """Functional copy within one rank, charged as one memcpy."""
    if src.nbytes != dst.nbytes:
        raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
    dst.write(src.read())
    yield from ctx.node_hw.mem_copy(src.nbytes)


def is_functional(*views: BufferView) -> bool:
    """True when every view carries real bytes.

    Per-chunk Python loops (rotations, packing) are skipped for
    timing-only buffers — they would be no-ops, and at 2304 ranks the
    interpreter overhead of a million no-op copies dwarfs the
    simulation itself.  Cost charges are never skipped.
    """
    return all(not isinstance(v.buffer, NullBuffer) for v in views)


def check_uniform_count(view: BufferView, count: int, parties: int, what: str) -> None:
    """Validate a rooted buffer that must hold ``parties × count`` bytes."""
    if view.nbytes != count * parties:
        raise ValueError(
            f"{what}: buffer holds {view.nbytes} B, expected {parties} × {count} B"
        )
