"""Barrier algorithms."""

from __future__ import annotations

from typing import Optional

from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import TAG_BARRIER, resolve_comm


def barrier_dissemination(ctx: RankContext,
                          comm: Optional[Communicator] = None):
    """Dissemination barrier: ``ceil(log2 P)`` rounds of zero-byte
    token exchanges at doubling circular distances."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size == 1:
        return
        yield  # pragma: no cover - keeps this a generator
    rank = comm.to_comm(ctx.rank)
    token = ctx.alloc(0)
    step = 1
    round_no = 0
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from ctx.sendrecv(
            token.view(), dst, TAG_BARRIER + round_no,
            token.view(), src, TAG_BARRIER + round_no,
            comm=comm,
        )
        step <<= 1
        round_no += 1
