"""Allgather algorithms — the paper's Figure 2 baselines.

* :func:`allgather_recursive_doubling` — the classic power-of-two
  small-message algorithm (``log2 P`` rounds, doubling block counts).
* :func:`allgather_bruck` — radix-2 Bruck: works for any ``P`` in
  ``ceil(log2 P)`` rounds plus one final local rotation.  This is what
  MPICH-family libraries run at 2304 ranks (not a power of two).
* :func:`allgather_ring` — ``P - 1`` rounds of neighbour exchange;
  bandwidth-optimal for large messages.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import TAG_ALLGATHER, check_uniform_count, is_functional, local_copy, resolve_comm


def allgather_recursive_doubling(ctx: RankContext, sendview: BufferView,
                                 recvview: BufferView,
                                 comm: Optional[Communicator] = None):
    """Recursive doubling; requires a power-of-two communicator."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size & (size - 1):
        raise ValueError(f"recursive doubling needs a power-of-two size, got {size}")
    count = sendview.nbytes
    check_uniform_count(recvview, count, size, "allgather recvbuf")
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview.sub(rank * count, count))
    mask = 1
    round_no = 0
    while mask < size:
        partner = rank ^ mask
        my_start = (rank & ~(mask - 1)) * count
        partner_start = (partner & ~(mask - 1)) * count
        with ctx.span("round", cat="round", idx=round_no,
                      algorithm="recursive_doubling"):
            yield from ctx.sendrecv(
                recvview.sub(my_start, count * mask), partner, TAG_ALLGATHER,
                recvview.sub(partner_start, count * mask), partner, TAG_ALLGATHER,
                comm=comm,
            )
        mask <<= 1
        round_no += 1


def allgather_bruck(ctx: RankContext, sendview: BufferView,
                    recvview: BufferView,
                    comm: Optional[Communicator] = None):
    """Radix-2 Bruck allgather (any communicator size).

    Invariant after ``k`` rounds: ``tmp`` block ``i`` holds the data of
    comm rank ``(rank + i) % size`` for ``i < 2^k``.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    check_uniform_count(recvview, count, size, "allgather recvbuf")
    rank = comm.to_comm(ctx.rank)
    tmp = ctx.alloc(count * size)
    tmp.view(0, count).copy_from(sendview)
    yield from ctx.node_hw.mem_copy(count)

    step = 1
    round_no = 0
    while step < size:
        block_cnt = min(step, size - step)
        dst = (rank - step) % size
        src = (rank + step) % size
        with ctx.span("round", cat="round", idx=round_no, algorithm="bruck"):
            yield from ctx.sendrecv(
                tmp.view(0, block_cnt * count), dst, TAG_ALLGATHER,
                tmp.view(step * count, block_cnt * count), src, TAG_ALLGATHER,
                comm=comm,
            )
        step <<= 1
        round_no += 1

    # tmp block i = data of rank (rank+i)%size → rotate into rank order.
    # The rotation is two contiguous block moves (no wrap inside each),
    # so it is two bulk copies rather than `size` per-block ones.
    if is_functional(recvview):
        head = (size - rank) * count  # blocks 0..size-rank-1 → ranks rank..size-1
        recvview.sub(rank * count, head).copy_from(tmp.view(0, head))
        if rank:
            recvview.sub(0, rank * count).copy_from(tmp.view(head, rank * count))
    yield from ctx.node_hw.mem_copy(size * count)  # one rotation pass


#: rounds simulated explicitly on each side of a fast-forwarded ring
_RING_PROBE = 16


def allgather_ring(ctx: RankContext, sendview: BufferView,
                   recvview: BufferView,
                   comm: Optional[Communicator] = None):
    """Ring allgather: each round forwards one block to the successor.

    Timing-only fast-forward: the ring is a uniform pipeline, so after
    a handful of warmup rounds every further round costs the same.
    When buffers carry no bytes (full-scale timing runs) and the ring
    is long, the middle rounds are charged as ``per-round × skipped``
    in one step — with the probe and tail rounds still simulated
    message-by-message so NIC/pipe state stays warm.  All ranks skip
    the same rounds, so matching stays consistent.  Functional runs
    always simulate every round.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    check_uniform_count(recvview, count, size, "allgather recvbuf")
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview.sub(rank * count, count))
    nxt = (rank + 1) % size
    prev = (rank - 1) % size
    rounds = size - 1
    fast_forward = (not is_functional(sendview, recvview)
                    and rounds > 3 * _RING_PROBE)
    probe_start = None
    step = 0
    while step < rounds:
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        with ctx.span("round", cat="round", idx=step, algorithm="ring"):
            yield from ctx.sendrecv(
                recvview.sub(send_block * count, count), nxt, TAG_ALLGATHER,
                recvview.sub(recv_block * count, count), prev, TAG_ALLGATHER,
                comm=comm,
            )
        step += 1
        if fast_forward:
            if step == _RING_PROBE:
                probe_start = ctx.now
            elif step == 2 * _RING_PROBE:
                per_round = (ctx.now - probe_start) / _RING_PROBE
                skipped = rounds - step - _RING_PROBE
                yield ctx.sim.timeout(per_round * skipped)
                step += skipped
