"""Gather algorithms.

:func:`gather_binomial` is MPICH's default: leaves push their block to
their binomial parent, inner nodes forward their whole accumulated
subtree, so the root receives ``ceil(log2 P)`` messages instead of
``P - 1``.  Subtree data is contiguous in *virtual* rank order; the
root performs one rotation pass at the end when ``root != 0``.

:func:`gather_linear` is the flat alternative (root receives from
everyone) — it's what a single leader pays without a tree, and is used
by the ablations as a worst-case single-object baseline.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import (TAG_GATHER, check_uniform_count, is_functional, local_copy,
                   rank_of_vrank, resolve_comm, vrank_of)


def gather_binomial(ctx: RankContext, sendview: BufferView,
                    recvview: Optional[BufferView], root: int = 0,
                    comm: Optional[Communicator] = None):
    """Binomial-tree gather of equal ``sendview.nbytes`` blocks."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    rank = comm.to_comm(ctx.rank)
    if rank == root:
        if recvview is None:
            raise ValueError("gather: root needs a receive buffer")
        check_uniform_count(recvview, count, size, "gather recvbuf")
    if size == 1:
        yield from local_copy(ctx, sendview, recvview.sub(0, count))
        return
    vrank = vrank_of(rank, root, size)

    # Staging buffer in vrank order; my block sits at offset 0.
    subtree_cap = count * size
    tmp = ctx.alloc(subtree_cap)
    tmp.view(0, count).copy_from(sendview)
    held = 1  # blocks currently held (own + received subtrees)

    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of_vrank(vrank - mask, root, size)
            yield from ctx.send(tmp.view(0, held * count), dst=parent,
                                tag=TAG_GATHER, comm=comm)
            break
        if vrank + mask < size:
            child_blocks = min(mask, size - (vrank + mask))
            child = rank_of_vrank(vrank + mask, root, size)
            yield from ctx.recv(
                tmp.view(mask * count, child_blocks * count),
                src=child, tag=TAG_GATHER, comm=comm,
            )
            held = mask + child_blocks
        else:
            pass  # no child at this distance
        mask <<= 1

    if rank == root:
        # tmp holds blocks in vrank order; rotate into rank order.
        if root == 0:
            yield from local_copy(ctx, tmp.view(0, size * count), recvview)
        else:
            if is_functional(recvview):
                for v in range(size):
                    r = rank_of_vrank(v, root, size)
                    recvview.sub(r * count, count).copy_from(tmp.view(v * count, count))
            yield from ctx.node_hw.mem_copy(size * count)  # one rotation pass


def gather_linear(ctx: RankContext, sendview: BufferView,
                  recvview: Optional[BufferView], root: int = 0,
                  comm: Optional[Communicator] = None):
    """Flat gather: every rank sends straight to the root."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = sendview.nbytes
    rank = comm.to_comm(ctx.rank)
    if rank != root:
        yield from ctx.send(sendview, dst=root, tag=TAG_GATHER, comm=comm)
        return
    if recvview is None:
        raise ValueError("gather: root needs a receive buffer")
    check_uniform_count(recvview, count, size, "gather recvbuf")
    recvview.sub(rank * count, count).copy_from(sendview)
    reqs = []
    for src in range(size):
        if src == root:
            continue
        req = yield from ctx.irecv(recvview.sub(src * count, count),
                                   src=src, tag=TAG_GATHER, comm=comm)
        reqs.append(req)
    yield from ctx.waitall(reqs)
