"""Reduce-scatter (block-regular) algorithms."""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from .base import TAG_REDUCE_SCATTER, local_copy, resolve_comm
from .reduce import _accumulate, reduce_binomial
from .scatter import scatter_binomial


def reduce_scatter_recursive_halving(ctx: RankContext, sendview: BufferView,
                                     recvview: BufferView, dtype: Datatype,
                                     op: ReduceOp,
                                     comm: Optional[Communicator] = None):
    """Recursive halving (power-of-two sizes).

    Each round exchanges-and-reduces half of the remaining range with
    the partner one bit away; after ``log2 P`` rounds every rank holds
    the fully reduced block it owns.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    if size & (size - 1):
        raise ValueError(f"recursive halving needs a power-of-two size, got {size}")
    count = recvview.nbytes
    if sendview.nbytes != count * size:
        raise ValueError(
            f"reduce_scatter: sendbuf {sendview.nbytes} B != {size} × {count} B"
        )
    rank = comm.to_comm(ctx.rank)
    work = ctx.alloc(sendview.nbytes)
    work.view().copy_from(sendview)
    yield from ctx.node_hw.mem_copy(sendview.nbytes)
    incoming = ctx.alloc(sendview.nbytes)

    lo, hi = 0, sendview.nbytes
    step = 1
    while step < size:
        partner = rank ^ step
        half = (hi - lo) // 2
        if rank & step:
            mine_lo, theirs_lo = lo + half, lo
        else:
            mine_lo, theirs_lo = lo, lo + half
        yield from ctx.sendrecv(
            work.view(theirs_lo, half), partner, TAG_REDUCE_SCATTER,
            incoming.view(mine_lo, half), partner, TAG_REDUCE_SCATTER,
            comm=comm,
        )
        yield from _accumulate(ctx, work.view(mine_lo, half),
                               incoming.view(mine_lo, half), dtype, op)
        lo, hi = mine_lo, mine_lo + half
        step <<= 1

    # My final range is my bit-pattern block; with ascending steps the
    # placement is bit-reversed w.r.t. rank order, so locate my block
    # by replaying the splits — [lo, hi) already is it — then check it
    # really is my rank's block and copy out.
    assert hi - lo == count
    # Which rank's block is [lo, hi)?  Replaying: bit k of rank chose
    # the upper half at level k (range shrinking by 2 each time), i.e.
    # offset = sum(bit_k(rank) * count*size/2^(k+1)).  For rank order we
    # must hand each rank block `rank`; exchange with the bit-owner if
    # they differ.
    owner_block = lo // count
    if owner_block == rank:
        yield from local_copy(ctx, work.view(lo, count), recvview)
    else:
        # Swap blocks with the rank whose block I computed (it computed
        # mine, by symmetry of the bit permutation).
        partner = owner_block
        yield from ctx.sendrecv(
            work.view(lo, count), partner, TAG_REDUCE_SCATTER + 1,
            recvview, partner, TAG_REDUCE_SCATTER + 1,
            comm=comm,
        )


def reduce_scatter_reduce_then_scatter(ctx: RankContext, sendview: BufferView,
                                       recvview: BufferView, dtype: Datatype,
                                       op: ReduceOp,
                                       comm: Optional[Communicator] = None):
    """Fallback for any size: binomial reduce to rank 0, then scatter."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = recvview.nbytes
    if sendview.nbytes != count * size:
        raise ValueError(
            f"reduce_scatter: sendbuf {sendview.nbytes} B != {size} × {count} B"
        )
    rank = comm.to_comm(ctx.rank)
    total = ctx.alloc(sendview.nbytes) if rank == 0 else None
    yield from reduce_binomial(
        ctx, sendview, total.view() if total is not None else None,
        dtype, op, root=0, comm=comm,
    )
    yield from scatter_binomial(
        ctx, total.view() if total is not None else None, recvview,
        root=0, comm=comm,
    )
