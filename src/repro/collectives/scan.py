"""Inclusive-scan algorithms."""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from .base import TAG_SCAN, local_copy, resolve_comm
from .reduce import _accumulate


def scan_linear(ctx: RankContext, sendview: BufferView, recvview: BufferView,
                dtype: Datatype, op: ReduceOp,
                comm: Optional[Communicator] = None):
    """Sequential pipeline scan: rank ``i`` waits for ``i-1``'s prefix."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview)
    if rank > 0:
        prefix = ctx.alloc(sendview.nbytes)
        yield from ctx.recv(prefix.view(), src=rank - 1, tag=TAG_SCAN, comm=comm)
        yield from _accumulate(ctx, recvview, prefix.view(), dtype, op)
    if rank < size - 1:
        yield from ctx.send(recvview, dst=rank + 1, tag=TAG_SCAN, comm=comm)


def scan_recursive_doubling(ctx: RankContext, sendview: BufferView,
                            recvview: BufferView, dtype: Datatype,
                            op: ReduceOp,
                            comm: Optional[Communicator] = None):
    """Log-round scan.

    Keeps two accumulators: ``recvview`` (my inclusive prefix) and a
    running ``partial`` (the reduction of every contribution seen so
    far).  At distance ``d`` the partial goes both ways; only the copy
    arriving from a *lower* rank folds into the prefix.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview, recvview)
    partial = ctx.alloc(sendview.nbytes)
    partial.view().copy_from(sendview)
    yield from ctx.node_hw.mem_copy(sendview.nbytes)
    incoming = ctx.alloc(sendview.nbytes)

    mask = 1
    while mask < size:
        partner = rank ^ mask
        if partner < size:
            yield from ctx.sendrecv(
                partial.view(), partner, TAG_SCAN + 1,
                incoming.view(), partner, TAG_SCAN + 1,
                comm=comm,
            )
            if partner < rank:
                yield from _accumulate(ctx, recvview, incoming.view(), dtype, op)
            yield from _accumulate(ctx, partial.view(), incoming.view(), dtype, op)
        mask <<= 1


def exscan_linear(ctx: RankContext, sendview: BufferView, recvview: BufferView,
                  dtype: Datatype, op: ReduceOp,
                  comm: Optional[Communicator] = None):
    """Exclusive scan: rank ``i`` gets the prefix over ranks ``0..i-1``.

    Rank 0's receive buffer is left untouched (MPI leaves it
    undefined).  Pipeline structure mirrors :func:`scan_linear` with
    the accumulate/forward order swapped.
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    rank = comm.to_comm(ctx.rank)
    carry = ctx.alloc(sendview.nbytes)
    if rank > 0:
        yield from ctx.recv(carry.view(), src=rank - 1, tag=TAG_SCAN + 2, comm=comm)
        recvview.write(carry.view().read())
        yield from ctx.node_hw.mem_copy(recvview.nbytes)
    if rank < size - 1:
        if rank == 0:
            carry.view().copy_from(sendview)
            yield from ctx.node_hw.mem_copy(sendview.nbytes)
        else:
            yield from _accumulate(ctx, carry.view(), sendview, dtype, op)
        yield from ctx.send(carry.view(), dst=rank + 1, tag=TAG_SCAN + 2, comm=comm)
