"""Selection-table introspection.

Real MPI libraries ship tuned decision tables; this repo's library
models encode them as ``_pick_*`` methods.  The helpers here turn
those rules back into *tables* — which algorithm fires for which
(collective, message size, scale) — so tests can pin the tables, the
CLI can print them, and cutoff behaviour (e.g. the Bruck→ring cliff at
2304 ranks) is visible rather than buried in code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..mpilibs import MpiLibrary, make_library

#: size grid used when none is given (covers every cutoff in the models)
DEFAULT_SIZES = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


def algorithm_name(algo) -> str:
    """Human-readable name of a selected algorithm callable."""
    return getattr(algo, "__name__", repr(algo))


@dataclass(frozen=True)
class SelectionRow:
    """One (size → algorithm) row of a selection table."""

    nbytes: int
    algorithm: str


def selection_table(library, collective: str, world_size: int,
                    sizes: Sequence[int] = DEFAULT_SIZES) -> List[SelectionRow]:
    """The algorithms ``library`` selects across ``sizes``."""
    lib: MpiLibrary = (
        make_library(library) if isinstance(library, str) else library
    )
    return [
        SelectionRow(nbytes, algorithm_name(lib.algorithm(collective, nbytes,
                                                          world_size)))
        for nbytes in sizes
    ]


def cutoffs(library, collective: str, world_size: int,
            sizes: Sequence[int] = DEFAULT_SIZES) -> List[Tuple[int, str]]:
    """(first size, algorithm) pairs at each selection change."""
    table = selection_table(library, collective, world_size, sizes)
    out: List[Tuple[int, str]] = []
    for row in table:
        if not out or out[-1][1] != row.algorithm:
            out.append((row.nbytes, row.algorithm))
    return out


def format_selection_tables(library, world_size: int,
                            sizes: Sequence[int] = DEFAULT_SIZES) -> str:
    """All collectives' selections for one library, as text."""
    from ..mpilibs import COLLECTIVES, SCAN_COLLECTIVES

    lib: MpiLibrary = (
        make_library(library) if isinstance(library, str) else library
    )
    lines = [f"{lib.profile.name} selection table at {world_size} ranks "
             f"(intra: {lib.profile.intra})"]
    for coll in COLLECTIVES + SCAN_COLLECTIVES:
        pieces = [
            f"{name} (>={size} B)"
            for size, name in cutoffs(lib, coll, world_size, sizes)
        ]
        lines.append(f"  {coll:14s} " + " -> ".join(pieces))
    return "\n".join(lines)


def compare_libraries(collective: str, world_size: int,
                      libraries: Sequence[str],
                      sizes: Sequence[int] = DEFAULT_SIZES
                      ) -> Dict[str, List[SelectionRow]]:
    """Selection tables of several libraries side by side."""
    return {
        name: selection_table(name, collective, world_size, sizes)
        for name in libraries
    }
