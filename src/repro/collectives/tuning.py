"""Selection-table introspection.

Real MPI libraries ship tuned decision tables; this repo's library
models encode them as ``_pick_*`` methods.  The helpers here turn
those rules back into *tables* — which algorithm fires for which
(collective, message size, scale) — so tests can pin the tables, the
CLI can print them, and cutoff behaviour (e.g. the Bruck→ring cliff at
2304 ranks) is visible rather than buried in code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..mpilibs import MpiLibrary, make_library

#: size grid used when none is given (covers every cutoff in the models)
DEFAULT_SIZES = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


def algorithm_name(algo) -> str:
    """Human-readable name of a selected algorithm callable."""
    return getattr(algo, "__name__", repr(algo))


@dataclass(frozen=True)
class SelectionRow:
    """One (size → algorithm) row of a selection table."""

    nbytes: int
    algorithm: str


def selection_table(library, collective: str, world_size: int,
                    sizes: Sequence[int] = DEFAULT_SIZES) -> List[SelectionRow]:
    """The algorithms ``library`` selects across ``sizes``."""
    lib: MpiLibrary = (
        make_library(library) if isinstance(library, str) else library
    )
    return [
        SelectionRow(nbytes, algorithm_name(lib.algorithm(collective, nbytes,
                                                          world_size)))
        for nbytes in sizes
    ]


def cutoffs(library, collective: str, world_size: int,
            sizes: Sequence[int] = DEFAULT_SIZES) -> List[Tuple[int, str]]:
    """(first size, algorithm) pairs at each selection change."""
    table = selection_table(library, collective, world_size, sizes)
    out: List[Tuple[int, str]] = []
    for row in table:
        if not out or out[-1][1] != row.algorithm:
            out.append((row.nbytes, row.algorithm))
    return out


def format_selection_tables(library, world_size: int,
                            sizes: Sequence[int] = DEFAULT_SIZES) -> str:
    """All collectives' selections for one library, as text."""
    from ..mpilibs import COLLECTIVES, SCAN_COLLECTIVES

    lib: MpiLibrary = (
        make_library(library) if isinstance(library, str) else library
    )
    lines = [f"{lib.profile.name} selection table at {world_size} ranks "
             f"(intra: {lib.profile.intra})"]
    for coll in COLLECTIVES + SCAN_COLLECTIVES:
        pieces = [
            f"{name} (>={size} B)"
            for size, name in cutoffs(lib, coll, world_size, sizes)
        ]
        lines.append(f"  {coll:14s} " + " -> ".join(pieces))
    return "\n".join(lines)


def compare_libraries(collective: str, world_size: int,
                      libraries: Sequence[str],
                      sizes: Sequence[int] = DEFAULT_SIZES
                      ) -> Dict[str, List[SelectionRow]]:
    """Selection tables of several libraries side by side."""
    return {
        name: selection_table(name, collective, world_size, sizes)
        for name in libraries
    }


@dataclass(frozen=True)
class FlippedCell:
    """One table cell where the tuned library diverges from stock."""

    collective: str
    nbytes: int
    stock_algorithm: str
    tuned_algorithm: str
    #: measured best − baseline (µs) from the tuning DB, when the
    #: tuned library carries one for this cell; negative = gain
    predicted_gain_us: float = None


def compare_tables(stock, tuned, world_size: int,
                   collectives: Sequence[str] = None,
                   sizes: Sequence[int] = DEFAULT_SIZES
                   ) -> List[FlippedCell]:
    """Which cells ``tuned`` flipped relative to ``stock``, with the
    predicted per-cell gain where the tuned library's DB measured one.

    Accepts names, ``tuned:`` specs, or :class:`MpiLibrary` instances
    for both sides (``tuned`` is typically a
    :class:`~repro.tuner.compile.TunedLibrary`).
    """
    from ..mpilibs import COLLECTIVES

    stock_lib: MpiLibrary = (
        make_library(stock) if isinstance(stock, str) else stock
    )
    tuned_lib: MpiLibrary = (
        make_library(tuned) if isinstance(tuned, str) else tuned
    )
    db = getattr(tuned_lib, "db", None)
    gains: Dict[tuple, float] = {}
    if db is not None:
        for result in db.cells.values():
            if (result.nodes * result.ppn == world_size
                    and result.baseline_us is not None):
                gains[(result.collective, result.nbytes)] = (
                    result.best_latency_us - result.baseline_us)
    flipped: List[FlippedCell] = []
    for coll in (collectives if collectives is not None else COLLECTIVES):
        stock_rows = selection_table(stock_lib, coll, world_size, sizes)
        tuned_rows = selection_table(tuned_lib, coll, world_size, sizes)
        for s_row, t_row in zip(stock_rows, tuned_rows):
            if s_row.algorithm != t_row.algorithm:
                flipped.append(FlippedCell(
                    collective=coll,
                    nbytes=s_row.nbytes,
                    stock_algorithm=s_row.algorithm,
                    tuned_algorithm=t_row.algorithm,
                    predicted_gain_us=gains.get((coll, s_row.nbytes)),
                ))
    return flipped


def format_compare_tables(flipped: Sequence[FlippedCell]) -> str:
    """Render :func:`compare_tables` output (``tune compare``)."""
    if not flipped:
        return "tuned tables agree with stock on every cell"
    lines = []
    for cell in flipped:
        gain = ("" if cell.predicted_gain_us is None
                else f"  [{cell.predicted_gain_us:+.3f} µs]")
        lines.append(
            f"{cell.collective:14s} {cell.nbytes:>9d} B  "
            f"{cell.stock_algorithm} → {cell.tuned_algorithm}{gain}"
        )
    return "\n".join(lines)
