"""Scatter algorithms.

:func:`scatter_binomial` mirrors the binomial gather in reverse: the
root peels off subtree-sized chunks so only ``ceil(log2 P)`` messages
leave the root (this is the Figure 1 baseline used by MPICH/OpenMPI).

:func:`scatter_linear` is the flat variant (root sends ``P - 1``
messages itself) — the purest single-object design, used by ablations.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import (TAG_SCATTER, check_uniform_count, is_functional, local_copy,
                   rank_of_vrank, resolve_comm, vrank_of)


def scatter_binomial(ctx: RankContext, sendview: Optional[BufferView],
                     recvview: BufferView, root: int = 0,
                     comm: Optional[Communicator] = None):
    """Binomial-tree scatter of equal ``recvview.nbytes`` blocks."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = recvview.nbytes
    rank = comm.to_comm(ctx.rank)
    if rank == root:
        if sendview is None:
            raise ValueError("scatter: root needs a send buffer")
        check_uniform_count(sendview, count, size, "scatter sendbuf")
    if size == 1:
        yield from local_copy(ctx, sendview.sub(0, count), recvview)
        return
    vrank = vrank_of(rank, root, size)

    # Staging buffer holding my subtree's blocks in vrank order
    # (my own block at offset 0).
    tmp = ctx.alloc(count * size)
    if rank == root:
        if root == 0:
            tmp.view(0, count * size).copy_from(sendview)
        elif is_functional(sendview):
            for v in range(size):
                r = rank_of_vrank(v, root, size)
                tmp.view(v * count, count).copy_from(sendview.sub(r * count, count))
        yield from ctx.node_hw.mem_copy(count * size)  # staging pass

    # Receive my subtree from the parent.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of_vrank(vrank - mask, root, size)
            my_blocks = min(mask, size - vrank)
            yield from ctx.recv(tmp.view(0, my_blocks * count), src=parent,
                                tag=TAG_SCATTER, comm=comm)
            break
        mask <<= 1

    # Peel off and forward child subtrees, largest distance first.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = rank_of_vrank(vrank + mask, root, size)
            child_blocks = min(mask, size - (vrank + mask))
            yield from ctx.send(tmp.view(mask * count, child_blocks * count),
                                dst=child, tag=TAG_SCATTER, comm=comm)
        mask >>= 1

    yield from local_copy(ctx, tmp.view(0, count), recvview)


def scatter_linear(ctx: RankContext, sendview: Optional[BufferView],
                   recvview: BufferView, root: int = 0,
                   comm: Optional[Communicator] = None):
    """Flat scatter: the root sends each rank its block directly."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = recvview.nbytes
    rank = comm.to_comm(ctx.rank)
    if rank != root:
        yield from ctx.recv(recvview, src=root, tag=TAG_SCATTER, comm=comm)
        return
    if sendview is None:
        raise ValueError("scatter: root needs a send buffer")
    check_uniform_count(sendview, count, size, "scatter sendbuf")
    for dst in range(size):
        if dst == root:
            continue
        yield from ctx.send(sendview.sub(dst * count, count), dst=dst,
                            tag=TAG_SCATTER, comm=comm)
    yield from local_copy(ctx, sendview.sub(root * count, count), recvview)
