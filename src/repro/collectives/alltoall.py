"""All-to-all algorithms.

* :func:`alltoall_pairwise` — ``P - 1`` rounds; round ``s`` exchanges
  with ranks at circular distance ``s``.  Bandwidth-friendly.
* :func:`alltoall_bruck` — ``ceil(log2 P)`` rounds of packed blocks;
  latency-optimal for small messages (what MPICH uses below 256 B).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from .base import TAG_ALLTOALL, is_functional, local_copy, resolve_comm


def _split_counts(view: BufferView, size: int, what: str) -> int:
    if view.nbytes % size:
        raise ValueError(f"{what}: {view.nbytes} B not divisible by {size} ranks")
    return view.nbytes // size


def alltoall_pairwise(ctx: RankContext, sendview: BufferView,
                      recvview: BufferView,
                      comm: Optional[Communicator] = None):
    """Pairwise-exchange alltoall."""
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = _split_counts(sendview, size, "alltoall sendbuf")
    if recvview.nbytes != sendview.nbytes:
        raise ValueError("alltoall: send/recv sizes differ")
    rank = comm.to_comm(ctx.rank)
    yield from local_copy(ctx, sendview.sub(rank * count, count),
                          recvview.sub(rank * count, count))
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from ctx.sendrecv(
            sendview.sub(dst * count, count), dst, TAG_ALLTOALL,
            recvview.sub(src * count, count), src, TAG_ALLTOALL,
            comm=comm,
        )


def alltoall_bruck(ctx: RankContext, sendview: BufferView,
                   recvview: BufferView,
                   comm: Optional[Communicator] = None):
    """Bruck alltoall: log-round packed exchanges.

    Phase 1 rotates local blocks so block ``i`` targets rank
    ``(rank + i) % size``; phase 2 ships, for each bit ``k``, every
    block whose index has bit ``k`` set to the rank ``2^k`` away;
    phase 3 inverts the rotation (including the index reversal the
    algorithm induces).
    """
    comm = resolve_comm(ctx, comm)
    size = comm.size
    count = _split_counts(sendview, size, "alltoall sendbuf")
    if recvview.nbytes != sendview.nbytes:
        raise ValueError("alltoall: send/recv sizes differ")
    rank = comm.to_comm(ctx.rank)

    # Phase 1: tmp block i = my send block for rank (rank + i) % size.
    functional = is_functional(sendview, recvview)
    tmp = ctx.alloc(count * size)
    if functional:
        for i in range(size):
            tmp.view(i * count, count).copy_from(
                sendview.sub(((rank + i) % size) * count, count))
    yield from ctx.node_hw.mem_copy(size * count)

    # Phase 2: bit by bit, send blocks whose index has the bit set.
    pack = ctx.alloc(count * size)
    step = 1
    while step < size:
        indices = [i for i in range(size) if i & step]
        if functional:
            for j, i in enumerate(indices):
                pack.view(j * count, count).copy_from(tmp.view(i * count, count))
        yield from ctx.node_hw.mem_copy(len(indices) * count)  # pack pass
        nbytes = len(indices) * count
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from ctx.sendrecv(
            pack.view(0, nbytes), dst, TAG_ALLTOALL + 1,
            pack.view(nbytes, nbytes), src, TAG_ALLTOALL + 1,
            comm=comm,
        )
        if functional:
            for j, i in enumerate(indices):
                tmp.view(i * count, count).copy_from(pack.view(nbytes + j * count, count))
        yield from ctx.node_hw.mem_copy(nbytes)  # unpack pass
        step <<= 1

    # Phase 3: tmp block i now holds the data *from* rank
    # (rank - i) % size; place it at recv block (rank - i) % size.
    if functional:
        for i in range(size):
            src_rank = (rank - i) % size
            recvview.sub(src_rank * count, count).copy_from(tmp.view(i * count, count))
    yield from ctx.node_hw.mem_copy(size * count)
