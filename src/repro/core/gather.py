"""PiP-MColl MPI_Gather — the mirror image of the multi-object scatter.

1. On every node, local ranks store their block directly into a shared
   staging slab (concurrent single copies), then barrier.
2. **Multi-object inter-node gather**: on each remote node the local
   rank paired with that node (round-robin) ships the whole slab to
   its counterpart rank on the root's node.
3. Root-node ranks receive their share of slabs *directly into the
   root's receive buffer* (multi-receiver: the recv landing zone is
   the root's memory, addressed via PiP), and copy the root node's own
   blocks in parallel.

Contract: the root's receive view must start at offset 0 of its buffer.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL, check_uniform_count
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy
from .multiobject import round_partition

_ROOT_KEY = "mcoll.gather.rootbuf"
_STAGE_KEY = "mcoll.gather.stage"
_TAG = TAG_MCOLL + 0x300


def mcoll_gather(ctx: RankContext, sendview: BufferView,
                 recvview: Optional[BufferView], root: int = 0,
                 comm: Optional[Communicator] = None):
    """Multi-object gather to ``root``."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    cb = sendview.nbytes
    rank = comm.to_comm(ctx.rank)
    root_world = comm.to_world(root)
    root_node = ctx.cluster.node_of(root_world)
    slab = cb * ppn
    remote_nodes = [n for n in range(n_nodes) if n != root_node]

    if node != root_node:
        # Steps 1–2: stage the node slab, one rank ships it.
        stage = yield from open_stage(ctx, _STAGE_KEY, slab)
        yield from straight_copy(ctx, sendview, stage.view(rl * cb, cb))
        yield from ctx.node_barrier()
        sender_rl = remote_nodes.index(node) % ppn
        if rl == sender_rl:
            dst = comm.to_comm(ctx.cluster.global_rank(root_node, sender_rl))
            yield from ctx.send(stage.view(0, slab), dst=dst, tag=_TAG, comm=comm)
        yield from close_stage(ctx, _STAGE_KEY)
        return

    # Root node.
    if rank == root:
        if recvview is None:
            raise ValueError("gather: root needs a receive buffer")
        check_uniform_count(recvview, cb, comm.size, "gather recvbuf")
        if recvview.offset != 0:
            raise ValueError(
                "mcoll_gather: root receive view must start at offset 0 "
                "(PiP peers address the exposed buffer absolutely)"
            )
        ctx.expose(_ROOT_KEY, recvview.buffer)
    yield from ctx.node_barrier()
    root_buf = (
        recvview.buffer if rank == root
        else ctx.peer_buffer(root_world, _ROOT_KEY)
    )

    # Step 3a: my own block, straight into the root's buffer.
    my_block = ctx.cluster.global_rank(node, rl)
    yield from straight_copy(ctx, sendview, root_buf.view(my_block * cb, cb))

    # Step 3b: receive my share of remote slabs directly in place.
    reqs = []
    for idx in round_partition(len(remote_nodes), ppn, rl):
        src_node = remote_nodes[idx]
        src_rank = comm.to_comm(ctx.cluster.global_rank(src_node, rl))
        first_block = ctx.cluster.global_rank(src_node, 0)
        req = yield from ctx.irecv(
            root_buf.view(first_block * cb, slab), src=src_rank, tag=_TAG,
            comm=comm,
        )
        reqs.append(req)
    yield from ctx.waitall(reqs)
    yield from ctx.node_barrier()  # root's buffer complete everywhere
    if rank == root:
        ctx.withdraw(_ROOT_KEY)
