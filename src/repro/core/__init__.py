"""PiP-MColl: the paper's multi-object collectives (subsystem S7)."""

from . import multiobject
from .allgather import mcoll_allgather, mcoll_allgather_large
from .allgatherv import mcoll_allgatherv
from .allreduce import mcoll_allreduce
from .alltoall import mcoll_alltoall
from .barrier import mcoll_barrier
from .bcast import mcoll_bcast
from .gather import mcoll_gather
from .reduce import mcoll_allreduce_rsag, mcoll_reduce
from .reduce_scatter import mcoll_reduce_scatter
from .scan import mcoll_scan
from .scatter import mcoll_scatter

__all__ = [
    "mcoll_allgather",
    "mcoll_allgather_large",
    "mcoll_allgatherv",
    "mcoll_allreduce",
    "mcoll_allreduce_rsag",
    "mcoll_alltoall",
    "mcoll_barrier",
    "mcoll_bcast",
    "mcoll_gather",
    "mcoll_reduce",
    "mcoll_reduce_scatter",
    "mcoll_scan",
    "mcoll_scatter",
    "multiobject",
]
