"""PiP-MColl MPI_Allgatherv — multi-object, variable counts.

The paper's system would need a v-variant in production; this is the
natural extension of :func:`~repro.core.allgather.mcoll_allgather_large`
to per-rank counts:

1. every local rank stores its (variable-size) block directly into a
   rank-ordered shared staging buffer;
2. a **node-level ring** runs with per-node *slabs* (the concatenation
   of that node's blocks): local rank ``R_l`` forwards stripe ``R_l``
   of the moving slab, all ``P`` streams concurrent, every byte
   crossing the wire once;
3. every rank copies the completed staging buffer out in parallel.

Because node-slab sizes vary, the stripes are recomputed per slab
(byte-balanced, dtype-free).  Zero-size blocks and even entirely empty
nodes are handled (zero-byte ring messages keep the lockstep).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL
from ..collectives.vector import packed_displs
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_STAGE_KEY = "mcoll.allgatherv.stage"
_TAG = TAG_MCOLL + 0xA00


def _byte_stripes(nbytes: int, parts: int) -> List[tuple]:
    """Split ``nbytes`` into ``parts`` contiguous (offset, len) spans."""
    base, extra = divmod(nbytes, parts)
    spans = []
    off = 0
    for p in range(parts):
        n = base + (1 if p < extra else 0)
        spans.append((off, n))
        off += n
    return spans


def mcoll_allgatherv(ctx: RankContext, sendview: BufferView,
                     recvview: BufferView, counts: Sequence[int],
                     displs: Optional[Sequence[int]] = None,
                     comm: Optional[Communicator] = None):
    """Multi-object allgatherv (any node count, any size mix)."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    size = comm.size
    if len(counts) != size:
        raise ValueError(f"allgatherv: {len(counts)} counts for {size} ranks")
    rank = comm.to_comm(ctx.rank)
    if sendview.nbytes != counts[rank]:
        raise ValueError(
            f"allgatherv: rank {rank} sends {sendview.nbytes} B, "
            f"counts say {counts[rank]} B"
        )
    total = sum(counts)
    packed = packed_displs(counts)
    user_displs = list(displs) if displs is not None else packed

    # Node-slab geometry over the *packed* staging layout.
    slab_off = [packed[n * ppn] for n in range(n_nodes)]
    slab_len = [
        sum(counts[n * ppn:(n + 1) * ppn]) for n in range(n_nodes)
    ]

    # Step 1: everyone lands its block in the shared staging buffer.
    stage = yield from open_stage(ctx, _STAGE_KEY, total)
    if counts[rank]:
        yield from straight_copy(
            ctx, sendview, stage.view(packed[rank], counts[rank]))
    yield from ctx.node_barrier()

    # Step 2: node-level ring, striped across local ranks.
    nxt = comm.to_comm(ctx.cluster.global_rank((node + 1) % n_nodes, rl))
    prev = comm.to_comm(ctx.cluster.global_rank((node - 1) % n_nodes, rl))
    for step in range(n_nodes - 1):
        send_node = (node - step) % n_nodes
        recv_node = (node - step - 1) % n_nodes
        s_off, s_len = _byte_stripes(slab_len[send_node], ppn)[rl]
        r_off, r_len = _byte_stripes(slab_len[recv_node], ppn)[rl]
        yield from ctx.sendrecv(
            stage.view(slab_off[send_node] + s_off, s_len), nxt, _TAG + step,
            stage.view(slab_off[recv_node] + r_off, r_len), prev, _TAG + step,
            comm=comm,
        )
        yield from ctx.node_barrier()

    # Step 3: parallel copy-out, honouring the caller's displacements.
    if user_displs == packed:
        yield from straight_copy(ctx, stage.view(0, total),
                                 recvview.sub(0, total))
    else:
        if recvview.read() is not None:
            for r in range(size):
                if counts[r]:
                    recvview.sub(user_displs[r], counts[r]).write(
                        stage.read_bytes(packed[r], counts[r]))
        yield from ctx.node_hw.mem_copy(total)
    yield from close_stage(ctx, _STAGE_KEY)
