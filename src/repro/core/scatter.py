"""PiP-MColl MPI_Scatter (the paper's Figure 1 collective).

Multi-object design: the root's *entire node* acts as the sender.

1. The root exposes its send buffer; after one node barrier every
   local rank of the root node can read any block directly (PiP).
2. **Multi-object inter-node scatter**: the root node's ``P`` ranks
   partition the ``N − 1`` remote nodes round-robin; each rank sends
   each of its nodes that node's whole slab (``P·C_b`` bytes) — taken
   straight out of the root's buffer, no staging copy — addressed to
   the *matching local rank* on the destination node, spreading the
   receive work too (multi-sender *and* multi-receiver).
3. On every remote node the receiving rank lands its slab in a shared
   staging buffer; after a node barrier each local rank direct-copies
   its own ``C_b`` block out (concurrent single copies).
4. On the root node, local ranks direct-copy their block straight from
   the root's send buffer.

A binomial-tree root pushes ``log2(N·P)`` messages *serially*, the
first carrying half the whole buffer; here no core sends more than
``ceil((N−1)/P)`` slab-sized messages and nothing is copied twice.

Contract: the root's send view must start at offset 0 of its buffer —
PiP peers address the exposed buffer absolutely.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL, check_uniform_count
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy
from .multiobject import round_partition

_ROOT_KEY = "mcoll.scatter.rootbuf"
_STAGE_KEY = "mcoll.scatter.stage"
_TAG = TAG_MCOLL + 0x200


def mcoll_scatter(ctx: RankContext, sendview: Optional[BufferView],
                  recvview: BufferView, root: int = 0,
                  comm: Optional[Communicator] = None):
    """Multi-object scatter from ``root``."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    cb = recvview.nbytes
    rank = comm.to_comm(ctx.rank)
    root_world = comm.to_world(root)
    root_node = ctx.cluster.node_of(root_world)
    slab = cb * ppn
    remote_nodes = [n for n in range(n_nodes) if n != root_node]

    if node == root_node:
        if rank == root:
            if sendview is None:
                raise ValueError("scatter: root needs a send buffer")
            check_uniform_count(sendview, cb, comm.size, "scatter sendbuf")
            if sendview.offset != 0:
                raise ValueError(
                    "mcoll_scatter: root send view must start at offset 0 "
                    "(PiP peers address the exposed buffer absolutely)"
                )
            ctx.expose(_ROOT_KEY, sendview.buffer)
        yield from ctx.node_barrier()  # exposure visible node-wide
        root_buf = (
            sendview.buffer if rank == root
            else ctx.peer_buffer(root_world, _ROOT_KEY)
        )

        # Step 2: my share of the remote-node slabs, straight from the
        # root's buffer.
        reqs = []
        for idx in round_partition(len(remote_nodes), ppn, rl):
            dst_node = remote_nodes[idx]
            dst_rank = comm.to_comm(ctx.cluster.global_rank(dst_node, rl))
            first_block = ctx.cluster.global_rank(dst_node, 0)
            req = yield from ctx.isend(
                root_buf.view(first_block * cb, slab), dst_rank, _TAG, comm=comm
            )
            reqs.append(req)
        yield from ctx.waitall(reqs)

        # Step 4: my own block.
        my_block = ctx.cluster.global_rank(node, rl)
        yield from straight_copy(ctx, root_buf.view(my_block * cb, cb), recvview)
        yield from ctx.node_barrier()  # all reads done before withdraw
        if rank == root:
            ctx.withdraw(_ROOT_KEY)
        return

    # Remote node: local rank `receiver_rl` (the round-robin sender's
    # counterpart) lands the slab; everyone copies its block out.
    stage = yield from open_stage(ctx, _STAGE_KEY, slab)
    receiver_rl = remote_nodes.index(node) % ppn
    if rl == receiver_rl:
        sender = comm.to_comm(ctx.cluster.global_rank(root_node, receiver_rl))
        yield from ctx.recv(stage.view(0, slab), src=sender, tag=_TAG, comm=comm)
    yield from ctx.node_barrier()
    yield from straight_copy(ctx, stage.view(rl * cb, cb), recvview)
    yield from close_stage(ctx, _STAGE_KEY)
