"""PiP-MColl MPI_Alltoall: node-aggregated multi-object pairwise.

Every pair of nodes must exchange a ``P×P`` block matrix
(``P²·C_b`` bytes).  Baselines do this as ``P²`` separate rank-to-rank
messages; PiP-MColl aggregates each node-to-node exchange into *one*
message, packed straight from the ``P`` senders' buffers via direct
reads and unpacked straight into the ``P`` receivers' buffers via
direct writes — and the ``N−1`` node-pair steps are split round-robin
across the ``P`` local ranks, so ``P`` exchanges are in flight at once.

Intra-node blocks never touch the network: each rank direct-copies its
``P`` local blocks from peers' send buffers.

Contract: all send/recv views start at offset 0 of their buffers.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView, NullBuffer
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL
from .common import geometry, require_pip_world

_SEND_KEY = "mcoll.alltoall.send"
_RECV_KEY = "mcoll.alltoall.recv"
_TAG = TAG_MCOLL + 0x700


def mcoll_alltoall(ctx: RankContext, sendview: BufferView,
                   recvview: BufferView,
                   comm: Optional[Communicator] = None):
    """Multi-object alltoall."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    size = comm.size
    if sendview.nbytes % size:
        raise ValueError(
            f"alltoall sendbuf of {sendview.nbytes} B not divisible by {size}"
        )
    cb = sendview.nbytes // size
    if recvview.nbytes != sendview.nbytes:
        raise ValueError("alltoall: send/recv sizes differ")
    if sendview.offset != 0 or recvview.offset != 0:
        raise ValueError(
            "mcoll_alltoall: views must start at offset 0 of their buffers"
        )
    rank = comm.to_comm(ctx.rank)

    ctx.expose(_SEND_KEY, sendview.buffer)
    ctx.expose(_RECV_KEY, recvview.buffer)
    yield from ctx.node_barrier()

    functional = not isinstance(sendview.buffer, NullBuffer)
    slab = ppn * ppn * cb  # one node→node aggregate

    # Intra-node blocks: pull my column straight from local peers.
    for peer_rl in range(ppn):
        peer_world = ctx.node_comm.to_world(peer_rl)
        peer_rank = comm.to_comm(peer_world)
        if peer_world == ctx.rank:
            src = sendview.sub(rank * cb, cb)
        else:
            src = ctx.peer_buffer(peer_world, _SEND_KEY).view(rank * cb, cb)
        recvview.sub(peer_rank * cb, cb).write(src.read())
    yield from ctx.node_hw.mem_copy(ppn * cb)

    # Inter-node steps, round-robin across local ranks.
    pack = ctx.alloc(slab)
    unpack = ctx.alloc(slab)
    for step in range(1, n_nodes):
        if (step - 1) % ppn != rl:
            continue
        dst_node = (node + step) % n_nodes
        src_node = (node - step) % n_nodes
        dst = comm.to_comm(ctx.cluster.global_rank(dst_node, rl))
        src = comm.to_comm(ctx.cluster.global_rank(src_node, rl))
        # Pack: for each local sender s and remote receiver t, block
        # (s → t) pulled directly from sender s's buffer.
        if functional:
            for s in range(ppn):
                s_world = ctx.node_comm.to_world(s)
                sbuf = (
                    sendview.buffer if s_world == ctx.rank
                    else ctx.peer_buffer(s_world, _SEND_KEY)
                )
                for t in range(ppn):
                    t_rank = comm.to_comm(ctx.cluster.global_rank(dst_node, t))
                    pack.view((s * ppn + t) * cb, cb).write(
                        sbuf.read_bytes(t_rank * cb, cb)
                    )
        yield from ctx.node_hw.mem_copy(slab)  # one pack pass
        yield from ctx.sendrecv(
            pack.view(0, slab), dst, _TAG + step,
            unpack.view(0, slab), src, _TAG + step,
            comm=comm,
        )
        # Unpack: slab from src_node is laid out (sender s, receiver t);
        # deliver block (s → t) into receiver t's buffer directly.
        if functional:
            for s in range(ppn):
                s_rank = comm.to_comm(ctx.cluster.global_rank(src_node, s))
                for t in range(ppn):
                    t_world = ctx.node_comm.to_world(t)
                    tbuf = (
                        recvview.buffer if t_world == ctx.rank
                        else ctx.peer_buffer(t_world, _RECV_KEY)
                    )
                    tbuf.write_bytes(
                        s_rank * cb, unpack.read_bytes((s * ppn + t) * cb, cb)
                    )
        yield from ctx.node_hw.mem_copy(slab)  # one unpack pass

    yield from ctx.node_barrier()
    ctx.withdraw(_SEND_KEY)
    ctx.withdraw(_RECV_KEY)
