"""PiP-MColl MPI_Barrier: node barrier + multi-object dissemination.

Intra-node arrival is a flag barrier (no messages at all under PiP);
across nodes, a radix-``(P+1)`` dissemination runs — in each round
local rank ``R_l`` exchanges a zero-byte token with the nodes
``(R_l+1)·span`` away, so the span multiplies by ``P+1`` per round:
``ceil(log_{P+1} N)`` rounds instead of ``ceil(log2(N·P))``.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL
from .common import geometry, require_pip_world

_TAG = TAG_MCOLL + 0x600


def mcoll_barrier(ctx: RankContext, comm: Optional[Communicator] = None):
    """Multi-object barrier."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    digit = rl + 1
    token = ctx.alloc(0)

    yield from ctx.node_barrier()  # everyone on this node has arrived
    span = 1
    round_no = 0
    while span < n_nodes:
        offset = digit * span
        if offset < n_nodes:  # digits past the wrap are redundant
            dst_node = (node - offset) % n_nodes
            src_node = (node + offset) % n_nodes
            dst = comm.to_comm(ctx.cluster.global_rank(dst_node, rl))
            src = comm.to_comm(ctx.cluster.global_rank(src_node, rl))
            yield from ctx.sendrecv(
                token.view(), dst, _TAG + round_no,
                token.view(), src, _TAG + round_no,
                comm=comm,
            )
        yield from ctx.node_barrier()  # fold the P digit-arrivals together
        span *= ppn + 1
        round_no += 1
