"""Multi-object schedule arithmetic (paper §2).

PiP-MColl's inter-node schedules assign every local rank ``R_l`` of a
node a *digit* ``d = R_l + 1`` of a radix-``B_k`` positional system,
``B_k = P + 1`` (``P`` = processes per node).  In a round with span
``S_p``, digit ``d`` exchanges with the nodes at circular distance
``d * S_p`` — so one round covers a factor ``B_k`` of nodes while all
``P`` NIC-driving cores work concurrently.

The paper's step 3 (with its ``N_src*N + R_l`` typo corrected to
``N_src*P + R_l``; see DESIGN.md) and step 5's remainder clipping live
here as pure, unit-testable functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


def radix(ppn: int) -> int:
    """The multi-object Bruck base ``B_k = P + 1`` (paper step 2)."""
    if ppn < 1:
        raise ValueError(f"ppn must be >= 1, got {ppn}")
    return ppn + 1


def full_spans(n_nodes: int, ppn: int) -> List[int]:
    """Spans ``S_p`` of the *full* rounds: 1, B_k, B_k², … while
    ``S_p * B_k <= N`` (paper's repeat condition in step 4)."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    b = radix(ppn)
    spans = []
    span = 1
    while span * b <= n_nodes:
        spans.append(span)
        span *= b
    return spans


def final_span(n_nodes: int, ppn: int) -> int:
    """Coverage after all full rounds (``B_k ** len(full_spans)``)."""
    spans = full_spans(n_nodes, ppn)
    return spans[-1] * radix(ppn) if spans else 1


def remainder_count(n_nodes: int, span: int, digit: int) -> int:
    """Chunks digit ``d`` moves in the partial round (paper step 5).

    ``Rem = max(min(S_p, N - d * S_p), 0)`` — the paper prints
    ``N - S_p * R_l``; with 0-based ``R_l`` and ``d = R_l + 1`` the
    clip must use ``d`` or digit 1 would re-transfer covered chunks.
    """
    if digit < 1:
        raise ValueError(f"digit must be >= 1, got {digit}")
    return max(min(span, n_nodes - digit * span), 0)


def source_node(node: int, offset: int, n_nodes: int) -> int:
    """``N_src = (N_id + N_offset) % N`` (paper step 3)."""
    return (node + offset) % n_nodes


def dest_node(node: int, offset: int, n_nodes: int) -> int:
    """``N_dst = (N_id - N_offset) % N`` (paper step 3)."""
    return (node - offset) % n_nodes


def paired_rank(node: int, local_rank: int, ppn: int) -> int:
    """Global rank of ``(node, local_rank)`` — the corrected
    ``N * P + R_l`` pairing of paper step 3."""
    return node * ppn + local_rank


@dataclass(frozen=True)
class Transfer:
    """One send/recv a local rank performs in one round."""

    round_no: int
    span: int  # S_p of the round
    chunks: int  # node-chunks moved (clipped in the partial round)
    dst_node_offset: int  # I send to (node - offset) % N
    src_node_offset: int  # I receive from (node + offset) % N
    recv_chunk_index: int  # destination chunk index = d * S_p


def bruck_schedule(n_nodes: int, ppn: int, local_rank: int) -> List[Transfer]:
    """Every transfer local rank ``R_l`` performs in the multi-object
    Bruck allgather over ``n_nodes`` nodes.

    The returned transfers, executed round-synchronously by all local
    ranks of all nodes, cover exactly chunks ``1 .. N-1`` of every
    node's staging buffer (property-tested in the test suite).
    """
    if not 0 <= local_rank < ppn:
        raise ValueError(f"local_rank {local_rank} out of range [0, {ppn})")
    digit = local_rank + 1
    transfers: List[Transfer] = []
    round_no = 0
    for span in full_spans(n_nodes, ppn):
        transfers.append(
            Transfer(
                round_no=round_no,
                span=span,
                chunks=span,
                dst_node_offset=digit * span,
                src_node_offset=digit * span,
                recv_chunk_index=digit * span,
            )
        )
        round_no += 1
    span = final_span(n_nodes, ppn)
    if span < n_nodes:
        chunks = remainder_count(n_nodes, span, digit)
        if chunks > 0:
            transfers.append(
                Transfer(
                    round_no=round_no,
                    span=span,
                    chunks=chunks,
                    dst_node_offset=digit * span,
                    src_node_offset=digit * span,
                    recv_chunk_index=digit * span,
                )
            )
    return transfers


def total_rounds(n_nodes: int, ppn: int) -> int:
    """Number of inter-node rounds (full + possibly one partial)."""
    span = final_span(n_nodes, ppn)
    return len(full_spans(n_nodes, ppn)) + (1 if span < n_nodes else 0)


def round_partition(n_items: int, ppn: int, local_rank: int) -> Iterator[int]:
    """Strided partition of ``n_items`` work items across local ranks
    (used by multi-object scatter/gather to split destination nodes)."""
    return iter(range(local_rank, n_items, ppn))


def coverage_check(n_nodes: int, ppn: int) -> Tuple[int, List[int]]:
    """(total chunks moved into each staging buffer, sorted chunk
    indices) — a pure-math self-check used by tests."""
    seen: List[int] = []
    for rl in range(ppn):
        for t in bruck_schedule(n_nodes, ppn, rl):
            seen.extend(range(t.recv_chunk_index, t.recv_chunk_index + t.chunks))
    return len(seen), sorted(seen)
