"""PiP-MColl MPI_Scan — shared-address-space prefix reduction.

Three phases:

1. **Intra-node prefix, zero messages**: every rank exposes its send
   buffer; rank ``R_l`` directly reads peers ``0..R_l-1`` and folds
   them with its own contribution (all ranks concurrently — total
   node work is O(P²) reads but the critical path is one rank reading
   ``P-1`` buffers, the same as a serial intra-node scan's last hop,
   without any message latency).
2. **Node-level exclusive scan**: the node's *last* local rank holds
   the node total; those representatives run a recursive-doubling
   exscan across nodes (log₂ N rounds of node-total-sized messages —
   one stream per node, which is fine: the payload here is tiny
   compared to the data-parallel phases).
3. **Local combine, zero messages**: the representative lands the
   node's exclusive prefix in a shared staging cell; every rank folds
   it into its intra-node prefix directly.

Works for any node count (the exscan handles non-powers of two the
same way the baseline recursive-doubling scan does).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from ..collectives.base import TAG_MCOLL
from .allreduce import _reduce_chunk
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_IN_KEY = "mcoll.scan.sendbuf"
_STAGE_KEY = "mcoll.scan.nodeprefix"
_TAG = TAG_MCOLL + 0xB00


def mcoll_scan(ctx: RankContext, sendview: BufferView, recvview: BufferView,
               dtype: Datatype, op: ReduceOp,
               comm: Optional[Communicator] = None):
    """Multi-object inclusive scan."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    nbytes = sendview.nbytes
    if recvview.nbytes != nbytes:
        raise ValueError("scan: send/recv sizes differ")
    if sendview.offset != 0:
        raise ValueError("mcoll_scan: send views must start at offset 0")

    # Phase 1: direct-read intra-node prefix into recvview.
    ctx.expose(_IN_KEY, sendview.buffer)
    stage = yield from open_stage(ctx, _STAGE_KEY, nbytes)
    inputs = [
        ctx.peer_buffer(ctx.node_comm.to_world(peer), _IN_KEY).view(0, nbytes)
        if ctx.node_comm.to_world(peer) != ctx.rank else sendview
        for peer in range(rl + 1)
    ]
    yield from _reduce_chunk(ctx, inputs, recvview, dtype, op)
    yield from ctx.node_barrier()
    ctx.withdraw(_IN_KEY)

    # Phase 2: node-level exscan among last-local-rank representatives.
    is_rep = rl == ppn - 1
    if is_rep and n_nodes > 1:
        # recvview currently holds the node total on the representative.
        carry = ctx.alloc(nbytes)  # exclusive prefix of node totals
        have_carry = False
        partial = ctx.alloc(nbytes)
        partial.view().copy_from(recvview)
        yield from ctx.node_hw.mem_copy(nbytes)
        incoming = ctx.alloc(nbytes)
        mask = 1
        round_no = 0
        while mask < n_nodes:
            partner_node = node ^ mask
            if partner_node < n_nodes:
                partner = comm.to_comm(
                    ctx.cluster.global_rank(partner_node, rl))
                yield from ctx.sendrecv(
                    partial.view(), partner, _TAG + round_no,
                    incoming.view(), partner, _TAG + round_no,
                    comm=comm,
                )
                if partner_node < node:
                    # Exclusive prefix gains the lower partner's partial.
                    if have_carry:
                        yield from _accumulate_views(
                            ctx, carry.view(), incoming.view(), dtype, op)
                    else:
                        carry.view().copy_from(incoming.view())
                        yield from ctx.node_hw.mem_copy(nbytes)
                        have_carry = True
                yield from _accumulate_views(
                    ctx, partial.view(), incoming.view(), dtype, op)
            mask <<= 1
            round_no += 1
        if have_carry:
            yield from straight_copy(ctx, carry.view(), stage.view(0, nbytes))
        # Publish whether a carry exists via the staging cell: nodes 0
        # has none.  (node > 0 always has one: some lower node exists
        # and recursive doubling reaches it.)
    yield from ctx.node_barrier()

    # Phase 3: fold the node's exclusive prefix into every rank.
    if node > 0:
        inc = stage.view(0, nbytes).read()
        mine = recvview.read()
        if inc is not None and mine is not None:
            acc = mine.view(dtype.np_dtype)
            # scan order: lower nodes' total comes *before* my prefix.
            folded = op.reduce_many([inc.view(dtype.np_dtype), acc])
            recvview.write(folded.view("uint8"))
        yield from ctx.node_hw.mem_copy(nbytes)
    yield from close_stage(ctx, _STAGE_KEY)


def _accumulate_views(ctx: RankContext, acc: BufferView, inc: BufferView,
                      dtype: Datatype, op: ReduceOp):
    data = acc.read()
    other = inc.read()
    if data is not None and other is not None:
        a = data.view(dtype.np_dtype)
        op.accumulate(a, other.view(dtype.np_dtype))
        acc.write(a.view("uint8"))
    yield from ctx.node_hw.mem_copy(acc.nbytes)
