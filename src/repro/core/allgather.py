"""PiP-MColl MPI_Allgather (the paper's worked example, §2 steps 1–6).

Small messages — :func:`mcoll_allgather`:

1. **Intra-node gather**: every local rank stores its block directly
   into the local root's staging buffer (concurrent single copies; no
   messages, no syscalls).
2. **Init**: ``S_p = 1``, ``B_k = P + 1``.
3. **Pairing**: local rank ``R_l`` (digit ``d = R_l + 1``) pairs with
   the nodes ``d·S_p`` away in both circular directions.
4. **Multi-object Bruck round**: each local rank sends the staging
   buffer's first ``S_p`` node-chunks to its destination node's
   counterpart rank and receives ``S_p`` chunks *directly into the
   root's staging buffer* at chunk index ``d·S_p``.  ``S_p *= B_k``;
   repeat while ``S_p·B_k ≤ N``.
5. **Remainder**: if ``N`` is not a power of ``B_k``, one partial
   round moves the remaining ``N − S_p`` chunks, digit ``d`` clipped
   to ``max(min(S_p, N − d·S_p), 0)``.
6. **Shift + distribute**: every local rank copies the staging buffer
   into its own receive buffer, rotating node-chunks into rank order
   (the root's "shift into the correct sequence" fused with the
   intra-node broadcast — each rank reads the shared staging buffer
   directly, so the broadcast is one parallel copy, not a tree).

Large messages — :func:`mcoll_allgather_large`: node-level ring where
each local rank owns a ``1/P`` stripe of every node-chunk, so all ``P``
cores stream concurrently while each chunk still crosses the wire once.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL
from .common import (
    chunked_copy,
    close_stage,
    geometry,
    open_stage,
    require_pip_world,
    straight_copy,
)
from .multiobject import bruck_schedule, dest_node, source_node, total_rounds

_STAGE_KEY = "mcoll.allgather.stage"


def mcoll_allgather(ctx: RankContext, sendview: BufferView,
                    recvview: BufferView,
                    comm: Optional[Communicator] = None):
    """Multi-object Bruck allgather (small/medium messages)."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    cb = sendview.nbytes  # per-process block (the paper's C_b)
    if recvview.nbytes != cb * comm.size:
        raise ValueError(
            f"allgather recvbuf holds {recvview.nbytes} B, expected "
            f"{comm.size} × {cb} B"
        )
    chunk = cb * ppn  # one node-chunk

    # Step 1 — intra-node gather into the root's staging buffer A_d.
    stage = yield from open_stage(ctx, _STAGE_KEY, chunk * n_nodes)
    yield from straight_copy(ctx, sendview, stage.view(rl * cb, cb))
    yield from ctx.node_barrier()

    # Steps 2–5 — multi-object Bruck rounds (incl. the partial round).
    last_round = -1
    for t in bruck_schedule(n_nodes, ppn, rl):
        if t.round_no != last_round + 1:
            raise AssertionError("schedule must be round-dense per rank")
        last_round = t.round_no
        dst = dest_node(node, t.dst_node_offset, n_nodes)
        src = source_node(node, t.src_node_offset, n_nodes)
        dst_rank = comm.to_comm(ctx.cluster.global_rank(dst, rl))
        src_rank = comm.to_comm(ctx.cluster.global_rank(src, rl))
        with ctx.span("round", cat="round", idx=t.round_no,
                      algorithm="mcoll_bruck", chunks=t.chunks):
            yield from ctx.sendrecv(
                stage.view(0, t.chunks * chunk), dst_rank, TAG_MCOLL + t.round_no,
                stage.view(t.recv_chunk_index * chunk, t.chunks * chunk),
                src_rank, TAG_MCOLL + t.round_no,
                comm=comm,
            )
            # Round synchronisation: the chunks a peer rank just received
            # are part of what I send next round.
            yield from ctx.node_barrier()

    # Ranks whose digit moves nothing in the partial round still must
    # arrive at that round's barrier (node_barrier counts arrivals).
    for _ in range(total_rounds(n_nodes, ppn) - (last_round + 1)):
        yield from ctx.node_barrier()

    # Step 6 — fused shift + intra-node distribution: staging chunk j
    # holds node (node + j) % N; every rank rotates it into rank order
    # in its own receive buffer with one parallel pass.
    yield from chunked_copy(ctx, stage, recvview, n_nodes, chunk, shift=node)
    yield from close_stage(ctx, _STAGE_KEY)


def mcoll_allgather_large(ctx: RankContext, sendview: BufferView,
                          recvview: BufferView,
                          comm: Optional[Communicator] = None):
    """Multi-object striped ring allgather (large messages).

    Every local rank owns byte stripe ``[rl·cb/P, (rl+1)·cb/P)`` — in
    units of whole per-process blocks: local rank ``rl`` forwards the
    blocks of local rank ``rl`` of every node.  ``N − 1`` ring rounds,
    ``P`` concurrent streams, each byte crosses the wire once.
    """
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    cb = sendview.nbytes
    if recvview.nbytes != cb * comm.size:
        raise ValueError(
            f"allgather recvbuf holds {recvview.nbytes} B, expected "
            f"{comm.size} × {cb} B"
        )
    chunk = cb * ppn

    # Stage is laid out in *rank order* directly (no rotation needed):
    # node-chunk j of the stage = node j's ppn blocks.
    stage = yield from open_stage(ctx, _STAGE_KEY, chunk * n_nodes)
    yield from straight_copy(ctx, sendview, stage.view(node * chunk + rl * cb, cb))
    yield from ctx.node_barrier()

    nxt = comm.to_comm(ctx.cluster.global_rank((node + 1) % n_nodes, rl))
    prev = comm.to_comm(ctx.cluster.global_rank((node - 1) % n_nodes, rl))
    for step in range(n_nodes - 1):
        send_node = (node - step) % n_nodes
        recv_node = (node - step - 1) % n_nodes
        # My stripe of the node-chunk: the block of local rank rl.
        with ctx.span("round", cat="round", idx=step,
                      algorithm="mcoll_ring"):
            yield from ctx.sendrecv(
                stage.view(send_node * chunk + rl * cb, cb), nxt,
                TAG_MCOLL + 0x100 + step,
                stage.view(recv_node * chunk + rl * cb, cb), prev,
                TAG_MCOLL + 0x100 + step,
                comm=comm,
            )
            yield from ctx.node_barrier()

    yield from straight_copy(ctx, stage.view(0, recvview.nbytes), recvview)
    yield from close_stage(ctx, _STAGE_KEY)
