"""Shared plumbing for PiP-MColl collectives.

All PiP-MColl algorithms:

* require the library's intra-node transport to be PiP (they are built
  on direct peer loads/stores — enforced, not assumed);
* run on COMM_WORLD (the node structure is the algorithm);
* stage node-level data in a buffer owned by the node leader (the
  paper's "local root") that every local rank addresses directly.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ..pip.errors import AddressSpaceViolation
from ..runtime.buffer import BaseBuffer, BufferView, NullBuffer
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext


def require_pip_world(ctx: RankContext,
                      comm: Optional[Communicator]) -> Communicator:
    """Validate transport + communicator for a PiP-MColl collective."""
    if not ctx.intra_transport.supports_peer_views:
        raise AddressSpaceViolation(
            "PiP-MColl collectives need the PiP transport; "
            f"this library uses {ctx.intra_transport.name!r}"
        )
    comm = comm if comm is not None else ctx.comm_world
    if comm is not ctx.comm_world:
        raise ValueError("PiP-MColl collectives run on COMM_WORLD")
    return comm


def geometry(ctx: RankContext) -> Tuple[int, int, int, int]:
    """(N nodes, P ppn, my node id, my local rank)."""
    return ctx.cluster.nodes, ctx.cluster.ppn, ctx.node_id, ctx.local_rank


def open_stage(ctx: RankContext, key: Hashable, nbytes: int):
    """Leader allocates + exposes a staging buffer; everyone returns a
    direct reference to it after a node barrier (generator)."""
    if ctx.is_leader:
        buf = ctx.alloc(nbytes)
        ctx.expose(key, buf)
    yield from ctx.node_barrier()
    if ctx.is_leader:
        return buf
    leader = ctx.node_comm.to_world(0)
    return ctx.peer_buffer(leader, key)


def close_stage(ctx: RankContext, key: Hashable):
    """Barrier, then the leader withdraws the staging buffer (generator)."""
    yield from ctx.node_barrier()
    if ctx.is_leader:
        ctx.withdraw(key)


def chunked_copy(ctx: RankContext, src: BaseBuffer, dst: BufferView,
                 nchunks: int, chunk: int, shift: int):
    """Rotated chunk copy ``dst[(shift + j) % nchunks] = src[j]``.

    One streaming pass is charged; the functional per-chunk loop is
    skipped for timing-only buffers (it would be a no-op).
    """
    total = nchunks * chunk
    if not isinstance(src, NullBuffer) and not isinstance(dst.buffer, NullBuffer):
        for j in range(nchunks):
            target = ((shift + j) % nchunks) * chunk
            dst.sub(target, chunk).write(src.read_bytes(j * chunk, chunk))
    yield from ctx.node_hw.mem_copy(total)


def straight_copy(ctx: RankContext, src: BufferView, dst: BufferView):
    """Plain direct copy with one-pass cost (sizes must match)."""
    if src.nbytes != dst.nbytes:
        raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
    dst.write(src.read())
    yield from ctx.node_hw.mem_copy(dst.nbytes)
