"""PiP-MColl MPI_Reduce_scatter (block-regular).

Phase 1 reuses the shared-address-space intra-node reduction of
:mod:`repro.core.allreduce` (striped across local ranks).  Phase 2 runs
a multi-object *pairwise* reduce-scatter over nodes: local rank ``R_l``
owns stripe ``R_l`` of every node-chunk and exchanges-and-reduces it
with its counterparts, so all ``P`` cores stream concurrently.  The
final block of each rank is then direct-copied out of the staging
buffer.

Node count may be any value (the node-level phase is pairwise, not
recursive halving).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from ..collectives.base import TAG_MCOLL
from .allreduce import _reduce_chunk, _stripes
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_IN_KEY = "mcoll.rs.sendbuf"
_STAGE_KEY = "mcoll.rs.stage"
_TAG = TAG_MCOLL + 0x800


def mcoll_reduce_scatter(ctx: RankContext, sendview: BufferView,
                         recvview: BufferView, dtype: Datatype,
                         op: ReduceOp,
                         comm: Optional[Communicator] = None):
    """Multi-object block reduce-scatter."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    size = comm.size
    cb = recvview.nbytes
    if sendview.nbytes != cb * size:
        raise ValueError(
            f"reduce_scatter sendbuf {sendview.nbytes} B != {size} × {cb} B"
        )
    if sendview.offset != 0:
        raise ValueError(
            "mcoll_reduce_scatter: send views must start at offset 0"
        )
    nbytes = sendview.nbytes

    # Phase 1: intra-node reduction into the staging buffer, striped.
    ctx.expose(_IN_KEY, sendview.buffer)
    stage = yield from open_stage(ctx, _STAGE_KEY, nbytes)
    stripes = _stripes(nbytes, ppn, dtype.size)
    off, length = stripes[rl]
    if length > 0:
        inputs = []
        for peer_rl in range(ppn):
            peer_world = ctx.node_comm.to_world(peer_rl)
            if peer_world == ctx.rank:
                inputs.append(sendview.sub(off, length))
            else:
                inputs.append(ctx.peer_buffer(peer_world, _IN_KEY).view(off, length))
        yield from _reduce_chunk(ctx, inputs, stage.view(off, length), dtype, op)
    yield from ctx.node_barrier()
    ctx.withdraw(_IN_KEY)

    # Phase 2: pairwise node-level reduce-scatter, striped by local
    # rank.  My node must end up owning the reduced node-chunk
    # [node*ppn*cb, (node+1)*ppn*cb); I contribute my stripe of it.
    chunk = ppn * cb
    my_chunk_off = node * chunk
    stripe_in_chunk = _stripes(chunk, ppn, dtype.size)
    soff, slen = stripe_in_chunk[rl]
    if slen > 0 and n_nodes > 1:
        incoming = ctx.alloc(slen)
        for step in range(1, n_nodes):
            dst_node = (node + step) % n_nodes
            src_node = (node - step) % n_nodes
            dst = comm.to_comm(ctx.cluster.global_rank(dst_node, rl))
            src = comm.to_comm(ctx.cluster.global_rank(src_node, rl))
            # Send my stripe of dst_node's chunk; receive a
            # contribution to my stripe of my own chunk.
            send_off = dst_node * chunk + soff
            yield from ctx.sendrecv(
                stage.view(send_off, slen), dst, _TAG + step,
                incoming.view(), src, _TAG + step,
                comm=comm,
            )
            data = stage.view(my_chunk_off + soff, slen).read()
            inc = incoming.view().read()
            if data is not None and inc is not None:
                acc = data.view(dtype.np_dtype)
                op.accumulate(acc, inc.view(dtype.np_dtype))
                stage.view(my_chunk_off + soff, slen).write(acc.view("uint8"))
            yield from ctx.node_hw.mem_copy(slen)
    yield from ctx.node_barrier()

    # Distribute: my block is block `rank` of the reduced node-chunk.
    yield from straight_copy(
        ctx, stage.view(my_chunk_off + rl * cb, cb), recvview
    )
    yield from close_stage(ctx, _STAGE_KEY)
