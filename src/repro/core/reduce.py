"""PiP-MColl MPI_Reduce — multi-object, stripe-parallel.

Phase 1 is the shared-address-space intra-node reduction (as in
:mod:`repro.core.allreduce`).  Phase 2 runs ``P`` concurrent binomial
trees over nodes — local rank ``R_l`` owns byte stripe ``R_l`` and
reduces it toward the root's node alongside its counterparts, so the
inter-node traffic is ``1/P``-sized per core with all cores active.
Phase 3 lands stripes straight into the root's receive buffer via PiP
(the root's peers write their stripes directly — no final gather).

Contract: send views (all ranks) and the root's receive view start at
offset 0 of their buffers.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from ..collectives.base import TAG_MCOLL
from .allreduce import _reduce_chunk, _stripes
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_IN_KEY = "mcoll.reduce.sendbuf"
_OUT_KEY = "mcoll.reduce.recvbuf"
_STAGE_KEY = "mcoll.reduce.stage"
_TAG = TAG_MCOLL + 0x900


def mcoll_reduce(ctx: RankContext, sendview: BufferView,
                 recvview: Optional[BufferView], dtype: Datatype,
                 op: ReduceOp, root: int = 0,
                 comm: Optional[Communicator] = None):
    """Multi-object reduce to ``root``."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    nbytes = sendview.nbytes
    rank = comm.to_comm(ctx.rank)
    root_world = comm.to_world(root)
    root_node = ctx.cluster.node_of(root_world)
    if rank == root:
        if recvview is None:
            raise ValueError("reduce: root needs a receive buffer")
        if recvview.nbytes != nbytes:
            raise ValueError("reduce: send/recv sizes differ")
        if recvview.offset != 0:
            raise ValueError("mcoll_reduce: root recv view must start at offset 0")
        ctx.expose(_OUT_KEY, recvview.buffer)
    if sendview.offset != 0:
        raise ValueError("mcoll_reduce: send views must start at offset 0")

    # Phase 1: intra-node reduction into the node staging buffer.
    ctx.expose(_IN_KEY, sendview.buffer)
    stage = yield from open_stage(ctx, _STAGE_KEY, nbytes)
    stripes = _stripes(nbytes, ppn, dtype.size)
    off, length = stripes[rl]
    if length > 0:
        inputs = []
        for peer_rl in range(ppn):
            peer_world = ctx.node_comm.to_world(peer_rl)
            if peer_world == ctx.rank:
                inputs.append(sendview.sub(off, length))
            else:
                inputs.append(ctx.peer_buffer(peer_world, _IN_KEY).view(off, length))
        yield from _reduce_chunk(ctx, inputs, stage.view(off, length), dtype, op)
    yield from ctx.node_barrier()
    ctx.withdraw(_IN_KEY)

    # Phase 2: P concurrent binomial node trees (virtual node ids put
    # the root's node at 0).
    vnode = (node - root_node) % n_nodes
    if length > 0 and n_nodes > 1:
        incoming = ctx.alloc(length)
        mask = 1
        round_no = 0
        while mask < n_nodes:
            if vnode & mask:
                parent_v = vnode - mask
                parent = comm.to_comm(ctx.cluster.global_rank(
                    (parent_v + root_node) % n_nodes, rl))
                yield from ctx.send(stage.view(off, length), dst=parent,
                                    tag=_TAG + round_no, comm=comm)
                break
            if vnode + mask < n_nodes:
                child_v = vnode + mask
                child = comm.to_comm(ctx.cluster.global_rank(
                    (child_v + root_node) % n_nodes, rl))
                yield from ctx.recv(incoming.view(), src=child,
                                    tag=_TAG + round_no, comm=comm)
                data = stage.view(off, length).read()
                inc = incoming.view().read()
                if data is not None and inc is not None:
                    acc = data.view(dtype.np_dtype)
                    op.accumulate(acc, inc.view(dtype.np_dtype))
                    stage.view(off, length).write(acc.view("uint8"))
                yield from ctx.node_hw.mem_copy(length)
            mask <<= 1
            round_no += 1

    # Phase 3: on the root's node, every rank writes its stripe of the
    # total straight into the root's receive buffer.
    if node == root_node:
        yield from ctx.node_barrier()  # root's exposure + phase-2 data
        root_buf = (
            recvview.buffer if rank == root
            else ctx.peer_buffer(root_world, _OUT_KEY)
        )
        if length > 0:
            yield from straight_copy(ctx, stage.view(off, length),
                                     root_buf.view(off, length))
        yield from ctx.node_barrier()
        if rank == root:
            ctx.withdraw(_OUT_KEY)
    yield from close_stage(ctx, _STAGE_KEY)


def mcoll_allreduce_rsag(ctx: RankContext, sendview: BufferView,
                         recvview: BufferView, dtype: Datatype,
                         op: ReduceOp,
                         comm: Optional[Communicator] = None):
    """Rabenseifner-shaped multi-object allreduce for *any* node count.

    Composition of the two multi-object primitives that already handle
    arbitrary ``N``: block reduce-scatter, then allgather of the
    reduced blocks.  Requires the payload to divide into ``comm.size``
    equal dtype-aligned blocks (the library model falls back to
    recursive doubling otherwise).
    """
    comm = require_pip_world(ctx, comm)
    size = comm.size
    nbytes = sendview.nbytes
    if recvview.nbytes != nbytes:
        raise ValueError("allreduce: send/recv sizes differ")
    if nbytes % (size * dtype.size):
        raise ValueError(
            f"mcoll_allreduce_rsag needs {size} equal {dtype.name} blocks"
        )
    from .allgather import mcoll_allgather
    from .reduce_scatter import mcoll_reduce_scatter

    block = ctx.alloc(nbytes // size)
    yield from mcoll_reduce_scatter(ctx, sendview, block.view(), dtype, op,
                                    comm=comm)
    yield from mcoll_allgather(ctx, block.view(), recvview, comm=comm)
