"""PiP-MColl MPI_Allreduce.

Three phases, all multi-object:

1. **Shared-address-space intra-node reduction** (Hashmi-style, but
   with PiP instead of XPMEM): every local rank exposes its send
   buffer; the buffer is cut into ``P`` element-aligned chunks and
   local rank ``R_l`` reduces chunk ``R_l`` across *all* local ranks
   by reading peers directly — ``P`` cores each stream ``P`` chunk
   inputs, no messages, no syscalls, result lands in the node staging
   buffer.
2. **Multi-object inter-node allreduce**: local rank ``R_l`` runs
   recursive doubling over nodes on its own stripe of the staging
   buffer — ``P`` concurrent log₂(N) exchanges of ``1/P``-sized
   messages instead of one leader moving full-size messages.
3. **Parallel distribution**: every rank copies the reduced staging
   buffer into its own receive buffer directly.

Falls back gracefully for stripes that don't divide evenly (the last
stripe takes the remainder).  Requires a power-of-two node count for
phase 2; the library model falls back to the baseline otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..runtime.datatypes import Datatype
from ..runtime.ops import ReduceOp
from ..collectives.base import TAG_MCOLL
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_IN_KEY = "mcoll.allreduce.sendbuf"
_STAGE_KEY = "mcoll.allreduce.stage"
_TAG = TAG_MCOLL + 0x500


def _stripes(nbytes: int, parts: int, align: int) -> List[tuple]:
    """Cut ``nbytes`` into ``parts`` element-aligned (offset, length)
    stripes; the last stripe absorbs the remainder."""
    if nbytes % align:
        raise ValueError(f"buffer of {nbytes} B is not {align}-byte aligned")
    elems = nbytes // align
    base = elems // parts
    spans = []
    off = 0
    for p in range(parts):
        n = (base + (1 if p < elems % parts else 0)) * align
        spans.append((off, n))
        off += n
    return spans


def _reduce_chunk(ctx: RankContext, inputs: List[BufferView],
                  out: BufferView, dtype: Datatype, op: ReduceOp):
    """Elementwise-reduce ``inputs`` into ``out`` (one streaming pass
    per input is charged; compute is memory-bound)."""
    first = inputs[0].read()
    if first is not None:
        acc = first.view(dtype.np_dtype).copy()
        for view in inputs[1:]:
            data = view.read()
            op.accumulate(acc, data.view(dtype.np_dtype))
        out.write(acc.view("uint8"))
    for _ in inputs:
        yield from ctx.node_hw.mem_copy(out.nbytes)


def mcoll_allreduce(ctx: RankContext, sendview: BufferView,
                    recvview: BufferView, dtype: Datatype, op: ReduceOp,
                    comm: Optional[Communicator] = None):
    """Multi-object allreduce (power-of-two node counts)."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    if n_nodes & (n_nodes - 1):
        raise ValueError(
            f"mcoll_allreduce phase 2 needs a power-of-two node count, got {n_nodes}"
        )
    nbytes = sendview.nbytes
    if recvview.nbytes != nbytes:
        raise ValueError("allreduce: send/recv sizes differ")

    if sendview.offset != 0:
        raise ValueError(
            "mcoll_allreduce: send views must start at offset 0 of their "
            "buffers (PiP peers address exposed buffers absolutely)"
        )

    # Phase 1: shared-address-space intra-node reduction.
    ctx.expose(_IN_KEY, sendview.buffer)
    stage = yield from open_stage(ctx, _STAGE_KEY, nbytes)
    stripes = _stripes(nbytes, ppn, dtype.size)
    off, length = stripes[rl]
    if length > 0:
        peer_inputs = []
        for peer_rl in range(ppn):
            peer_world = ctx.node_comm.to_world(peer_rl)
            if peer_world == ctx.rank:
                peer_inputs.append(sendview.sub(off, length))
            else:
                pbuf = ctx.peer_buffer(peer_world, _IN_KEY)
                peer_inputs.append(pbuf.view(off, length))
        yield from _reduce_chunk(ctx, peer_inputs, stage.view(off, length),
                                 dtype, op)
    yield from ctx.node_barrier()
    ctx.withdraw(_IN_KEY)

    # Phase 2: striped recursive doubling across nodes.
    if length > 0 and n_nodes > 1:
        incoming = ctx.alloc(length)
        mask = 1
        round_no = 0
        while mask < n_nodes:
            partner_node = node ^ mask
            partner = comm.to_comm(ctx.cluster.global_rank(partner_node, rl))
            yield from ctx.sendrecv(
                stage.view(off, length), partner, _TAG + round_no,
                incoming.view(), partner, _TAG + round_no,
                comm=comm,
            )
            data = stage.view(off, length).read()
            inc = incoming.view().read()
            if data is not None and inc is not None:
                acc = data.view(dtype.np_dtype)
                op.accumulate(acc, inc.view(dtype.np_dtype))
                stage.view(off, length).write(acc.view("uint8"))
            yield from ctx.node_hw.mem_copy(length)
            mask <<= 1
            round_no += 1
    yield from ctx.node_barrier()

    # Phase 3: everyone copies the full result out in parallel.
    yield from straight_copy(ctx, stage.view(0, nbytes), recvview)
    yield from close_stage(ctx, _STAGE_KEY)
