"""PiP-MColl MPI_Bcast: a multi-object ``(P+1)``-ary node tree.

In round ``t`` (span ``(P+1)^t``) every already-covered node fans the
message out to ``P`` new nodes *simultaneously* — local rank ``R_l``
(digit ``d = R_l + 1``) sends to the node ``d·span`` ahead.  Coverage
multiplies by ``P+1`` per round instead of 2, and the per-node send
cost is one message per core instead of ``P`` serial messages on a
leader.  Delivery lands in a shared staging buffer; local ranks
direct-copy it out in parallel (no intra-node tree).
"""

from __future__ import annotations

from typing import Optional

from ..runtime.buffer import BufferView
from ..runtime.communicator import Communicator
from ..runtime.context import RankContext
from ..collectives.base import TAG_MCOLL
from .common import close_stage, geometry, open_stage, require_pip_world, straight_copy

_STAGE_KEY = "mcoll.bcast.stage"
_TAG = TAG_MCOLL + 0x400


def mcoll_bcast(ctx: RankContext, view: BufferView, root: int = 0,
                comm: Optional[Communicator] = None):
    """Multi-object broadcast from ``root``."""
    comm = require_pip_world(ctx, comm)
    n_nodes, ppn, node, rl = geometry(ctx)
    nbytes = view.nbytes
    rank = comm.to_comm(ctx.rank)
    root_world = comm.to_world(root)
    root_node = ctx.cluster.node_of(root_world)
    # Virtual node ids put the root's node at 0.
    vnode = (node - root_node) % n_nodes
    digit = rl + 1

    stage = yield from open_stage(ctx, _STAGE_KEY, nbytes)
    if rank == root:
        yield from straight_copy(ctx, view, stage.view(0, nbytes))
    yield from ctx.node_barrier()

    span = 1
    round_no = 0
    while span < n_nodes:
        if vnode < span:
            # Covered: digit d feeds vnode + d*span, if it exists.
            target = vnode + digit * span
            if target < n_nodes:
                dst_node = (target + root_node) % n_nodes
                dst = comm.to_comm(ctx.cluster.global_rank(dst_node, rl))
                yield from ctx.send(stage.view(0, nbytes), dst=dst,
                                    tag=_TAG + round_no, comm=comm)
        elif vnode < span * (ppn + 1):
            # I get covered this round; the matching local rank receives.
            d = vnode // span  # 1..P
            if rl == d - 1:
                src_vnode = vnode - d * span
                src_node = (src_vnode + root_node) % n_nodes
                src = comm.to_comm(ctx.cluster.global_rank(src_node, rl))
                yield from ctx.recv(stage.view(0, nbytes), src=src,
                                    tag=_TAG + round_no, comm=comm)
            yield from ctx.node_barrier()  # staged data visible node-wide
        span *= ppn + 1
        round_no += 1

    # Everyone copies the staged message out in parallel.
    if rank != root:
        yield from straight_copy(ctx, stage.view(0, nbytes), view)
    yield from close_stage(ctx, _STAGE_KEY)
