"""Virtual MPI runtime (subsystem S5)."""

from . import datatypes, ops
from .buffer import ArrayBuffer, BaseBuffer, BufferView, NullBuffer, alloc
from .cart import CartTopology, dims_create
from .communicator import Communicator
from .context import RankContext
from .datatypes import BYTE, DOUBLE, FLOAT32, FLOAT64, INT32, INT64, Datatype, datatype
from .errors import (
    CorruptionError,
    DatatypeError,
    DeliveryFailedError,
    MpiError,
    MpiTimeoutError,
    RankMismatchError,
    TruncationError,
)
from .matching import MatchingEngine
from .message import ANY_SOURCE, ANY_TAG, Envelope, MessageDescriptor, Status
from .ops import MAX, MIN, PROD, SUM, ReduceOp, reduce_op
from .derived import VectorLayout, pack, unpack
from .persistent import PersistentOp, recv_init, send_init, start_all
from .request import OperationRequest, RecvRequest, Request, SendRequest
from .world import World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ArrayBuffer",
    "BYTE",
    "BaseBuffer",
    "BufferView",
    "CartTopology",
    "Communicator",
    "CorruptionError",
    "DOUBLE",
    "Datatype",
    "DatatypeError",
    "DeliveryFailedError",
    "Envelope",
    "FLOAT32",
    "FLOAT64",
    "INT32",
    "INT64",
    "MAX",
    "MIN",
    "MatchingEngine",
    "MessageDescriptor",
    "MpiError",
    "MpiTimeoutError",
    "NullBuffer",
    "OperationRequest",
    "PersistentOp",
    "PROD",
    "RankContext",
    "RankMismatchError",
    "RecvRequest",
    "ReduceOp",
    "Request",
    "SUM",
    "SendRequest",
    "Status",
    "TruncationError",
    "VectorLayout",
    "World",
    "alloc",
    "dims_create",
    "datatype",
    "datatypes",
    "ops",
    "pack",
    "recv_init",
    "reduce_op",
    "send_init",
    "start_all",
    "unpack",
]
