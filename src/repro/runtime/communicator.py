"""Communicators: ordered rank groups with private matching contexts."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .errors import RankMismatchError


class Communicator:
    """An ordered group of world ranks with its own match space.

    All rank arguments to pt2pt/collective calls are ranks *within* a
    communicator; the runtime translates to world ranks for routing.
    """

    __slots__ = ("comm_id", "world_ranks", "_to_comm", "name")

    def __init__(self, comm_id: int, world_ranks: Sequence[int], name: str = "") -> None:
        ranks: Tuple[int, ...] = tuple(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise RankMismatchError(f"duplicate ranks in communicator: {ranks}")
        if not ranks:
            raise RankMismatchError("a communicator needs at least one rank")
        self.comm_id = comm_id
        self.world_ranks = ranks
        self._to_comm: Dict[int, int] = {w: c for c, w in enumerate(ranks)}
        self.name = name or f"comm{comm_id}"

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.world_ranks)

    def to_world(self, comm_rank: int) -> int:
        """World rank of ``comm_rank``."""
        if not 0 <= comm_rank < self.size:
            raise RankMismatchError(
                f"{self.name}: rank {comm_rank} out of range [0, {self.size})"
            )
        return self.world_ranks[comm_rank]

    def to_comm(self, world_rank: int) -> int:
        """This communicator's rank for ``world_rank``."""
        try:
            return self._to_comm[world_rank]
        except KeyError:
            raise RankMismatchError(
                f"world rank {world_rank} is not a member of {self.name}"
            ) from None

    def contains(self, world_rank: int) -> bool:
        """True if ``world_rank`` belongs to this communicator."""
        return world_rank in self._to_comm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name} size={self.size}>"
