"""Persistent communication requests (MPI_Send_init / MPI_Recv_init).

Iterative applications re-issue the same transfers every step; MPI's
persistent requests let them pay argument processing once.  Here a
:class:`PersistentOp` captures the call's arguments and hands out a
fresh live request per :meth:`start` — and, mirroring the real
motivation, the runtime charges *half* the dispatch overhead on
started operations (the envelope and routing are precomputed).

Usage::

    sreq = ctx.send_init(view, dst=1, tag=7)
    rreq = ctx.recv_init(view2, src=1, tag=9)
    for _ in range(steps):
        live = yield from ctx.start_all([sreq, rreq])
        ...
        yield from ctx.waitall(live)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from .buffer import BufferView
from .communicator import Communicator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import RankContext
    from .request import Request


@dataclass(frozen=True)
class PersistentOp:
    """A frozen send or receive, startable many times."""

    kind: str  # "send" | "recv"
    view: BufferView
    peer: int  # dst for sends, src for recvs
    tag: int
    comm: Optional[Communicator]

    def start(self, ctx: "RankContext"):
        """Generator: begin one instance; returns a live request."""
        saved = ctx.params.cpu.dispatch_overhead
        # Persistent ops pay half the dispatch (precomputed envelope).
        discount = saved * 0.5
        yield ctx.sim.timeout(0.0)  # keep generator shape uniform
        ctx._dispatch_discount = discount
        try:
            if self.kind == "send":
                req = yield from ctx.isend(self.view, self.peer, self.tag,
                                           self.comm)
            else:
                req = yield from ctx.irecv(self.view, self.peer, self.tag,
                                           self.comm)
        finally:
            ctx._dispatch_discount = 0.0
        return req


def send_init(ctx: "RankContext", view: BufferView, dst: int, tag: int = 0,
              comm: Optional[Communicator] = None) -> PersistentOp:
    """MPI_Send_init: freeze a send's arguments."""
    comm_ = comm if comm is not None else ctx.comm_world
    comm_.to_world(dst)  # validate now, as MPI does
    return PersistentOp("send", view, dst, tag, comm)


def recv_init(ctx: "RankContext", view: BufferView, src: int, tag: int = -1,
              comm: Optional[Communicator] = None) -> PersistentOp:
    """MPI_Recv_init: freeze a receive's arguments."""
    return PersistentOp("recv", view, src, tag, comm)


def start_all(ctx: "RankContext", ops: Sequence[PersistentOp]):
    """MPI_Startall (generator): start every op; returns live requests."""
    live: List["Request"] = []
    for op in ops:
        req = yield from op.start(ctx)
        live.append(req)
    return live
