"""MPI message matching: posted-receive and unexpected-message queues.

Matching follows MPI's rules: a receive matches the *oldest* message
whose envelope satisfies its ``(comm, src, tag)`` pattern, where source
and tag may be wildcards; messages between the same (src, dst, comm,
tag) are non-overtaking.

Implementation: exact-envelope traffic (all of this project's
collectives) goes through dict-keyed deques — O(1) per message.
Wildcard patterns fall back to ordered scans; global FIFO between the
two paths is kept via monotonically increasing sequence numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Event
from .message import ANY_SOURCE, ANY_TAG, Envelope, MessageDescriptor

_Key = Tuple[int, int, int]  # (comm_id, src, tag)


@dataclass
class PostedRecv:
    """A receive waiting for its message."""

    seq: int
    pattern: Envelope
    event: Event  # succeeds with the MessageDescriptor


@dataclass
class MatchingEngine:
    """Per-rank matching state."""

    _seq: int = 0
    _posted_exact: Dict[_Key, Deque[PostedRecv]] = field(default_factory=dict)
    _posted_wild: List[PostedRecv] = field(default_factory=list)
    _unexpected_exact: Dict[_Key, Deque[Tuple[int, MessageDescriptor]]] = field(
        default_factory=dict
    )
    _unexpected_count: int = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- receive side ---------------------------------------------------
    def claim(self, pattern: Envelope) -> Optional[MessageDescriptor]:
        """Take the oldest unexpected message matching ``pattern``."""
        if not self._unexpected_count:
            return None
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            key = (pattern.comm_id, pattern.src, pattern.tag)
            queue = self._unexpected_exact.get(key)
            if not queue:
                return None
            _seq, desc = queue.popleft()
            self._unexpected_count -= 1
            return desc
        # Wildcard: oldest matching across all exact queues.
        best_key: Optional[_Key] = None
        best_seq = None
        for key, queue in self._unexpected_exact.items():
            if not queue:
                continue
            seq, desc = queue[0]
            if desc.envelope.matches(pattern) and (best_seq is None or seq < best_seq):
                best_seq, best_key = seq, key
        if best_key is None:
            return None
        _seq, desc = self._unexpected_exact[best_key].popleft()
        self._unexpected_count -= 1
        return desc

    def peek(self, pattern: Envelope) -> Optional[MessageDescriptor]:
        """Like :meth:`claim` but leaves the message queued (probe)."""
        if not self._unexpected_count:
            return None
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            queue = self._unexpected_exact.get(
                (pattern.comm_id, pattern.src, pattern.tag))
            return queue[0][1] if queue else None
        best = None
        best_seq = None
        for queue in self._unexpected_exact.values():
            if not queue:
                continue
            seq, desc = queue[0]
            if desc.envelope.matches(pattern) and (best_seq is None or seq < best_seq):
                best_seq, best = seq, desc
        return best

    def post(self, pattern: Envelope, event: Event) -> None:
        """Register a posted receive (call :meth:`claim` first)."""
        posted = PostedRecv(self._next_seq(), pattern, event)
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            key = (pattern.comm_id, pattern.src, pattern.tag)
            self._posted_exact.setdefault(key, deque()).append(posted)
        else:
            self._posted_wild.append(posted)

    # -- delivery side ----------------------------------------------------
    def deliver(self, desc: MessageDescriptor) -> None:
        """Hand an arriving message to the oldest matching posted recv,
        or queue it as unexpected."""
        env = desc.envelope
        key = (env.comm_id, env.src, env.tag)
        exact_queue = self._posted_exact.get(key)
        exact_head = exact_queue[0] if exact_queue else None
        wild_match = None
        for posted in self._posted_wild:
            if env.matches(posted.pattern):
                wild_match = posted
                break
        chosen: Optional[PostedRecv] = None
        if exact_head and wild_match:
            chosen = exact_head if exact_head.seq < wild_match.seq else wild_match
        else:
            chosen = exact_head or wild_match
        if chosen is None:
            self._unexpected_exact.setdefault(key, deque()).append((self._next_seq(), desc))
            self._unexpected_count += 1
            return
        if chosen is exact_head:
            exact_queue.popleft()
        else:
            self._posted_wild.remove(chosen)
        chosen.event.succeed(desc)

    # -- probes -----------------------------------------------------------
    @property
    def unexpected_messages(self) -> int:
        """Currently queued unexpected messages (leak probe)."""
        return self._unexpected_count

    @property
    def pending_receives(self) -> int:
        """Currently posted, unmatched receives (leak probe)."""
        return sum(len(q) for q in self._posted_exact.values()) + len(self._posted_wild)

    def pending_patterns(self) -> List[Tuple[int, int]]:
        """(src, tag) of every posted, unmatched receive, in post
        order — the raw material of the deadlock blocked report
        (wildcards appear as -1)."""
        posted: List[PostedRecv] = [
            p for q in self._posted_exact.values() for p in q
        ]
        posted += self._posted_wild
        posted.sort(key=lambda p: p.seq)
        return [(p.pattern.src, p.pattern.tag) for p in posted]
