"""MPI message matching: posted-receive and unexpected-message queues.

Matching follows MPI's rules: a receive matches the *oldest* message
whose envelope satisfies its ``(comm, src, tag)`` pattern, where source
and tag may be wildcards; messages between the same (src, dst, comm,
tag) are non-overtaking.

Implementation: exact-envelope traffic (all of this project's
collectives) goes through dict-keyed deques — O(1) per message.
Wildcard patterns fall back to ordered scans; global FIFO between the
two paths is kept via monotonically increasing sequence numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from ..sim import Event
from .message import ANY_SOURCE, ANY_TAG, Envelope, MessageDescriptor

_Key = Tuple[int, int, int]  # (comm_id, src, tag)


class PostedRecv(NamedTuple):
    """A receive waiting for its message.

    A (named) tuple because at paper scale one is allocated per
    message; the engine itself appends bare ``(seq, pattern, event)``
    tuples — same layout, cheapest possible allocation.
    """

    seq: int
    pattern: Envelope
    event: Event  # succeeds with the MessageDescriptor


class MatchingEngine:
    """Per-rank matching state.

    Hash-bucketed: exact ``(comm, src, tag)`` traffic — everything the
    collectives generate — is one dict probe plus one deque operation
    per message on both the post and the deliver side, independent of
    how many receives are outstanding.  Wildcard receives keep the
    ordered-scan fallback; sequence numbers keep global FIFO between
    the two paths.
    """

    __slots__ = ("_seq", "_posted_exact", "_posted_wild",
                 "_unexpected_exact", "_unexpected_count")

    def __init__(self) -> None:
        self._seq = 0
        self._posted_exact: Dict[_Key, Deque[PostedRecv]] = {}
        self._posted_wild: List[PostedRecv] = []
        self._unexpected_exact: Dict[_Key, Deque[Tuple[int, MessageDescriptor]]] = {}
        self._unexpected_count = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- receive side ---------------------------------------------------
    def claim(self, pattern: Envelope) -> Optional[MessageDescriptor]:
        """Take the oldest unexpected message matching ``pattern``."""
        if not self._unexpected_count:
            return None
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            queue = self._unexpected_exact.get(
                (pattern.comm_id, pattern.src, pattern.tag))
            if not queue:
                return None
            _seq, desc = queue.popleft()
            self._unexpected_count -= 1
            return desc
        # Wildcard: oldest matching across all exact queues.
        best_key: Optional[_Key] = None
        best_seq = None
        for key, queue in self._unexpected_exact.items():
            if not queue:
                continue
            seq, desc = queue[0]
            if desc.envelope.matches(pattern) and (best_seq is None or seq < best_seq):
                best_seq, best_key = seq, key
        if best_key is None:
            return None
        _seq, desc = self._unexpected_exact[best_key].popleft()
        self._unexpected_count -= 1
        return desc

    def peek(self, pattern: Envelope) -> Optional[MessageDescriptor]:
        """Like :meth:`claim` but leaves the message queued (probe)."""
        if not self._unexpected_count:
            return None
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            queue = self._unexpected_exact.get(
                (pattern.comm_id, pattern.src, pattern.tag))
            return queue[0][1] if queue else None
        best = None
        best_seq = None
        for queue in self._unexpected_exact.values():
            if not queue:
                continue
            seq, desc = queue[0]
            if desc.envelope.matches(pattern) and (best_seq is None or seq < best_seq):
                best_seq, best = seq, desc
        return best

    def post(self, pattern: Envelope, event: Event) -> None:
        """Register a posted receive (call :meth:`claim` first)."""
        self._seq = seq = self._seq + 1
        entry = (seq, pattern, event)
        if pattern.src != ANY_SOURCE and pattern.tag != ANY_TAG:
            key = (pattern.comm_id, pattern.src, pattern.tag)
            queue = self._posted_exact.get(key)
            if queue is None:
                self._posted_exact[key] = deque((entry,))
            else:
                queue.append(entry)
        else:
            self._posted_wild.append(entry)

    # -- delivery side ----------------------------------------------------
    def deliver(self, desc: MessageDescriptor) -> None:
        """Hand an arriving message to the oldest matching posted recv,
        or queue it as unexpected."""
        env = desc.envelope
        key = (env.comm_id, env.src, env.tag)
        exact_queue = self._posted_exact.get(key)
        if exact_queue and not self._posted_wild:
            # Hot path: exact match, no wildcards outstanding — one
            # dict probe and one deque pop.
            exact_queue.popleft()[2].succeed(desc)
            return
        exact_head = exact_queue[0] if exact_queue else None
        wild_match = None
        for posted in self._posted_wild:
            if env.matches(posted[1]):
                wild_match = posted
                break
        chosen: Optional[PostedRecv] = None
        if exact_head and wild_match:
            chosen = exact_head if exact_head[0] < wild_match[0] else wild_match
        else:
            chosen = exact_head or wild_match
        if chosen is None:
            self._unexpected_exact.setdefault(key, deque()).append((self._next_seq(), desc))
            self._unexpected_count += 1
            return
        if chosen is exact_head:
            exact_queue.popleft()
        else:
            self._posted_wild.remove(chosen)
        chosen[2].succeed(desc)

    # -- probes -----------------------------------------------------------
    @property
    def unexpected_messages(self) -> int:
        """Currently queued unexpected messages (leak probe)."""
        return self._unexpected_count

    @property
    def pending_receives(self) -> int:
        """Currently posted, unmatched receives (leak probe)."""
        return sum(len(q) for q in self._posted_exact.values()) + len(self._posted_wild)

    def pending_patterns(self) -> List[Tuple[int, int]]:
        """(src, tag) of every posted, unmatched receive, in post
        order — the raw material of the deadlock blocked report
        (wildcards appear as -1)."""
        posted: List[PostedRecv] = [
            p for q in self._posted_exact.values() for p in q
        ]
        posted += self._posted_wild
        posted.sort(key=lambda p: p[0])
        return [(p[1].src, p[1].tag) for p in posted]

    def pending_details(self) -> List[Tuple[int, int, int]]:
        """(comm_id, src, tag) of every posted, unmatched receive, in
        post order — like :meth:`pending_patterns` but keeping the
        communicator, so callers can resolve comm ranks back to world
        ranks (the failure detector's probe targeting and the
        transitive wait-for graph both need that)."""
        posted: List[PostedRecv] = [
            p for q in self._posted_exact.values() for p in q
        ]
        posted += self._posted_wild
        posted.sort(key=lambda p: p[0])
        return [(p[1].comm_id, p[1].src, p[1].tag) for p in posted]

    # -- recovery ---------------------------------------------------------
    def purge(self, predicate) -> int:
        """Drop posted receives and unexpected messages whose envelope
        satisfies ``predicate`` (called with the :class:`Envelope`).

        The fault-tolerance layer uses this to retire the traffic of an
        abandoned collective attempt: posted receives that will never
        match (their sender died) and unexpected messages from a stale
        epoch.  Purged receives' events are simply abandoned — any
        process waiting on them must have been interrupted first.
        Returns how many entries were removed.
        """
        removed = 0
        for key in list(self._posted_exact):
            queue = self._posted_exact[key]
            kept = deque(e for e in queue if not predicate(e[1]))
            removed += len(queue) - len(kept)
            if kept:
                self._posted_exact[key] = kept
            else:
                del self._posted_exact[key]
        kept_wild = [e for e in self._posted_wild if not predicate(e[1])]
        removed += len(self._posted_wild) - len(kept_wild)
        self._posted_wild[:] = kept_wild
        for key in list(self._unexpected_exact):
            queue = self._unexpected_exact[key]
            kept = deque(e for e in queue if not predicate(e[1].envelope))
            dropped = len(queue) - len(kept)
            removed += dropped
            self._unexpected_count -= dropped
            if kept:
                self._unexpected_exact[key] = kept
            else:
                del self._unexpected_exact[key]
        return removed
