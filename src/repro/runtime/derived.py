"""Derived datatypes: non-contiguous layouts (MPI_Type_vector family).

Real stencil codes send matrix *columns* — strided data — by defining
derived datatypes.  MPI implementations pack such data into contiguous
staging before eager transmission; we model exactly that: a
:class:`VectorLayout` describes the stride pattern, :func:`pack` /
:func:`unpack` move the bytes (functionally) and charge the packing
pass (one memcpy over the packed size plus a per-block touch cost,
because strided access defeats the prefetcher).

Usage (sending a column of a row-major matrix)::

    col = VectorLayout(count=nrows, blocklen=8, stride=rowbytes)
    packed = ctx.alloc(col.packed_nbytes)
    yield from pack(ctx, matrix_buf.view(), col, packed.view())
    yield from ctx.send(packed.view(), dst=nb, tag=0)
"""

from __future__ import annotations

from dataclasses import dataclass

from .buffer import BufferView
from .context import RankContext

#: extra cost per non-contiguous block (cache-line granule touch)
STRIDED_BLOCK_COST = 1.0e-8


@dataclass(frozen=True)
class VectorLayout:
    """``count`` blocks of ``blocklen`` bytes, ``stride`` bytes apart.

    ``stride`` is measured start-to-start (like MPI_Type_vector with
    byte strides); ``stride == blocklen`` degenerates to contiguous.
    """

    count: int
    blocklen: int
    stride: int

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklen < 0:
            raise ValueError("count and blocklen must be >= 0")
        if self.stride < self.blocklen:
            raise ValueError(
                f"stride {self.stride} smaller than blocklen {self.blocklen}"
            )

    @property
    def packed_nbytes(self) -> int:
        """Bytes after packing."""
        return self.count * self.blocklen

    @property
    def span_nbytes(self) -> int:
        """Bytes the layout spans in the source buffer."""
        if self.count == 0:
            return 0
        return (self.count - 1) * self.stride + self.blocklen

    @property
    def contiguous(self) -> bool:
        """True when packing is a plain memcpy."""
        return self.stride == self.blocklen or self.count <= 1

    def _cost(self, ctx: RankContext) -> float:
        extra = 0.0 if self.contiguous else self.count * STRIDED_BLOCK_COST
        return ctx.node_hw.copy_cost(self.packed_nbytes) + extra


def pack(ctx: RankContext, src: BufferView, layout: VectorLayout,
         dst: BufferView):
    """Gather a strided layout into a contiguous buffer (generator)."""
    if src.nbytes < layout.span_nbytes:
        raise ValueError(
            f"source view of {src.nbytes} B cannot span {layout.span_nbytes} B"
        )
    if dst.nbytes < layout.packed_nbytes:
        raise ValueError(
            f"packed view of {dst.nbytes} B too small for "
            f"{layout.packed_nbytes} B"
        )
    data = src.read()
    if data is not None:
        for i in range(layout.count):
            dst.sub(i * layout.blocklen, layout.blocklen).write(
                data[i * layout.stride:i * layout.stride + layout.blocklen]
            )
    yield ctx.sim.timeout(layout._cost(ctx))


def unpack(ctx: RankContext, src: BufferView, layout: VectorLayout,
           dst: BufferView):
    """Scatter a contiguous buffer back into a strided layout
    (generator)."""
    if src.nbytes < layout.packed_nbytes:
        raise ValueError(
            f"packed view of {src.nbytes} B too small for "
            f"{layout.packed_nbytes} B"
        )
    if dst.nbytes < layout.span_nbytes:
        raise ValueError(
            f"destination view of {dst.nbytes} B cannot span "
            f"{layout.span_nbytes} B"
        )
    data = src.read()
    if data is not None:
        for i in range(layout.count):
            dst.sub(i * layout.stride, layout.blocklen).write(
                data[i * layout.blocklen:(i + 1) * layout.blocklen]
            )
    yield ctx.sim.timeout(layout._cost(ctx))
