"""MPI-style datatypes mapped onto numpy dtypes.

Only the basic fixed-width types the benchmarks and examples need;
derived datatypes are out of scope for this reproduction (the paper's
collectives operate on contiguous byte ranges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """A fixed-width element type."""

    name: str
    np_dtype: np.dtype

    @property
    def size(self) -> int:
        """Extent in bytes."""
        return self.np_dtype.itemsize

    def __repr__(self) -> str:
        return f"Datatype({self.name})"


def _dt(name: str, np_name: str) -> Datatype:
    return Datatype(name, np.dtype(np_name))


BYTE = _dt("BYTE", "uint8")
INT8 = _dt("INT8", "int8")
INT32 = _dt("INT32", "int32")
INT64 = _dt("INT64", "int64")
UINT32 = _dt("UINT32", "uint32")
UINT64 = _dt("UINT64", "uint64")
FLOAT32 = _dt("FLOAT32", "float32")
FLOAT64 = _dt("FLOAT64", "float64")
#: MPI_DOUBLE alias
DOUBLE = FLOAT64
#: MPI_FLOAT alias
FLOAT = FLOAT32

_BY_NAME: Dict[str, Datatype] = {
    dt.name: dt
    for dt in (BYTE, INT8, INT32, INT64, UINT32, UINT64, FLOAT32, FLOAT64)
}


def datatype(name: str) -> Datatype:
    """Look a datatype up by name (``datatype("FLOAT64")``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown datatype {name!r}; available: {sorted(_BY_NAME)}") from None


def from_numpy(dtype: np.dtype) -> Datatype:
    """The :class:`Datatype` matching a numpy dtype."""
    dtype = np.dtype(dtype)
    for dt in _BY_NAME.values():
        if dt.np_dtype == dtype:
            return dt
    raise KeyError(f"no Datatype for numpy dtype {dtype}")
