"""Message buffers: functional (numpy-backed) and timing-only.

Collectives operate on :class:`BufferView` windows — ``(buffer,
offset, nbytes)`` — so algorithm code is identical whether bytes
really move or not:

* :class:`ArrayBuffer` wraps a numpy array; reads/writes touch real
  memory, so correctness is checkable byte-for-byte.
* :class:`NullBuffer` tracks only sizes; reads return ``None`` and
  writes are dropped.  Full-scale benchmark runs (2304 ranks ×
  allgather would need gigabytes) use this mode — the cost model is
  unaffected because all modeled costs depend only on sizes.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .datatypes import Datatype
from .errors import DatatypeError

_buffer_ids = itertools.count(1)


class BaseBuffer:
    """Common interface of functional and null buffers."""

    __slots__ = ("nbytes", "key")

    def __init__(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.nbytes = nbytes
        #: stable identity for transport attach caches (XPMEM)
        self.key = next(_buffer_ids)

    # -- byte-level access (overridden) ---------------------------------
    def read_bytes(self, offset: int, nbytes: int) -> Optional[np.ndarray]:
        raise NotImplementedError

    def slice_bytes(self, offset: int, nbytes: int) -> Optional[np.ndarray]:
        """A zero-copy window (``None`` for timing-only buffers).

        Unlike :meth:`read_bytes` this is a *live view* of the buffer's
        memory — mutating it mutates the buffer.  Used for single-copy
        data movement (``BufferView.copy_from``); anything needing a
        stable snapshot (message payloads) must use :meth:`read_bytes`.
        """
        raise NotImplementedError

    def write_bytes(self, offset: int, data: Optional[np.ndarray]) -> None:
        raise NotImplementedError

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise IndexError(
                f"range [{offset}, {offset + nbytes}) outside buffer of {self.nbytes} B"
            )

    # -- views -----------------------------------------------------------
    def view(self, offset: int = 0, nbytes: Optional[int] = None) -> "BufferView":
        """A window onto this buffer."""
        if nbytes is None:
            nbytes = self.nbytes - offset
        self._check_range(offset, nbytes)
        return BufferView(self, offset, nbytes)


class ArrayBuffer(BaseBuffer):
    """A numpy-backed buffer; the byte image is authoritative."""

    __slots__ = ("array", "_flat")

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        super().__init__(array.nbytes)
        self.array = array
        # The flat uint8 image is computed once; every byte-level
        # operation below is a plain numpy slice on it (no per-call
        # reshape/view allocations).
        self._flat = array.reshape(-1).view(np.uint8)

    @classmethod
    def zeros(cls, nbytes: int) -> "ArrayBuffer":
        """A zero-filled byte buffer."""
        return cls(np.zeros(nbytes, dtype=np.uint8))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "ArrayBuffer":
        """Wrap (a contiguous copy of, if needed) an existing array."""
        return cls(array)

    @property
    def bytes_view(self) -> np.ndarray:
        """The whole buffer as a flat uint8 array (a view, not a copy)."""
        return self._flat

    def read_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        """Copy out ``nbytes`` starting at ``offset`` (a snapshot)."""
        self._check_range(offset, nbytes)
        return self._flat[offset : offset + nbytes].copy()

    def slice_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-copy live window (see :meth:`BaseBuffer.slice_bytes`)."""
        self._check_range(offset, nbytes)
        return self._flat[offset : offset + nbytes]

    def write_bytes(self, offset: int, data: Optional[np.ndarray]) -> None:
        """Copy ``data`` into the buffer at ``offset``."""
        if data is None:
            return  # timing-only payload arriving in a functional buffer
        self._check_range(offset, data.nbytes)
        self._flat[offset : offset + data.nbytes] = data.reshape(-1).view(np.uint8)

    def typed(self, datatype: Datatype) -> np.ndarray:
        """The whole buffer viewed as ``datatype`` elements."""
        if self.nbytes % datatype.size:
            raise DatatypeError(
                f"buffer of {self.nbytes} B is not a whole number of {datatype.name}"
            )
        return self.bytes_view.view(datatype.np_dtype)


class NullBuffer(BaseBuffer):
    """Sizes only — for full-scale timing runs."""

    __slots__ = ()

    def read_bytes(self, offset: int, nbytes: int) -> None:
        self._check_range(offset, nbytes)
        return None

    def slice_bytes(self, offset: int, nbytes: int) -> None:
        self._check_range(offset, nbytes)
        return None

    def write_bytes(self, offset: int, data: Optional[np.ndarray]) -> None:
        if data is not None:
            self._check_range(offset, data.nbytes)

    def typed(self, datatype: Datatype) -> None:
        """Timing-only buffers have no element image."""
        return None


class BufferView:
    """A ``(buffer, offset, nbytes)`` window — what send/recv take."""

    __slots__ = ("buffer", "offset", "nbytes")

    def __init__(self, buffer: BaseBuffer, offset: int, nbytes: int) -> None:
        buffer._check_range(offset, nbytes)
        self.buffer = buffer
        self.offset = offset
        self.nbytes = nbytes

    def sub(self, offset: int, nbytes: int) -> "BufferView":
        """A narrower window, relative to this one."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise IndexError(
                f"sub-range [{offset}, {offset + nbytes}) outside view of {self.nbytes} B"
            )
        return BufferView(self.buffer, self.offset + offset, nbytes)

    def read(self) -> Optional[np.ndarray]:
        """Snapshot the window's bytes (``None`` for null buffers)."""
        return self.buffer.read_bytes(self.offset, self.nbytes)

    def write(self, data: Optional[np.ndarray]) -> None:
        """Write ``data`` (at most the window's size) into the window."""
        if data is not None and data.nbytes > self.nbytes:
            raise IndexError(f"writing {data.nbytes} B into a {self.nbytes} B view")
        self.buffer.write_bytes(self.offset, data)

    def raw(self) -> Optional[np.ndarray]:
        """Zero-copy live window onto the underlying bytes.

        ``None`` for timing-only buffers.  Mutating the returned array
        mutates the buffer — use :meth:`read` for snapshots.
        """
        return self.buffer.slice_bytes(self.offset, self.nbytes)

    def copy_from(self, other: "BufferView") -> None:
        """Functional copy ``other → self`` (sizes must match).

        A single memcpy when both sides are functional: the source is
        taken as a zero-copy slice and written straight into the
        destination, instead of snapshot-then-write (two copies).
        Overlapping windows of the same buffer fall back to the
        snapshot path (numpy slice assignment does not define overlap).
        """
        nbytes = self.nbytes
        if other.nbytes != nbytes:
            raise ValueError(f"size mismatch: {other.nbytes} != {nbytes}")
        if other.buffer is self.buffer:
            lo, hi = self.offset, self.offset + nbytes
            if other.offset < hi and lo < other.offset + nbytes:
                self.write(other.read())
                return
        self.buffer.write_bytes(
            self.offset, other.buffer.slice_bytes(other.offset, nbytes))

    @property
    def key(self):
        """The underlying buffer's identity (for attach caches)."""
        return self.buffer.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.buffer).__name__
        return f"<BufferView {kind}[{self.offset}:{self.offset + self.nbytes}]>"


def alloc(nbytes: int, functional: bool = True) -> BaseBuffer:
    """Allocate a buffer of ``nbytes`` in the requested mode."""
    return ArrayBuffer.zeros(nbytes) if functional else NullBuffer(nbytes)
