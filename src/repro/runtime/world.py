"""The World: wires machine, PiP substrate, transports and ranks together."""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

from ..machine import Cluster, ClusterHardware, MachineParams
from ..pip import NodeBarrier, spawn_tasks
from ..machine.params import MemoryParams
from ..sim import Simulator
from ..sim.shard import ShardedHardSync, ShardedSimulator
from ..sim.spec import EngineSpec, resolve_engine
from ..sim.trace import Tracer
from ..machine.fabric import FabricParams
from ..transport import NetworkTransport, Transport, make_transport
from .buffer import BaseBuffer, alloc
from .communicator import Communicator
from .context import RankContext
from .matching import MatchingEngine

#: a rank program: ``program(ctx, *args)`` yielding simulation events
RankProgram = Callable[..., Any]


class _LoopbackTransport(Transport):
    """Self-sends: free and instant (they never leave the rank)."""

    name = "loopback"

    def sender_flat_time(self, node, desc):
        return 0.0

    def receiver_flat_time(self, node, desc):
        return 0.0


class World:
    """One simulated MPI job.

    Parameters
    ----------
    params:
        The machine (see :mod:`repro.machine.presets`).
    intra:
        Intra-node transport — a registry name
        (``"posix_shmem" | "cma" | "xpmem" | "pip" | "pip_sizesync"``)
        or a :class:`Transport` instance.
    functional:
        When True (default) buffers are numpy-backed and every byte
        really moves; when False buffers are size-only (full-scale
        timing runs).
    pip_enabled:
        Whether node address spaces are shared.  Defaults to the
        transport's capability; passing an explicit value lets tests
        build deliberately broken configurations.
    faults:
        A :class:`~repro.faults.FaultPlan` (or a fresh
        :class:`~repro.faults.FaultInjector`) to bind to this world.
        ``None`` (default) keeps the zero-overhead perfect-wire path.
    reliable:
        Use :class:`~repro.transport.ReliableNetworkTransport`
        (ack/timeout/retransmit) for inter-node eager traffic, so
        wire-layer faults are recovered (at a time cost) instead of
        being permanent losses.
    obs:
        A :class:`~repro.obs.SpanRecorder` to bind to this world (see
        :meth:`attach_obs`).  ``None`` (default) keeps every
        instrumentation site a single attribute check.
    fastpath:
        The macro-event fast path: blocking pt2pt calls run fused
        generators (no request objects, no Timeout events, batched
        message completion) that reproduce the reference path's
        timestamps *exactly*.  Defaults to on; it disarms itself
        automatically whenever a tracer, fault injector or span
        recorder is attached (those need the full choreography).
        ``fastpath=False`` forces the reference path — the
        differential tests run both and assert identical results.
    queue:
        Legacy event-queue backend selector (``"calendar"`` or
        ``"heap"``); superseded by ``engine=`` — pass one or the
        other, not both.
    engine:
        Unified engine selector: ``"reference"``, ``"calendar"``
        (default), ``"sharded"`` (``"sharded:<shards>[x<workers>]"``),
        ``"analytic"``, or a resolved
        :class:`~repro.sim.spec.EngineSpec`.  Auto-downgrade rules
        (faults / tracing / spans / reliable / fabric / ft force the
        calendar engine) are applied by
        :func:`~repro.sim.spec.resolve_engine`; the outcome is
        queryable as ``world.engine``.  See ``docs/ENGINE.md``.
    resources:
        Attach a :class:`~repro.obs.resources.ResourceMonitor`
        recording per-resource busy/queue timelines.  Unlike ``obs``,
        this does *not* disarm the fast path — the hooks sit in the
        pipe reservation funnel shared by both engine paths, so the
        recorded telemetry is identical either way.
    ft:
        Attach the ULFM-style fault-tolerance layer
        (:class:`~repro.ft.FTRuntime`): ``True`` with default
        :class:`~repro.ft.FtParams`, or an ``FtParams`` instance.  The
        layer *arms* only when a fault injector is also bound — with
        ``faults=None`` every collective takes the plain path and the
        run is bit- and timestamp-identical to ``ft=False``.
    """

    def __init__(
        self,
        params: MachineParams,
        intra: Union[str, Transport] = "posix_shmem",
        functional: bool = True,
        pip_enabled: Optional[bool] = None,
        tracer: Optional["Tracer"] = None,
        fabric: Optional["FabricParams"] = None,
        faults: Optional[Any] = None,
        reliable: bool = False,
        obs: Optional[Any] = None,
        fastpath: Optional[bool] = None,
        queue: Optional[str] = None,
        resources: bool = False,
        ft: Union[bool, Any] = False,
        engine: Union[str, EngineSpec, None] = None,
    ) -> None:
        self.params = params
        #: the resolved :class:`~repro.sim.spec.EngineSpec` — the one
        #: place engine selection and auto-downgrade rules are applied
        self.engine = resolve_engine(
            engine,
            queue=queue,
            fastpath=fastpath,
            faults=faults is not None,
            tracer=tracer is not None,
            obs=obs is not None,
            reliable=reliable,
            fabric=fabric is not None,
            ft=bool(ft),
            resources=resources,
            nodes=params.nodes,
        )
        if self.engine.sharded:
            self.sim: Simulator = ShardedSimulator(
                self.engine.shards, params.nodes, params.nic.latency,
                workers=self.engine.workers,
            )
        else:
            self.sim = Simulator(tracer=tracer, queue=self.engine.queue)
        #: when a tracer is attached, every delivered message is
        #: recorded as kind "message" with src/dst/bytes/transport/tag
        self.tracer = tracer
        #: bound SpanRecorder, or None — set via attach_obs() below
        self.obs = None
        self.cluster = Cluster(params.nodes, params.ppn)
        self.hw = ClusterHardware(self.sim, params)
        self.intra = make_transport(intra) if isinstance(intra, str) else intra
        #: bound FaultInjector, or None (the default, zero-overhead)
        self.faults = None
        if faults is not None:
            from ..faults import FaultInjector, FaultPlan

            injector = FaultInjector(faults) if isinstance(faults, FaultPlan) \
                else faults
            injector.bind(self)
            self.faults = injector
        if fabric is not None:
            if reliable:
                raise ValueError(
                    "reliable delivery is modeled on the flat network only; "
                    "pass fabric=None (fat-tree links model their own "
                    "link-level retry)"
                )
            from ..machine.fabric import Fabric
            from ..transport.fabric_network import FabricNetworkTransport

            #: live fat-tree state (None for the flat full-bisection model)
            self.fabric = Fabric(self.sim, params, fabric)
            self.network = FabricNetworkTransport(self.fabric)
        elif reliable:
            from ..transport import ReliableNetworkTransport

            self.fabric = None
            self.network = ReliableNetworkTransport(injector=self.faults)
        else:
            self.fabric = None
            self.network = NetworkTransport()
        self.loopback = _LoopbackTransport()
        self.functional = functional
        if pip_enabled is None:
            pip_enabled = self.intra.supports_peer_views
        self.pip_enabled = pip_enabled
        self.tasks = spawn_tasks(self.cluster, pip_enabled)
        self.matching: List[MatchingEngine] = [
            MatchingEngine() for _ in range(self.cluster.world_size)
        ]
        # Communicators: world, one per node, and the leaders' comm.
        self.comm_world = Communicator(0, range(self.cluster.world_size), "world")
        self.node_comms: List[Communicator] = [
            Communicator(1 + node, self.cluster.ranks_on_node(node), f"node{node}")
            for node in range(self.cluster.nodes)
        ]
        self.leader_comm = Communicator(
            1 + self.cluster.nodes, self.cluster.leaders(), "leaders"
        )
        self.node_barriers: List[NodeBarrier] = [
            NodeBarrier(self.sim, params.memory, params.ppn)
            for _ in range(self.cluster.nodes)
        ]
        # Zero-cost alignment barrier for harness timing.  The sharded
        # engine needs per-shard release events (a world-wide
        # NodeBarrier would resume ranks under a foreign shard's
        # queue); release timestamps are identical.
        if self.engine.sharded:
            self.hard_sync_barrier: Any = ShardedHardSync(
                self.sim, self.cluster.world_size)
        else:
            self.hard_sync_barrier = NodeBarrier(
                self.sim,
                MemoryParams(flag_latency=0.0),
                self.cluster.world_size,
            )
        self._interned_comms: dict = {}
        self._next_comm_id = 2 + self.cluster.nodes
        #: comm_id → Communicator for every communicator this world
        #: knows about (built-ins, interned splits, FT control comms):
        #: how pending-receive patterns resolve back to world ranks.
        self.comms_by_id: dict = {self.comm_world.comm_id: self.comm_world}
        for comm in self.node_comms:
            self.comms_by_id[comm.comm_id] = comm
        self.comms_by_id[self.leader_comm.comm_id] = self.leader_comm
        #: macro-event fast path armed?  Anything that must observe the
        #: full per-message choreography (tracer, faults, obs) clears
        #: it — resolved once by :func:`~repro.sim.spec.resolve_engine`.
        self._fast = self.engine.fastpath
        self.contexts: List[RankContext] = [
            RankContext(self, rank) for rank in range(self.cluster.world_size)
        ]
        #: bound ResourceMonitor, or None — fast-path safe (see above)
        self.resources = None
        if resources:
            self.attach_resources()
        #: bound AnalyticEvaluator, or None — set for engine="analytic"
        self.analytic = None
        if self.engine.analytic:
            from .analytic import AnalyticEvaluator

            self.analytic = AnalyticEvaluator(self)
        if obs is not None:
            self.attach_obs(obs)
        #: rank → (unexpected, pending) shipped home by parallel
        #: sharded workers (the parent's matching engines never ran)
        self._parallel_quiescence = None
        #: bound FTRuntime, or None (the default, zero-overhead)
        self.ft = None
        if ft:
            from ..ft import FtParams
            from ..ft.runtime import FTRuntime

            fparams = FtParams() if ft is True else ft
            self.ft = FTRuntime(self, fparams)

    def attach_obs(self, recorder) -> None:
        """Bind a :class:`~repro.obs.SpanRecorder` to this world.

        Binds the recorder to this world's clock, turns on span
        recording at every instrumentation site (collectives, rounds,
        messages, sync waits), and hands the network transport the
        recorder so its retransmit path can annotate backoff windows.
        """
        if self.engine.sharded:
            raise ValueError(
                "span recording needs the global event loop; build the "
                "world with obs= (the engine auto-downgrades) instead of "
                "attaching a recorder to a sharded world"
            )
        recorder.bind(self.sim)
        self.obs = recorder
        self.network.obs = recorder
        # Spans need the per-message choreography (message spans open
        # in isend); the fused fast path would skip them.
        self._fast = False

    def attach_resources(self):
        """Attach (or return the existing) resource-utilization monitor.

        Safe under the fast path: the recording hooks live in
        :meth:`~repro.sim.resources.RateLimiter.reserve`, which both
        engine paths hit with identical timestamps.
        """
        if self.resources is None:
            from ..obs.resources import ResourceMonitor

            self.resources = ResourceMonitor(self)
        return self.resources

    def node_of(self) -> dict:
        """rank → node id mapping (Perfetto process grouping)."""
        return {rank: self.cluster.node_of(rank)
                for rank in range(self.cluster.world_size)}

    def intern_comm(self, world_ranks) -> Communicator:
        """The shared :class:`Communicator` for an ordered rank tuple.

        Every rank of a ``comm_split`` group computes the same member
        list; interning guarantees they all use the *same* object (and
        therefore the same matching context), like a real communicator
        id agreement.
        """
        key = tuple(world_ranks)
        comm = self._interned_comms.get(key)
        if comm is None:
            comm = Communicator(self._next_comm_id, key, f"split{self._next_comm_id}")
            self._next_comm_id += 1
            self._interned_comms[key] = comm
            self.comms_by_id[comm.comm_id] = comm
        return comm

    # -- allocation ---------------------------------------------------------
    def alloc(self, nbytes: int) -> BaseBuffer:
        """A buffer in this world's functional mode."""
        return alloc(nbytes, functional=self.functional)

    # -- delivery -------------------------------------------------------------
    def deliver(self, desc) -> None:
        """Hand an arrived message to its destination's matching engine.

        The single funnel every transport's completion goes through —
        which is where a bound :class:`~repro.faults.FaultInjector`
        gets to sabotage delivery.  Without one this is a plain
        forward (no extra events, so the perf budgets hold).
        """
        engine = self.matching[desc.dst_world]
        if self.faults is not None:
            self.faults.deliver_hook(desc, engine)
        else:
            engine.deliver(desc)

    # -- execution ------------------------------------------------------------
    def run(
        self,
        program: RankProgram,
        args: Sequence[Any] = (),
        per_rank_args: Optional[Sequence[Sequence[Any]]] = None,
        allow_unfinished: bool = False,
        watchdog: Optional[float] = None,
    ) -> List[Any]:
        """Run ``program(ctx, *args)`` on every rank to completion.

        ``per_rank_args`` (one tuple per rank) overrides ``args`` when
        ranks need distinct inputs.  Returns each rank's return value,
        indexed by world rank.  May be called repeatedly on the same
        world; simulated time keeps advancing.

        If the event queue drains while some ranks are still blocked —
        a deadlock (e.g. an unmatched receive) — a
        :class:`~repro.runtime.errors.MpiError` names the stuck ranks,
        with a per-rank report of what each is blocked on.  Pass
        ``allow_unfinished=True`` to get ``None`` for them instead
        (fault-injection tests use this).

        ``watchdog`` (simulated seconds, measured from the current
        clock) bounds the run: if ranks are still busy past the
        deadline a :class:`~repro.runtime.errors.TimeoutError` carries
        the same blocked report — the escape hatch for livelocks and
        runaway retransmission storms.
        """
        if per_rank_args is not None and len(per_rank_args) != self.cluster.world_size:
            raise ValueError(
                f"per_rank_args has {len(per_rank_args)} entries for "
                f"{self.cluster.world_size} ranks"
            )
        procs = []
        sharded = self.sim.is_sharded
        for rank, ctx in enumerate(self.contexts):
            rank_args = per_rank_args[rank] if per_rank_args is not None else args
            if sharded:
                # Kick-start entries must land in the rank's shard,
                # carrying the rank as their ordering origin.
                self.sim.set_home(self.cluster.node_of(rank), rank)
            procs.append(self.sim.process(program(ctx, *rank_args), name=f"rank{rank}"))
        if watchdog is not None:
            deadline = self.sim.now + watchdog
            self.sim.run(until=deadline)
            unfinished = [r for r, p in enumerate(procs) if not p.triggered]
            if unfinished and self.sim.peek() != float("inf"):
                from .errors import TimeoutError

                raise TimeoutError(
                    f"watchdog: {watchdog:g}s of simulated time expired with "
                    f"ranks {unfinished} still running\n"
                    + self.blocked_report(unfinished)
                )
        elif sharded and self.sim.workers > 1:
            from ..sim.parallel import run_parallel

            run_parallel(self, procs)
        else:
            self.sim.run()
        stuck = [rank for rank, proc in enumerate(procs) if not proc.triggered]
        if stuck and not allow_unfinished:
            from .errors import MpiError

            shown = ", ".join(map(str, stuck))
            raise MpiError(
                f"deadlock: ranks [{shown}] never finished — "
                "likely an unmatched send/recv or a barrier someone skipped\n"
                + self.blocked_report(stuck)
            )
        return [proc.value if proc.triggered else None for proc in procs]

    def blocked_report(self, ranks: Sequence[int],
                       max_lines: int = 32) -> str:
        """Per-rank diagnosis of what each blocked rank is waiting on.

        Combines the matching engines' pending receive patterns, each
        context's last point-to-point operation, and (with faults
        bound) crash knowledge into one readable report.  Ranks blocked
        on a crashed peer only *transitively* (waiting on a live rank
        that is itself waiting on the corpse) get the root cause named
        too — the line a hang report is actually read for.
        """
        causes = self._root_causes() if self.faults is not None else {}
        excluded = self.ft.excluded if self.ft is not None else ()
        lines = []
        for rank in list(ranks)[:max_lines]:
            engine = self.matching[rank]
            ctx = self.contexts[rank]
            if self.faults is not None and self.faults.is_crashed(rank, self.sim.now):
                lines.append(f"  rank {rank}: crashed (fail-stop at "
                             f"t={self.faults.crash_time(rank):g}s)")
                continue
            if rank in excluded:
                lines.append(f"  rank {rank}: excluded by the "
                             "fault-tolerance layer (agreed out of the "
                             "membership; frozen by design)")
                continue
            cause = causes.get(rank)
            suffix = ""
            if cause is not None:
                suffix = (f" [root cause: rank {cause} crashed "
                          f"(fail-stop at "
                          f"t={self.faults.crash_time(cause):g}s)]")
            pending = engine.pending_patterns()
            if pending:
                shown = ", ".join(
                    f"recv(src={'ANY' if src == -1 else src}, "
                    f"tag={'ANY' if tag == -1 else tag})"
                    for src, tag in pending[:4]
                )
                more = f" (+{len(pending) - 4} more)" if len(pending) > 4 else ""
                lines.append(f"  rank {rank}: blocked on {shown}{more}{suffix}")
            elif ctx.last_op is not None:
                op, peer, tag = ctx.last_op
                lines.append(f"  rank {rank}: last op was "
                             f"{op}(peer={peer}, tag={tag}) — "
                             f"waiting on its completion{suffix}")
            else:
                lines.append(f"  rank {rank}: no pending receives — "
                             f"blocked in a barrier/flag wait{suffix}")
            if engine.unexpected_messages:
                lines.append(f"           ({engine.unexpected_messages} "
                             "unexpected messages queued but unmatched)")
        if len(ranks) > max_lines:
            lines.append(f"  ... +{len(ranks) - max_lines} more ranks")
        return "\n".join(lines)

    def _waits_on(self, rank: int) -> set:
        """World ranks ``rank`` is currently waiting to hear from.

        Derived from the matching engine's pending receive patterns
        (comm ranks resolved through :attr:`comms_by_id`) plus the
        context's last dispatched op when nothing is posted (a send
        whose completion never came).  Wildcard sources contribute
        nothing — they cannot name a peer.
        """
        peers = set()
        pending = self.matching[rank].pending_details()
        for comm_id, src, _tag in pending:
            if src == -1:
                continue
            comm = self.comms_by_id.get(comm_id)
            if comm is not None:
                peers.add(comm.to_world(src))
        if not pending:
            last = self.contexts[rank].last_op
            if last is not None and last[1] is not None and last[1] >= 0:
                peers.add(last[1])
        return peers

    def _root_causes(self) -> dict:
        """rank → crashed rank it is (transitively) blocked on.

        BFS over the wait-for graph from each stuck rank; the first
        crashed rank reached (lowest rank number on ties) is the root
        cause.  Only meaningful with a fault injector bound.
        """
        now = self.sim.now
        faults = self.faults
        crashed = {r for r in range(self.cluster.world_size)
                   if faults.is_crashed(r, now)}
        if not crashed:
            return {}
        causes = {}
        for rank in range(self.cluster.world_size):
            if rank in crashed:
                continue
            seen = {rank}
            frontier = [rank]
            found = None
            while frontier and found is None:
                nxt = []
                for r in frontier:
                    for peer in sorted(self._waits_on(r)):
                        if peer in crashed:
                            found = peer
                            break
                        if peer not in seen:
                            seen.add(peer)
                            nxt.append(peer)
                    if found is not None:
                        break
                frontier = nxt
            if found is not None:
                causes[rank] = found
        return causes

    # -- diagnostics -------------------------------------------------------------
    def stats(self) -> dict:
        """Hardware utilisation counters (probe for tests/reports).

        Returns per-run totals: messages injected/extracted by NICs,
        NIC pipe busy times, memory-bus busy time, and (when a fabric
        is attached) inter-pod bytes.
        """
        out = {
            "tx_messages": sum(n.tx_messages for n in self.hw.nodes),
            "rx_messages": sum(n.rx_messages for n in self.hw.nodes),
            "tx_busy_s": sum(n.tx.busy_time for n in self.hw.nodes),
            "rx_busy_s": sum(n.rx.busy_time for n in self.hw.nodes),
            "membus_busy_s": sum(n.membus.busy_time for n in self.hw.nodes),
            "sim_events": self.sim.event_count,
            "sim_time_s": self.sim.now,
            "inject_msgs": sum(c.nic_msgs for c in self.contexts),
            "inject_bytes": sum(c.nic_bytes for c in self.contexts),
        }
        if self.fabric is not None:
            out["interpod_bytes"] = self.fabric.total_interpod_bytes()
        retransmits = getattr(self.network, "retransmits", None)
        if retransmits is not None:
            out["retransmits"] = retransmits
            out["acks"] = self.network.acks
        if self.faults is not None:
            out["faults_injected"] = len(self.faults.events)
        return out

    def assert_quiescent(self) -> None:
        """Raise if any matching engine still holds messages/receives.

        Called by tests after collectives to prove no message leaks.
        Ranks that fail-stopped (their engines keep their last posted
        receives forever) and ranks the fault-tolerance layer agreed
        out of the membership are exempt — nothing will ever run on
        them again, so their leftover state is not a leak.
        """
        if self._parallel_quiescence is not None:
            for rank, (unexpected, pending) in \
                    self._parallel_quiescence.items():
                if unexpected:
                    raise AssertionError(
                        f"rank {rank}: {unexpected} unexpected messages "
                        "left behind"
                    )
                if pending:
                    raise AssertionError(
                        f"rank {rank}: {pending} receives never matched"
                    )
            return
        excluded = set(self.ft.excluded) if self.ft is not None else set()
        if self.faults is not None:
            now = self.sim.now
            excluded |= {r for r in range(self.cluster.world_size)
                         if self.faults.is_crashed(r, now)}
        for rank, engine in enumerate(self.matching):
            if rank in excluded:
                continue
            if engine.unexpected_messages:
                raise AssertionError(
                    f"rank {rank}: {engine.unexpected_messages} unexpected "
                    "messages left behind"
                )
            if engine.pending_receives:
                raise AssertionError(
                    f"rank {rank}: {engine.pending_receives} receives never matched"
                )
