"""Message envelopes and in-flight descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..transport.base import Transport, WireDescriptor

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: wildcard source for receives (MPI_ANY_SOURCE)
ANY_SOURCE = -1
#: wildcard tag for receives (MPI_ANY_TAG)
ANY_TAG = -1


@dataclass(frozen=True, slots=True)
class Envelope:
    """The matchable part of a message: (communicator, source, tag).

    ``src`` is a *communicator* rank, as in MPI matching rules.
    """

    comm_id: int
    src: int
    tag: int

    def matches(self, pattern: "Envelope") -> bool:
        """True if this concrete envelope satisfies a recv ``pattern``
        (which may hold :data:`ANY_SOURCE` / :data:`ANY_TAG`)."""
        if self.comm_id != pattern.comm_id:
            return False
        if pattern.src != ANY_SOURCE and self.src != pattern.src:
            return False
        if pattern.tag != ANY_TAG and self.tag != pattern.tag:
            return False
        return True


@dataclass(slots=True)
class MessageDescriptor:
    """One message in flight.

    ``payload`` is a byte snapshot taken at post time (``None`` in
    timing-only mode).  ``wire`` carries the size/identity data the
    transport prices; ``transport`` is the mechanism that moved it and
    is also what the receiver pays on match.
    """

    envelope: Envelope
    nbytes: int
    payload: Optional[np.ndarray]
    wire: WireDescriptor
    transport: Transport
    src_world: int
    dst_world: int


@dataclass(frozen=True, slots=True)
class Status:
    """Completion record of a receive."""

    source: int
    tag: int
    nbytes: int
