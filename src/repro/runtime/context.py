"""Per-rank API: what a simulated MPI rank can do.

A rank program is a generator taking a :class:`RankContext` and using
``yield from`` on its methods, e.g.::

    def program(ctx):
        buf = ctx.alloc(64)
        if ctx.rank == 0:
            yield from ctx.send(buf.view(), dst=1, tag=7)
        elif ctx.rank == 1:
            yield from ctx.recv(buf.view(), src=0, tag=7)

All rank arguments are communicator ranks (default communicator:
``COMM_WORLD``).  The context also exposes the PiP-only direct-access
primitives (:meth:`expose` / :meth:`peer_buffer` / :meth:`direct_copy`)
that PiP-MColl's collectives are built from; these raise
:class:`~repro.pip.errors.AddressSpaceViolation` under non-PiP
libraries, so tests can prove the baselines aren't cheating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence

from ..obs.spans import NULL_SPAN
from ..pip.errors import AddressSpaceViolation
from ..transport.base import Transport, WireDescriptor
from .buffer import BaseBuffer, BufferView, alloc
from .communicator import Communicator
from .errors import TruncationError
from .message import ANY_SOURCE, Envelope, MessageDescriptor, Status
from .request import OperationRequest, RecvRequest, Request, SendRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .world import World

#: fast-path routing kinds (see :class:`_PeerPlan`)
_LOOP, _INTRA, _NET = 0, 1, 2


def _net_handoff(arg):
    """Scheduled-tuple trampoline: run the network handoff at its
    instant without resuming the sender's generator (the tuple is
    pushed in the same queue position the resume would occupy, so
    pipe-reservation order is unchanged)."""
    transport, src_hw, dst_hw, desc, world = arg
    transport.schedule_delivery_fast(src_hw, dst_hw, desc, world)


def _intra_handoff(arg):
    """Scheduled-tuple trampoline for the intra-node flag delay."""
    world, flag, desc = arg
    world.sim.call_in(flag, (world.deliver, desc))


class _PeerPlan:
    """Cached routing decision for one ``(communicator, dst)`` pair.

    The slow path re-derives the destination world rank, transport,
    destination hardware and eligibility on *every* message; at paper
    scale (2304 ranks × thousands of messages each) that bookkeeping
    dominates.  A plan freezes it all after the first message.
    """

    __slots__ = ("dst_world", "kind", "transport", "dst_hw", "flag_delay",
                 "eager_limit", "fast")

    def __init__(self, ctx: "RankContext", comm: Communicator, dst: int) -> None:
        dst_world = comm.to_world(dst)
        world = ctx.world
        transport = ctx._transport_to(dst_world)
        self.dst_world = dst_world
        self.transport = transport
        self.flag_delay = 0.0
        self.eager_limit = None
        if dst_world == ctx.rank:
            self.kind = _LOOP
            self.dst_hw = None
            self.fast = True
        elif world.cluster.same_node(ctx.rank, dst_world):
            self.kind = _INTRA
            self.dst_hw = world.hw[world.cluster.node_of(dst_world)]
            delay = transport.delivery_flat_delay(ctx.node_hw) \
                if transport.fast_pt2pt else None
            self.fast = delay is not None
            self.flag_delay = delay if delay is not None else 0.0
        else:
            self.kind = _NET
            self.dst_hw = world.hw[world.cluster.node_of(dst_world)]
            self.fast = transport.fast_pt2pt
            self.eager_limit = world.params.nic.eager_limit


class RankContext:
    """The face of the runtime, bound to one rank."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.sim = world.sim
        self.cluster = world.cluster
        self.params = world.params
        self.node_id = world.cluster.node_of(rank)
        self.local_rank = world.cluster.local_rank(rank)
        self.node_hw = world.hw[self.node_id]
        self.task = world.tasks[rank]
        self.matching = world.matching[rank]
        self.comm_world = world.comm_world
        self.node_comm = world.node_comms[self.node_id]
        self.leader_comm = world.leader_comm
        self._node_barrier = world.node_barriers[self.node_id]
        self._hard_sync = world.hard_sync_barrier
        #: dispatch-overhead rebate applied by persistent-request starts
        self._dispatch_discount = 0.0
        #: last pt2pt op dispatched: ("send"|"recv", peer, tag) — feeds
        #: the deadlock/watchdog blocked report
        self.last_op = None
        #: inter-node messages/bytes this rank injected — the per-rank
        #: injection-engine probe (repro.obs.resources).  Plain ints,
        #: always on, incremented identically by both engine paths.
        self.nic_msgs = 0
        self.nic_bytes = 0
        # -- fast-path caches (per peer / per envelope) ----------------
        self._plans: dict = {}
        self._send_envs: dict = {}
        self._recv_envs: dict = {}
        self._base_dispatch = world.params.cpu.dispatch_overhead
        self._functional = world.functional

    # -- introspection ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.sim.now

    @property
    def size(self) -> int:
        """World size."""
        return self.comm_world.size

    @property
    def is_leader(self) -> bool:
        """True for the node's local rank 0 (the paper's local root)."""
        return self.local_rank == 0

    @property
    def intra_transport(self) -> Transport:
        """The library's intra-node transport."""
        return self.world.intra

    def alloc(self, nbytes: int) -> BaseBuffer:
        """Allocate a buffer honouring the world's functional mode."""
        return alloc(nbytes, functional=self.world.functional)

    # -- observability -----------------------------------------------------
    def span(self, name: str, cat: str = "phase", **attrs):
        """A ``with``-able span on this rank's timeline.

        Algorithms annotate their phases with::

            with ctx.span("round", cat="round", idx=k):
                yield from ctx.sendrecv(...)

        With no recorder attached (the default) this returns a shared
        no-op handle — one attribute check, no allocation.
        """
        obs = self.world.obs
        if obs is None:
            return NULL_SPAN
        return obs.span(self.rank, name, cat, **attrs)

    # -- transport selection ----------------------------------------------
    def _transport_to(self, dst_world: int) -> Transport:
        if dst_world == self.rank:
            return self.world.loopback
        if self.cluster.same_node(self.rank, dst_world):
            return self.world.intra
        return self.world.network

    # -- point-to-point -----------------------------------------------------
    def isend(self, view: BufferView, dst: int, tag: int = 0,
              comm: Optional[Communicator] = None):
        """Nonblocking send (generator; returns a :class:`SendRequest`).

        The sender-side CPU work (protocol entry, injection overhead,
        staging copies) is paid inline — which is precisely why a
        single leader rank saturates: it pays this serially per message.
        """
        if tag < 0:
            raise ValueError(f"send tag must be >= 0, got {tag}")
        comm = comm or self.comm_world
        my_cr = comm.to_comm(self.rank)
        dst_world = comm.to_world(dst)
        faults = self.world.faults
        if faults is not None:
            gate = faults.crash_gate(self.rank)
            if gate is not None:
                yield gate  # fail-stop: never resumes
        self.last_op = ("send", dst_world, tag)
        transport = self._transport_to(dst_world)
        if transport.inter_node:
            self.nic_msgs += 1
            self.nic_bytes += view.nbytes
        wire = WireDescriptor(
            src=self.rank, dst=dst_world, nbytes=view.nbytes, buf_key=view.key
        )
        if faults is not None:
            wire.meta["tag"] = tag
        desc = MessageDescriptor(
            envelope=Envelope(comm.comm_id, my_cr, tag),
            nbytes=view.nbytes,
            payload=view.read(),
            wire=wire,
            transport=transport,
            src_world=self.rank,
            dst_world=dst_world,
        )
        # Message span: send-post → delivery (self-sends never leave
        # the rank and stay invisible, matching the tracer).
        obs = self.world.obs
        msg_sid = None
        if obs is not None and dst_world != self.rank:
            msg_sid = obs.open_message(
                self.rank, dst_world, view.nbytes, transport.name, tag)
        # Sender-side CPU: one scheduled event when the transport has a
        # closed form, else the full choreography.
        dispatch = self.params.cpu.dispatch_overhead - self._dispatch_discount
        flat = transport.sender_flat_time(self.node_hw, wire)
        if flat is not None:
            yield self.sim.timeout(dispatch + flat)
        else:
            yield self.sim.timeout(dispatch)
            yield from transport.sender_steps(self.node_hw, wire)
        if dst_world == self.rank:
            self.world.deliver(desc)
            return SendRequest(done_event=None)
        dst_hw = self.world.hw[self.cluster.node_of(dst_world)]
        world = self.world
        tracer = self.world.tracer
        if self.sim.is_sharded and transport.inter_node:
            # Sharded engine: the destination-side choreography must
            # run under the destination node's shard.  Tracer and span
            # recorder are structurally absent here (the engine
            # downgrades otherwise), so delivery is a plain
            # ``world.deliver`` — no closure crosses the shard.
            done = transport.schedule_delivery_sharded(
                self.node_hw, dst_hw, desc, world)
            rendezvous = view.nbytes > self.params.nic.eager_limit
            return SendRequest(done_event=done if rendezvous else None)

        def _on_delivered(world=world, desc=desc, tracer=tracer,
                          obs=obs, msg_sid=msg_sid):
            if tracer is not None:
                tracer.record(
                    self.sim.now, "message",
                    src=desc.src_world, dst=desc.dst_world,
                    nbytes=desc.nbytes, transport=desc.transport.name,
                    tag=desc.envelope.tag,
                )
            if msg_sid is not None:
                obs.close(msg_sid)
            world.deliver(desc)

        done = transport.schedule_delivery(self.node_hw, dst_hw, wire, _on_delivered)
        if done is None:
            def _delivery(desc=desc, wire=wire, src_hw=self.node_hw,
                          dst_hw=dst_hw, transport=transport):
                yield from transport.delivery_steps(src_hw, dst_hw, wire)
                _on_delivered()

            done = self.sim.process(
                _delivery(), name=f"deliver:{self.rank}->{dst_world}"
            )
        rendezvous = (
            transport is self.world.network
            and view.nbytes > self.params.nic.eager_limit
        )
        return SendRequest(done_event=done if rendezvous else None)

    def irecv(self, view: BufferView, src: int = ANY_SOURCE, tag: int = -1,
              comm: Optional[Communicator] = None):
        """Nonblocking receive (generator; returns a :class:`RecvRequest`).

        ``src`` / ``tag`` default to wildcards (ANY_SOURCE / ANY_TAG).
        """
        comm = comm or self.comm_world
        comm.to_comm(self.rank)  # membership check
        if src != ANY_SOURCE:
            comm.to_world(src)  # range check
        faults = self.world.faults
        if faults is not None:
            gate = faults.crash_gate(self.rank)
            if gate is not None:
                yield gate  # fail-stop: never resumes
        self.last_op = ("recv", src, tag)
        yield self.sim.timeout(
            self.params.cpu.dispatch_overhead - self._dispatch_discount)
        pattern = Envelope(comm.comm_id, src, tag)
        desc = self.matching.claim(pattern)
        if desc is not None:
            return RecvRequest(view, desc=desc)
        ev = self.sim.event()
        self.matching.post(pattern, ev)
        return RecvRequest(view, event=ev)

    def wait(self, request: Request):
        """Block until ``request`` completes; returns its status."""
        result = yield from request._complete(self)
        return result

    def waitall(self, requests: Sequence[Request]) -> "object":
        """Complete every request; returns the list of statuses."""
        statuses: List[Optional[Status]] = []
        for req in requests:
            status = yield from req._complete(self)
            statuses.append(status)
        return statuses

    def waitany(self, requests: Sequence[Request]):
        """MPI_Waitany (generator): complete ONE request; returns
        ``(index, result)``.

        Completes the lowest-indexed ready *active* request if any;
        otherwise blocks until one becomes ready.  Already-completed
        requests are inactive (as in MPI); if every request is
        inactive the result is ``(None, None)`` (MPI_UNDEFINED).
        """
        if not requests:
            raise ValueError("waitany needs at least one request")
        if all(req.completed for req in requests):
            return (None, None)
        while True:
            for idx, req in enumerate(requests):
                if req.ready and not req.completed:
                    result = yield from req._complete(self)
                    return (idx, result)
            pending = []
            for req in requests:
                if req.completed:
                    continue
                signal = req._signal()
                if signal is not None and not signal.processed:
                    pending.append(signal)
            yield self.sim.any_of(pending)

    # -- fast-path caches --------------------------------------------------
    def _plan(self, comm: Communicator, dst: int) -> _PeerPlan:
        key = (comm.comm_id, dst)
        plan = self._plans.get(key)
        if plan is None:
            plan = _PeerPlan(self, comm, dst)
            self._plans[key] = plan
        return plan

    def _send_env(self, comm: Communicator, tag: int) -> Envelope:
        key = (comm.comm_id, tag)
        env = self._send_envs.get(key)
        if env is None:
            env = Envelope(comm.comm_id, comm.to_comm(self.rank), tag)
            self._send_envs[key] = env
        return env

    def _recv_pattern(self, comm: Communicator, src: int, tag: int) -> Envelope:
        key = (comm.comm_id, src, tag)
        pattern = self._recv_envs.get(key)
        if pattern is None:
            comm.to_comm(self.rank)  # membership check
            if src != ANY_SOURCE:
                comm.to_world(src)  # range check
            pattern = Envelope(comm.comm_id, src, tag)
            self._recv_envs[key] = pattern
        return pattern

    # -- blocking pt2pt ----------------------------------------------------
    # send/recv/sendrecv are plain functions returning the appropriate
    # generator (callers ``yield from`` them either way): the reference
    # composition over isend/irecv, or — when the world's macro-event
    # fast path is on and the route supports it — a fused generator
    # that reproduces the reference timestamps with a fraction of the
    # allocations (no Timeouts, no request objects, no sub-generators).

    def send(self, view: BufferView, dst: int, tag: int = 0,
             comm: Optional[Communicator] = None):
        """Blocking send."""
        comm = comm or self.comm_world
        if self.world._fast:
            plan = self._plan(comm, dst)
            if plan.fast and (plan.eager_limit is None
                              or view.nbytes <= plan.eager_limit):
                if tag < 0:
                    raise ValueError(f"send tag must be >= 0, got {tag}")
                return self._send_fast(plan, view, tag, comm)
        return self._send_slow(view, dst, tag, comm)

    def _send_slow(self, view, dst, tag, comm):
        req = yield from self.isend(view, dst, tag, comm)
        yield from self.wait(req)

    def _send_fast(self, plan: _PeerPlan, view: BufferView, tag: int,
                   comm: Communicator):
        # Mirrors isend + wait for an eager message: the sender-side
        # flat time (which may reserve membus bandwidth) is computed at
        # the call instant, exactly as the reference isend body does.
        world = self.world
        sim = self.sim
        dst_world = plan.dst_world
        transport = plan.transport
        self.last_op = ("send", dst_world, tag)
        nbytes = view.nbytes
        wire = WireDescriptor(self.rank, dst_world, nbytes, view.key)
        desc = MessageDescriptor(
            self._send_env(comm, tag), nbytes,
            view.read() if self._functional else None, wire,
            transport, self.rank, dst_world,
        )
        sflat = transport.sender_flat_time(self.node_hw, wire)
        yield self._base_dispatch - self._dispatch_discount + sflat
        kind = plan.kind
        if kind == _NET:
            self.nic_msgs += 1
            self.nic_bytes += nbytes
            transport.schedule_delivery_fast(self.node_hw, plan.dst_hw,
                                             desc, world)
        elif kind == _INTRA:
            sim.call_at(sim.now + plan.flag_delay, (world.deliver, desc))
        else:
            world.deliver(desc)
        # Eager: the buffer is reusable now, waiting is free.

    def recv(self, view: BufferView, src: int = ANY_SOURCE, tag: int = -1,
             comm: Optional[Communicator] = None):
        """Blocking receive; returns a :class:`Status`."""
        comm = comm or self.comm_world
        if self.world._fast:
            return self._recv_fast(view, src, tag, comm)
        return self._recv_slow(view, src, tag, comm)

    def _recv_slow(self, view, src, tag, comm):
        req = yield from self.irecv(view, src, tag, comm)
        status = yield from self.wait(req)
        return status

    def _recv_fast(self, view: BufferView, src: int, tag: int,
                   comm: Communicator):
        # Mirrors irecv + wait; works for any delivering transport
        # (completion costs come from the descriptor).
        pattern = self._recv_pattern(comm, src, tag)
        self.last_op = ("recv", src, tag)
        yield self._base_dispatch - self._dispatch_discount
        matching = self.matching
        desc = matching.claim(pattern)
        if desc is None:
            ev = self.sim.event()
            matching.post(pattern, ev)
            desc = yield ev
        if desc.nbytes > view.nbytes:
            raise TruncationError(
                f"rank {self.rank}: message of {desc.nbytes} B arrived for a "
                f"{view.nbytes} B receive buffer "
                f"(src={desc.envelope.src}, tag={desc.envelope.tag})"
            )
        transport = desc.transport
        rflat = transport.receiver_flat_time(self.node_hw, desc.wire)
        if rflat is None:
            yield from transport.receiver_steps(self.node_hw, desc.wire)
        elif rflat > 0.0:
            yield rflat
        payload = desc.payload
        if payload is not None:
            if desc.nbytes == view.nbytes:
                view.write(payload)
            else:
                view.sub(0, desc.nbytes).write(payload)
        env = desc.envelope
        return Status(env.src, env.tag, desc.nbytes)

    def sendrecv(self, send_view: BufferView, dst: int, send_tag: int,
                 recv_view: BufferView, src: int, recv_tag: int,
                 comm: Optional[Communicator] = None):
        """Paired exchange (deadlock-free); returns the receive status."""
        comm = comm or self.comm_world
        if self.world._fast:
            plan = self._plan(comm, dst)
            if plan.fast and (plan.eager_limit is None
                              or send_view.nbytes <= plan.eager_limit):
                if send_tag < 0:
                    raise ValueError(f"send tag must be >= 0, got {send_tag}")
                return self._sendrecv_fast(plan, send_view, send_tag,
                                           recv_view, src, recv_tag, comm)
        return self._sendrecv_slow(send_view, dst, send_tag,
                                   recv_view, src, recv_tag, comm)

    def _sendrecv_slow(self, send_view, dst, send_tag, recv_view, src,
                       recv_tag, comm):
        rreq = yield from self.irecv(recv_view, src, recv_tag, comm)
        sreq = yield from self.isend(send_view, dst, send_tag, comm)
        yield from self.wait(sreq)
        status = yield from self.wait(rreq)
        return status

    def _sendrecv_fast(self, plan: _PeerPlan, send_view: BufferView,
                       send_tag: int, recv_view: BufferView, src: int,
                       recv_tag: int, comm: Communicator):
        # One fused generator reproducing the reference choreography's
        # timestamps and same-instant ordering exactly:
        #   t        : recv dispatch starts
        #   t+d      : receive posted; send body runs inline (its flat
        #              time — possibly a membus reservation — computed
        #              in the same pop, as the reference path does)
        #   t+2d+flat: message handed to the wire (pipe reservations)
        #   match    : receiver-side flat, payload landing, Status
        sim = self.sim
        world = self.world
        pattern = self._recv_pattern(comm, src, recv_tag)
        self.last_op = ("recv", src, recv_tag)
        yield self._base_dispatch - self._dispatch_discount
        matching = self.matching
        desc_r = matching.claim(pattern)
        ev = None
        if desc_r is None:
            ev = sim.event()
            matching.post(pattern, ev)
        # -- send side (inline, same pop) --
        dst_world = plan.dst_world
        transport = plan.transport
        self.last_op = ("send", dst_world, send_tag)
        nbytes = send_view.nbytes
        wire = WireDescriptor(self.rank, dst_world, nbytes, send_view.key)
        desc_s = MessageDescriptor(
            self._send_env(comm, send_tag), nbytes,
            send_view.read() if self._functional else None, wire,
            transport, self.rank, dst_world,
        )
        sflat = transport.sender_flat_time(self.node_hw, wire)
        delay = self._base_dispatch - self._dispatch_discount + sflat
        kind = plan.kind
        if kind == _NET:
            self.nic_msgs += 1
            self.nic_bytes += nbytes
        if desc_r is not None:
            # Claimed: the message is already here — stay inline.
            yield delay
            if kind == _NET:
                transport.schedule_delivery_fast(self.node_hw, plan.dst_hw,
                                                 desc_s, world)
            elif kind == _INTRA:
                sim.call_in(plan.flag_delay, (world.deliver, desc_s))
            else:
                world.deliver(desc_s)
        else:
            # Posted: hand the send off as a bare scheduled tuple and
            # wait for the match directly, skipping one generator
            # resume per exchange.  The tuple occupies the queue
            # position the dispatch-resume would have (last push of
            # this pop), so same-instant reservation order — and hence
            # every timestamp — is unchanged.
            if kind == _NET:
                sim.call_in(delay, (_net_handoff,
                                    (transport, self.node_hw, plan.dst_hw,
                                     desc_s, world)))
            elif kind == _INTRA:
                sim.call_in(delay, (_intra_handoff,
                                    (world, plan.flag_delay, desc_s)))
            else:
                sim.call_in(delay, (world.deliver, desc_s))
            handoff_at = sim.now + delay
            # -- recv completion (the reference wait(rreq)) --
            desc_r = yield ev
            if sim.now < handoff_at:
                # Early arrival: the rank is still busy dispatching its
                # own send until ``handoff_at``.
                yield handoff_at - sim.now
        if desc_r.nbytes > recv_view.nbytes:
            raise TruncationError(
                f"rank {self.rank}: message of {desc_r.nbytes} B arrived for "
                f"a {recv_view.nbytes} B receive buffer "
                f"(src={desc_r.envelope.src}, tag={desc_r.envelope.tag})"
            )
        r_transport = desc_r.transport
        rflat = r_transport.receiver_flat_time(self.node_hw, desc_r.wire)
        if rflat is None:
            yield from r_transport.receiver_steps(self.node_hw, desc_r.wire)
        elif rflat > 0.0:
            yield rflat
        payload = desc_r.payload
        if payload is not None:
            if desc_r.nbytes == recv_view.nbytes:
                recv_view.write(payload)
            else:
                recv_view.sub(0, desc_r.nbytes).write(payload)
        env = desc_r.envelope
        return Status(env.src, env.tag, desc_r.nbytes)

    def test(self, request: Request):
        """MPI_Test (generator): ``(flag, result)``.

        If the request could complete without blocking, completes it
        (paying completion-side costs) and returns ``(True, result)``;
        otherwise returns ``(False, None)`` immediately.
        """
        if not request.ready:
            return (False, None)
        result = yield from request._complete(self)
        return (True, result)

    def iprobe(self, src: int = ANY_SOURCE, tag: int = -1,
               comm: Optional[Communicator] = None) -> Optional[Status]:
        """MPI_Iprobe: a matching unexpected message's status, or None.

        Non-consuming and instantaneous (no generator): probing reads
        the already-delivered unexpected queue.
        """
        comm = comm or self.comm_world
        desc = self.matching.peek(Envelope(comm.comm_id, src, tag))
        if desc is None:
            return None
        return Status(desc.envelope.src, desc.envelope.tag, desc.nbytes)

    def probe(self, src: int = ANY_SOURCE, tag: int = -1,
              comm: Optional[Communicator] = None):
        """MPI_Probe (generator): block until a matching message is
        queued; returns its :class:`Status` without consuming it."""
        while True:
            status = self.iprobe(src, tag, comm)
            if status is not None:
                return status
            yield self.sim.timeout(self.params.cpu.progress_poll)

    # -- persistent requests -----------------------------------------------------
    def send_init(self, view: BufferView, dst: int, tag: int = 0,
                  comm: Optional[Communicator] = None):
        """MPI_Send_init: a reusable frozen send (see
        :mod:`repro.runtime.persistent`)."""
        from .persistent import send_init

        return send_init(self, view, dst, tag, comm)

    def recv_init(self, view: BufferView, src: int, tag: int = -1,
                  comm: Optional[Communicator] = None):
        """MPI_Recv_init: a reusable frozen receive."""
        from .persistent import recv_init

        return recv_init(self, view, src, tag, comm)

    def start_all(self, ops):
        """MPI_Startall (generator): returns the live requests."""
        from .persistent import start_all

        live = yield from start_all(self, ops)
        return live

    # -- nonblocking operations ------------------------------------------------
    def start(self, operation) -> OperationRequest:
        """Launch a generator (e.g. a collective) as a nonblocking
        operation; complete with :meth:`wait`.

        This is how nonblocking collectives (``MPI_Iallgather`` etc.)
        are expressed::

            req = ctx.start(allgather_bruck(ctx, send, recv))
            ...overlapped work...
            yield from ctx.wait(req)

        The operation runs concurrently with the rank's own progress;
        the caller must not reuse the operation's buffers or issue
        matching-conflicting traffic until completion, as in MPI.
        """
        proc = self.sim.process(operation, name=f"op@rank{self.rank}")
        return OperationRequest(proc)

    # -- communicator management ------------------------------------------------
    def comm_split(self, color: Optional[int], key: int = 0,
                   comm: Optional[Communicator] = None):
        """Collective split, MPI_Comm_split semantics (generator).

        Ranks passing the same ``color`` form a new communicator,
        ordered by ``(key, old rank)``; ``color=None`` (MPI_UNDEFINED)
        yields ``None``.  All members of ``comm`` must call this.

        The exchange itself is modeled: a flat gather of (color, key)
        pairs to comm rank 0 and a broadcast back — control-plane
        traffic priced like any other messages.
        """
        import numpy as np

        from .buffer import ArrayBuffer

        comm = comm or self.comm_world
        my_cr = comm.to_comm(self.rank)
        entry = np.array(
            [-1 if color is None else color, key, self.rank], dtype=np.int64
        )
        # Gather the (color, key, world rank) table to comm rank 0.
        mine = ArrayBuffer.from_array(entry)
        split_tag = 0xC000
        if my_cr == 0:
            gathered = ArrayBuffer.zeros(24 * comm.size)
            gathered.view(0, 24).copy_from(mine.view())
            reqs = []
            for src in range(1, comm.size):
                req = yield from self.irecv(gathered.view(24 * src, 24),
                                            src=src, tag=split_tag, comm=comm)
                reqs.append(req)
            yield from self.waitall(reqs)
            # Broadcast the full table back (flat — control plane).
            for dst in range(1, comm.size):
                yield from self.send(gathered.view(), dst=dst,
                                     tag=split_tag + 1, comm=comm)
        else:
            yield from self.send(mine.view(), dst=0, tag=split_tag, comm=comm)
            gathered = ArrayBuffer.zeros(24 * comm.size)
            yield from self.recv(gathered.view(), src=0, tag=split_tag + 1,
                                 comm=comm)
        table = gathered.bytes_view.view(np.int64).reshape(comm.size, 3)
        if color is None:
            return None
        members = sorted(
            (int(k), int(wr)) for c, k, wr in table if c == color
        )
        return self.world.intern_comm(tuple(wr for _k, wr in members))

    # -- PiP direct access ---------------------------------------------------
    def expose(self, key: Hashable, buffer: BaseBuffer) -> None:
        """Publish a buffer for same-node direct access (free with PiP)."""
        self.task.space.expose(self.rank, key, buffer)

    def withdraw(self, key: Hashable) -> None:
        """Remove a published buffer."""
        self.task.space.withdraw(self.rank, key)

    def peer_buffer(self, owner: int, key: Hashable) -> BaseBuffer:
        """Direct reference to a same-node peer's exposed buffer.

        Only legal when the library's intra-node transport is PiP;
        others get :class:`AddressSpaceViolation` — there is no way to
        dereference another process's pointer without shared address
        spaces.
        """
        if not self.world.intra.supports_peer_views:
            raise AddressSpaceViolation(
                f"intra-node transport {self.world.intra.name!r} does not "
                "support direct peer access (PiP only)"
            )
        return self.task.space.peer_view(self.rank, owner, key)

    def direct_copy(self, src: BufferView, dst: BufferView):
        """One user-space memcpy between directly addressable buffers.

        Functional copy plus the modeled single-copy cost.  The caller
        is responsible for synchronisation (flags / node barriers), as
        PiP code would be.
        """
        if src.nbytes != dst.nbytes:
            raise ValueError(f"size mismatch: {src.nbytes} != {dst.nbytes}")
        dst.write(src.read())
        yield from self.node_hw.mem_copy(dst.nbytes)

    # -- synchronisation -------------------------------------------------------
    def node_barrier(self):
        """Barrier across this node's ranks (flag-cost model)."""
        obs = self.world.obs
        if obs is None:
            yield self._node_barrier.arrive()
            return
        # Sync span: how long this rank idled waiting for its node —
        # the "sync waits" series in the metrics registry.
        with obs.span(self.rank, "node_barrier", cat="sync"):
            yield self._node_barrier.arrive()

    def hard_sync(self):
        """Zero-cost world alignment for benchmark iteration boundaries.

        Not an MPI call: the harness uses it to start every rank's
        timed region at the same instant, like OSU's pre-iteration
        ``MPI_Barrier`` but without polluting the measurement.
        """
        yield self._hard_sync.arrive()

    def compute(self, seconds: float):
        """Charge ``seconds`` of local CPU work (for app examples)."""
        yield self.sim.timeout(seconds)
