"""Reduction operators for reduce-style collectives.

Each op wraps a numpy ufunc applied elementwise:
``accumulate(acc, incoming)`` computes ``acc op= incoming`` in place —
vectorised, no Python loops (per the project's HPC-Python guides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """An associative, commutative reduction operator."""

    name: str
    ufunc: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]

    def accumulate(self, acc: np.ndarray, incoming: np.ndarray) -> None:
        """In-place ``acc = acc (op) incoming``."""
        if acc.shape != incoming.shape:
            raise ValueError(f"shape mismatch: {acc.shape} vs {incoming.shape}")
        self.ufunc(acc, incoming, out=acc)

    def reduce_many(self, arrays: list) -> np.ndarray:
        """Fold a list of arrays (reference/validation helper)."""
        if not arrays:
            raise ValueError("reduce_many needs at least one array")
        acc = np.array(arrays[0], copy=True)
        for arr in arrays[1:]:
            self.accumulate(acc, np.asarray(arr))
        return acc

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _logical(fn: Callable) -> Callable:
    """Wrap a boolean ufunc so results keep the integer input dtype."""

    def apply(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        np.copyto(out, fn(a != 0, b != 0).astype(out.dtype))
        return out

    return apply


SUM = ReduceOp("SUM", np.add)
PROD = ReduceOp("PROD", np.multiply)
MAX = ReduceOp("MAX", np.maximum)
MIN = ReduceOp("MIN", np.minimum)
BAND = ReduceOp("BAND", np.bitwise_and)
BOR = ReduceOp("BOR", np.bitwise_or)
BXOR = ReduceOp("BXOR", np.bitwise_xor)
LAND = ReduceOp("LAND", _logical(np.logical_and))
LOR = ReduceOp("LOR", _logical(np.logical_or))

_BY_NAME: Dict[str, ReduceOp] = {
    op.name: op for op in (SUM, PROD, MAX, MIN, BAND, BOR, BXOR, LAND, LOR)
}


def reduce_op(name: str) -> ReduceOp:
    """Look an operator up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown reduce op {name!r}; available: {sorted(_BY_NAME)}") from None
