"""Virtual-MPI runtime errors."""

from __future__ import annotations


class MpiError(Exception):
    """Base class for runtime errors."""


class TruncationError(MpiError):
    """A message arrived larger than the posted receive buffer."""


class RankMismatchError(MpiError):
    """A rank or communicator argument is out of range / inconsistent."""


class DatatypeError(MpiError):
    """Buffer and datatype sizes do not line up."""
