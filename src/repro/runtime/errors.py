"""Virtual-MPI runtime errors."""

from __future__ import annotations


class MpiError(Exception):
    """Base class for runtime errors."""


class TruncationError(MpiError):
    """A message arrived larger than the posted receive buffer."""


class RankMismatchError(MpiError):
    """A rank or communicator argument is out of range / inconsistent."""


class DatatypeError(MpiError):
    """Buffer and datatype sizes do not line up."""


class TimeoutError(MpiError):
    """A watchdog deadline expired before the job finished.

    Raised by ``World.run(watchdog=...)`` with a per-rank blocked
    report attached, so a livelocked or straggling run degrades into a
    diagnosis instead of spinning forever.
    """


#: alias that does not shadow the builtin at import sites
MpiTimeoutError = TimeoutError


class CorruptionError(MpiError):
    """A message payload failed its integrity check on delivery.

    Only raised by fault plans with ``corrupt(detect=True)`` — models a
    checksum-verifying receiver on a path with no retransmission.
    """


class DeliveryFailedError(MpiError):
    """The reliable protocol exhausted its retries for one message.

    ``src`` / ``dst`` name the world ranks of the failed flow so the
    diagnosis points at the lossy path instead of a generic deadlock.
    The remaining fields carry the full flow context: payload size,
    MPI tag, how many transmissions were attempted, the simulated
    seconds burned in RTO backoff before giving up, and — when a span
    recorder was attached — which collective call and round the flow
    belonged to.  ``repro.ft`` surfaces all of it in the recovery span
    instead of letting the error escape.
    """

    def __init__(self, message: str, src: "int | None" = None,
                 dst: "int | None" = None, nbytes: "int | None" = None,
                 tag: "int | None" = None, attempts: "int | None" = None,
                 elapsed_s: "float | None" = None,
                 collective: "str | None" = None,
                 round: "int | None" = None) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.tag = tag
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.collective = collective
        self.round = round

    def context(self) -> dict:
        """The structured flow context as a flat dict (span attrs)."""
        return {
            "src": self.src, "dst": self.dst, "nbytes": self.nbytes,
            "tag": self.tag, "attempts": self.attempts,
            "elapsed_s": self.elapsed_s, "collective": self.collective,
            "round": self.round,
        }
