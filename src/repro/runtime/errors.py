"""Virtual-MPI runtime errors."""

from __future__ import annotations


class MpiError(Exception):
    """Base class for runtime errors."""


class TruncationError(MpiError):
    """A message arrived larger than the posted receive buffer."""


class RankMismatchError(MpiError):
    """A rank or communicator argument is out of range / inconsistent."""


class DatatypeError(MpiError):
    """Buffer and datatype sizes do not line up."""


class TimeoutError(MpiError):
    """A watchdog deadline expired before the job finished.

    Raised by ``World.run(watchdog=...)`` with a per-rank blocked
    report attached, so a livelocked or straggling run degrades into a
    diagnosis instead of spinning forever.
    """


#: alias that does not shadow the builtin at import sites
MpiTimeoutError = TimeoutError


class CorruptionError(MpiError):
    """A message payload failed its integrity check on delivery.

    Only raised by fault plans with ``corrupt(detect=True)`` — models a
    checksum-verifying receiver on a path with no retransmission.
    """


class DeliveryFailedError(MpiError):
    """The reliable protocol exhausted its retries for one message.

    ``src`` / ``dst`` name the world ranks of the failed flow so the
    diagnosis points at the lossy path instead of a generic deadlock.
    """

    def __init__(self, message: str, src: "int | None" = None,
                 dst: "int | None" = None) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
