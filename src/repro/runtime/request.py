"""Nonblocking-communication requests."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import Event
from .buffer import BufferView
from .errors import TruncationError
from .message import MessageDescriptor, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import RankContext


class Request:
    """Base request; complete via ``yield from ctx.wait(request)``."""

    __slots__ = ("_done",)

    def __init__(self) -> None:
        self._done = False

    @property
    def completed(self) -> bool:
        """True once the request has been waited on."""
        return self._done

    @property
    def ready(self) -> bool:
        """True when :meth:`RankContext.wait` would finish without
        blocking (MPI_Test's flag)."""
        return self._done

    def _complete(self, ctx: "RankContext"):
        """Finish the operation (generator); idempotent."""
        raise NotImplementedError
        yield  # pragma: no cover

    def _signal(self) -> Optional[Event]:
        """The kernel event whose firing makes this request ready
        (``None`` when it is born ready)."""
        return None


class SendRequest(Request):
    """An in-flight send.

    For eager messages the buffer is reusable as soon as the sender's
    own work is done, so ``done_event`` is ``None`` and waiting is
    free.  For rendezvous messages completion tracks the delivery
    process (the payload leaves the buffer only after CTS).
    """

    __slots__ = ("done_event",)

    def __init__(self, done_event: Optional[Event]) -> None:
        super().__init__()
        self.done_event = done_event

    @property
    def ready(self) -> bool:
        return (self._done or self.done_event is None
                or self.done_event.triggered)

    def _signal(self) -> Optional[Event]:
        return self.done_event

    def _complete(self, ctx: "RankContext"):
        if not self._done and self.done_event is not None:
            yield self.done_event
        self._done = True
        return None


class OperationRequest(Request):
    """A whole in-flight operation running as its own process.

    Returned by :meth:`RankContext.start` — the general nonblocking
    launcher used for nonblocking collectives (``MPI_Iallgather``
    et al.): the operation's generator runs concurrently with the
    rank's own work; waiting joins the process and yields its return
    value.
    """

    __slots__ = ("process", "result")

    def __init__(self, process) -> None:
        super().__init__()
        self.process = process
        self.result = None

    @property
    def ready(self) -> bool:
        return self._done or self.process.triggered

    def _signal(self) -> Optional[Event]:
        return self.process

    def _complete(self, ctx: "RankContext"):
        if self._done:
            return self.result
        if self.process.triggered:
            if not self.process.ok:
                raise self.process.value
            self.result = self.process.value
        else:
            self.result = yield self.process
        self._done = True
        return self.result


class RecvRequest(Request):
    """An in-flight receive.

    Either already matched against the unexpected queue (``desc``) or
    posted and waiting (``event``).  Completion pays the receiver-side
    transport costs and lands the payload in ``view``.
    """

    __slots__ = ("view", "desc", "event", "status")

    def __init__(
        self,
        view: BufferView,
        desc: Optional[MessageDescriptor] = None,
        event: Optional[Event] = None,
    ) -> None:
        super().__init__()
        if (desc is None) == (event is None):
            raise ValueError("exactly one of desc/event must be given")
        self.view = view
        self.desc = desc
        self.event = event
        self.status: Optional[Status] = None

    @property
    def ready(self) -> bool:
        return self._done or self.desc is not None or self.event.triggered

    def _signal(self) -> Optional[Event]:
        return self.event

    def _complete(self, ctx: "RankContext"):
        if self._done:
            return self.status
        if self.desc is None:
            self.desc = yield self.event
        desc = self.desc
        if desc.nbytes > self.view.nbytes:
            raise TruncationError(
                f"rank {ctx.rank}: message of {desc.nbytes} B arrived for a "
                f"{self.view.nbytes} B receive buffer "
                f"(src={desc.envelope.src}, tag={desc.envelope.tag})"
            )
        flat = desc.transport.receiver_flat_time(ctx.node_hw, desc.wire)
        if flat is not None:
            if flat > 0.0:
                yield ctx.sim.timeout(flat)
        else:
            yield from desc.transport.receiver_steps(ctx.node_hw, desc.wire)
        if desc.payload is not None:
            self.view.sub(0, desc.nbytes).write(desc.payload)
        self.status = Status(desc.envelope.src, desc.envelope.tag, desc.nbytes)
        self._done = True
        return self.status
