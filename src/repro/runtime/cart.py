"""Cartesian process topologies (MPI_Cart_* equivalents).

A :class:`CartTopology` lays a communicator's ranks on an N-dimensional
grid (row-major, like MPI_Cart_create) and answers the usual queries:
coordinates, neighbour shifts (with or without periodic wraparound),
and sub-grids.  Pure arithmetic — no communication — so it lives
beside the communicator rather than in the collective layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .communicator import Communicator
from .errors import RankMismatchError


def dims_create(nnodes: int, ndims: int) -> List[int]:
    """Balanced grid dimensions for ``nnodes`` (MPI_Dims_create).

    Factors ``nnodes`` into ``ndims`` dimensions as squarely as
    possible, largest first.
    """
    if nnodes < 1 or ndims < 1:
        raise ValueError("need nnodes >= 1 and ndims >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly peel the largest prime factor onto the smallest dim.
    factors: List[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return sorted(dims, reverse=True)


@dataclass(frozen=True)
class CartTopology:
    """A row-major Cartesian layout over a communicator."""

    comm: Communicator
    dims: Tuple[int, ...]
    periods: Tuple[bool, ...]

    @classmethod
    def create(cls, comm: Communicator, dims: Sequence[int],
               periods: Optional[Sequence[bool]] = None) -> "CartTopology":
        """MPI_Cart_create (without reordering)."""
        dims = tuple(dims)
        if any(d < 1 for d in dims):
            raise ValueError(f"dims must be >= 1: {dims}")
        if math.prod(dims) != comm.size:
            raise RankMismatchError(
                f"grid {dims} holds {math.prod(dims)} ranks, "
                f"communicator has {comm.size}"
            )
        if periods is None:
            periods = (False,) * len(dims)
        periods = tuple(bool(p) for p in periods)
        if len(periods) != len(dims):
            raise ValueError("periods must match dims in length")
        return cls(comm, dims, periods)

    @property
    def ndims(self) -> int:
        """Number of grid dimensions."""
        return len(self.dims)

    # -- coordinate arithmetic -------------------------------------------
    def coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of a comm rank (MPI_Cart_coords)."""
        if not 0 <= rank < self.comm.size:
            raise RankMismatchError(f"rank {rank} out of range")
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Comm rank at ``coords`` (MPI_Cart_rank); honours periodicity."""
        if len(coords) != self.ndims:
            raise ValueError(f"need {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for extent, periodic, c in zip(self.dims, self.periods, coords):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise RankMismatchError(
                    f"coordinate {c} outside non-periodic extent {extent}"
                )
            rank = rank * extent + c
        return rank

    def shift(self, rank: int, dim: int, displacement: int = 1
              ) -> Tuple[Optional[int], Optional[int]]:
        """(source, dest) for a shift along ``dim`` (MPI_Cart_shift).

        ``None`` stands for MPI_PROC_NULL at a non-periodic edge.
        """
        if not 0 <= dim < self.ndims:
            raise ValueError(f"dim {dim} out of range")
        coords = list(self.coords(rank))

        def neighbour(delta: int) -> Optional[int]:
            c = coords[dim] + delta
            if self.periods[dim]:
                c %= self.dims[dim]
            elif not 0 <= c < self.dims[dim]:
                return None
            moved = coords.copy()
            moved[dim] = c
            return self.rank_of(moved)

        return neighbour(-displacement), neighbour(+displacement)

    def neighbours(self, rank: int) -> List[int]:
        """All distinct existing ±1 neighbours (for halo exchanges)."""
        out = []
        for dim in range(self.ndims):
            for nb in self.shift(rank, dim):
                if nb is not None and nb != rank and nb not in out:
                    out.append(nb)
        return out
