"""Vectorized analytic evaluation of whole collectives (engine="analytic").

The analytic engine is the calendar engine plus an
:class:`AnalyticEvaluator` attached to the world.  For *whitelisted
lockstep algorithms* — collectives whose ranks provably advance in
identical, symmetric rounds — the evaluator computes the entire call in
closed form: one numpy pass produces the result bytes, and a short
scalar recurrence (one step per round, mirroring the transport float
arithmetic op-for-op) produces every timestamp and resource-state
update the event loop would have produced.  Each rank then sleeps to
the computed completion instant and applies its node's side effects.
Everything else — non-whitelisted collectives, point-to-point traffic,
split communicators — falls through to the ordinary event loop, so an
analytic world is always *correct*; the evaluator only removes event
dispatch where it can prove the outcome.

Exactness
---------
The differential suite asserts byte- and timestamp-identical results
against the reference engine.  That holds because the evaluator only
engages inside a provable envelope, checked per call:

* statically (per rank, before anything is perturbed): one rank per
  node, the plain :class:`~repro.transport.NetworkTransport` (engine
  resolution already downgrades faults / tracing / spans / reliable /
  fabric / ft to the calendar engine), COMM_WORLD, every round's
  message under the eager limit, positive NIC latency;
* dynamically (once all ranks have entered the call): all ranks
  arrived at the same instant, the event queue is otherwise empty, no
  unexpected messages or pending receives anywhere, every NIC pipe and
  memory bus idle, no dispatch-overhead rebates outstanding.

Inside that envelope all ranks execute identical rounds in lockstep:
every ``max(pipe_free, now)`` in the transports resolves the same way
on every node, so one scalar trajectory *is* every node's trajectory.
The recurrence below replays the exact float operations — same
associativity, same comparison direction — of ``_sendrecv_fast``,
``copy_cost``, ``RateLimiter.reserve`` and ``schedule_delivery_fast``,
so the computed timestamps are bit-equal, not just close.

When a dynamic guard fails the gathered ranks are released at the same
instant, in the same order they arrived, straight into the real
algorithm — a declined call is indistinguishable (to the byte) from a
world with no evaluator attached.  A gather also lives exactly one
simulated instant: the first join schedules an end-of-instant deadline,
and an incomplete gather declines right there, so ranks entering a
collective at *different* times are never parked past their own entry
instant (which would perturb the fallback).

Resuming ranks park on a plain event and are woken in arrival order,
which is their dispatch order; the relative order of same-instant queue
pushes after the call therefore matches the reference engine wherever
the envelope's symmetry makes that order observable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..collectives.allgather import allgather_bruck, allgather_recursive_doubling
from ..collectives.base import TAG_ALLGATHER, is_functional


def _rd_rounds(size: int, count: int) -> Optional[List[int]]:
    """Per-round message sizes for recursive doubling (pow2 only)."""
    if size & (size - 1):
        return None
    sizes = []
    mask = 1
    while mask < size:
        sizes.append(count * mask)
        mask <<= 1
    return sizes


def _bruck_rounds(size: int, count: int) -> Optional[List[int]]:
    """Per-round message sizes for radix-2 Bruck (any size)."""
    sizes = []
    step = 1
    while step < size:
        sizes.append(min(step, size - step) * count)
        step <<= 1
    return sizes


class _AllgatherHandler:
    """One whitelisted uniform-allgather algorithm.

    ``rounds`` maps ``(size, count)`` to the per-round message sizes
    (or None when the algorithm cannot run, e.g. recursive doubling on
    a non-power-of-two world — declined, so the real algorithm raises
    its own error).  ``head_copy`` / ``tail_copy`` are the local memcpy
    sizes charged before the first and after the last round.
    """

    __slots__ = ("algo", "rounds", "tail_copy")

    def __init__(self, algo: Callable, rounds: Callable,
                 tail_copy: Optional[Callable] = None) -> None:
        self.algo = algo
        self.rounds = rounds
        self.tail_copy = tail_copy

    def unpack(self, args: tuple, kwargs: dict):
        """``(sendview, recvview, comm)`` or None if the shape is odd."""
        if len(args) == 2:
            extra = set(kwargs) - {"comm"}
            if extra:
                return None
            return args[0], args[1], kwargs.get("comm")
        if len(args) == 3 and not kwargs:
            return args[0], args[1], args[2]
        return None

    def static_ok(self, world, ctx, send, recv, comm) -> bool:
        """Cheap, side-effect-free per-rank envelope checks."""
        if comm is not None and comm is not world.comm_world:
            return False
        size = world.comm_world.size
        if size < 2 or world.params.ppn != 1:
            return False
        count = send.nbytes
        if count < 1 or recv.nbytes != count * size:
            return False
        nic = world.params.nic
        if nic.latency <= 0.0:
            return False
        sizes = self.rounds(size, count)
        if sizes is None or max(sizes) > nic.eager_limit:
            return False
        return True

    def plan(self, world, members: List[tuple]) -> "_Plan":
        size = len(members)
        count = members[0][1].nbytes
        sizes = self.rounds(size, count)
        tail = self.tail_copy(size, count) if self.tail_copy else None
        plan = _uniform_rounds_plan(world, count, sizes, tail)
        views = sorted(((ctx.rank, send) for ctx, send, _recv in members))
        if is_functional(*(send for _rank, send in views)):
            plan.data = np.concatenate([send.read() for _r, send in views])
        # Reference leaves last_op at the final round's send dispatch.
        plan.last_partner = {
            ctx.rank: self._last_partner(ctx.rank, size)
            for ctx, _s, _r in members
        }
        return plan

    def _last_partner(self, rank: int, size: int) -> int:
        if self.algo is allgather_recursive_doubling:
            return rank ^ (size >> 1)
        step = 1
        while step * 2 < size:
            step <<= 1
        return (rank - step) % size


class _Plan:
    """The closed-form outcome of one analytically evaluated call."""

    __slots__ = ("t_end", "mem_nf", "tx_nf", "rx_nf", "mem_deltas",
                 "tx_deltas", "rx_deltas", "nrounds", "total_bytes",
                 "data", "last_partner")

    def __init__(self) -> None:
        self.data: Optional[np.ndarray] = None
        self.last_partner: Dict[int, int] = {}

    def apply(self, ctx, recv) -> None:
        """One rank's side effects, applied at ``t_end``.

        Busy-time accumulators fold the per-reservation deltas in the
        order the event loop would have added them — float addition is
        not associative, and the stats totals are compared exactly.
        """
        node = ctx.node_hw
        for pipe, deltas, nf in (
            (node.membus, self.mem_deltas, self.mem_nf),
            (node.tx, self.tx_deltas, self.tx_nf),
            (node.rx, self.rx_deltas, self.rx_nf),
        ):
            busy = pipe._busy_time
            for delta in deltas:
                busy += delta
            pipe._busy_time = busy
            pipe._next_free = nf
        node.tx_messages += self.nrounds
        node.rx_messages += self.nrounds
        ctx.nic_msgs += self.nrounds
        ctx.nic_bytes += self.total_bytes
        ctx.last_op = ("send", self.last_partner[ctx.rank], TAG_ALLGATHER)
        if self.data is not None:
            recv.write(self.data)


def _uniform_rounds_plan(world, count: int, round_sizes: List[int],
                         tail_copy: Optional[int]) -> _Plan:
    """Replay the fast-path float arithmetic of a lockstep exchange.

    One scalar trajectory stands for every node (symmetric rounds, idle
    entry state — the dynamic guards).  Each statement mirrors a
    specific reference operation, with the same associativity:
    ``copy_cost`` (core vs membus reservation), the fused sendrecv's
    dispatch/handoff instants, ``schedule_delivery_fast``'s TX
    reservation + wire latency, ``_eager_arrive``'s RX reservation, and
    the receiver flat time.
    """
    p = world.params
    mem, nic = p.memory, p.nic
    copy_lat, copy_b, bus_b = (mem.copy_latency, mem.copy_byte_time,
                               mem.bus_byte_time)
    d = p.cpu.dispatch_overhead - 0.0  # _base_dispatch - _dispatch_discount
    mem_nf = tx_nf = rx_nf = float("-inf")  # idle: every max picks `now`
    mem_deltas: List[float] = []
    tx_deltas: List[float] = []
    rx_deltas: List[float] = []

    def bus_copy(t: float, nb: int) -> float:
        # NodeHardware.copy_cost at instant t: core time vs a membus
        # RateLimiter.reserve, returning the blocking duration.
        nonlocal mem_nf
        core = t + copy_lat + nb * copy_b
        start = mem_nf if mem_nf > t else t
        done = start + nb * bus_b
        mem_nf = done
        mem_deltas.append(nb * bus_b)
        return (core if core > done else done) - t

    t = world.sim.now
    t = t + bus_copy(t, count)  # local/setup copy (timeout resume)
    for nb in round_sizes:
        t1 = t + d                                  # post-dispatch resume
        sflat = nic.inject_overhead + bus_copy(t1, nb)
        t2 = t1 + (d + sflat)                       # call_in handoff
        wire = nic.wire_time(nb)
        start = tx_nf if tx_nf > t2 else t2         # tx.reserve
        fin = start + wire
        tx_nf = fin
        tx_deltas.append(wire)
        arrival = fin + nic.latency
        start = rx_nf if rx_nf > arrival else arrival  # rx.reserve
        fin2 = start + wire
        rx_nf = fin2
        rx_deltas.append(wire)
        rflat = nic.recv_overhead + bus_copy(fin2, nb)
        t = fin2 if rflat == 0.0 else fin2 + rflat  # `yield rflat` guard
    if tail_copy is not None:
        t = t + bus_copy(t, tail_copy)

    plan = _Plan()
    plan.t_end = t
    plan.mem_nf, plan.tx_nf, plan.rx_nf = mem_nf, tx_nf, rx_nf
    plan.mem_deltas, plan.tx_deltas, plan.rx_deltas = (
        mem_deltas, tx_deltas, rx_deltas)
    plan.nrounds = len(round_sizes)
    plan.total_bytes = sum(round_sizes)
    return plan


class _Gather:
    """Rendezvous for the P member calls of one collective invocation."""

    __slots__ = ("evaluator", "handler", "size", "members", "events",
                 "times", "closed", "bad", "count", "deadline_pending")

    def __init__(self, evaluator: "AnalyticEvaluator",
                 handler: _AllgatherHandler, size: int) -> None:
        self.evaluator = evaluator
        self.handler = handler
        self.size = size
        self.members: List[tuple] = []   # (ctx, sendview, recvview)
        self.events: List[Any] = []
        self.times: List[float] = []
        self.closed = False
        self.bad = False
        self.count: Optional[int] = None
        self.deadline_pending = False

    def join(self, ctx, send, recv):
        """Register one rank; returns the event it parks on."""
        if not self.members:
            self.deadline_pending = True
            # A gather lives exactly one instant: if the remaining
            # ranks haven't arrived by the time this fires (same
            # timestamp, queued after every already-scheduled arrival),
            # they entered later — parking the early ranks past their
            # entry time would perturb the fallback, so decline NOW,
            # releasing everyone at the instant they arrived.
            ctx.sim.call_at(ctx.sim.now, self._expire)
        if self.count is None:
            self.count = send.nbytes
        elif send.nbytes != self.count:
            self.bad = True
        if any(m[0].rank == ctx.rank for m in self.members):
            self.bad = True  # same rank twice: a stale gather
        if ctx._dispatch_discount != 0.0:
            self.bad = True
        self.members.append((ctx, send, recv))
        self.times.append(ctx.sim.now)
        ev = ctx.sim.event()
        self.events.append(ev)
        return ev

    def _expire(self) -> None:
        """End-of-instant deadline: an incomplete gather declines."""
        self.deadline_pending = False
        if self.closed:
            return
        self.closed = True
        self.evaluator.declined += 1
        for ev in self.events:
            ev.succeed(None)

    def finish(self, world) -> Optional[_Plan]:
        """All ranks are in: run the dynamic guards, plan or decline."""
        self.closed = True
        plan = None
        if self._dynamic_ok(world):
            plan = self.handler.plan(world, self.members)
        for ev in self.events:
            ev.succeed(plan)
        return plan

    def _dynamic_ok(self, world) -> bool:
        if self.bad:
            return False
        sim = world.sim
        now = sim.now
        if any(t != now for t in self.times):
            return False  # ranks entered at different instants
        if self.deadline_pending:
            # Our own end-of-instant deadline is still queued (it fires
            # as a no-op once closed); anything beyond that single item
            # is foreign activity.
            if sim.peek() != now or len(sim._queue) != 1:
                return False
        elif sim.peek() != float("inf"):
            return False  # foreign activity still scheduled
        for engine in world.matching:
            if engine.unexpected_messages or engine.pending_receives:
                return False
        for node in world.hw.nodes:
            if (node.tx._next_free > now or node.rx._next_free > now
                    or node.membus._next_free > now):
                return False
        return True


class AnalyticEvaluator:
    """Per-world dispatcher: intercept whitelisted collective calls.

    Attached by :class:`~repro.runtime.world.World` when the resolved
    :class:`~repro.sim.spec.EngineSpec` has ``analytic=True``; consulted
    by the library wrapper (:meth:`MpiLibrary.wrapped
    <repro.mpilibs.base.MpiLibrary.wrapped>`) on every collective call.
    ``hits`` / ``declined`` count evaluated vs fallen-back calls — the
    engagement probe the tests assert on.
    """

    def __init__(self, world) -> None:
        self.world = world
        #: collective calls fully evaluated in closed form
        self.hits = 0
        #: whitelisted calls that failed a dynamic guard (fell back)
        self.declined = 0
        self._gather: Optional[_Gather] = None
        self._handlers: Dict[Callable, _AllgatherHandler] = {
            allgather_recursive_doubling: _AllgatherHandler(
                allgather_recursive_doubling, _rd_rounds),
            allgather_bruck: _AllgatherHandler(
                allgather_bruck, _bruck_rounds,
                tail_copy=lambda size, count: size * count),
        }

    def intercept(self, algo, ctx, args: tuple, kwargs: dict):
        """A replacement generator for this call, or None to run
        ``algo`` normally.  Must be side-effect-free until the member
        generator actually runs."""
        handler = self._handlers.get(algo)
        if handler is None:
            return None
        unpacked = handler.unpack(args, kwargs)
        if unpacked is None:
            return None
        send, recv, comm = unpacked
        if not handler.static_ok(self.world, ctx, send, recv, comm):
            return None
        return self._member(handler, ctx, send, recv, comm)

    def _member(self, handler, ctx, send, recv, comm):
        """One rank's side of an intercepted call (a rank generator)."""
        gather = self._gather
        if gather is None or gather.closed or gather.handler is not handler:
            if gather is not None and not gather.closed:
                gather.bad = True  # mismatched collectives: poison it
            gather = self._gather = _Gather(self, handler, ctx.size)
        ev = gather.join(ctx, send, recv)
        if len(gather.members) == gather.size:
            if gather.finish(self.world) is None:
                self.declined += 1
            else:
                self.hits += 1
        plan = yield ev
        if plan is None:
            # Declined: every rank resumes at the entry instant, in
            # arrival (= dispatch) order, and runs the real algorithm —
            # nothing was perturbed, so this replays the reference run.
            yield from handler.algo(ctx, send, recv, comm=comm)
            return
        yield ctx.sim.event_at(plan.t_end)
        plan.apply(ctx, recv)
