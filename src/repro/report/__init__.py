"""repro.report — the paper-figure reporting pipeline.

Ingests :mod:`repro.bench.record` BenchRecords from
``benchmarks/results/*.records.json`` and produces the paper's
Fig. 2–7-style comparison artifacts:

* latency + speedup-vs-PiP-MPICH tables per (collective, geometry)
  grid (CSV / JSON / text),
* per-transport occupancy tables and the multi-object vs single-leader
  NIC-injection-occupancy ratio (the paper's §2–3 claim, checked
  against the ``≥ P×`` bar),
* LogGP attribution stacks naming each point's dominant term,
* golden-aware regression flags (±10 % by default, against the same
  ``benchmarks/golden.json`` keys :mod:`repro.bench.regression` uses),
* one self-contained HTML page with all of the above, and
* the repo-root ``BENCH_summary.json`` trajectory file.

Entry point: ``python -m repro report`` (see :mod:`repro.cli`).
"""

from .html import render_html
from .ingest import build_report
from .summary import build_summary, validate_summary, write_summary
from .tables import (GroupTable, Report, attribution_rows, occupancy_ratios,
                     occupancy_rows, regression_flags, speedup_groups)

__all__ = [
    "GroupTable",
    "Report",
    "attribution_rows",
    "build_report",
    "build_summary",
    "occupancy_ratios",
    "occupancy_rows",
    "regression_flags",
    "render_html",
    "speedup_groups",
    "validate_summary",
    "write_summary",
]
