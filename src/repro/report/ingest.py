"""Record ingestion → :class:`~repro.report.tables.Report`.

The one function the CLI calls: read every ``*.records.json`` under a
results directory (validating the schema on the way in), derive the
comparison tables, and (when a golden baseline is given) flag latency
drift — without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..bench.record import load_records
from .tables import (Report, attribution_rows, occupancy_ratios,
                     occupancy_rows, regression_flags, speedup_groups)


def build_report(results: Union[str, Path, Dict[str, dict]],
                 golden: Optional[Union[str, Path]] = None,
                 tolerance: float = 0.10) -> Report:
    """Build the full report from records (a dir, file, or dict).

    ``golden`` points at ``benchmarks/golden.json`` (the regression
    baseline); latency flags compare record keys directly against it
    with ``tolerance`` slack.
    """
    if isinstance(results, (str, Path)):
        records = load_records(results)
    else:
        records = dict(results)
    flags = []
    if golden is not None:
        golden_values: Dict[str, float] = json.loads(Path(golden).read_text())
        flags = regression_flags(records, golden_values, tolerance)
    return Report(
        records=records,
        groups=speedup_groups(records),
        occupancy=occupancy_rows(records),
        ratios=occupancy_ratios(records),
        attribution=attribution_rows(records),
        flags=flags,
        tolerance=tolerance,
    )
