"""Comparison tables derived from BenchRecords.

Pure functions from ``{key: record}`` dicts (see
:func:`repro.bench.record.load_records`) to row lists that the CSV,
text and HTML renderers share.  The speedup baseline is **PiP-MPICH**
— the paper's own naive-port foil — so every figure reads "how much
does the redesigned schedule buy over just porting MPICH onto PiP".
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: the speedup denominator (the paper's naive-port baseline)
BASELINE_LIBRARY = "PiP-MPICH"
#: the multi-object arm the occupancy claim is about
TARGET_LIBRARY = "PiP-MColl"
#: the single-object schedule foil (bench/harness.single_leader_allgather)
SINGLE_LEADER = "SingleLeader"

#: a (collective, nodes, ppn) grid id
GridKey = Tuple[str, int, int]


@dataclass
class GroupTable:
    """One Fig.-2-style grid: sizes × libraries for one geometry."""

    collective: str
    nodes: int
    ppn: int
    sizes: List[int]
    libraries: List[str]
    #: (library, nbytes) → latency µs
    latency: Dict[Tuple[str, int], float]

    @property
    def title(self) -> str:
        return f"{self.collective} @ {self.nodes}x{self.ppn}"

    def speedup(self, library: str, nbytes: int) -> Optional[float]:
        """``BASELINE_LIBRARY`` latency / ``library`` latency (>1 wins)."""
        base = self.latency.get((BASELINE_LIBRARY, nbytes))
        mine = self.latency.get((library, nbytes))
        if base is None or mine is None or mine <= 0.0:
            return None
        return base / mine

    def rows(self) -> List[Dict[str, Any]]:
        """One row per size: latencies and speedups per library."""
        out = []
        for nbytes in self.sizes:
            row: Dict[str, Any] = {
                "collective": self.collective, "nodes": self.nodes,
                "ppn": self.ppn, "nbytes": nbytes,
            }
            for lib in self.libraries:
                lat = self.latency.get((lib, nbytes))
                row[f"{lib}_us"] = lat
                if lib != BASELINE_LIBRARY:
                    row[f"{lib}_speedup"] = self.speedup(lib, nbytes)
            out.append(row)
        return out


def speedup_groups(records: Dict[str, dict]) -> List[GroupTable]:
    """Group records into per-(collective, geometry) grids."""
    grids: Dict[GridKey, Dict[Tuple[str, int], float]] = {}
    for rec in records.values():
        key: GridKey = (rec["collective"], rec["nodes"], rec["ppn"])
        grids.setdefault(key, {})[(rec["library"], rec["nbytes"])] = \
            rec["latency_us"]
    out = []
    for (coll, nodes, ppn), latency in sorted(grids.items()):
        sizes = sorted({n for _lib, n in latency})
        libs = sorted({lib for lib, _n in latency})
        out.append(GroupTable(coll, nodes, ppn, sizes, libs, latency))
    return out


def occupancy_rows(records: Dict[str, dict]) -> List[Dict[str, Any]]:
    """Per-record resource occupancy (records without telemetry skipped)."""
    out = []
    for key in sorted(records):
        rec = records[key]
        res = rec.get("resources")
        if not res:
            continue
        by_kind = res.get("occupancy_by_kind", {})
        inj = res.get("injection", {})
        out.append({
            "key": key,
            "library": rec["library"],
            "collective": rec["collective"],
            "nbytes": rec["nbytes"],
            "nodes": rec["nodes"],
            "ppn": rec["ppn"],
            "nic_tx": by_kind.get("nic_tx"),
            "nic_rx": by_kind.get("nic_rx"),
            "membus": by_kind.get("membus"),
            "uplink": by_kind.get("uplink"),
            "injection_occupancy": inj.get("aggregate_occupancy"),
            "active_ranks": inj.get("active_ranks"),
            "engine_utilization": inj.get("engine_utilization"),
            "total_msgs": inj.get("total_msgs"),
            "occupancy_per_node": res.get("occupancy_per_node", {}),
        })
    return out


def occupancy_ratios(records: Dict[str, dict]) -> List[Dict[str, Any]]:
    """Multi-object vs single-leader NIC injection-engine comparison.

    For every (collective, nbytes, geometry) where both the
    ``TARGET_LIBRARY`` and the ``SINGLE_LEADER`` arm carry telemetry,
    reports two ratios:

    * ``engine_ratio`` — engaged injection engines (active ranks),
      target vs leader.  This is the paper's §2–3 claim verbatim
      (multi-object keeps all ``P`` per-node engines busy, single-
      object idles ``P-1``), so ``clears_bar`` checks it against the
      ``≥ P×`` bar (P = ppn).
    * ``occupancy_ratio`` — time-integrated aggregate occupancy
      (``Σ msgs×o / (elapsed × nranks)``), tabulated for context; it
      folds in the latency win as well as the engine fan-out.
    """
    by_point: Dict[Tuple[str, int, int, int], Dict[str, dict]] = {}
    for rec in records.values():
        if not rec.get("resources"):
            continue
        point = (rec["collective"], rec["nbytes"], rec["nodes"], rec["ppn"])
        by_point.setdefault(point, {})[rec["library"]] = rec
    out = []
    for point in sorted(by_point):
        arms = by_point[point]
        target = arms.get(TARGET_LIBRARY)
        leader = arms.get(SINGLE_LEADER)
        if target is None or leader is None:
            continue
        t_inj = target["resources"]["injection"]
        l_inj = leader["resources"]["injection"]
        t_occ = t_inj["aggregate_occupancy"]
        l_occ = l_inj["aggregate_occupancy"]
        t_eng = t_inj["active_ranks"]
        l_eng = l_inj["active_ranks"]
        coll, nbytes, nodes, ppn = point
        occ_ratio = (t_occ / l_occ) if l_occ else None
        eng_ratio = (t_eng / l_eng) if l_eng else None
        out.append({
            "collective": coll, "nbytes": nbytes,
            "nodes": nodes, "ppn": ppn,
            f"{TARGET_LIBRARY}_occupancy": t_occ,
            f"{SINGLE_LEADER}_occupancy": l_occ,
            f"{TARGET_LIBRARY}_engines": t_eng,
            f"{SINGLE_LEADER}_engines": l_eng,
            "occupancy_ratio": occ_ratio,
            "engine_ratio": eng_ratio,
            "bar": float(ppn),
            "clears_bar": (eng_ratio is not None and eng_ratio >= ppn),
        })
    return out


def attribution_rows(records: Dict[str, dict]) -> List[Dict[str, Any]]:
    """Per-record LogGP attribution stacks (skips records without one)."""
    out = []
    for key in sorted(records):
        rec = records[key]
        att = rec.get("attribution")
        if not att:
            continue
        out.append({
            "key": key,
            "library": rec["library"],
            "collective": rec["collective"],
            "nbytes": rec["nbytes"],
            "nodes": rec["nodes"],
            "ppn": rec["ppn"],
            "measured_us": att["measured_s"] * 1e6,
            "dominant": att["dominant"],
            "dominant_resource": att.get("dominant_resource"),
            "terms_us": {c: v * 1e6 for c, v in att["terms_s"].items()},
            "model_us": {c: v * 1e6 for c, v in att["model_s"].items()},
        })
    return out


def regression_flags(records: Dict[str, dict], golden: Dict[str, float],
                     tolerance: float = 0.10) -> List[Dict[str, Any]]:
    """Diff record latencies against the golden baseline, no re-run.

    Only keys present in both sides are compared (the golden file also
    holds grid points no records file measured).  ``drifted`` marks
    points beyond ``tolerance`` (±10 % by default).
    """
    out = []
    for key in sorted(records):
        if key not in golden:
            continue
        fresh = records[key]["latency_us"]
        base = golden[key]
        drift = (fresh / base - 1.0) if base else float("inf")
        out.append({
            "key": key,
            "golden_us": base,
            "fresh_us": fresh,
            "drift": drift,
            "drifted": abs(drift) > tolerance,
        })
    return out


@dataclass
class Report:
    """Everything one ``python -m repro report`` run derived."""

    records: Dict[str, dict]
    groups: List[GroupTable]
    occupancy: List[Dict[str, Any]]
    ratios: List[Dict[str, Any]]
    attribution: List[Dict[str, Any]]
    flags: List[Dict[str, Any]] = field(default_factory=list)
    tolerance: float = 0.10

    @property
    def drifted(self) -> List[Dict[str, Any]]:
        return [f for f in self.flags if f["drifted"]]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dump (the ``report.json`` artifact)."""
        return {
            "groups": [
                {"collective": g.collective, "nodes": g.nodes, "ppn": g.ppn,
                 "rows": g.rows()}
                for g in self.groups
            ],
            "occupancy": self.occupancy,
            "occupancy_ratios": self.ratios,
            "attribution": self.attribution,
            "regression": {
                "tolerance": self.tolerance,
                "flags": self.flags,
                "drifted": len(self.drifted),
            },
        }

    def to_csv(self) -> Dict[str, str]:
        """CSV text per table: {filename: csv_text}."""
        out: Dict[str, str] = {}

        def dump(name: str, rows: List[Dict[str, Any]]) -> None:
            if not rows:
                return
            cols: List[str] = []
            for row in rows:
                for col in row:
                    if col not in cols and not isinstance(row[col], dict):
                        cols.append(col)
            buf = io.StringIO()
            writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="ignore")
            writer.writeheader()
            writer.writerows(rows)
            out[name] = buf.getvalue()

        dump("speedup.csv", [r for g in self.groups for r in g.rows()])
        dump("occupancy.csv", self.occupancy)
        dump("occupancy_ratios.csv", self.ratios)
        dump("attribution.csv", [
            {**{k: v for k, v in row.items()
                if not isinstance(v, dict)},
             **{f"{c}_us": row["terms_us"][c] for c in row["terms_us"]}}
            for row in self.attribution
        ])
        dump("regression.csv", self.flags)
        return out

    def format(self) -> str:
        """Terminal summary of the headline tables."""
        lines: List[str] = [f"report: {len(self.records)} records"]
        for group in self.groups:
            lines.append(f"\n== {group.title} ==")
            head = f"{'bytes':>8s}" + "".join(
                f"{lib:>14s}" for lib in group.libraries)
            lines.append(head)
            for nbytes in group.sizes:
                cells = [f"{nbytes:>8d}"]
                for lib in group.libraries:
                    lat = group.latency.get((lib, nbytes))
                    cells.append(f"{lat:>14.2f}" if lat is not None
                                 else f"{'-':>14s}")
                lines.append("".join(cells))
        if self.ratios:
            lines.append("\n== NIC injection engines: multi-object vs "
                         "single-leader ==")
            for row in self.ratios:
                verdict = "PASS" if row["clears_bar"] else "FAIL"
                occ = (f"{row['occupancy_ratio']:.1f}x"
                       if row["occupancy_ratio"] is not None else "-")
                lines.append(
                    f"  {row['collective']} {row['nbytes']} B @ "
                    f"{row['nodes']}x{row['ppn']}: "
                    f"engines {row['engine_ratio']:.1f}x "
                    f"(bar {row['bar']:.0f}x) {verdict}, "
                    f"time-occupancy {occ}"
                )
        if self.attribution:
            lines.append("\n== attribution (dominant terms) ==")
            for row in self.attribution:
                lines.append(
                    f"  {row['key']}: {row['measured_us']:.2f} us, "
                    f"dominant {row['dominant']} "
                    f"({row['dominant_resource']})"
                )
        if self.flags:
            lines.append(
                f"\n== regression vs golden (±{self.tolerance:.0%}) =="
            )
            for flag in self.flags:
                mark = "DRIFT" if flag["drifted"] else "ok"
                lines.append(
                    f"  {flag['key']}: {flag['golden_us']:.2f} -> "
                    f"{flag['fresh_us']:.2f} us ({flag['drift']:+.1%}) {mark}"
                )
        return "\n".join(lines)
